//! The serving-gateway contract, enforced end-to-end (DESIGN.md §9):
//!
//! 1. **Bit-reproducible load tests** — the same seeded workload produces
//!    identical responses, identical ordering, and an identical
//!    `GatewayReport` (compared as serialized JSON) at `--threads 1` and
//!    `--threads 8`, with a clean pool and with an eventual-success chaos
//!    profile on one replica alike — and the chaos run's *responses* are
//!    bit-identical to the clean run's (fault invisibility at the gateway
//!    level).
//! 2. **Pool-level plug-and-play guarantee** — a full-pool permanent
//!    outage serves every request as passthrough, exactly what
//!    `NoOptimizer` would produce, with zero errors and zero unanswered
//!    requests.
//! 3. **Semantic cache contract** — the near tier is dead at τ=0, alive at
//!    τ>0 on a near-duplicate-bearing workload, and capacity bounds are
//!    enforced by LRU eviction.
//!
//! Property 1 lives in one test function because the `pas_par` thread
//! count is process-global and the harness runs tests concurrently (same
//! pattern as `tests/chaos.rs`).

use pas::core::{NoOptimizer, PromptOptimizer};
use pas::fault::FaultProfile;
use pas::gateway::{
    generate, Gateway, GatewayConfig, Request, SemanticCacheConfig, WorkloadConfig,
};

/// A toy deterministic optimizer with visible, prompt-derived output.
struct Suffix;

impl PromptOptimizer for Suffix {
    fn name(&self) -> &str {
        "suffix"
    }
    fn optimize(&self, prompt: &str) -> String {
        format!("{prompt} [augmented]")
    }
    fn requires_human_labels(&self) -> bool {
        false
    }
    fn llm_agnostic(&self) -> bool {
        true
    }
    fn task_agnostic(&self) -> bool {
        true
    }
    fn training_pairs(&self) -> Option<usize> {
        None
    }
}

fn workload() -> Vec<Request> {
    generate(&WorkloadConfig {
        requests: 600,
        universe: 60,
        near_dup_rate: 0.2,
        ..WorkloadConfig::default()
    })
}

fn config_with(profiles: Vec<FaultProfile>, tau: f32) -> GatewayConfig {
    GatewayConfig {
        replicas: 3,
        replica_profiles: profiles,
        cache: SemanticCacheConfig { tau, ..SemanticCacheConfig::default() },
        ..GatewayConfig::default()
    }
}

/// Runs the canonical workload and flattens the outcome to comparable
/// bits: every response in order, plus the full report as JSON.
fn run_gateway(config: GatewayConfig) -> (Vec<String>, String) {
    let replicas = config.replicas;
    let mut gateway = Gateway::new(config, (0..replicas).map(|_| Suffix).collect());
    let (responses, report) = gateway.run(&workload());
    (responses, serde_json::to_string(&report).expect("report serializes"))
}

#[test]
fn seeded_load_tests_are_bit_identical_across_thread_counts() {
    // Clean pool, and an eventual-success chaos profile on replica 1: both
    // must be thread-count invariant down to the serialized report.
    let clean = |tau| config_with(Vec::new(), tau);
    let chaotic = |tau| {
        config_with(vec![FaultProfile::none(), FaultProfile::chaos(), FaultProfile::none()], tau)
    };

    let clean_serial = pas_par::with_threads(1, || run_gateway(clean(0.2)));
    let clean_parallel = pas_par::with_threads(8, || run_gateway(clean(0.2)));
    assert_eq!(clean_serial.0, clean_parallel.0, "clean responses must be thread-invariant");
    assert_eq!(clean_serial.1, clean_parallel.1, "clean report must be thread-invariant");

    let chaos_serial = pas_par::with_threads(1, || run_gateway(chaotic(0.2)));
    let chaos_parallel = pas_par::with_threads(8, || run_gateway(chaotic(0.2)));
    assert_eq!(chaos_serial.0, chaos_parallel.0, "chaos responses must be thread-invariant");
    assert_eq!(chaos_serial.1, chaos_parallel.1, "chaos report must be thread-invariant");

    // Fault invisibility: eventual-success faults never change what the
    // user sees, only the fault-layer accounting.
    assert_eq!(clean_serial.0, chaos_serial.0, "chaos must not alter any response");
    let report: pas::gateway::GatewayReport =
        serde_json::from_str(&chaos_serial.1).expect("report round-trips");
    assert_eq!(report.degraded, 0, "eventual-success faults must never degrade");
    let injected: u64 = report.per_replica.iter().map(|r| r.faults.total_faults()).sum();
    assert!(injected > 0, "the chaos replica must actually inject faults");
    assert!(report.per_replica[1].faults.total_faults() > 0, "replica 1 carries the chaos profile");
}

#[test]
fn full_pool_outage_serves_everything_as_passthrough() {
    let profiles = vec![FaultProfile::outage(); 3];
    let (responses, report_json) = run_gateway(config_with(profiles, 0.2));
    let requests = workload();
    assert_eq!(responses.len(), requests.len());
    for (request, response) in requests.iter().zip(&responses) {
        assert_eq!(
            response,
            &NoOptimizer.optimize(&request.prompt),
            "a dead pool must serve the bare prompt, never an error"
        );
    }
    let report: pas::gateway::GatewayReport =
        serde_json::from_str(&report_json).expect("report round-trips");
    assert_eq!(report.completed, report.requests, "every request must be answered");
    assert!(report.degraded > 0, "a dead pool degrades batched requests");
    assert_eq!(report.exact_hits + report.near_hits, 0, "degraded results must never be cached");
    assert!(report.per_replica.iter().all(|r| r.served == 0));
}

#[test]
fn near_tier_is_tau_gated_and_capacity_is_enforced() {
    let (_, exact_json) = run_gateway(config_with(Vec::new(), 0.0));
    let exact: pas::gateway::GatewayReport = serde_json::from_str(&exact_json).unwrap();
    assert_eq!(exact.near_hits, 0, "τ=0 must keep the near tier off");
    assert!(exact.exact_hits > 0, "the Zipf head must repeat verbatim");

    let (_, near_json) = run_gateway(config_with(Vec::new(), 0.25));
    let near: pas::gateway::GatewayReport = serde_json::from_str(&near_json).unwrap();
    assert!(near.near_hits > 0, "τ=0.25 must catch workload near-duplicates");
    assert!(near.hit_rate() > exact.hit_rate(), "the near tier must add hits");

    let tiny = GatewayConfig {
        cache: SemanticCacheConfig { capacity: 4, tau: 0.25, ..SemanticCacheConfig::default() },
        ..config_with(Vec::new(), 0.25)
    };
    let (_, tiny_json) = run_gateway(tiny);
    let tiny: pas::gateway::GatewayReport = serde_json::from_str(&tiny_json).unwrap();
    assert!(tiny.evictions > 0, "capacity 4 must churn under a 60-prompt universe");
}

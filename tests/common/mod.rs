//! Shared helpers for the root integration tests. Not a test target
//! itself — each `tests/*.rs` binary pulls this in with `mod common;`.

pub mod seed_sweep;

//! Seed-sweep assertion helper for statistically tight claims.
//!
//! A win-rate comparison on one seeded suite draw is a sample, not a
//! theorem: a single unlucky evaluation seed can flip a true effect under
//! the asserted margin and make the test flaky without any code being
//! wrong. The honest phrasing is distributional — *the margin holds on
//! most environment seeds* — which is what [`assert_margin_on_most`]
//! checks: it evaluates the margin under every seed in the sweep and
//! requires at least `k` of them to clear the threshold, printing every
//! per-seed margin on failure so a genuine regression is easy to read off.

/// Evaluates `margin(seed)` for every seed in `seeds` and asserts the
/// result exceeds `min_margin` on at least `k` of them.
///
/// `name` labels the claim in the failure message. Panics (test failure)
/// listing every `(seed, margin)` pair when fewer than `k` seeds pass.
pub fn assert_margin_on_most(
    name: &str,
    seeds: &[u64],
    min_margin: f64,
    k: usize,
    mut margin: impl FnMut(u64) -> f64,
) {
    assert!(k >= 1 && k <= seeds.len(), "need 1 <= k <= {} seeds, got k = {k}", seeds.len());
    let margins: Vec<(u64, f64)> = seeds.iter().map(|&s| (s, margin(s))).collect();
    let passing = margins.iter().filter(|(_, m)| *m > min_margin).count();
    assert!(
        passing >= k,
        "{name}: margin > {min_margin} on only {passing}/{} env seeds (need {k}); \
         per-seed margins: {margins:?}",
        seeds.len(),
    );
}

//! End-to-end integration: corpus → selection → Algorithm 1 → SFT → eval.
//!
//! These tests span every crate in the workspace through the public facade.

mod common;

use pas::core::{NoOptimizer, PasSystem, SystemConfig};
use pas::data::CorpusConfig;
use pas::eval::harness::evaluate_suite;
use pas::eval::judge::Judge;
use pas::eval::suite::{EvalEnv, EvalEnvConfig};
use pas::llm::SimLlm;

fn small_system(seed: u64) -> PasSystem {
    PasSystem::build(&SystemConfig {
        corpus: CorpusConfig { size: 1400, seed, ..CorpusConfig::default() },
        ..SystemConfig::default()
    })
}

#[test]
fn trained_pas_improves_a_mid_tier_model() {
    // The claim is statistical, so it is asserted as a seed sweep rather
    // than on one lucky draw (see tests/common/seed_sweep.rs): PAS must
    // improve the win rate on *every* evaluation-environment seed, and by
    // more than 2 points on a majority of them.
    let system = small_system(42);
    let judge = Judge::default();
    let seeds = [0x11, 0x12, 0x13, 0x14, 0x15];
    let margin = |seed| {
        let env = EvalEnv::build(&EvalEnvConfig { arena_items: 120, alpaca_items: 40, seed });
        let model = SimLlm::named("gpt-4-0613", env.world.clone());
        let reference = SimLlm::named("reference-arena", env.world.clone());
        let baseline = evaluate_suite(&model, &NoOptimizer, &env.arena, &reference, &judge);
        let with_pas = evaluate_suite(&model, &system.pas, &env.arena, &reference, &judge);
        with_pas.win_rate - baseline.win_rate
    };
    common::seed_sweep::assert_margin_on_most(
        "PAS improves over no-optimizer on Arena-Hard (gpt-4-0613)",
        &seeds,
        0.0,
        seeds.len(),
        margin,
    );
    common::seed_sweep::assert_margin_on_most(
        "PAS beats no-optimizer by > 2 points on Arena-Hard (gpt-4-0613)",
        &seeds,
        2.0,
        3,
        margin,
    );
}

#[test]
fn pipeline_stages_are_consistent() {
    let system = small_system(7);
    // Dataset size equals the count of prompts that survived selection.
    assert_eq!(system.dataset.len(), system.selection_report.after_quality);
    assert_eq!(system.dataset.len(), system.generation_report.generated);
    // Selection must have removed duplicates and junk.
    assert!(system.selection_report.after_dedup < system.selection_report.input);
    assert!(system.selection_report.after_quality < system.selection_report.after_dedup);
    // Curated data is essentially flaw-free.
    assert!(system.generation_report.residual_flaw_rate() < 0.02);
    // The trained model knows its dataset size.
    assert_eq!(system.pas.trained_pairs(), system.dataset.len());
}

#[test]
fn category_distribution_matches_figure6_shape() {
    use pas::data::DatasetStats;
    use pas::llm::Category;
    let system = small_system(3);
    let stats = DatasetStats::compute(&system.dataset);
    // Q&A and Coding dominate, as in the paper's Figure 6.
    assert!(stats.share(Category::QuestionAnswering) >= stats.share(Category::Chitchat));
    assert!(stats.share(Category::Coding) >= stats.share(Category::Brainstorming));
    // Broad coverage: at least 10 of 14 categories are populated.
    let populated = stats.per_category.iter().filter(|&&n| n > 0).count();
    assert!(populated >= 10, "only {populated} categories populated");
}

#[test]
fn complements_never_rewrite_the_prompt() {
    use pas::core::PromptOptimizer;
    let system = small_system(9);
    for prompt in [
        "How do I sort a million integers with limited memory?",
        "Write a poem about the autumn moon for my grandmother.",
        "请翻译这句话",
    ] {
        let out = system.pas.optimize(prompt);
        assert!(out.starts_with(prompt), "PAS complements, never rewrites: {out:?}");
    }
}

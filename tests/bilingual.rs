//! Bilingual integration: the critic's language-consistency rule (Figure 5,
//! criterion 5) must hold end to end — Chinese prompts get Chinese
//! complements from the teacher and from the trained PAS, and Chinese
//! responses are judged by the same machinery.

use pas::core::{PasSystem, SystemConfig};
use pas::data::CorpusConfig;
use pas::eval::judge::assess;
use pas::llm::world::detect_aspects;
use pas::llm::{ChatModel, Critic, SimLlm};
use pas::text::lang::{detect_language, Language};

use std::sync::OnceLock;

fn system() -> &'static PasSystem {
    static SYS: OnceLock<PasSystem> = OnceLock::new();
    SYS.get_or_init(|| {
        PasSystem::build(&SystemConfig {
            corpus: CorpusConfig {
                size: 2000,
                seed: 33,
                zh_rate: 0.25, // over-sample Chinese for this test
                ..CorpusConfig::default()
            },
            ..SystemConfig::default()
        })
    })
}

#[test]
fn dataset_contains_language_consistent_chinese_pairs() {
    let system = system();
    let critic = Critic::default();
    let zh_pairs: Vec<_> = system
        .dataset
        .pairs
        .iter()
        .filter(|p| detect_language(&p.prompt) == Language::Chinese)
        .collect();
    assert!(zh_pairs.len() > 50, "only {} Chinese pairs", zh_pairs.len());
    for pair in &zh_pairs {
        assert_eq!(
            detect_language(&pair.complement),
            Language::Chinese,
            "complement switched language: {:?}",
            pair.complement
        );
        assert!(critic.is_correct_pair(&pair.prompt, &pair.complement));
        assert!(!detect_aspects(&pair.complement).is_empty());
    }
}

#[test]
fn trained_pas_augments_chinese_prompts_in_chinese() {
    let system = system();
    let mut zh_outputs = 0;
    let mut zh_total = 0;
    for pair in system
        .dataset
        .pairs
        .iter()
        .filter(|p| detect_language(&p.prompt) == Language::Chinese)
        .take(40)
    {
        zh_total += 1;
        let complement = system.pas.augment(&pair.prompt);
        if detect_language(&complement) == Language::Chinese {
            zh_outputs += 1;
        }
    }
    assert!(zh_total > 10, "not enough zh prompts sampled");
    assert_eq!(zh_outputs, zh_total, "PAS must answer Chinese prompts in Chinese");
}

#[test]
fn chinese_responses_are_judged_like_english_ones() {
    let system = system();
    let model = SimLlm::named("qwen2-72b-chat", system.world.clone());
    let zh_record = system
        .dataset
        .pairs
        .iter()
        .find(|p| detect_language(&p.prompt) == Language::Chinese)
        .expect("a Chinese pair exists");
    let meta = system.world.lookup(&zh_record.prompt).expect("registered").clone();

    let plain = model.chat(&zh_record.prompt);
    assert_eq!(detect_language(&plain), Language::Chinese, "response: {plain}");
    let q = assess(&meta, &plain);
    assert!(q.polish > 0.0, "polish must be read from Chinese text");
    assert!(q.relevance > 0.5, "topic must be read from Chinese text");

    // Augmentation still moves coverage in aggregate for zh prompts.
    let mut plain_cov = 0.0f32;
    let mut aug_cov = 0.0f32;
    let mut n = 0;
    for pair in system
        .dataset
        .pairs
        .iter()
        .filter(|p| detect_language(&p.prompt) == Language::Chinese)
        .take(60)
    {
        let Some(meta) = system.world.lookup(&pair.prompt) else { continue };
        n += 1;
        plain_cov += assess(meta, &model.chat(&pair.prompt)).coverage;
        let augmented = format!("{} {}", pair.prompt, pair.complement);
        aug_cov += assess(meta, &model.chat(&augmented)).coverage;
    }
    assert!(n > 10);
    assert!(
        aug_cov > plain_cov,
        "zh augmentation must raise coverage: {aug_cov} vs {plain_cov} over {n}"
    );
}

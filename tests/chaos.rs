//! The fault-tolerance contract, enforced end-to-end (DESIGN.md §7):
//!
//! 1. **Fault invisibility** — any fault schedule with eventual success
//!    produces a dataset, reports, and trained model bit-identical to the
//!    fault-free run, at `--threads 1` and `--threads 8` alike.
//! 2. **Kill-and-resume** — a run killed mid-generation or mid-SFT and
//!    resumed from its checkpoint journal (even with a torn final line)
//!    finishes bit-identically to an uninterrupted run.
//! 3. **Graceful degradation** — a permanent `M_p` outage at serve time
//!    degrades to passthrough (the bare prompt) with every degradation
//!    counted; it never fails a request.
//! 4. **Per-lane cluster chaos** (DESIGN.md §15) — fault sweeps aimed at a
//!    single cluster traffic lane: duplicated replication messages are
//!    idempotent (identical responses and cache contents to the clean
//!    run), and dropped gossip heartbeats only *delay* failure-detector
//!    convergence — the settled views still match ground truth exactly.
//!
//! Properties 1–2 live in one test function because the thread count is
//! process-global and the harness runs tests concurrently (same pattern as
//! `tests/parallel_determinism.rs`).

use std::path::PathBuf;
use std::sync::Arc;

use pas::ann::HnswConfig;
use pas::core::{
    BuildOptions, DegradingServer, NoOptimizer, Pas, PasConfig, PasSystem, SystemConfig,
};
use pas::data::{Corpus, CorpusConfig, GenConfig, Generator, SelectionConfig, SelectionPipeline};
use pas::eval::harness::evaluate_suite;
use pas::eval::judge::Judge;
use pas::eval::suite::{EvalEnv, EvalEnvConfig};
use pas::fault::{DiskFaults, FaultConfig, FaultProfile, Journal};
use pas::llm::SimLlm;
use pas::store::{RecordMeta, StoreConfig, VectorStore, VectorStoreConfig};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pas-chaos-{}-{name}.jsonl", std::process::id()))
}

fn small_config(fault_profile: FaultProfile) -> SystemConfig {
    SystemConfig {
        corpus: CorpusConfig { size: 350, seed: 11, ..CorpusConfig::default() },
        selection: SelectionConfig { labeled_size: 500, ..SelectionConfig::default() },
        generation: GenConfig {
            fault: FaultConfig { profile: fault_profile, ..FaultConfig::default() },
            ..GenConfig::default()
        },
        pas: PasConfig::default(),
    }
}

/// Everything a build run produces, flattened to comparable bits.
#[derive(Debug, PartialEq)]
struct BuildOutcome {
    pairs: Vec<(String, String)>,
    generation_report: String,
    sft_loss: u32,
    model_json: String,
}

fn build_outcome(profile: FaultProfile, threads: usize) -> (BuildOutcome, pas::fault::FaultReport) {
    pas_par::with_threads(threads, || {
        let system = PasSystem::try_build(&small_config(profile), &BuildOptions::default())
            .expect("eventual-success profiles must never fail the build");
        let outcome = BuildOutcome {
            pairs: system
                .dataset
                .pairs
                .iter()
                .map(|p| (p.prompt.clone(), p.complement.clone()))
                .collect(),
            generation_report: format!("{:?}", system.generation_report),
            sft_loss: system.sft_loss.to_bits(),
            model_json: serde_json::to_string(&system.pas).expect("model serializes"),
        };
        (outcome, system.fault_report)
    })
}

#[test]
fn eventual_success_faults_and_kills_are_invisible() {
    // ── Property 1: fault invisibility across thread counts ──────────────
    let (clean, clean_faults) = build_outcome(FaultProfile::none(), 1);
    let (chaos_serial, faults_serial) = build_outcome(FaultProfile::chaos(), 1);
    let (chaos_parallel, faults_parallel) = build_outcome(FaultProfile::chaos(), 8);

    assert!(clean_faults.is_clean(), "clean profile must inject nothing: {clean_faults:?}");
    assert!(faults_serial.total_faults() > 0, "chaos must actually inject faults");
    assert_eq!(faults_serial.failed, 0, "chaos (eventual success) must never fail a call");
    assert!(faults_serial.retries > 0, "absorbed faults imply retries");
    assert_eq!(
        faults_serial, faults_parallel,
        "the fault schedule itself must be thread-invariant"
    );
    assert_eq!(clean, chaos_serial, "a chaos build must be bit-identical to the clean build");
    assert_eq!(clean, chaos_parallel, "…at any thread count");
    assert!(clean.pairs.len() > 100, "degenerate pipeline: {} pairs", clean.pairs.len());

    // ── Property 2a: kill-and-resume for Algorithm 1 generation ──────────
    let config = small_config(FaultProfile::bursty());
    let corpus = Corpus::generate(&config.corpus);
    let world = Arc::new(corpus.world.clone());
    let (selected, _) = SelectionPipeline::new(config.selection.clone()).run(&corpus.records);
    let generator = Generator::new(config.generation.clone(), Arc::clone(&world));
    let fingerprint = PasSystem::config_fingerprint(&config);

    let (full_dataset, full_report, full_faults) =
        generator.try_run(&selected).expect("bursty profile eventually succeeds");

    // "Kill" a journaled run after 40% of the prompts: running the prefix
    // commits exactly the pairs a process dying at that point would have.
    let path = tmp("genpipe");
    let _ = std::fs::remove_file(&path);
    let killed_after = 2 * selected.len() / 5;
    {
        let journal = Journal::open(&path, fingerprint).expect("fresh journal opens");
        generator
            .try_run_journaled(&selected[..killed_after], Some(&journal))
            .expect("prefix run succeeds");
        assert_eq!(journal.len(), killed_after, "one committed entry per finished pair");
    }
    // A real crash can also tear the final line mid-write; the reopened
    // journal must drop it and recompute only that pair.
    {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        write!(file, "{{\"key\":\"pair:{killed_after}\",\"payl").unwrap();
    }
    let journal = Journal::open(&path, fingerprint).expect("journal survives a torn final line");
    assert_eq!(journal.preloaded(), killed_after, "torn line must be dropped, not kept");
    let (resumed_dataset, resumed_report, resumed_faults) =
        generator.try_run_journaled(&selected, Some(&journal)).expect("resumed run succeeds");
    assert_eq!(
        resumed_dataset.pairs, full_dataset.pairs,
        "resumed dataset must equal the uninterrupted one"
    );
    assert_eq!(resumed_report, full_report);
    assert_eq!(resumed_faults, full_faults, "replayed pairs must replay their fault accounting");
    let _ = std::fs::remove_file(&path);

    // ── Property 2b: kill-and-resume for SFT epochs ──────────────────────
    let pas_config = config.pas.clone();
    let (uninterrupted, full_loss) = Pas::sft(&pas_config, &full_dataset);

    let path = tmp("sft");
    let _ = std::fs::remove_file(&path);
    {
        // "Kill" after 5 of the configured epochs by training a 5-epoch run
        // against the same journal: it commits sft:1..=sft:5 and dies.
        let journal = Journal::open(&path, fingerprint).expect("fresh journal opens");
        let mut short = pas_config.clone();
        short.trainer.epochs = 5;
        Pas::sft_with_journal(&short, &full_dataset, Some(&journal)).expect("short run trains");
        assert_eq!(journal.len(), 5);
    }
    let journal = Journal::open(&path, fingerprint).expect("journal reopens");
    assert_eq!(journal.preloaded(), 5);
    let (resumed, resumed_loss) =
        Pas::sft_with_journal(&pas_config, &full_dataset, Some(&journal)).expect("resume trains");
    assert_eq!(
        serde_json::to_string(&resumed).unwrap(),
        serde_json::to_string(&uninterrupted).unwrap(),
        "SFT resumed from epoch 5 must reproduce the uninterrupted model bit-for-bit"
    );
    assert_eq!(resumed_loss.to_bits(), full_loss.to_bits());
    let _ = std::fs::remove_file(&path);
}

// ── Property 4: disk-fault crash-point sweep over the persistent store ──
//
// `pas-store` asks its `DiskFaults` handle for permission at every
// durability boundary (record appends, segment rolls, each compaction
// step, each snapshot step). The sweep below kills the store at *every*
// reachable boundary of a fixed workload and proves that a clean reopen
// recovers exactly the state after some prefix of the attempted ops —
// never a duplicate, never a ghost, never a torn frame — and that warm
// (snapshot + suffix replay) and cold (full replay) reopens are
// bit-identical and immediately usable.

/// One scripted store operation.
#[derive(Debug, Clone, Copy)]
enum StoreOp {
    Insert(u64),
    Remove(u64),
    Checkpoint,
}

/// Deterministic workload crossing every fault-point family: enough
/// inserts to roll segments (256-byte cap), enough removes to trigger a
/// compaction (`compact_min_dead: 4`), and checkpoints for the snapshot
/// path.
fn store_script() -> Vec<StoreOp> {
    let mut script = Vec::new();
    for seed in 0..12 {
        script.push(StoreOp::Insert(seed));
    }
    script.push(StoreOp::Checkpoint);
    for id in [0, 2, 4, 6, 8] {
        script.push(StoreOp::Remove(id));
    }
    for seed in 12..18 {
        script.push(StoreOp::Insert(seed));
    }
    script.push(StoreOp::Checkpoint);
    for id in [10, 12, 1] {
        script.push(StoreOp::Remove(id));
    }
    for seed in 18..22 {
        script.push(StoreOp::Insert(seed));
    }
    script
}

fn store_vector(seed: u64) -> Vec<f32> {
    (0..8).map(|i| (((seed * 31 + i * 7) as f32) * 0.13).sin()).collect()
}

fn store_meta(seed: u64) -> RecordMeta {
    RecordMeta {
        category: format!("cat{}", seed % 3),
        degraded: seed.is_multiple_of(5),
        stamp: seed,
        fields: vec![("v".to_string(), format!("payload-{seed}"))],
    }
}

fn store_config() -> VectorStoreConfig {
    VectorStoreConfig {
        store: StoreConfig {
            segment_max_bytes: 256,
            compact_min_dead: 4,
            ..StoreConfig::default()
        },
        hnsw: HnswConfig { m: 6, ef_construction: 24, seed: 0xc4a5 },
    }
}

fn apply_store_op(store: &mut VectorStore, op: StoreOp) -> std::io::Result<()> {
    match op {
        StoreOp::Insert(seed) => store.insert(store_vector(seed), store_meta(seed)).map(|_| ()),
        StoreOp::Remove(id) => store.remove(id).map(|_| ()),
        StoreOp::Checkpoint => store.checkpoint(),
    }
}

/// The store's logical state, flattened to comparable bits: sorted live
/// external ids with their exact vector bits and metadata.
type StoreState = Vec<(u64, Vec<u32>, String)>;

fn observe_store(store: &VectorStore) -> StoreState {
    store
        .live_ids()
        .into_iter()
        .map(|id| {
            (
                id,
                store
                    .vector(id)
                    .expect("live id has a vector")
                    .iter()
                    .map(|f| f.to_bits())
                    .collect(),
                format!("{:?}", store.meta(id).expect("live id has metadata")),
            )
        })
        .collect()
}

#[test]
fn disk_fault_sweep_recovers_a_consistent_prefix_at_every_crash_point() {
    let base = std::env::temp_dir().join(format!("pas-chaos-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let script = store_script();

    // Fault-free baseline: the expected logical state after every prefix
    // of the script. `states[k]` is the state once `k` ops completed.
    let mut states: Vec<StoreState> = Vec::with_capacity(script.len() + 1);
    {
        let dir = base.join("baseline");
        let mut store = VectorStore::open(&dir, store_config()).expect("baseline opens");
        states.push(observe_store(&store));
        for &op in &script {
            apply_store_op(&mut store, op).expect("baseline op succeeds");
            states.push(observe_store(&store));
        }
        // Non-vacuity: the workload really exercised every fault family.
        assert!(store.generation() > 0, "workload must trigger a compaction");
        assert_eq!(store.live_len(), 14, "22 inserts minus 8 removes survive");
    }

    // Sweep: kill the store at boundary 0, 1, 2, … until a run completes
    // without firing (the crash point lies beyond every boundary).
    let seed = 0xd00d;
    let probe = store_vector(777);
    let mut labels_hit = std::collections::BTreeSet::new();
    let mut crash_points = 0u64;
    for crash_at in 0..400u64 {
        let dir = base.join(format!("crash-{crash_at:03}"));
        let faults = DiskFaults::crash_at(seed, crash_at);
        let mut completed = 0usize;
        let mut open_failed = false;
        let mut failure: Option<String> = None;
        match VectorStore::open_with(&dir, store_config(), Some(faults), true) {
            Err(e) => {
                open_failed = true;
                failure = Some(e.to_string());
            }
            Ok(mut store) => {
                for &op in &script {
                    match apply_store_op(&mut store, op) {
                        Ok(()) => completed += 1,
                        Err(e) => {
                            failure = Some(e.to_string());
                            break;
                        }
                    }
                }
            }
        }
        let Some(message) = failure else {
            // No boundary left to kill: the sweep covered all of them.
            assert!(crash_at >= 40, "suspiciously few boundaries: {crash_at}");
            break;
        };
        crash_points += 1;
        assert!(message.contains("injected disk fault"), "crash {crash_at}: {message}");
        if let Some((_, tail)) = message.split_once('(') {
            if let Some((label, _)) = tail.split_once(')') {
                labels_hit.insert(label.to_string());
            }
        }

        // The process "died" mid-boundary. Reopen from whatever the crash
        // left on disk — cold (full replay) and warm (snapshot + suffix).
        let cold = VectorStore::open_cold(&dir, store_config())
            .unwrap_or_else(|e| panic!("cold reopen after crash {crash_at} ({message}): {e}"));
        let warm = VectorStore::open(&dir, store_config())
            .unwrap_or_else(|e| panic!("warm reopen after crash {crash_at} ({message}): {e}"));
        let got = observe_store(&cold);

        // No duplicate ids, regardless of which prefix was recovered.
        let ids: Vec<u64> = got.iter().map(|(id, _, _)| *id).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "duplicate ids after crash {crash_at}");

        // Prefix consistency: exactly the state after `completed` ops, or
        // after one more when the failing op's bytes all landed before the
        // crash (e.g. a failed flush). Anything else — a ghost surviving
        // its tombstone, a half-applied insert, a state from the future —
        // fails. A crash during open itself must recover the empty store.
        let next_ok = !open_failed && completed + 1 < states.len();
        let consistent = got == states[completed] || (next_ok && got == states[completed + 1]);
        assert!(
            consistent,
            "crash {crash_at} ({message}): recovered {} live ids, expected the state after \
             {completed}{} completed ops",
            got.len(),
            if next_ok { " or +1" } else { "" },
        );

        // Warm and cold reopens agree bit-for-bit, probes included.
        assert_eq!(got, observe_store(&warm), "warm/cold state diverged after crash {crash_at}");
        let cold_hits = cold.search(&probe, 5, 32);
        let warm_hits = warm.search(&probe, 5, 32);
        assert_eq!(cold_hits.len(), warm_hits.len());
        for (c, w) in cold_hits.iter().zip(&warm_hits) {
            assert_eq!(c.id, w.id, "warm/cold probe diverged after crash {crash_at}");
            assert_eq!(c.distance.to_bits(), w.distance.to_bits());
        }

        // The recovered store is fully usable: insert, search, checkpoint.
        let mut revived = warm;
        let fresh = 9_000 + crash_at;
        let ext = revived
            .insert(store_vector(fresh), store_meta(fresh))
            .unwrap_or_else(|e| panic!("insert after crash {crash_at}: {e}"));
        assert!(revived.contains(ext));
        assert!(!revived.search(&store_vector(fresh), 1, 32).is_empty());
        revived.checkpoint().unwrap_or_else(|e| panic!("checkpoint after crash {crash_at}: {e}"));
    }

    // Every fault-point family was actually swept.
    for label in [
        "append",
        "segment.roll",
        "compact.begin",
        "compact.write",
        "compact.rename",
        "compact.cleanup",
        "snapshot.write",
        "snapshot.rename",
    ] {
        assert!(labels_hit.contains(label), "sweep never crashed at {label}: {labels_hit:?}");
    }
    assert!(crash_points >= 40, "sweep must cover many boundaries, got {crash_points}");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn permanent_outage_degrades_to_passthrough_and_chaos_serving_is_exact() {
    let env = EvalEnv::build(&EvalEnvConfig { arena_items: 60, alpaca_items: 10, seed: 0x0a7 });
    let judge = Judge::default();
    let model = SimLlm::named("gpt-4-0613", env.world.clone());
    let reference = SimLlm::named(&env.arena.reference_model, env.world.clone());

    let system =
        PasSystem::try_build(&small_config(FaultProfile::none()), &BuildOptions::default())
            .expect("clean build succeeds");

    // A permanently unreachable M_p: serving must fall back to the bare
    // prompt for every request — bit-identical to running no optimizer at
    // all — and count each degradation rather than surface an error.
    let outage = FaultConfig { profile: FaultProfile::outage(), ..FaultConfig::default() };
    let down = DegradingServer::new(system.pas.clone(), &outage);
    let degraded_score = evaluate_suite(&model, &down, &env.arena, &reference, &judge);
    let baseline = evaluate_suite(&model, &NoOptimizer, &env.arena, &reference, &judge);
    assert_eq!(
        degraded_score.win_rate.to_bits(),
        baseline.win_rate.to_bits(),
        "degraded serving must equal the no-optimizer baseline: {} vs {}",
        degraded_score.win_rate,
        baseline.win_rate
    );
    let report = down.fault_report();
    assert_eq!(report.degraded as usize, degraded_score.items, "every request degrades");
    assert!(report.breaker_trips >= 1, "a hard outage must trip the circuit breaker");

    // A chaotic-but-recovering M_p: serving must be bit-identical to the
    // healthy optimizer, with zero degradations.
    let chaos = FaultConfig { profile: FaultProfile::chaos(), ..FaultConfig::default() };
    let flaky = DegradingServer::new(system.pas.clone(), &chaos);
    let flaky_score = evaluate_suite(&model, &flaky, &env.arena, &reference, &judge);
    let healthy_score = evaluate_suite(&model, &system.pas, &env.arena, &reference, &judge);
    assert_eq!(flaky_score.win_rate.to_bits(), healthy_score.win_rate.to_bits());
    let flaky_report = flaky.fault_report();
    assert_eq!(flaky_report.degraded, 0, "eventual-success faults must never degrade");
    assert!(flaky_report.total_faults() > 0, "chaos must actually inject at serve time");
    // Non-vacuity: the healthy optimizer really transforms prompts, so
    // "degraded == baseline" and "flaky == healthy" compare different paths.
    use pas::core::PromptOptimizer;
    let probe = &env.arena.items[0].prompt;
    assert_ne!(&system.pas.optimize(probe), probe, "PAS must augment, not pass through");
}

#[test]
fn transient_outage_trips_breaker_then_recovers() {
    use pas::core::PromptOptimizer;
    use pas::fault::{streams, RetryPolicy};
    use pas::text::fx_hash_str;

    // A toy optimizer with visible output, so recovery is observable.
    struct Suffix;
    impl PromptOptimizer for Suffix {
        fn name(&self) -> &str {
            "suffix"
        }
        fn optimize(&self, prompt: &str) -> String {
            format!("{prompt} [augmented]")
        }
        fn requires_human_labels(&self) -> bool {
            false
        }
        fn llm_agnostic(&self) -> bool {
            true
        }
        fn task_agnostic(&self) -> bool {
            true
        }
        fn training_pairs(&self) -> Option<usize> {
            None
        }
    }

    // A *transient* outage, as opposed to the permanent one above: 90%
    // per-attempt transient errors with failure runs up to 6 deep, far
    // beyond the 2-attempt retry budget below, so most calls fail outright
    // — while calls whose schedule clears attempt 0 model the backend
    // coming back and give the breaker's probes something to succeed on.
    let profile = FaultProfile {
        name: "flapping",
        transient_rate: 0.9,
        max_consecutive: 6,
        ..FaultProfile::none()
    };
    let policy = RetryPolicy {
        max_attempts: 2,
        breaker_threshold: 3,
        breaker_probe_interval: 4,
        ..RetryPolicy::default()
    };
    let fault = FaultConfig { profile, policy, ..FaultConfig::default() };
    let server = DegradingServer::new(Suffix, &fault);

    // Read the (pure) fault schedule to pick prompts by fate.
    let injector = fault.injector();
    let fails_outright =
        |p: &str| (0..2).all(|a| injector.check(streams::SERVE_MP, fx_hash_str(p), a).is_err());
    let clears_first = |p: &str| injector.check(streams::SERVE_MP, fx_hash_str(p), 0).is_ok();
    let candidates: Vec<String> = (0..200).map(|i| format!("serve request {i}")).collect();
    let failing: Vec<&String> = candidates.iter().filter(|p| fails_outright(p)).take(3).collect();
    assert_eq!(failing.len(), 3, "the schedule must fail some calls outright");
    let mut survivors = candidates.iter().filter(|p| clears_first(p));
    let recovery = survivors.next().expect("some call clears its first attempt");
    let after = survivors.next().expect("a second call clears its first attempt");

    // Outage phase: three consecutive exhausted calls serve passthrough
    // and the third trips the breaker.
    for p in &failing {
        assert_eq!(&server.optimize(p), *p, "an exhausted call must pass through");
        assert!(server.fault_report().failed > 0);
    }
    assert!(server.breaker_open(), "three consecutive call failures must trip the breaker");
    assert_eq!(server.degraded(), 3);

    // While open, requests shed fast (passthrough, no backend attempts)
    // until the scheduled probe slot comes around; the probe reaches the
    // recovered backend, succeeds, and closes the breaker (half-open →
    // closed), returning the exact augmented output mid-recovery.
    let mut shed = 0u64;
    loop {
        let out = server.optimize(recovery);
        if out == format!("{recovery} [augmented]") {
            break;
        }
        assert_eq!(&out, recovery, "while open, requests pass through");
        shed += 1;
        assert!(shed < 8, "the probe slot never arrived");
    }
    assert_eq!(shed, 3, "exactly probe_interval − 1 requests shed before the probe");
    assert!(!server.breaker_open(), "a successful probe must close the breaker");

    // Recovered phase: subsequent requests get exact augmentation again.
    assert_eq!(server.optimize(after), format!("{after} [augmented]"));
    assert_eq!(server.optimize(recovery), format!("{recovery} [augmented]"));
    let report = server.fault_report();
    assert_eq!(report.breaker_trips, 1);
    assert_eq!(report.breaker_fast_fails, shed);
    assert_eq!(server.degraded(), 3 + shed);
}

/// Replay-mode cache opens must survive disk faults fired *mid-replay*
/// (the read path: one boundary per segment open plus one per record).
/// Every crash point inside the replay window fails the open cleanly —
/// no partial cache escapes — and a clean reopen recovers the full
/// state. Closes the gap where only append/compact boundaries had fault
/// legs.
#[test]
fn cache_replay_open_survives_mid_replay_disk_faults() {
    use pas::embed::NgramEmbedder;
    use pas::gateway::{CacheOutcome, OpenMode, SemanticCache, SemanticCacheConfig};

    let dir = std::env::temp_dir().join(format!("pas-chaos-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = SemanticCacheConfig { capacity: 64, tau: 0.3, ..SemanticCacheConfig::default() };
    let entries: Vec<(String, String)> = (0..25)
        .map(|i| (format!("prompt {i} about thing {}", i % 7), format!("resp {i}")))
        .collect();

    // Seed the log, then kill (drop without checkpoint; appends flushed).
    let mut seeded =
        SemanticCache::open_from(config.clone(), NgramEmbedder::default(), &dir, OpenMode::Replay)
            .expect("seeding open");
    for (p, r) in &entries {
        seeded.insert(p, r);
    }
    assert!(seeded.store_error().is_none());
    drop(seeded);

    // Sweep every replay boundary: faults fired during the read path must
    // fail the open (no partially-replayed cache), after which a clean
    // reopen still recovers everything.
    let seed = 0x5eed;
    let mut fired = 0u64;
    loop {
        let faults = DiskFaults::crash_at(seed, fired);
        match SemanticCache::open_from_with(
            config.clone(),
            NgramEmbedder::default(),
            &dir,
            OpenMode::Replay,
            Some(faults),
        ) {
            Err(e) => {
                let message = e.to_string();
                assert!(
                    message.contains("injected disk fault"),
                    "crash {fired}: unexpected error {message}"
                );
                assert!(
                    message.contains("replay.segment") || message.contains("replay.record"),
                    "crash {fired}: fault outside the replay legs: {message}"
                );
                fired += 1;
            }
            // First crash point past the replay window: the open no
            // longer touches it. (Later write boundaries would, but this
            // cache is dropped unused.)
            Ok(_) => break,
        }
        assert!(fired < 200, "replay window implausibly large");
    }
    // One boundary per segment + one per replayed record: at least the
    // record count for 25 inserts (meta + vector records each).
    assert!(fired > 25, "expected the sweep to cover every record boundary, got {fired}");

    let mut clean =
        SemanticCache::open_from(config.clone(), NgramEmbedder::default(), &dir, OpenMode::Replay)
            .expect("clean reopen after fault sweep");
    for (p, r) in &entries {
        match clean.lookup(p) {
            CacheOutcome::ExactHit(got) => assert_eq!(&got, r),
            other => panic!("entry {p:?} lost after fault sweep: {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ── Property 4: per-lane cluster chaos ───────────────────────────────────

mod cluster_lanes {
    use pas::cluster::{fleet_workloads, Cluster, ClusterConfig, Membership, NodeStatus};
    use pas::core::PromptOptimizer;
    use pas::fault::{FaultProfile, MsgLane, NetFaultProfile};
    use pas::gateway::{GatewayConfig, WorkloadConfig};

    /// Pure, visible optimizer: served output differs from passthrough, so
    /// response comparisons catch any degradation divergence.
    struct Suffix;

    impl PromptOptimizer for Suffix {
        fn name(&self) -> &str {
            "suffix"
        }
        fn optimize(&self, prompt: &str) -> String {
            format!("{prompt} [augmented]")
        }
        fn requires_human_labels(&self) -> bool {
            false
        }
        fn llm_agnostic(&self) -> bool {
            true
        }
        fn task_agnostic(&self) -> bool {
            true
        }
    }

    fn quiet_gateway() -> GatewayConfig {
        let mut g = GatewayConfig::default();
        g.fault.profile = FaultProfile::none();
        g
    }

    fn lane_workloads(nodes: usize) -> Vec<Vec<pas::gateway::Request>> {
        let base = WorkloadConfig { requests: 150, universe: 40, ..WorkloadConfig::default() };
        fleet_workloads(&base, nodes)
    }

    /// Duplicating every message on the replication lane is invisible:
    /// versioned inserts make the second copy a no-op, so responses and
    /// final cache contents are byte-identical to the duplicate-free run.
    #[test]
    fn duplicated_replication_messages_are_idempotent() {
        let nodes = 4;
        let config = |net: NetFaultProfile| ClusterConfig {
            nodes,
            replication: 2,
            gateway: quiet_gateway(),
            net,
            ae_interval_ms: 20,
            quiet_ms: 400,
            ..ClusterConfig::default()
        };
        let workloads = lane_workloads(nodes);
        let run = |net| {
            let mut cluster = Cluster::new(config(net), |_, _| Suffix);
            let (responses, report) = cluster.run(&workloads);
            let entries: Vec<_> = (0..nodes as u32).map(|n| cluster.cache_entries(n)).collect();
            (responses, report, entries)
        };

        let clean = run(NetFaultProfile::none());
        let duppy = run(NetFaultProfile::none().with_lane(MsgLane::Replicate, 0.0, 0.6));

        assert_eq!(clean.1.errors(), 0);
        assert_eq!(duppy.1.errors(), 0);
        assert!(duppy.1.net_duplicates > 0, "the duplicate schedule must actually fire");
        assert!(duppy.1.repl_stale > 0, "duplicate replication copies must be counted as no-ops");
        // The lane chaos is invisible where it matters: reports differ
        // (net_duplicates, repl_stale), but served text and cache state
        // cannot.
        assert_eq!(clean.0, duppy.0, "duplicated replication must not change responses");
        assert_eq!(clean.2, duppy.2, "duplicated replication must not change cache contents");
    }

    /// Dropping 40% of gossip heartbeats delays suspicion and death
    /// verdicts but cannot corrupt them: after quiescence every live
    /// node's view matches scripted ground truth (the crashed node Dead,
    /// everyone else Alive), with zero false deaths along the way.
    #[test]
    fn dropped_heartbeats_only_delay_gossip_convergence() {
        let nodes = 4usize;
        let victim = 3u32;
        let interval = 20u64;
        let dead_rounds = 12u64;
        let config = |net: NetFaultProfile| ClusterConfig {
            nodes,
            replication: 2,
            gateway: quiet_gateway(),
            net,
            gossip_interval_ms: interval,
            gossip_suspect_rounds: 6,
            gossip_dead_rounds: dead_rounds,
            // Generous quiet window: drops stretch detection latency, so
            // give the lossy run room to reach the same settled verdicts.
            quiet_ms: interval * (dead_rounds + 20),
            script: vec![(300, Membership::Crash(victim))],
            ..ClusterConfig::default()
        };
        let workloads = lane_workloads(nodes);
        let run = |net| {
            let mut cluster = Cluster::new(config(net), |_, _| Suffix);
            let (responses, report) = cluster.run(&workloads);
            let views: Vec<_> = (0..nodes as u32)
                .filter(|&n| cluster.is_live(n))
                .map(|n| cluster.membership_view(n))
                .collect();
            (responses, report, views)
        };

        let clean = run(NetFaultProfile::none());
        let droppy = run(NetFaultProfile::none().with_lane(MsgLane::Gossip, 0.4, 0.0));

        for (_, report, views) in [&clean, &droppy] {
            assert_eq!(report.errors(), 0);
            assert_eq!(report.crashes, 1);
            assert_eq!(report.gossip_false_deaths, 0, "drops must never fake a death");
            let truth: Vec<(u32, NodeStatus)> = (0..nodes as u32)
                .map(|n| (n, if n == victim { NodeStatus::Dead } else { NodeStatus::Alive }))
                .collect();
            for view in views {
                assert_eq!(view, &truth, "settled views must match scripted ground truth");
            }
        }
        assert!(droppy.1.net_drops > clean.1.net_drops, "the drop schedule must actually bite");
        // Delay, not divergence: the served text is identical either way.
        assert_eq!(clean.0, droppy.0, "gossip drops must not change responses");
    }
}

//! Golden-snapshot harness for the `pas-obs` observability layer.
//!
//! Two seeded scenarios — a Quick-scale pipeline run (corpus → selection →
//! Algorithm 1 → SFT → one evaluation) and a sharded gateway soak — are run
//! with metrics recording on, and their [`pas::obs::MetricsSnapshot`]s are
//! compared byte-for-byte against fixtures under `tests/snapshots/`. Each
//! scenario is also executed at 1 and 8 `pas_par` threads and must produce
//! the identical snapshot, and the soak's outputs are checked with metrics
//! off vs on (observability must be a pure observer).
//!
//! Regenerate fixtures after an intentional metrics change with:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test --test metrics_snapshot
//! ```
//!
//! A single `#[test]` function because both the thread count and the
//! metrics registry are process-global.

use std::path::{Path, PathBuf};

use pas::core::{PasSystem, PromptOptimizer, SystemConfig};
use pas::data::{CorpusConfig, SelectionConfig};
use pas::eval::harness::evaluate_suite;
use pas::eval::judge::Judge;
use pas::eval::suite::{EvalEnv, EvalEnvConfig};
use pas::gateway::{generate, Gateway, GatewayConfig, SemanticCacheConfig, WorkloadConfig};
use pas::llm::SimLlm;
use pas::obs::MetricsSnapshot;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/snapshots").join(name)
}

/// Compares `snapshot` with the named fixture byte-for-byte, or rewrites
/// the fixture when `UPDATE_SNAPSHOTS` is set.
fn check_fixture(name: &str, snapshot: &MetricsSnapshot) {
    let path = fixture_path(name);
    let json = snapshot.to_json();
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        snapshot.write_json(&path).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("updated fixture {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run UPDATE_SNAPSHOTS=1 cargo test --test metrics_snapshot",
            path.display()
        )
    });
    assert_eq!(
        expected.trim_end(),
        json,
        "snapshot {name} diverged from its fixture; if the metrics change is intentional, \
         regenerate with UPDATE_SNAPSHOTS=1"
    );
}

/// A visible toy optimizer so gateway responses are checkable.
struct Suffix;

impl PromptOptimizer for Suffix {
    fn name(&self) -> &str {
        "suffix"
    }
    fn optimize(&self, prompt: &str) -> String {
        format!("{prompt} [augmented]")
    }
    fn requires_human_labels(&self) -> bool {
        false
    }
    fn llm_agnostic(&self) -> bool {
        true
    }
    fn task_agnostic(&self) -> bool {
        true
    }
    fn training_pairs(&self) -> Option<usize> {
        None
    }
}

/// Seeded Quick-scale pipeline + one evaluation, returning the snapshot.
fn pipeline_snapshot(threads: usize) -> MetricsSnapshot {
    pas_par::with_threads(threads, || {
        pas::obs::reset();
        let system = PasSystem::build(&SystemConfig {
            corpus: CorpusConfig { size: 350, seed: 11, ..CorpusConfig::default() },
            selection: SelectionConfig { labeled_size: 500, ..SelectionConfig::default() },
            ..SystemConfig::default()
        });
        let env = EvalEnv::build(&EvalEnvConfig { arena_items: 60, alpaca_items: 10, seed: 0x7 });
        let judge = Judge::default();
        let model = SimLlm::named("gpt-4-0613", env.world.clone());
        let reference = SimLlm::named(&env.arena.reference_model, env.world.clone());
        let score = evaluate_suite(&model, &system.pas, &env.arena, &reference, &judge);
        assert!(score.items > 0);
        let snap = pas::obs::snapshot();
        pas::obs::reset();
        snap
    })
}

/// Seeded 2-shard gateway soak; per-shard snapshots folded with
/// [`MetricsSnapshot::merge`] — the sharded-collector path. Returns the
/// merged snapshot and every response.
fn soak_snapshot(threads: usize) -> (MetricsSnapshot, Vec<String>) {
    pas_par::with_threads(threads, || {
        pas::obs::reset();
        // A universe wide enough that each shard's cache accumulates more
        // than `PQ_TRAIN_MIN` live entries, so the PQ tier actually trains
        // and the fixture pins its probe/table counters (not the f32
        // fallback).
        let requests = generate(&WorkloadConfig {
            requests: 600,
            universe: 320,
            near_dup_rate: 0.2,
            seed: 0x90a7,
            ..WorkloadConfig::default()
        });
        let config = GatewayConfig {
            replicas: 2,
            cache: SemanticCacheConfig {
                // Tight tau so distinct universe prompts miss (and get
                // inserted) rather than near-hitting each other; the cache
                // then crosses the PQ training threshold within each shard.
                tau: 0.05,
                // PQ probe tier on: ADC distances are integer LUT sums and
                // training is seeded, so the snapshot stays byte-identical
                // across kernel backends and thread counts. This also pins
                // the lazy-training path (the cache starts on f32 probes and
                // flips to PQ once enough entries are live).
                pq: true,
                ..SemanticCacheConfig::default()
            },
            ..GatewayConfig::default()
        };
        let mut merged = MetricsSnapshot::default();
        let mut responses = Vec::new();
        for shard in requests.chunks(300) {
            let mut gateway = Gateway::new(config.clone(), vec![Suffix, Suffix]);
            let (shard_responses, report) = gateway.run(shard);
            assert_eq!(report.completed, report.requests);
            responses.extend(shard_responses);
            let snap = pas::obs::snapshot();
            pas::obs::reset();
            merged.merge(&snap);
        }
        (merged, responses)
    })
}

#[test]
fn metrics_snapshots_are_stable_across_threads_and_match_fixtures() {
    // Outputs with metrics off, as the observer-effect baseline.
    pas::obs::set_enabled(false);
    let (_, baseline_responses) = soak_snapshot(8);

    pas::obs::set_enabled(true);

    // Scenario 1: the pipeline. Identical snapshot at 1 and 8 threads,
    // matching the committed fixture byte-for-byte.
    let pipeline_serial = pipeline_snapshot(1);
    let pipeline_parallel = pipeline_snapshot(8);
    assert!(!pipeline_serial.is_empty(), "instrumented pipeline must record metrics");
    assert_eq!(
        pipeline_serial.to_json(),
        pipeline_parallel.to_json(),
        "pipeline snapshot diverged across thread counts"
    );
    check_fixture("pipeline_quick.json", &pipeline_serial);

    // Scenario 2: the sharded gateway soak.
    let (soak_serial, responses_serial) = soak_snapshot(1);
    let (soak_parallel, responses_parallel) = soak_snapshot(8);
    assert_eq!(
        soak_serial.to_json(),
        soak_parallel.to_json(),
        "soak snapshot diverged across thread counts"
    );
    assert_eq!(responses_serial, responses_parallel);
    assert_eq!(
        responses_serial, baseline_responses,
        "metrics recording must not perturb gateway responses"
    );
    check_fixture("gateway_soak.json", &soak_serial);

    // Spot-check the merged soak content: both shards' requests counted,
    // every request completed, and the latency histogram saw all of them.
    assert_eq!(soak_serial.counter("gateway.requests"), 600);
    assert_eq!(soak_serial.counter("gateway.completed"), 600);
    let latency = &soak_serial.histograms["gateway.latency_ms"];
    assert_eq!(latency.count, 600);

    pas::obs::set_enabled(false);
    pas::obs::reset();
}

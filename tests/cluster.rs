//! The cluster contract, enforced end-to-end (DESIGN.md §14):
//!
//! 1. **Bit-reproducible fleet soaks** — the same fleet seed produces
//!    identical per-node responses and an identical `ClusterReport`
//!    (compared as serialized JSON) at `--threads 1` and `--threads 8`,
//!    including under a lossy network, replica chaos, and a scripted
//!    partition+heal with membership churn.
//! 2. **Zero-error degradation** — a full partition isolating a node,
//!    later healed, completes every request in the run: hedges cover slow
//!    links, rescues cover unreachable candidate sets, and the report's
//!    `errors()` stays 0.
//! 3. **Hedging** — under a lossy wide-area profile, backup probes fire
//!    and some of them win.
//! 4. **Decorrelated per-node workloads** — node workloads derived from
//!    one fleet seed differ from N copies of the same stream, while the
//!    fleet report stays thread-invariant (satellite: seeding).
//! 5. **Hand-off equivalence** — rebalancing through real `pas-store`
//!    segment logs produces bit-identical responses, report, and cache
//!    occupancy to the in-memory hand-off path.
//! 6. **Round-2 replication plane** (DESIGN.md §15) — a soak with write
//!    fanout, anti-entropy, gossip failure detection, and a hard crash
//!    stays bit-identical across thread counts while all three planes
//!    actually carry traffic.
//! 7. **Replica warmth** — after a primary crashes, the keys it owned are
//!    served warm by their new owners because write-fanout pre-installed
//!    them: the new-owner hit rate clears a pinned floor and beats the
//!    fanout-off cold baseline ≥5x.
//!
//! Thread-dependent assertions share one test function because the
//! `pas_par` thread count is process-global and the harness runs tests
//! concurrently (same pattern as `tests/gateway.rs`).

use pas::cluster::{fleet_workloads, hrw, Cluster, ClusterConfig, ClusterReport, Membership};
use pas::core::PromptOptimizer;
use pas::fault::{FaultProfile, NetFaultProfile};
use pas::gateway::{GatewayConfig, Request, WorkloadConfig};

/// A toy deterministic optimizer with visible, prompt-derived output.
struct Suffix;

impl PromptOptimizer for Suffix {
    fn name(&self) -> &str {
        "suffix"
    }
    fn optimize(&self, prompt: &str) -> String {
        format!("{prompt} [augmented]")
    }
    fn requires_human_labels(&self) -> bool {
        false
    }
    fn llm_agnostic(&self) -> bool {
        true
    }
    fn task_agnostic(&self) -> bool {
        true
    }
}

fn base_workload() -> WorkloadConfig {
    WorkloadConfig { requests: 220, universe: 50, near_dup_rate: 0.2, ..WorkloadConfig::default() }
}

fn chaotic_gateway() -> GatewayConfig {
    GatewayConfig {
        replicas: 2,
        replica_profiles: vec![FaultProfile::none(), FaultProfile::chaos()],
        ..GatewayConfig::default()
    }
}

fn quiet_gateway() -> GatewayConfig {
    let mut g = GatewayConfig::default();
    g.fault.profile = FaultProfile::none();
    g
}

/// A 4-node fleet on a lossy network with replica chaos, a partition
/// isolating node 3 mid-run that later heals, and membership churn
/// (node 1 leaves, node 3's partition ends, node 1 rejoins).
fn churn_config() -> ClusterConfig {
    ClusterConfig {
        nodes: 4,
        replication: 2,
        gateway: chaotic_gateway(),
        net: NetFaultProfile::lossy().with_partition(300, 900, vec![3]),
        script: vec![(500, Membership::Leave(1)), (1100, Membership::Join(1))],
        ..ClusterConfig::default()
    }
}

fn run_cluster(
    config: ClusterConfig,
    workloads: &[Vec<Request>],
) -> (Vec<Vec<String>>, ClusterReport, String) {
    let mut cluster = Cluster::new(config, |_, _| Suffix);
    let (responses, report) = cluster.run(workloads);
    let json = serde_json::to_string(&report).expect("report serializes");
    (responses, report, json)
}

#[test]
fn fleet_soaks_are_bit_identical_across_thread_counts() {
    let workloads = fleet_workloads(&base_workload(), 4);

    let serial = pas_par::with_threads(1, || run_cluster(churn_config(), &workloads));
    let parallel = pas_par::with_threads(8, || run_cluster(churn_config(), &workloads));
    assert_eq!(serial.0, parallel.0, "responses must be thread-invariant");
    assert_eq!(serial.2, parallel.2, "folded fleet report must be thread-invariant");

    // Zero-error degradation through partition, heal, leave, and rejoin.
    let report = &serial.1;
    assert_eq!(report.errors(), 0, "partition+heal with churn must answer everything");
    assert_eq!(report.fleet.requests, 4 * 220);
    assert_eq!(report.fleet.completed, 4 * 220);
    assert!(report.net_cut > 0, "the partition window must actually cut traffic");
    assert!(report.net_drops > 0, "the lossy profile must actually drop messages");
    assert_eq!(report.rebalances, 2, "leave and rejoin each rebalance");
    assert!(report.rebalance_moved > 0);

    // Hedging under a lossy network: probes fire, and some win.
    assert!(report.hedges_fired > 0, "lossy links must trigger backup probes");
    assert!(report.hedges_won > 0, "some backup probes must win the race");

    // ── Round-2 leg: fanout + anti-entropy + gossip + a hard crash ──────
    // The full replication plane rides the same serial heap, so the soak
    // stays bit-identical at 1 and 8 threads while fanout, AE, and the
    // gossip detector all actually carry traffic.
    let round2 = || ClusterConfig {
        nodes: 4,
        replication: 2,
        gateway: chaotic_gateway(),
        net: NetFaultProfile::lossy().with_partition(300, 900, vec![3]),
        script: vec![(500, Membership::Leave(1)), (700, Membership::Crash(2))],
        ae_interval_ms: 20,
        gossip_interval_ms: 25,
        gossip_dead_rounds: 24,
        quiet_ms: 25 * 40,
        ..ClusterConfig::default()
    };
    let serial2 = pas_par::with_threads(1, || run_cluster(round2(), &workloads));
    let parallel2 = pas_par::with_threads(8, || run_cluster(round2(), &workloads));
    assert_eq!(serial2.0, parallel2.0, "round-2 responses must be thread-invariant");
    assert_eq!(serial2.2, parallel2.2, "round-2 fleet report must be thread-invariant");

    let report2 = &serial2.1;
    assert_eq!(report2.errors(), 0, "crash + partition + churn must answer everything");
    assert_eq!(report2.crashes, 1);
    assert!(report2.repl_sent > 0 && report2.repl_applied > 0, "fanout must install replicas");
    assert!(report2.ae_digests > 0, "anti-entropy sweeps must run");
    assert!(report2.gossip_heartbeats > 0, "the failure detector must gossip");
    assert!(report2.transfers_sent > 0, "the leave must hand off in-band");
}

/// Property 7: write-fanout pre-warms the runner-up replica of every key,
/// so when the primary crashes the new owner serves those keys from cache.
/// The same windows with fanout disabled give the cold baseline.
#[test]
fn write_fanout_keeps_new_owners_warm_after_a_primary_crash() {
    let full: Vec<u32> = (0..4).collect();
    let victim = 0u32;
    // Prompts the victim primaries, tagged with the runner-up candidate
    // that inherits them when the victim dies (HRW promotes the runner-up).
    let prompts: Vec<(String, u32)> = (0..)
        .map(|i| format!("prompt {i} about topic {}", i % 13))
        .filter_map(|p| {
            let cands = hrw::candidates(&p, &full, 2);
            (cands[0] == victim).then(|| (p.clone(), cands[1]))
        })
        .take(40)
        .collect();

    let probe_hit_rate = |fanout: bool| -> f64 {
        let config = ClusterConfig {
            nodes: 4,
            replication: 2,
            gateway: quiet_gateway(),
            repl_fanout: fanout,
            script: vec![(500, Membership::Crash(victim))],
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(config, |_, _| Suffix);

        // Window 1: every prompt arrives at the victim (its primary),
        // which installs it — and, with fanout on, pushes it to the
        // runner-up. The scripted crash fires after the traffic settles.
        let mut warm: Vec<Vec<Request>> = vec![Vec::new(); 4];
        for (i, (prompt, _)) in prompts.iter().enumerate() {
            warm[victim as usize].push(Request {
                id: i,
                arrival_ms: 10 * i as u64,
                prompt: prompt.clone(),
            });
        }
        let (_, warm_report) = cluster.run(&warm);
        assert_eq!(warm_report.errors(), 0);
        assert_eq!(warm_report.crashes, 1);
        assert!(!cluster.is_live(victim));

        // Window 2: each orphaned key arrives exactly once at its new
        // owner (the crash script re-fires as a no-op on the dead node).
        // The report covers this window alone, so its hit rate is the
        // new owners' warmth.
        let mut probes: Vec<Vec<Request>> = vec![Vec::new(); 4];
        for (i, (prompt, heir)) in prompts.iter().enumerate() {
            probes[*heir as usize].push(Request {
                id: i,
                arrival_ms: 3 * i as u64,
                prompt: prompt.clone(),
            });
        }
        let (_, probe_report) = cluster.run(&probes);
        assert_eq!(probe_report.errors(), 0);
        assert_eq!(probe_report.fleet.requests, prompts.len() as u64);
        probe_report.fleet.hit_rate()
    };

    let warm = probe_hit_rate(true);
    let cold = probe_hit_rate(false);
    assert!(warm >= 0.95, "fanout-warmed new owners must serve ≥95% from cache, got {warm:.3}");
    assert!(warm >= 5.0 * cold, "warm rate {warm:.3} must beat the cold baseline {cold:.3} ≥5x");
}

#[test]
fn per_node_workloads_are_decorrelated_but_reproducible() {
    let base = base_workload();
    let per_node = fleet_workloads(&base, 2);
    assert_ne!(per_node[0], per_node[1], "fleet workloads must not be N copies of one stream");
    // Node 0's derived stream also differs from the raw fleet-seed stream,
    // so a 1-node fleet is not secretly the old single-gateway workload.
    assert_ne!(per_node[0], pas::gateway::generate(&base));

    // And the derivation is pure: same fleet seed, same traffic.
    assert_eq!(per_node, fleet_workloads(&base, 2));
}

#[test]
fn store_handoff_matches_in_memory_handoff() {
    let dir = std::env::temp_dir().join(format!("pas-cluster-handoff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let workloads = fleet_workloads(&base_workload(), 3);
    let script = vec![(400, Membership::Leave(2)), (900, Membership::Join(2))];
    let config = |handoff| ClusterConfig {
        nodes: 3,
        gateway: GatewayConfig::default(),
        script: script.clone(),
        handoff_dir: handoff,
        ..ClusterConfig::default()
    };

    let in_memory = run_cluster(config(None), &workloads);
    let through_store = run_cluster(config(Some(dir.clone())), &workloads);
    assert_eq!(in_memory.0, through_store.0, "hand-off path must not change responses");
    assert_eq!(in_memory.2, through_store.2, "hand-off path must not change the report");
    assert!(through_store.1.rebalance_moved > 0, "the equivalence must cover real moves");
    assert!(
        std::fs::read_dir(&dir).map(|d| d.count() > 0).unwrap_or(false),
        "segment logs must actually have been written"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

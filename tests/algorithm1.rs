//! Invariants of the Algorithm 1 generation pipeline, exercised through the
//! public facade (integration-level: corpus + world + teacher + critic).

use std::sync::Arc;

use pas::data::{Corpus, CorpusConfig, GenConfig, Generator, SelectionConfig, SelectionPipeline};
use pas::llm::{Critic, TeacherConfig};

fn selected(size: usize, seed: u64) -> (Vec<pas::data::SelectedPrompt>, Arc<pas::llm::World>) {
    let corpus = Corpus::generate(&CorpusConfig { size, seed, ..CorpusConfig::default() });
    let world = Arc::new(corpus.world.clone());
    let (sel, _) =
        SelectionPipeline::new(SelectionConfig { labeled_size: 600, ..SelectionConfig::default() })
            .run(&corpus.records);
    (sel, world)
}

#[test]
fn every_emitted_pair_passes_the_critic_when_selection_is_on() {
    let (sel, world) = selected(700, 1);
    let (dataset, report) = Generator::new(GenConfig::default(), world).run(&sel);
    let critic = Critic::default();
    for pair in &dataset.pairs {
        assert!(
            critic.is_correct_pair(&pair.prompt, &pair.complement),
            "pair escaped the selection phase: {:?}",
            pair.complement
        );
    }
    // The loop terminated without exhausting retries on virtually all pairs.
    assert!(report.repairs <= dataset.len() / 50);
}

#[test]
fn selection_phase_is_what_removes_the_flaws() {
    let (sel, world) = selected(700, 2);
    let (_, with) = Generator::new(GenConfig::default(), Arc::clone(&world)).run(&sel);
    let (_, without) =
        Generator::new(GenConfig { selection_enabled: false, ..GenConfig::default() }, world)
            .run(&sel);
    assert!(with.residual_flaw_rate() < 0.02, "curated: {}", with.residual_flaw_rate());
    assert!(without.residual_flaw_rate() > 0.08, "ablated: {}", without.residual_flaw_rate());
}

#[test]
fn a_sloppier_teacher_needs_more_regenerations() {
    let (sel, world) = selected(500, 3);
    let tidy = Generator::new(
        GenConfig {
            teacher: TeacherConfig { flaw_rate: 0.1, ..TeacherConfig::default() },
            ..GenConfig::default()
        },
        Arc::clone(&world),
    )
    .run(&sel)
    .1;
    let sloppy = Generator::new(
        GenConfig {
            teacher: TeacherConfig { flaw_rate: 0.6, ..TeacherConfig::default() },
            ..GenConfig::default()
        },
        world,
    )
    .run(&sel)
    .1;
    assert!(
        sloppy.regenerations > tidy.regenerations * 2,
        "sloppy {} vs tidy {}",
        sloppy.regenerations,
        tidy.regenerations
    );
}

#[test]
fn generated_complements_match_figure4_constraints() {
    // Figure 4: supplement only, methodology-focused, short.
    let (sel, world) = selected(500, 4);
    let (dataset, _) = Generator::new(GenConfig::default(), world).run(&sel);
    for pair in &dataset.pairs {
        let words = pair.complement.split_whitespace().count();
        assert!(words <= 45, "complement too long ({words} words): {:?}", pair.complement);
        assert!(
            !pas::llm::world::detect_aspects(&pair.complement).is_empty(),
            "complement requests nothing: {:?}",
            pair.complement
        );
    }
}

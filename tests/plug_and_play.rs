//! Plug-and-play properties: one trained PAS composes with every model and
//! survives serialization — the LLM-agnostic claim of Table 3.

use pas::core::{Pas, PasConfig, PasSystem, PromptOptimizer, SystemConfig};
use pas::data::CorpusConfig;
use pas::llm::{ChatModel, ModelProfile, ModelRegistry};

use std::sync::{Arc, OnceLock};

fn shared_system() -> &'static PasSystem {
    static SYS: OnceLock<PasSystem> = OnceLock::new();
    SYS.get_or_init(|| {
        PasSystem::build(&SystemConfig {
            corpus: CorpusConfig { size: 1200, seed: 21, ..CorpusConfig::default() },
            ..SystemConfig::default()
        })
    })
}

#[test]
fn one_pas_plugs_into_every_main_model() {
    let system = shared_system();
    let registry = ModelRegistry::new(Arc::clone(&system.world));
    let prompt = "Analyze renewable energy grid stability for a policy brief.";
    let augmented = system.pas.optimize(prompt);
    for model in registry.main_models() {
        let response = model.chat(&augmented);
        assert!(!response.is_empty(), "{} gave no response", model.name());
    }
}

#[test]
fn pas_composes_as_a_trait_object() {
    let system = shared_system();
    let optimizers: Vec<Box<dyn PromptOptimizer>> = vec![
        Box::new(system.pas.clone()),
        Box::new(pas::core::NoOptimizer),
        Box::new(pas::baselines::ZeroShotCot),
    ];
    for opt in &optimizers {
        let out = opt.optimize("a prompt");
        assert!(out.starts_with("a prompt"), "{}: {out:?}", opt.name());
    }
    // PAS is the only one that is simultaneously label-free and agnostic
    // on both axes.
    let fully_flexible: Vec<&str> = optimizers
        .iter()
        .filter(|o| !o.requires_human_labels() && o.llm_agnostic() && o.task_agnostic())
        .map(|o| o.name())
        .collect();
    assert!(fully_flexible.contains(&system.pas.name()));
}

#[test]
fn serialized_pas_behaves_identically() {
    let system = shared_system();
    let json = serde_json::to_string(&system.pas).expect("PAS serializes");
    let restored: Pas = serde_json::from_str(&json).expect("PAS deserializes");
    for i in 0..10 {
        let prompt = format!("How should I implement connection pooling variant {i}?");
        assert_eq!(system.pas.augment(&prompt), restored.augment(&prompt));
    }
}

#[test]
fn base_model_capability_orders_fidelity() {
    let system = shared_system();
    let strong = Pas::sft(
        &PasConfig { base_model: "qwen2-7b-chat".into(), ..PasConfig::default() },
        &system.dataset,
    )
    .0;
    let weak = Pas::sft(
        &PasConfig { base_model: "llama-2-7b-instruct".into(), ..PasConfig::default() },
        &system.dataset,
    )
    .0;
    assert!(strong.fidelity() > weak.fidelity());
    let strong_profile = ModelProfile::named("qwen2-7b-chat").unwrap();
    let weak_profile = ModelProfile::named("llama-2-7b-instruct").unwrap();
    assert!(strong_profile.capability > weak_profile.capability);
}

//! Seed-sweep home for the per-task generalization claim.
//!
//! The in-crate experiment test (`pas-eval`) only checks the comparison's
//! structure; the statistically tight claim — PAS beats the no-optimizer
//! baseline *out of task* — is asserted here across several evaluation-
//! environment seeds, because any single seeded suite draw can land under
//! the margin without anything being wrong.

mod common;

use pas::eval::experiments::{per_task_in_env, ExperimentContext, Scale};
use pas::eval::suite::{EvalEnv, EvalEnvConfig};
use pas::llm::Category;

#[test]
fn pas_generalizes_out_of_task_across_env_seeds() {
    // One expensive context build (trained PAS + baselines), then cheap
    // re-scores against independently seeded environment draws.
    let ctx = ExperimentContext::build(Scale::Quick, 1);
    common::seed_sweep::assert_margin_on_most(
        "PAS out-of-task vs no-optimizer (AlpacaEval split, gpt-4-0613)",
        &[0x21, 0x22, 0x23],
        0.0,
        2,
        |seed| {
            let env = EvalEnv::build(&EvalEnvConfig { arena_items: 120, alpaca_items: 150, seed });
            let result = per_task_in_env(&ctx, Category::Analysis, &env);
            let get = |n: &str| result.rows.iter().find(|r| r.method == n).expect("row");
            get("PAS").out_of_task - get("None").out_of_task
        },
    );
}

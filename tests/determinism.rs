//! Reproducibility: every pipeline stage and every reported number is a
//! pure function of its seed.

use pas::core::{PasSystem, SystemConfig};
use pas::data::CorpusConfig;
use pas::eval::experiments::{table1, ExperimentContext, Scale};

fn config(seed: u64) -> SystemConfig {
    SystemConfig {
        corpus: CorpusConfig { size: 900, seed, ..CorpusConfig::default() },
        ..SystemConfig::default()
    }
}

#[test]
fn same_seed_same_dataset_and_augmentations() {
    let a = PasSystem::build(&config(5));
    let b = PasSystem::build(&config(5));
    assert_eq!(a.dataset.pairs, b.dataset.pairs);
    for i in 0..10 {
        let p = format!("Evaluate migration strategy number {i} for the data warehouse.");
        assert_eq!(a.pas.augment(&p), b.pas.augment(&p));
    }
}

#[test]
fn different_seeds_differ() {
    let a = PasSystem::build(&config(5));
    let b = PasSystem::build(&config(6));
    assert_ne!(a.dataset.pairs, b.dataset.pairs);
}

#[test]
#[ignore = "slow: builds two full experiment contexts; run with --ignored"]
fn table1_is_reproducible() {
    let r1 = table1(&ExperimentContext::build(Scale::Quick, 11));
    let r2 = table1(&ExperimentContext::build(Scale::Quick, 11));
    for (a, b) in r1.pas.iter().zip(&r2.pas) {
        assert_eq!(a.arena, b.arena);
        assert_eq!(a.alpaca, b.alpaca);
        assert_eq!(a.alpaca_lc, b.alpaca_lc);
    }
}

//! The determinism contract of `pas-par`, enforced end-to-end: the full
//! corpus → selection → Algorithm 1 → SFT → evaluation path produces
//! bit-identical datasets, reports, and win rates at `--threads 1` and
//! `--threads 8`.
//!
//! A single test function (not one per stage) because the thread count is
//! process-global and the harness runs tests concurrently.

use pas::ann::{CosineDistance, Hnsw, HnswConfig};
use pas::core::{NoOptimizer, PasSystem, SystemConfig};
use pas::data::CorpusConfig;
use pas::eval::harness::evaluate_suite;
use pas::eval::judge::Judge;
use pas::eval::suite::{EvalEnv, EvalEnvConfig};
use pas::llm::SimLlm;

/// Everything downstream code consumes, captured at one thread count.
#[derive(Debug, PartialEq)]
struct Outcome {
    dataset: Vec<(String, String)>,
    selection_report: String,
    generation_report: String,
    baseline_win_rate: f64,
    pas_win_rate: f64,
}

fn run(threads: usize) -> Outcome {
    pas_par::with_threads(threads, || {
        let system = PasSystem::build(&SystemConfig {
            corpus: CorpusConfig { size: 1200, seed: 13, ..CorpusConfig::default() },
            ..SystemConfig::default()
        });
        let env = EvalEnv::build(&EvalEnvConfig { arena_items: 100, alpaca_items: 30, seed: 0x51 });
        let judge = Judge::default();
        let model = SimLlm::named("gpt-4-0613", env.world.clone());
        let reference = SimLlm::named(&env.arena.reference_model, env.world.clone());
        Outcome {
            dataset: system
                .dataset
                .pairs
                .iter()
                .map(|p| (p.prompt.clone(), p.complement.clone()))
                .collect(),
            selection_report: format!("{:?}", system.selection_report),
            generation_report: format!("{:?}", system.generation_report),
            baseline_win_rate: evaluate_suite(&model, &NoOptimizer, &env.arena, &reference, &judge)
                .win_rate,
            pas_win_rate: evaluate_suite(&model, &system.pas, &env.arena, &reference, &judge)
                .win_rate,
        }
    })
}

#[test]
fn full_pipeline_is_identical_at_1_and_8_threads() {
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.dataset.len(), parallel.dataset.len());
    for (i, (s, p)) in serial.dataset.iter().zip(&parallel.dataset).enumerate() {
        assert_eq!(s, p, "dataset pair {i} diverged across thread counts");
    }
    assert_eq!(serial.selection_report, parallel.selection_report);
    assert_eq!(serial.generation_report, parallel.generation_report);
    assert_eq!(
        serial.baseline_win_rate.to_bits(),
        parallel.baseline_win_rate.to_bits(),
        "baseline win rate: {} vs {}",
        serial.baseline_win_rate,
        parallel.baseline_win_rate
    );
    assert_eq!(
        serial.pas_win_rate.to_bits(),
        parallel.pas_win_rate.to_bits(),
        "PAS win rate: {} vs {}",
        serial.pas_win_rate,
        parallel.pas_win_rate
    );
    // Sanity: the run did real work, not a degenerate empty pipeline.
    assert!(serial.dataset.len() > 100, "dataset {}", serial.dataset.len());
    assert!(serial.pas_win_rate > serial.baseline_win_rate);

    // The pre-normalized vector store keeps the contract too: a cosine HNSW
    // batch build stores unit vectors + norms, and the entire store (graph,
    // prepared vectors, norms) plus probe results are bit-identical at any
    // thread count. (Same function, not a separate #[test]: the thread
    // count is process-global and the harness runs tests concurrently.)
    let vectors: Vec<Vec<f32>> = (0..300)
        .map(|i| {
            let x = i as f32 * 0.173;
            // Deliberately unnormalized: lengths vary by ~6x, so the store
            // must do real normalization work at insert.
            vec![x.sin() * 3.0, x.cos(), (x * 0.7).sin() + 0.5, (x * 1.9).cos() * 2.0]
        })
        .collect();
    let build = |threads: usize| {
        pas_par::with_threads(threads, || {
            let mut idx = Hnsw::new(HnswConfig::default(), CosineDistance);
            idx.build_batch(vectors.clone());
            let snapshot = serde_json::to_string(&idx.snapshot()).expect("snapshot json");
            let norms: Vec<u32> = (0..idx.len()).map(|id| idx.norm(id).to_bits()).collect();
            let probes: Vec<Vec<(usize, u32)>> = vectors
                .iter()
                .step_by(13)
                .map(|q| {
                    idx.search(q, 5, 48).into_iter().map(|n| (n.id, n.distance.to_bits())).collect()
                })
                .collect();
            // The int8 probe tier and the lock-step batched probes obey the
            // same contract: quantized re-ranked results and `search_batch`
            // results are bit-identical at any thread count.
            let mut quant = Hnsw::new(HnswConfig::default(), CosineDistance);
            quant.set_quantization(true);
            quant.build_batch(vectors.clone());
            let quant_probes: Vec<Vec<(usize, u32)>> = vectors
                .iter()
                .step_by(13)
                .map(|q| {
                    quant
                        .search(q, 5, 48)
                        .into_iter()
                        .map(|n| (n.id, n.distance.to_bits()))
                        .collect()
                })
                .collect();
            // The PQ tier too: seeded codebook training, integer ADC probes,
            // and the exact re-rank are all bit-identical at any thread
            // count (training k-means fans out per subspace via pas_par).
            let mut pq = Hnsw::new(HnswConfig::default(), CosineDistance);
            pq.set_product_quantization(true);
            pq.build_batch(vectors.clone());
            assert!(pq.probe_bytes_per_vector() < 4, "PQ tier must have trained");
            let pq_probes: Vec<Vec<(usize, u32)>> = vectors
                .iter()
                .step_by(13)
                .map(|q| {
                    pq.search(q, 5, 48).into_iter().map(|n| (n.id, n.distance.to_bits())).collect()
                })
                .collect();
            let queries: Vec<Vec<f32>> = vectors.iter().step_by(29).cloned().collect();
            let batched: Vec<Vec<(usize, u32)>> = idx
                .search_batch(&queries, 5, 48)
                .into_iter()
                .map(|r| r.into_iter().map(|n| (n.id, n.distance.to_bits())).collect())
                .collect();
            let pq_batched: Vec<Vec<(usize, u32)>> = pq
                .search_batch(&queries, 5, 48)
                .into_iter()
                .map(|r| r.into_iter().map(|n| (n.id, n.distance.to_bits())).collect())
                .collect();
            (snapshot, norms, probes, quant_probes, batched, pq_probes, pq_batched)
        })
    };
    let store_serial = build(1);
    assert_eq!(build(8), store_serial, "normalized store diverged across thread counts");

    // Observability must be a pure observer. Re-running the identical
    // pipeline with every counter, gauge, histogram, and span recording
    // must not perturb a single output bit relative to the metrics-off
    // runs above — and the metrics themselves must come back bit-identical
    // at 1 and 8 threads. (Same function again: both the thread count and
    // the metrics registry are process-global.)
    pas::obs::set_enabled(true);
    pas::obs::reset();
    let observed_parallel = run(8);
    let metrics_parallel = pas::obs::snapshot();
    pas::obs::reset();
    let observed_serial = run(1);
    let metrics_serial = pas::obs::snapshot();
    pas::obs::reset();
    pas::obs::set_enabled(false);
    assert_eq!(observed_serial, serial, "enabling metrics must not perturb serial outputs");
    assert_eq!(observed_parallel, serial, "enabling metrics must not perturb parallel outputs");
    assert!(!metrics_serial.is_empty(), "an instrumented pipeline run must record something");
    assert_eq!(
        metrics_serial.to_json(),
        metrics_parallel.to_json(),
        "metrics must be bit-identical across thread counts"
    );
}

//! # PAS — Plug-and-Play Prompt Augmentation System
//!
//! Facade crate re-exporting the whole PAS workspace under one roof. See the
//! individual crates for the full APIs:
//!
//! - [`core`] — the PAS system itself: SFT of the complement model and the
//!   plug-and-play augmentation API.
//! - [`data`] — prompt schema, synthetic corpora, the §3.1 selection pipeline
//!   and the Algorithm 1 generation/selection/regeneration loop.
//! - [`llm`] — the simulated-LLM substrate (capability profiles, teacher,
//!   critic, response planner).
//! - [`eval`] — Arena-Hard / AlpacaEval 2.0 / AlpacaEval 2.0 (LC) harnesses,
//!   judge models, the human-evaluation panel and experiment runners.
//! - [`baselines`] — BPO, PPO/DPO surrogates, OPRO, ProTeGi and zero-shot CoT.
//! - [`fault`] — fault-tolerant runtime: deterministic fault injection,
//!   retry/backoff with circuit breaking, checkpoint journals, and the
//!   degraded-mode accounting the serve path uses.
//! - [`gateway`] — deterministic serving gateway: semantic complement
//!   caching, admission control, micro-batching, and a fault-isolated
//!   replica pool, all under a discrete-event simulator.
//! - [`obs`] — deterministic observability: counters, gauges, fixed-bucket
//!   histograms and spans over simulated time, with mergeable JSON
//!   snapshots (off by default; `--metrics-out` turns it on).
//! - [`cluster`] — sharded multi-node gateway simulation: rendezvous-hash
//!   placement, seeded network chaos, hedged cross-shard routing, and
//!   rebalancing with `pas-store` hand-off — bit-identical at any thread
//!   count.
//! - [`store`] — crash-safe persistence: CRC'd append-only segment log,
//!   deterministic compaction, warm HNSW graph snapshots, and the
//!   gateway's warm-restart substrate.
//! - substrates: [`text`], [`tokenizer`], [`embed`], [`ann`], [`nn`].

pub use pas_ann as ann;
pub use pas_baselines as baselines;
pub use pas_cluster as cluster;
pub use pas_core as core;
pub use pas_data as data;
pub use pas_embed as embed;
pub use pas_eval as eval;
pub use pas_fault as fault;
pub use pas_gateway as gateway;
pub use pas_kernels as kernels;
pub use pas_llm as llm;
pub use pas_nn as nn;
pub use pas_obs as obs;
pub use pas_store as store;
pub use pas_text as text;
pub use pas_tokenizer as tokenizer;

//! `pas-cli` — build, inspect, and use a PAS model from the command line.
//!
//! ```text
//! pas-cli build   [--corpus-size N] [--seed S] [--dataset out.jsonl] [--model out.json]
//!                 [--fault-profile NAME] [--fault-seed S] [--resume journal.jsonl]
//! pas-cli augment --model pas.json [--prompt "…"]          # or prompts on stdin
//! pas-cli stats   --dataset data.jsonl                      # Figure 6 distribution
//! pas-cli eval    --model pas.json [--items N] [--seed S]   # quick Arena-style check
//!                 [--fault-profile NAME] [--fault-seed S]   # …under serve-time faults
//! pas-cli serve   --model pas.json [--replicas N] [--cache-capacity N] [--tau F]
//!                 [--queue N] [--batch N] [--rate-ms MS]    # gateway over stdin prompts
//!                 [--fault-profile NAME] [--fault-seed S]
//! ```
//!
//! Pipeline failures (including panics from deep inside a stage) exit
//! non-zero with an error message — the CLI never reports success for a
//! build that did not finish.

use std::collections::HashMap;
use std::io::BufRead;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::ExitCode;

use pas::core::{
    BuildOptions, DegradingServer, NoOptimizer, Pas, PasSystem, PromptOptimizer, SystemConfig,
};
use pas::data::{CorpusConfig, DatasetStats, PairDataset};
use pas::eval::harness::evaluate_suite;
use pas::eval::judge::Judge;
use pas::eval::suite::{EvalEnv, EvalEnvConfig};
use pas::fault::{FaultConfig, FaultProfile};
use pas::gateway::{Gateway, GatewayConfig, Request, SemanticCacheConfig};
use pas::llm::SimLlm;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // A panic anywhere in the pipeline must become a clean non-zero exit,
    // not an ambiguous abort: scripts and CI gate on the exit code.
    match catch_unwind(AssertUnwindSafe(|| run(&args))) {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(_) => {
            eprintln!("error: the pipeline panicked (details above)");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(USAGE.to_string());
    };
    let flags = parse_flags(&args[1..]);
    // `--metrics-out FILE` works on every command: turn recording on before
    // the command runs, write the snapshot after it succeeds.
    let metrics_out = flags.get("metrics-out").cloned();
    if metrics_out.is_some() {
        pas::obs::set_enabled(true);
        // Which arithmetic path produced this snapshot (backend index:
        // 0 scalar, 1 sse2, 2 avx2).
        static OBS_BACKEND: pas::obs::Gauge = pas::obs::Gauge::new("kernels.backend");
        OBS_BACKEND.set(pas::kernels::backend().index() as u64);
    }
    let result = match command.as_str() {
        "build" => cmd_build(&flags),
        "augment" => cmd_augment(&flags),
        "stats" => cmd_stats(&flags),
        "eval" => cmd_eval(&flags),
        "serve" => cmd_serve(&flags),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    if let (Ok(()), Some(path)) = (&result, &metrics_out) {
        pas::obs::snapshot()
            .write_json(std::path::Path::new(path))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("metrics → {path}");
    }
    result
}

const USAGE: &str = "usage:
  pas-cli build   [--corpus-size N] [--seed S] [--dataset FILE] [--model FILE]
                  [--fault-profile NAME] [--fault-seed S] [--resume JOURNAL]
  pas-cli augment --model FILE [--prompt TEXT]
  pas-cli stats   --dataset FILE
  pas-cli eval    --model FILE [--items N] [--seed S]
                  [--fault-profile NAME] [--fault-seed S]
  pas-cli serve   --model FILE [--replicas N] [--cache-capacity N] [--tau F]
                  [--queue N] [--batch N] [--rate-ms MS]
                  [--fault-profile NAME] [--fault-seed S]

every command also accepts --metrics-out FILE to dump a deterministic
metrics snapshot (JSON) of the run.

fault profiles: none, transient, bursty, chaos, outage";

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = it.next().cloned().unwrap_or_default();
            flags.insert(name.to_string(), value);
        }
    }
    flags
}

fn usize_flag(
    flags: &HashMap<String, String>,
    name: &str,
    default: usize,
) -> Result<usize, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name} expects an integer, got {v:?}")),
    }
}

fn u64_flag(flags: &HashMap<String, String>, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name} expects an integer, got {v:?}")),
    }
}

fn f32_flag(flags: &HashMap<String, String>, name: &str, default: f32) -> Result<f32, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name} expects a number, got {v:?}")),
    }
}

/// `--fault-profile NAME [--fault-seed S]` → a fault configuration, or
/// `None` when no profile was requested.
fn fault_config(flags: &HashMap<String, String>) -> Result<Option<FaultConfig>, String> {
    let Some(name) = flags.get("fault-profile") else {
        return Ok(None);
    };
    let profile = FaultProfile::named(name).ok_or_else(|| {
        format!("unknown fault profile '{name}' (known: {})", FaultProfile::NAMES.join(", "))
    })?;
    let mut config = FaultConfig { profile, ..FaultConfig::default() };
    config.seed = u64_flag(flags, "fault-seed", config.seed)?;
    Ok(Some(config))
}

fn cmd_build(flags: &HashMap<String, String>) -> Result<(), String> {
    let size = usize_flag(flags, "corpus-size", 4000)?;
    let seed = u64_flag(flags, "seed", 42)?;
    eprintln!("building PAS from a {size}-prompt corpus (seed {seed})…");
    let mut config = SystemConfig {
        corpus: CorpusConfig { size, seed, ..CorpusConfig::default() },
        ..SystemConfig::default()
    };
    if let Some(fault) = fault_config(flags)? {
        eprintln!("fault profile '{}' (seed {:#x})", fault.profile.name, fault.seed);
        config.generation.fault = fault;
    }
    let options = BuildOptions { journal: flags.get("resume").map(PathBuf::from) };
    if let Some(path) = &options.journal {
        eprintln!("checkpoint journal: {}", path.display());
    }
    let system = PasSystem::try_build(&config, &options).map_err(|e| e.to_string())?;
    eprintln!(
        "selection {} → {} → {}; generated {} pairs ({} regenerations); SFT loss {:.4}",
        system.selection_report.input,
        system.selection_report.after_dedup,
        system.selection_report.after_quality,
        system.generation_report.generated,
        system.generation_report.regenerations,
        system.sft_loss,
    );
    if !system.fault_report.is_clean() {
        eprintln!(
            "fault layer: {} faults absorbed over {} calls ({} retries, {} failed)",
            system.fault_report.total_faults(),
            system.fault_report.calls,
            system.fault_report.retries,
            system.fault_report.failed,
        );
    }
    if let Some(path) = flags.get("dataset") {
        system.dataset.save_jsonl_path(path).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("dataset → {path}");
    }
    if let Some(path) = flags.get("model") {
        let json = serde_json::to_string(&system.pas).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("model → {path}");
    }
    Ok(())
}

fn load_model(flags: &HashMap<String, String>) -> Result<Pas, String> {
    let path = flags.get("model").ok_or("--model is required")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))
}

fn cmd_augment(flags: &HashMap<String, String>) -> Result<(), String> {
    let pas = load_model(flags)?;
    if let Some(prompt) = flags.get("prompt") {
        println!("{}", pas.optimize(prompt));
        return Ok(());
    }
    // Stream: one prompt per stdin line → one augmented prompt per line.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        println!("{}", pas.optimize(&line));
    }
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = flags.get("dataset").ok_or("--dataset is required")?;
    let dataset = PairDataset::load_jsonl_path(path).map_err(|e| format!("{path}: {e}"))?;
    let stats = DatasetStats::compute(&dataset);
    println!("{}", stats.render_distribution());
    println!(
        "mean prompt words {:.1}; mean complement words {:.1}",
        stats.mean_prompt_words, stats.mean_complement_words
    );
    Ok(())
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let pas = load_model(flags)?;
    let items = usize_flag(flags, "items", 150)?;
    let seed = u64_flag(flags, "seed", 7)?;
    let env = EvalEnv::build(&EvalEnvConfig { arena_items: items, alpaca_items: 10, seed });
    let judge = Judge::default();
    let model = SimLlm::named("gpt-4-0613", env.world.clone());
    let reference = SimLlm::named(&env.arena.reference_model, env.world.clone());
    let baseline = evaluate_suite(&model, &NoOptimizer, &env.arena, &reference, &judge);
    let with_pas = match fault_config(flags)? {
        // Serve through the degrading boundary: faults are absorbed and a
        // hard outage falls back to the bare prompt instead of erroring.
        Some(fault) => {
            let server = DegradingServer::new(pas, &fault);
            let score = evaluate_suite(&model, &server, &env.arena, &reference, &judge);
            let report = server.fault_report();
            eprintln!(
                "fault profile '{}': {} faults absorbed, {} of {} requests degraded to passthrough",
                fault.profile.name,
                report.total_faults(),
                report.degraded,
                items,
            );
            score
        }
        None => evaluate_suite(&model, &pas, &env.arena, &reference, &judge),
    };
    println!(
        "Arena-style check on {} items (gpt-4-0613): baseline {:.2} → with PAS {:.2} ({:+.2})",
        items,
        baseline.win_rate,
        with_pas.win_rate,
        with_pas.win_rate - baseline.win_rate
    );
    Ok(())
}

/// `serve`: drive stdin prompts through the full gateway — semantic cache,
/// admission control, micro-batching, replica pool — and print one
/// augmented prompt per line (order preserved), with the run's
/// `GatewayReport` summary on stderr.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let pas = load_model(flags)?;
    let replicas = usize_flag(flags, "replicas", 2)?;
    if replicas == 0 {
        return Err("--replicas must be positive".into());
    }
    let capacity = usize_flag(flags, "cache-capacity", 4096)?;
    let tau = f32_flag(flags, "tau", 0.0)?;
    if !(0.0..=2.0).contains(&tau) {
        return Err(format!("--tau must be a cosine distance in [0, 2], got {tau}"));
    }
    let batch = usize_flag(flags, "batch", 8)?;
    if batch == 0 {
        return Err("--batch must be positive".into());
    }
    let mut config = GatewayConfig {
        replicas,
        cache: SemanticCacheConfig { capacity, tau, ..SemanticCacheConfig::default() },
        queue_capacity: usize_flag(flags, "queue", 64)?,
        batch_max: batch,
        ..GatewayConfig::default()
    };
    if let Some(fault) = fault_config(flags)? {
        eprintln!("fault profile '{}' (seed {:#x})", fault.profile.name, fault.seed);
        config.fault = fault;
    }

    // Stdin lines arrive with fixed --rate-ms spacing in simulated time, so
    // identical input always produces the identical report.
    let rate_ms = u64_flag(flags, "rate-ms", 2)?;
    let stdin = std::io::stdin();
    let mut requests = Vec::new();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        let id = requests.len();
        requests.push(Request { id, arrival_ms: id as u64 * rate_ms, prompt: line });
    }

    let mut gateway = Gateway::new(config, (0..replicas).map(|_| pas.clone()).collect());
    let (responses, report) = gateway.run(&requests);
    let mut out = String::with_capacity(responses.iter().map(|r| r.len() + 1).sum());
    for response in &responses {
        out.push_str(response);
        out.push('\n');
    }
    print!("{out}");
    eprintln!("{}", report.render_summary());
    Ok(())
}

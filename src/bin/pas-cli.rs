//! `pas-cli` — build, inspect, and use a PAS model from the command line.
//!
//! ```text
//! pas-cli build   [--corpus-size N] [--seed S] [--dataset out.jsonl] [--model out.json]
//! pas-cli augment --model pas.json [--prompt "…"]          # or prompts on stdin
//! pas-cli stats   --dataset data.jsonl                      # Figure 6 distribution
//! pas-cli eval    --model pas.json [--items N] [--seed S]   # quick Arena-style check
//! ```

use std::collections::HashMap;
use std::io::BufRead;
use std::process::ExitCode;

use pas::core::{NoOptimizer, Pas, PasSystem, PromptOptimizer, SystemConfig};
use pas::data::{CorpusConfig, DatasetStats, PairDataset};
use pas::eval::harness::evaluate_suite;
use pas::eval::judge::Judge;
use pas::eval::suite::{EvalEnv, EvalEnvConfig};
use pas::llm::SimLlm;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let result = match command.as_str() {
        "build" => cmd_build(&flags),
        "augment" => cmd_augment(&flags),
        "stats" => cmd_stats(&flags),
        "eval" => cmd_eval(&flags),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  pas-cli build   [--corpus-size N] [--seed S] [--dataset FILE] [--model FILE]
  pas-cli augment --model FILE [--prompt TEXT]
  pas-cli stats   --dataset FILE
  pas-cli eval    --model FILE [--items N] [--seed S]";

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = it.next().cloned().unwrap_or_default();
            flags.insert(name.to_string(), value);
        }
    }
    flags
}

fn usize_flag(
    flags: &HashMap<String, String>,
    name: &str,
    default: usize,
) -> Result<usize, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name} expects an integer, got {v:?}")),
    }
}

fn u64_flag(flags: &HashMap<String, String>, name: &str, default: u64) -> Result<u64, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name} expects an integer, got {v:?}")),
    }
}

fn cmd_build(flags: &HashMap<String, String>) -> Result<(), String> {
    let size = usize_flag(flags, "corpus-size", 4000)?;
    let seed = u64_flag(flags, "seed", 42)?;
    eprintln!("building PAS from a {size}-prompt corpus (seed {seed})…");
    let system = PasSystem::build(&SystemConfig {
        corpus: CorpusConfig { size, seed, ..CorpusConfig::default() },
        ..SystemConfig::default()
    });
    eprintln!(
        "selection {} → {} → {}; generated {} pairs ({} regenerations); SFT loss {:.4}",
        system.selection_report.input,
        system.selection_report.after_dedup,
        system.selection_report.after_quality,
        system.generation_report.generated,
        system.generation_report.regenerations,
        system.sft_loss,
    );
    if let Some(path) = flags.get("dataset") {
        system.dataset.save_jsonl_path(path).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("dataset → {path}");
    }
    if let Some(path) = flags.get("model") {
        let json = serde_json::to_string(&system.pas).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("model → {path}");
    }
    Ok(())
}

fn load_model(flags: &HashMap<String, String>) -> Result<Pas, String> {
    let path = flags.get("model").ok_or("--model is required")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))
}

fn cmd_augment(flags: &HashMap<String, String>) -> Result<(), String> {
    let pas = load_model(flags)?;
    if let Some(prompt) = flags.get("prompt") {
        println!("{}", pas.optimize(prompt));
        return Ok(());
    }
    // Stream: one prompt per stdin line → one augmented prompt per line.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        println!("{}", pas.optimize(&line));
    }
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = flags.get("dataset").ok_or("--dataset is required")?;
    let dataset = PairDataset::load_jsonl_path(path).map_err(|e| format!("{path}: {e}"))?;
    let stats = DatasetStats::compute(&dataset);
    println!("{}", stats.render_distribution());
    println!(
        "mean prompt words {:.1}; mean complement words {:.1}",
        stats.mean_prompt_words, stats.mean_complement_words
    );
    Ok(())
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let pas = load_model(flags)?;
    let items = usize_flag(flags, "items", 150)?;
    let seed = u64_flag(flags, "seed", 7)?;
    let env = EvalEnv::build(&EvalEnvConfig { arena_items: items, alpaca_items: 10, seed });
    let judge = Judge::default();
    let model = SimLlm::named("gpt-4-0613", env.world.clone());
    let reference = SimLlm::named(&env.arena.reference_model, env.world.clone());
    let baseline = evaluate_suite(&model, &NoOptimizer, &env.arena, &reference, &judge);
    let with_pas = evaluate_suite(&model, &pas, &env.arena, &reference, &judge);
    println!(
        "Arena-style check on {} items (gpt-4-0613): baseline {:.2} → with PAS {:.2} ({:+.2})",
        items,
        baseline.win_rate,
        with_pas.win_rate,
        with_pas.win_rate - baseline.win_rate
    );
    Ok(())
}

//! Case Study 1 (paper Figure 2): the logic-trap question.
//!
//! ```text
//! cargo run --example logic_trap
//! ```
//!
//! "If there are 10 birds on a tree and one is shot dead, how many birds
//! are on the ground?" — without help, models answer hastily; the PAS
//! complement warns about the trap and asks for step-by-step reasoning.

use pas::core::{PasSystem, SystemConfig};
use pas::data::CorpusConfig;
use pas::eval::cases::run_case_studies;

fn main() {
    println!("training PAS…");
    let system = PasSystem::build(&SystemConfig {
        corpus: CorpusConfig { size: 1500, seed: 42, ..CorpusConfig::default() },
        ..SystemConfig::default()
    });

    for case in run_case_studies(&system.pas, "gpt-4-0613") {
        println!("{}", case.render());
        println!(
            "quality {:.2} → {:.2} ({})\n",
            case.quality_without,
            case.quality_with,
            if case.improved() { "improved" } else { "no change" }
        );
    }
}

//! The §4.5 human-evaluation panel at example scale.
//!
//! ```text
//! cargo run --example human_eval_panel
//! ```
//!
//! Trains a PAS, plugs it into Qwen2-72B, and lets the seeded evaluator
//! panel grade responses across the eight Table 4 scenarios, printing the
//! per-scenario metrics and the Figure 1b GSB bars.

use pas::core::{PasSystem, SystemConfig};
use pas::data::CorpusConfig;
use pas::eval::human::{run_human_eval, HumanEvalConfig};

fn main() {
    println!("training PAS…");
    let system = PasSystem::build(&SystemConfig {
        corpus: CorpusConfig { size: 1500, seed: 5, ..CorpusConfig::default() },
        ..SystemConfig::default()
    });

    let config = HumanEvalConfig { items_per_scenario: 40, panel_size: 5, seed: 77 };
    let outcome = run_human_eval(&config, &system.pas, "qwen2-72b-chat");

    println!(
        "\n{:<26} {:>9} {:>9}  {:>9} {:>9}",
        "scenario", "avg", "avg+PAS", "avail", "avail+PAS"
    );
    for (b, p) in outcome.baseline.iter().zip(&outcome.with_pas) {
        println!(
            "{:<26} {:>9.2} {:>9.2}  {:>8.0}% {:>8.0}%",
            b.scenario.name(),
            b.average,
            p.average,
            100.0 * b.availability,
            100.0 * p.availability,
        );
    }

    println!("\nGSB (good/same/bad) per scenario:");
    for g in &outcome.gsb {
        println!(
            "{:<26} good {:>4.0}%  same {:>4.0}%  bad {:>4.0}%",
            g.scenario.name(),
            100.0 * g.good,
            100.0 * g.same,
            100.0 * g.bad,
        );
    }
}

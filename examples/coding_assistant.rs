//! Domain-specific PAS: a coding-focused complement model.
//!
//! ```text
//! cargo run --example coding_assistant
//! ```
//!
//! §3.3 of the paper notes the generation pipeline "allows us to control
//! the categories of the generated data … to generate specialized data to
//! enhance prompt capabilities in specific domains". This example filters
//! the generated dataset to the Coding category, fine-tunes a specialist
//! PAS on it, and compares its augmentations against the generalist on
//! coding prompts.

use pas::core::{Pas, PasConfig, PasSystem, SystemConfig};
use pas::data::{CorpusConfig, PairDataset};
use pas::llm::Category;

fn main() {
    println!("building the generalist system…");
    let system = PasSystem::build(&SystemConfig {
        corpus: CorpusConfig { size: 2500, seed: 9, ..CorpusConfig::default() },
        ..SystemConfig::default()
    });

    // Specialize: keep only the Coding pairs — the category-controlled
    // generation the paper describes.
    let coding_only =
        PairDataset { pairs: system.dataset.in_category(Category::Coding).cloned().collect() };
    println!("dataset: {} total pairs, {} coding pairs", system.dataset.len(), coding_only.len());
    let (specialist, _) = Pas::sft(&PasConfig::default(), &coding_only);

    let coding_prompts = [
        "My code for parsing csv files with quoted fields keeps failing, what should I check?",
        "What is the best approach to lock free queue design in a production system?",
        "How should I implement binary search tree rebalancing?",
    ];
    for prompt in coding_prompts {
        println!("\nprompt      : {prompt}");
        println!("generalist  : {}", system.pas.augment(prompt));
        println!("specialist  : {}", specialist.augment(prompt));
    }

    // The specialist concentrates its aspect predictions on what coding
    // answers need (steps, examples, completeness).
    let mut spec_hits = 0usize;
    let mut gen_hits = 0usize;
    for i in 0..50 {
        let p = format!("How should I implement a cache eviction policy for shard {i}?");
        use pas::llm::world::{detect_aspects, Aspect};
        let wanted = [Aspect::StepByStep, Aspect::Examples, Aspect::Completeness];
        let s = detect_aspects(&specialist.augment(&p));
        let g = detect_aspects(&system.pas.augment(&p));
        spec_hits += wanted.iter().filter(|a| s.contains(**a)).count();
        gen_hits += wanted.iter().filter(|a| g.contains(**a)).count();
    }
    println!(
        "\ncoding-aspect requests over 50 prompts: specialist {spec_hits}, generalist {gen_hits}"
    );
}

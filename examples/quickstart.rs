//! Quickstart: build a PAS from scratch and plug it into a model.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Runs the full paper pipeline at small scale — synthetic corpus → §3.1
//! selection → Algorithm 1 generation → SFT — then augments a few prompts
//! and shows the enhanced responses.

use pas::core::{PasSystem, SystemConfig};
use pas::data::CorpusConfig;
use pas::llm::{ChatModel, SimLlm};

fn main() {
    // 1. Build the system: every stage of Figure 3 runs for real.
    let config = SystemConfig {
        corpus: CorpusConfig { size: 1500, seed: 42, ..CorpusConfig::default() },
        ..SystemConfig::default()
    };
    println!("building PAS (corpus → dedup → quality filter → classify → Algorithm 1 → SFT)…");
    let system = PasSystem::build(&config);
    println!(
        "selection: {} raw → {} deduped → {} quality-filtered (classifier accuracy {:.1}%)",
        system.selection_report.input,
        system.selection_report.after_dedup,
        system.selection_report.after_quality,
        100.0 * system.selection_report.classifier_accuracy,
    );
    println!(
        "generation: {} pairs, {} first-draw rejections, {} regenerations, residual flaws {:.1}%",
        system.generation_report.generated,
        system.generation_report.rejected_first_draw,
        system.generation_report.regenerations,
        100.0 * system.generation_report.residual_flaw_rate(),
    );
    println!("SFT loss: {:.4}\n", system.sft_loss);

    // 2. Plug the trained PAS into a downstream model (any ChatModel works).
    let model = SimLlm::named("gpt-4-0613", system.world.clone());
    for prompt in [
        "How should I implement a rate limiter in a production system?",
        "Summarize the quarterly earnings call transcript for me.",
        "Here is a puzzle about candles burning at different rates. What is the answer?",
    ] {
        let complement = system.pas.augment(prompt);
        println!("user prompt : {prompt}");
        println!("PAS adds    : {complement}");
        let response = system.pas.enhance(&model, prompt);
        let preview: String = response.chars().take(160).collect();
        println!("{} says: {preview}…\n", model.name());
    }
}

//! The §3.1 data-selection pipeline, stage by stage.
//!
//! ```text
//! cargo run --example data_pipeline
//! ```
//!
//! Generates a raw conversation corpus (with duplicates and junk, like
//! LMSYS-Chat-1M / WildChat), then runs deduplication → quality filtering →
//! classification and prints what each stage did, ending with the
//! Figure 6-style category distribution of the generated pair dataset.

use std::sync::Arc;

use pas::data::{
    Corpus, CorpusConfig, DatasetStats, GenConfig, Generator, SelectionConfig, SelectionPipeline,
};

fn main() {
    let corpus =
        Corpus::generate(&CorpusConfig { size: 3000, seed: 11, ..CorpusConfig::default() });
    println!("raw corpus: {} prompts (incl. duplicates and junk)", corpus.len());

    let (selected, report) =
        SelectionPipeline::new(SelectionConfig::default()).run(&corpus.records);
    println!("\n§3.1 selection pipeline");
    println!("  input          : {}", report.input);
    println!("  after dedup    : {} (HNSW near-duplicate grouping)", report.after_dedup);
    println!("  after quality  : {} (junk filtered)", report.after_quality);
    println!(
        "  classification : 14-way classifier, {:.1}% accuracy vs latent labels",
        100.0 * report.classifier_accuracy
    );

    let world = Arc::new(corpus.world.clone());
    let (dataset, gen_report) = Generator::new(GenConfig::default(), world).run(&selected);
    println!("\nAlgorithm 1 generation");
    println!("  pairs generated      : {}", gen_report.generated);
    println!("  first-draw rejections: {}", gen_report.rejected_first_draw);
    println!("  regenerations        : {}", gen_report.regenerations);
    println!("  critic repairs       : {}", gen_report.repairs);
    println!("  residual flaw rate   : {:.2}%", 100.0 * gen_report.residual_flaw_rate());

    println!("\n{}", DatasetStats::compute(&dataset).render_distribution());

    println!("three sample pairs:");
    for pair in dataset.pairs.iter().step_by(dataset.len() / 3).take(3) {
        println!("  [{}] {}", pair.category, pair.prompt);
        println!("       ↳ {}", pair.complement);
    }
}

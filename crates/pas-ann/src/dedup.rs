//! Near-duplicate grouping over embedded items.
//!
//! Implements the first stage of the paper's data-selection pipeline (§3.1):
//! "deduplication using the SimCSE bge model to embed the prompts, followed
//! by the HNSW clustering algorithm to group these embeddings; from each
//! cluster we extract a small amount of data to reduce redundancy."
//!
//! The engine inserts embeddings into an HNSW index incrementally; an item
//! whose nearest already-kept neighbour is within the distance threshold
//! joins that neighbour's group, otherwise it founds a new group. One
//! representative per group survives (the first seen — the paper keeps "a
//! small amount" per cluster; `keep_per_group` generalizes that).

use crate::hnsw::{Hnsw, HnswConfig};
use crate::metric::{CosineDistance, Metric};
use crate::Neighbor;

/// Deduplication parameters.
#[derive(Debug, Clone)]
pub struct DedupConfig {
    /// Cosine-distance threshold under which two items are duplicates.
    /// 0.05 ≈ cosine similarity 0.95.
    pub distance_threshold: f32,
    /// How many members of each duplicate group to keep.
    pub keep_per_group: usize,
    /// Beam width for the HNSW queries.
    pub ef_search: usize,
    /// HNSW construction parameters.
    pub hnsw: HnswConfig,
}

impl Default for DedupConfig {
    fn default() -> Self {
        DedupConfig {
            distance_threshold: 0.05,
            keep_per_group: 1,
            ef_search: 48,
            hnsw: HnswConfig::default(),
        }
    }
}

/// Outcome of deduplicating a collection.
#[derive(Debug, Clone)]
pub struct DedupOutcome {
    /// Indices of the kept items, in input order.
    pub kept: Vec<usize>,
    /// `group_of[i]` = group id of input item `i`.
    pub group_of: Vec<usize>,
    /// Number of distinct groups found.
    pub group_count: usize,
}

impl DedupOutcome {
    /// Fraction of the input removed as duplicates.
    pub fn removal_rate(&self) -> f64 {
        if self.group_of.is_empty() {
            return 0.0;
        }
        1.0 - self.kept.len() as f64 / self.group_of.len() as f64
    }
}

/// Incremental near-duplicate grouper over cosine embeddings.
pub struct Deduplicator {
    config: DedupConfig,
    index: Hnsw<CosineDistance>,
    /// Group id per inserted item.
    groups: Vec<usize>,
    /// Members kept so far per group.
    kept_in_group: Vec<usize>,
    group_count: usize,
}

impl Deduplicator {
    /// Creates an empty deduplicator.
    pub fn new(config: DedupConfig) -> Self {
        let index = Hnsw::new(config.hnsw.clone(), CosineDistance);
        Deduplicator {
            config,
            index,
            groups: Vec::new(),
            kept_in_group: Vec::new(),
            group_count: 0,
        }
    }

    /// Offers one embedding. Returns `(group_id, kept)`: the group the item
    /// was assigned to, and whether the caller should keep it.
    pub fn offer(&mut self, embedding: Vec<f32>) -> (usize, bool) {
        let nearest = self.nearest_duplicate(&embedding).map(|n| n.id);
        self.assign(embedding, nearest)
    }

    /// Nearest already-offered item within the duplicate threshold, if any.
    /// A pure read of the current index — [`Deduplicator::run`] evaluates it
    /// for a whole wave of pending items in parallel.
    fn nearest_duplicate(&self, embedding: &[f32]) -> Option<Neighbor> {
        if self.index.is_empty() {
            return None;
        }
        self.index
            .search(embedding, 1, self.config.ef_search)
            .into_iter()
            .next()
            .filter(|n| n.distance <= self.config.distance_threshold)
    }

    /// Commits one item given its resolved nearest duplicate (an id of an
    /// already-committed item, or `None` to found a new group).
    fn assign(&mut self, embedding: Vec<f32>, nearest: Option<usize>) -> (usize, bool) {
        let group = match nearest {
            Some(id) => self.groups[id],
            None => {
                let g = self.group_count;
                self.group_count += 1;
                self.kept_in_group.push(0);
                g
            }
        };
        self.index.insert(embedding);
        self.groups.push(group);
        let keep = self.kept_in_group[group] < self.config.keep_per_group;
        if keep {
            self.kept_in_group[group] += 1;
        }
        (group, keep)
    }

    /// Deduplicates a whole collection at once.
    ///
    /// Items are processed in *waves* sized by the committed count (capped
    /// at [`Hnsw::MAX_WAVE`], never dependent on the thread count): each
    /// wave queries the index as frozen at the wave start in parallel, then
    /// commits sequentially in input order. Because a frozen query cannot
    /// see earlier items of the same wave, the sequential commit pass
    /// additionally checks each item against its in-wave predecessors by
    /// exact cosine distance, preferring whichever duplicate is closer
    /// (ties to the lower id) — so a wave of mutual near-duplicates still
    /// collapses to one group, and the outcome is identical at any
    /// `--threads` setting.
    pub fn run(config: DedupConfig, embeddings: Vec<Vec<f32>>) -> DedupOutcome {
        let n = embeddings.len();
        let mut dedup = Deduplicator::new(config);
        let mut kept = Vec::new();
        let mut group_of = Vec::with_capacity(n);
        let mut next = 0;
        while next < n {
            let wave = (n - next).min(dedup.index.len().clamp(1, Hnsw::<CosineDistance>::MAX_WAVE));
            let frozen: Vec<Option<Neighbor>> =
                pas_par::par_map(&embeddings[next..next + wave], |_, e| dedup.nearest_duplicate(e));
            for (j, found) in frozen.into_iter().enumerate() {
                let i = next + j;
                let mut nearest: Option<(f32, usize)> = found.map(|n| (n.distance, n.id));
                for prior in next..i {
                    let d = CosineDistance.distance(&embeddings[i], &embeddings[prior]);
                    if d <= dedup.config.distance_threshold
                        && nearest
                            .is_none_or(|(bd, bid)| d.total_cmp(&bd).then(prior.cmp(&bid)).is_lt())
                    {
                        nearest = Some((d, prior));
                    }
                }
                let (g, keep) = dedup.assign(embeddings[i].clone(), nearest.map(|(_, id)| id));
                group_of.push(g);
                if keep {
                    kept.push(i);
                }
            }
            next += wave;
        }
        DedupOutcome { kept, group_of, group_count: dedup.group_count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(v: &[f32]) -> Vec<f32> {
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter().map(|x| x / n).collect()
    }

    #[test]
    fn exact_duplicates_collapse() {
        let e = unit(&[1.0, 2.0, 3.0]);
        let out = Deduplicator::run(DedupConfig::default(), vec![e.clone(), e.clone(), e]);
        assert_eq!(out.kept, vec![0]);
        assert_eq!(out.group_count, 1);
        assert!((out.removal_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_items_all_kept() {
        let embeddings = vec![unit(&[1.0, 0.0]), unit(&[0.0, 1.0]), unit(&[-1.0, 0.0])];
        let out = Deduplicator::run(DedupConfig::default(), embeddings);
        assert_eq!(out.kept, vec![0, 1, 2]);
        assert_eq!(out.group_count, 3);
    }

    #[test]
    fn near_duplicates_grouped_by_threshold() {
        let a = unit(&[1.0, 0.0, 0.0]);
        let b = unit(&[1.0, 0.02, 0.0]); // tiny angle from a
        let c = unit(&[0.0, 1.0, 0.0]);
        let out = Deduplicator::run(DedupConfig::default(), vec![a, b, c]);
        assert_eq!(out.group_of[0], out.group_of[1]);
        assert_ne!(out.group_of[0], out.group_of[2]);
        assert_eq!(out.kept, vec![0, 2]);
    }

    #[test]
    fn keep_per_group_retains_extras() {
        let e = unit(&[1.0, 1.0]);
        let cfg = DedupConfig { keep_per_group: 2, ..DedupConfig::default() };
        let out = Deduplicator::run(cfg, vec![e.clone(), e.clone(), e]);
        assert_eq!(out.kept, vec![0, 1]);
    }

    #[test]
    fn empty_input() {
        let out = Deduplicator::run(DedupConfig::default(), Vec::new());
        assert!(out.kept.is_empty());
        assert_eq!(out.group_count, 0);
        assert_eq!(out.removal_rate(), 0.0);
    }

    #[test]
    fn run_is_thread_count_invariant() {
        // 300 items in 40 clusters — several full waves of mutual
        // near-duplicates crossing wave boundaries.
        let embeddings: Vec<Vec<f32>> = (0..300)
            .map(|i| {
                let c = (i % 40) as f32;
                let eps = (i / 40) as f32 * 0.001;
                unit(&[c.sin() + eps, c.cos(), (c * 0.7).sin(), (c * 1.3).cos() - eps])
            })
            .collect();
        let run = |threads| {
            pas_par::with_threads(threads, || {
                let out = Deduplicator::run(DedupConfig::default(), embeddings.clone());
                (out.kept, out.group_of, out.group_count)
            })
        };
        let serial = run(1);
        assert_eq!(run(2), serial);
        assert_eq!(run(8), serial);
        assert!(serial.2 < 300, "clusters should collapse");
    }

    #[test]
    fn in_wave_duplicates_collapse() {
        // More copies of one vector than a single wave holds: items later
        // in a wave must still join the group founded earlier in that wave.
        let e = unit(&[0.3, -0.8, 0.5]);
        let n = Hnsw::<CosineDistance>::MAX_WAVE * 2 + 5;
        let out = Deduplicator::run(DedupConfig::default(), vec![e; n]);
        assert_eq!(out.kept, vec![0]);
        assert_eq!(out.group_count, 1);
    }

    #[test]
    fn dedup_is_idempotent_on_kept_set() {
        // Running dedup over already-deduplicated items keeps everything.
        let embeddings = vec![unit(&[1.0, 0.0]), unit(&[0.0, 1.0]), unit(&[1.0, 1.0])];
        let first = Deduplicator::run(DedupConfig::default(), embeddings.clone());
        let kept_embeddings: Vec<Vec<f32>> =
            first.kept.iter().map(|&i| embeddings[i].clone()).collect();
        let second = Deduplicator::run(DedupConfig::default(), kept_embeddings.clone());
        assert_eq!(second.kept.len(), kept_embeddings.len());
    }
}

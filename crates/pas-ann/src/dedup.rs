//! Near-duplicate grouping over embedded items.
//!
//! Implements the first stage of the paper's data-selection pipeline (§3.1):
//! "deduplication using the SimCSE bge model to embed the prompts, followed
//! by the HNSW clustering algorithm to group these embeddings; from each
//! cluster we extract a small amount of data to reduce redundancy."
//!
//! The engine inserts embeddings into an HNSW index incrementally; an item
//! whose nearest already-kept neighbour is within the distance threshold
//! joins that neighbour's group, otherwise it founds a new group. One
//! representative per group survives (the first seen — the paper keeps "a
//! small amount" per cluster; `keep_per_group` generalizes that).

use crate::hnsw::{Hnsw, HnswConfig};
use crate::metric::CosineDistance;

/// Deduplication parameters.
#[derive(Debug, Clone)]
pub struct DedupConfig {
    /// Cosine-distance threshold under which two items are duplicates.
    /// 0.05 ≈ cosine similarity 0.95.
    pub distance_threshold: f32,
    /// How many members of each duplicate group to keep.
    pub keep_per_group: usize,
    /// Beam width for the HNSW queries.
    pub ef_search: usize,
    /// HNSW construction parameters.
    pub hnsw: HnswConfig,
}

impl Default for DedupConfig {
    fn default() -> Self {
        DedupConfig {
            distance_threshold: 0.05,
            keep_per_group: 1,
            ef_search: 48,
            hnsw: HnswConfig::default(),
        }
    }
}

/// Outcome of deduplicating a collection.
#[derive(Debug, Clone)]
pub struct DedupOutcome {
    /// Indices of the kept items, in input order.
    pub kept: Vec<usize>,
    /// `group_of[i]` = group id of input item `i`.
    pub group_of: Vec<usize>,
    /// Number of distinct groups found.
    pub group_count: usize,
}

impl DedupOutcome {
    /// Fraction of the input removed as duplicates.
    pub fn removal_rate(&self) -> f64 {
        if self.group_of.is_empty() {
            return 0.0;
        }
        1.0 - self.kept.len() as f64 / self.group_of.len() as f64
    }
}

/// Incremental near-duplicate grouper over cosine embeddings.
pub struct Deduplicator {
    config: DedupConfig,
    index: Hnsw<CosineDistance>,
    /// Group id per inserted item.
    groups: Vec<usize>,
    /// Members kept so far per group.
    kept_in_group: Vec<usize>,
    group_count: usize,
}

impl Deduplicator {
    /// Creates an empty deduplicator.
    pub fn new(config: DedupConfig) -> Self {
        let index = Hnsw::new(config.hnsw.clone(), CosineDistance);
        Deduplicator { config, index, groups: Vec::new(), kept_in_group: Vec::new(), group_count: 0 }
    }

    /// Offers one embedding. Returns `(group_id, kept)`: the group the item
    /// was assigned to, and whether the caller should keep it.
    pub fn offer(&mut self, embedding: Vec<f32>) -> (usize, bool) {
        let nearest = if self.index.is_empty() {
            None
        } else {
            self.index
                .search(&embedding, 1, self.config.ef_search)
                .into_iter()
                .next()
                .filter(|n| n.distance <= self.config.distance_threshold)
        };
        let group = match nearest {
            Some(n) => self.groups[n.id],
            None => {
                let g = self.group_count;
                self.group_count += 1;
                self.kept_in_group.push(0);
                g
            }
        };
        self.index.insert(embedding);
        self.groups.push(group);
        let keep = self.kept_in_group[group] < self.config.keep_per_group;
        if keep {
            self.kept_in_group[group] += 1;
        }
        (group, keep)
    }

    /// Deduplicates a whole collection at once.
    pub fn run(config: DedupConfig, embeddings: Vec<Vec<f32>>) -> DedupOutcome {
        let n = embeddings.len();
        let mut dedup = Deduplicator::new(config);
        let mut kept = Vec::new();
        let mut group_of = Vec::with_capacity(n);
        for (i, e) in embeddings.into_iter().enumerate() {
            let (g, keep) = dedup.offer(e);
            group_of.push(g);
            if keep {
                kept.push(i);
            }
        }
        DedupOutcome { kept, group_of, group_count: dedup.group_count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(v: &[f32]) -> Vec<f32> {
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter().map(|x| x / n).collect()
    }

    #[test]
    fn exact_duplicates_collapse() {
        let e = unit(&[1.0, 2.0, 3.0]);
        let out = Deduplicator::run(DedupConfig::default(), vec![e.clone(), e.clone(), e]);
        assert_eq!(out.kept, vec![0]);
        assert_eq!(out.group_count, 1);
        assert!((out.removal_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_items_all_kept() {
        let embeddings = vec![unit(&[1.0, 0.0]), unit(&[0.0, 1.0]), unit(&[-1.0, 0.0])];
        let out = Deduplicator::run(DedupConfig::default(), embeddings);
        assert_eq!(out.kept, vec![0, 1, 2]);
        assert_eq!(out.group_count, 3);
    }

    #[test]
    fn near_duplicates_grouped_by_threshold() {
        let a = unit(&[1.0, 0.0, 0.0]);
        let b = unit(&[1.0, 0.02, 0.0]); // tiny angle from a
        let c = unit(&[0.0, 1.0, 0.0]);
        let out = Deduplicator::run(DedupConfig::default(), vec![a, b, c]);
        assert_eq!(out.group_of[0], out.group_of[1]);
        assert_ne!(out.group_of[0], out.group_of[2]);
        assert_eq!(out.kept, vec![0, 2]);
    }

    #[test]
    fn keep_per_group_retains_extras() {
        let e = unit(&[1.0, 1.0]);
        let cfg = DedupConfig { keep_per_group: 2, ..DedupConfig::default() };
        let out = Deduplicator::run(cfg, vec![e.clone(), e.clone(), e]);
        assert_eq!(out.kept, vec![0, 1]);
    }

    #[test]
    fn empty_input() {
        let out = Deduplicator::run(DedupConfig::default(), Vec::new());
        assert!(out.kept.is_empty());
        assert_eq!(out.group_count, 0);
        assert_eq!(out.removal_rate(), 0.0);
    }

    #[test]
    fn dedup_is_idempotent_on_kept_set() {
        // Running dedup over already-deduplicated items keeps everything.
        let embeddings = vec![unit(&[1.0, 0.0]), unit(&[0.0, 1.0]), unit(&[1.0, 1.0])];
        let first = Deduplicator::run(DedupConfig::default(), embeddings.clone());
        let kept_embeddings: Vec<Vec<f32>> =
            first.kept.iter().map(|&i| embeddings[i].clone()).collect();
        let second = Deduplicator::run(DedupConfig::default(), kept_embeddings.clone());
        assert_eq!(second.kept.len(), kept_embeddings.len());
    }
}

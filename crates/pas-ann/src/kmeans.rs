//! Seeded k-means clustering with k-means++ initialization.
//!
//! Used by the data-selection pipeline to group deduplicated prompts before
//! per-cluster sampling (the paper extracts "a small amount of data from each
//! cluster to reduce redundancy", §3.1).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// k-means hyper-parameters.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters. Clamped to the number of points.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement.
    pub tolerance: f32,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { k: 8, max_iters: 50, tolerance: 1e-4, seed: 0x6b }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final centroids, `k` rows.
    pub centroids: Vec<Vec<f32>>,
    /// Cluster assignment per input point.
    pub assignments: Vec<usize>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Final within-cluster sum of squared distances.
    pub inertia: f32,
}

impl KMeansResult {
    /// Ids of the points in cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments.iter().enumerate().filter_map(|(i, &a)| (a == c).then_some(i)).collect()
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    pas_kernels::l2_sq(a, b)
}

/// Runs k-means++ initialization followed by Lloyd iterations.
///
/// # Panics
/// Panics when `points` is empty or dimensions are inconsistent.
pub fn kmeans(points: &[Vec<f32>], config: &KMeansConfig) -> KMeansResult {
    assert!(!points.is_empty(), "kmeans requires at least one point");
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "inconsistent dimensions");
    let k = config.k.clamp(1, points.len());
    let mut rng = StdRng::seed_from_u64(config.seed);

    // k-means++ seeding: first centroid uniform, the rest D²-weighted.
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    let mut d2: Vec<f32> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f32 = d2.iter().sum();
        let next = if total <= f32::EPSILON {
            // All points coincide with existing centroids; pick uniformly.
            rng.random_range(0..points.len())
        } else {
            let mut target = rng.random::<f32>() * total;
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(sq_dist(p, centroids.last().expect("just pushed")));
        }
    }

    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step.
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = sq_dist(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignments[i] = best;
        }
        // Update step.
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        let mut movement = 0.0f32;
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed empty cluster at the point farthest from its centroid.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        sq_dist(a.1, &centroids[assignments[a.0]])
                            .total_cmp(&sq_dist(b.1, &centroids[assignments[b.0]]))
                    })
                    .map(|(i, _)| i)
                    .expect("points non-empty");
                centroids[c] = points[far].clone();
                continue;
            }
            let inv = 1.0 / counts[c] as f32;
            let new: Vec<f32> = sums[c].iter().map(|&s| s * inv).collect();
            movement += sq_dist(&new, &centroids[c]);
            centroids[c] = new;
        }
        if movement <= config.tolerance {
            break;
        }
    }

    let inertia = points.iter().zip(&assignments).map(|(p, &a)| sq_dist(p, &centroids[a])).sum();
    KMeansResult { centroids, assignments, iterations, inertia }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f32 * 0.01;
            pts.push(vec![0.0 + j, 0.0 + j]);
            pts.push(vec![10.0 + j, 10.0 + j]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let res = kmeans(&pts, &KMeansConfig { k: 2, ..KMeansConfig::default() });
        // All even indices (blob A) share one label; odd indices the other.
        let a = res.assignments[0];
        let b = res.assignments[1];
        assert_ne!(a, b);
        assert!(res.assignments.iter().step_by(2).all(|&x| x == a));
        assert!(res.assignments.iter().skip(1).step_by(2).all(|&x| x == b));
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![1.0], vec![2.0]];
        let res = kmeans(&pts, &KMeansConfig { k: 10, ..KMeansConfig::default() });
        assert_eq!(res.k(), 2);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let pts = two_blobs();
        let cfg = KMeansConfig { k: 3, seed: 9, ..KMeansConfig::default() };
        let a = kmeans(&pts, &cfg);
        let b = kmeans(&pts, &cfg);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn identical_points_dont_crash() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let res = kmeans(&pts, &KMeansConfig { k: 3, ..KMeansConfig::default() });
        assert!(res.inertia < 1e-6);
    }

    #[test]
    fn members_partition_points() {
        let pts = two_blobs();
        let res = kmeans(&pts, &KMeansConfig { k: 4, ..KMeansConfig::default() });
        let total: usize = (0..res.k()).map(|c| res.members(c).len()).sum();
        assert_eq!(total, pts.len());
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let pts = two_blobs();
        let i1 = kmeans(&pts, &KMeansConfig { k: 1, ..KMeansConfig::default() }).inertia;
        let i2 = kmeans(&pts, &KMeansConfig { k: 2, ..KMeansConfig::default() }).inertia;
        assert!(i2 < i1);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_points_rejected() {
        kmeans(&[], &KMeansConfig::default());
    }
}

//! Distance metrics for the vector indexes.
//!
//! Besides the plain two-slice [`Metric::distance`], a metric can define a
//! cheaper *prepared* form that the indexes store: [`Metric::prepare`]
//! converts a vector once at insert time (returning its original L2 norm),
//! and [`Metric::prepared_distance`] compares two prepared vectors.
//! [`CosineDistance`] uses this to store unit vectors, turning every probe
//! into `1 − dot` — no per-probe norms, no square roots.

use pas_kernels as kernels;

/// A distance function: smaller means more similar. Implementations must be
/// symmetric and return 0 for identical inputs.
pub trait Metric: Send + Sync {
    /// Distance between two equal-length raw vectors.
    fn distance(&self, a: &[f32], b: &[f32]) -> f32;

    /// Converts `v` into the form the indexes store, returning the original
    /// L2 norm. The default stores vectors unchanged.
    fn prepare(&self, v: &mut [f32]) -> f32 {
        kernels::sum_sq(v).sqrt()
    }

    /// Distance between two vectors already in stored form. Must equal
    /// [`Metric::distance`] of the raw vectors up to float rounding. The
    /// default is the identity-prepared case.
    fn prepared_distance(&self, a: &[f32], b: &[f32]) -> f32 {
        self.distance(a, b)
    }
}

/// Cosine distance `1 − cos(a, b)`, in `[0, 2]`. Zero vectors are treated as
/// maximally dissimilar to everything (distance 1), matching
/// `pas_embed::cosine`'s zero-vector convention — both delegate to the one
/// shared kernel, [`pas_kernels::cosine_sim`].
///
/// Prepared form: the unit vector (the zero vector stays zero). A probe
/// between prepared vectors is `1 − a·b` — one fused dot, no `sqrt`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CosineDistance;

impl Metric for CosineDistance {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        (1.0 - kernels::cosine_sim(a, b)).max(0.0)
    }

    fn prepare(&self, v: &mut [f32]) -> f32 {
        let norm = kernels::sum_sq(v).sqrt();
        if norm > 0.0 {
            kernels::scale(v, 1.0 / norm);
        }
        norm
    }

    #[inline]
    fn prepared_distance(&self, a: &[f32], b: &[f32]) -> f32 {
        // Unit vectors: cos = dot. A zero vector stays zero when prepared,
        // so dot = 0 and the distance is 1 — same convention as the raw path.
        (1.0 - kernels::dot(a, b)).max(0.0)
    }
}

/// Euclidean (L2) distance. Stored form is the raw vector.
#[derive(Debug, Clone, Copy, Default)]
pub struct EuclideanDistance;

impl Metric for EuclideanDistance {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        kernels::l2_sq(a, b).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_identical_is_zero() {
        let d = CosineDistance.distance(&[1.0, 2.0], &[1.0, 2.0]);
        assert!(d.abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        let d = CosineDistance.distance(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_unit_distance() {
        // The shared zero-vector convention, pinned for both code paths:
        // similarity 0 ⇒ distance 1, raw and prepared alike.
        assert_eq!(CosineDistance.distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
        let mut z = vec![0.0, 0.0];
        let mut u = vec![1.0, 0.0];
        assert_eq!(CosineDistance.prepare(&mut z), 0.0);
        CosineDistance.prepare(&mut u);
        assert_eq!(CosineDistance.prepared_distance(&z, &u), 1.0);
        assert_eq!(CosineDistance.prepared_distance(&z, &z), 1.0);
    }

    #[test]
    fn cosine_matches_pas_embed_convention() {
        // One shared implementation: 1 − pas_embed::cosine, bit for bit.
        let a = [0.2, -0.5, 0.7, 0.1];
        let b = [0.9, 0.1, -0.3, 0.4];
        let expect = (1.0 - pas_embed::cosine(&a, &b)).max(0.0);
        assert_eq!(CosineDistance.distance(&a, &b).to_bits(), expect.to_bits());
        assert_eq!(CosineDistance.distance(&[0.0; 3], &[1.0, 2.0, 3.0]), 1.0);
    }

    #[test]
    fn prepare_returns_original_norm_and_normalizes() {
        let mut v = vec![3.0, 4.0];
        let norm = CosineDistance.prepare(&mut v);
        assert_eq!(norm, 5.0);
        assert!((kernels::sum_sq(&v).sqrt() - 1.0).abs() < 1e-6);
        // Euclidean keeps the vector as-is but still reports the norm.
        let mut w = vec![3.0, 4.0];
        assert_eq!(EuclideanDistance.prepare(&mut w), 5.0);
        assert_eq!(w, vec![3.0, 4.0]);
    }

    #[test]
    fn prepared_distance_tracks_raw_distance() {
        let raw_pairs =
            [([0.2f32, -0.5, 0.7], [0.9f32, 0.1, -0.3]), ([1.0, 1.0, 0.0], [1.0, 0.9, 0.1])];
        for (a, b) in raw_pairs {
            let raw = CosineDistance.distance(&a, &b);
            let (mut pa, mut pb) = (a.to_vec(), b.to_vec());
            CosineDistance.prepare(&mut pa);
            CosineDistance.prepare(&mut pb);
            let prepared = CosineDistance.prepared_distance(&pa, &pb);
            assert!((raw - prepared).abs() < 1e-5, "raw {raw} vs prepared {prepared}");
        }
    }

    #[test]
    fn euclidean_known_value() {
        let d = EuclideanDistance.distance(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((d - 5.0).abs() < 1e-6);
    }

    #[test]
    fn metrics_are_symmetric() {
        let a = [0.2, -0.5, 0.7];
        let b = [0.9, 0.1, -0.3];
        assert_eq!(CosineDistance.distance(&a, &b), CosineDistance.distance(&b, &a));
        assert_eq!(EuclideanDistance.distance(&a, &b), EuclideanDistance.distance(&b, &a));
    }
}

//! Distance metrics for the vector indexes.

/// A distance function: smaller means more similar. Implementations must be
/// symmetric and return 0 for identical inputs.
pub trait Metric: Send + Sync {
    /// Distance between two equal-length vectors.
    fn distance(&self, a: &[f32], b: &[f32]) -> f32;
}

/// Cosine distance `1 − cos(a, b)`, in `[0, 2]`. Zero vectors are treated as
/// maximally distant from everything (distance 1), matching
/// `pas_embed::cosine`'s zero-vector convention.
#[derive(Debug, Clone, Copy, Default)]
pub struct CosineDistance;

impl Metric for CosineDistance {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        let mut dot = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for (&x, &y) in a.iter().zip(b) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        (1.0 - dot / (na.sqrt() * nb.sqrt())).max(0.0)
    }
}

/// Euclidean (L2) distance.
#[derive(Debug, Clone, Copy, Default)]
pub struct EuclideanDistance;

impl Metric for EuclideanDistance {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_identical_is_zero() {
        let d = CosineDistance.distance(&[1.0, 2.0], &[1.0, 2.0]);
        assert!(d.abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        let d = CosineDistance.distance(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_unit_distance() {
        assert_eq!(CosineDistance.distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
    }

    #[test]
    fn euclidean_known_value() {
        let d = EuclideanDistance.distance(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((d - 5.0).abs() < 1e-6);
    }

    #[test]
    fn metrics_are_symmetric() {
        let a = [0.2, -0.5, 0.7];
        let b = [0.9, 0.1, -0.3];
        assert_eq!(CosineDistance.distance(&a, &b), CosineDistance.distance(&b, &a));
        assert_eq!(EuclideanDistance.distance(&a, &b), EuclideanDistance.distance(&b, &a));
    }
}

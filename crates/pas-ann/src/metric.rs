//! Distance metrics for the vector indexes.
//!
//! Besides the plain two-slice [`Metric::distance`], a metric can define a
//! cheaper *prepared* form that the indexes store: [`Metric::prepare`]
//! converts a vector once at insert time (returning its original L2 norm),
//! and [`Metric::prepared_distance`] compares two prepared vectors.
//! [`CosineDistance`] uses this to store unit vectors, turning every probe
//! into `1 − dot` — no per-probe norms, no square roots.
//!
//! Two further refinements feed the raw-speed layer:
//!
//! - **Block probes** ([`Metric::prepared_distance_block`]): one query
//!   against a packed panel of stored rows. Each output must be
//!   bit-identical to the pairwise [`Metric::prepared_distance`] — cosine
//!   routes through [`pas_kernels::dot_block`], whose per-row accumulation
//!   *is* the striped [`pas_kernels::dot`].
//! - **int8 quantization** ([`Metric::quantize`]): an optional compressed
//!   form of a prepared vector (codes + one `f32` scale) with an approximate
//!   integer-dot distance ([`Metric::quantized_distance`]). Integer dots are
//!   exact on every backend, so the approximation is deterministic; indexes
//!   use it for traversal and re-rank an over-fetched top-k with the exact
//!   f32 path (see [`crate::quant`]).

use pas_kernels as kernels;

/// A distance function: smaller means more similar. Implementations must be
/// symmetric and return 0 for identical inputs.
pub trait Metric: Send + Sync {
    /// Distance between two equal-length raw vectors.
    fn distance(&self, a: &[f32], b: &[f32]) -> f32;

    /// Converts `v` into the form the indexes store, returning the original
    /// L2 norm. The default stores vectors unchanged.
    fn prepare(&self, v: &mut [f32]) -> f32 {
        kernels::sum_sq(v).sqrt()
    }

    /// Distance between two vectors already in stored form. Must equal
    /// [`Metric::distance`] of the raw vectors up to float rounding. The
    /// default is the identity-prepared case.
    fn prepared_distance(&self, a: &[f32], b: &[f32]) -> f32 {
        self.distance(a, b)
    }

    /// [`Metric::prepared_distance`] of `query` against every row of a
    /// packed panel (`out.len()` rows of `query.len()` elements). Outputs
    /// must be **bit-identical** to the pairwise calls — overrides may only
    /// change speed, never bits. The default loops.
    fn prepared_distance_block(&self, query: &[f32], panel: &[f32], out: &mut [f32]) {
        let d = query.len();
        assert_eq!(panel.len(), d * out.len(), "panel/rows mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.prepared_distance(query, &panel[r * d..(r + 1) * d]);
        }
    }

    /// int8-quantizes a *prepared* vector into `(codes, scale)`, or `None`
    /// when the metric has no integer probe path (the default). The indexes
    /// gate their quantized storage on this.
    fn quantize(&self, prepared: &[f32]) -> Option<(Vec<i8>, f32)> {
        let _ = prepared;
        None
    }

    /// Approximate distance between two quantized vectors. Only called when
    /// [`Metric::quantize`] returns `Some`; must be deterministic across
    /// machines and kernel backends (integer dots are, by construction).
    fn quantized_distance(&self, a: &[i8], sa: f32, b: &[i8], sb: f32) -> f32 {
        let _ = (a, sa, b, sb);
        unimplemented!("metric has no quantized probe path")
    }

    /// [`Metric::quantized_distance`] of one quantized query against a
    /// packed panel of code rows. Bit-identical to the pairwise calls; the
    /// default loops.
    fn quantized_distance_block(
        &self,
        query: &[i8],
        qscale: f32,
        panel: &[i8],
        scales: &[f32],
        out: &mut [f32],
    ) {
        let d = query.len();
        assert_eq!(panel.len(), d * out.len(), "panel/rows mismatch");
        assert_eq!(scales.len(), out.len(), "scales/rows mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.quantized_distance(query, qscale, &panel[r * d..(r + 1) * d], scales[r]);
        }
    }

    /// Row-indexed [`Metric::quantized_distance_block`]: probe the rows
    /// `rows[j]` of a flat code store directly — no packed panel. `idots`
    /// is caller-owned integer scratch (so steady-state probes allocate
    /// nothing). Bit-identical to the pairwise calls; the default loops.
    #[allow(clippy::too_many_arguments)]
    fn quantized_distance_rows(
        &self,
        query: &[i8],
        qscale: f32,
        codes: &[i8],
        scales: &[f32],
        rows: &[usize],
        idots: &mut Vec<i32>,
        out: &mut Vec<f32>,
    ) {
        let d = query.len();
        let _ = idots;
        out.clear();
        out.extend(rows.iter().map(|&r| {
            self.quantized_distance(query, qscale, &codes[r * d..(r + 1) * d], scales[r])
        }));
    }
}

/// Cosine distance `1 − cos(a, b)`, in `[0, 2]`. Zero vectors are treated as
/// maximally dissimilar to everything (distance 1), matching
/// `pas_embed::cosine`'s zero-vector convention — both delegate to the one
/// shared kernel, [`pas_kernels::cosine_sim`].
///
/// Prepared form: the unit vector (the zero vector stays zero). A probe
/// between prepared vectors is `1 − a·b` — one fused dot, no `sqrt`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CosineDistance;

impl Metric for CosineDistance {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        (1.0 - kernels::cosine_sim(a, b)).max(0.0)
    }

    fn prepare(&self, v: &mut [f32]) -> f32 {
        let norm = kernels::sum_sq(v).sqrt();
        if norm > 0.0 {
            kernels::scale(v, 1.0 / norm);
        }
        norm
    }

    #[inline]
    fn prepared_distance(&self, a: &[f32], b: &[f32]) -> f32 {
        // Unit vectors: cos = dot. A zero vector stays zero when prepared,
        // so dot = 0 and the distance is 1 — same convention as the raw path.
        (1.0 - kernels::dot(a, b)).max(0.0)
    }

    fn prepared_distance_block(&self, query: &[f32], panel: &[f32], out: &mut [f32]) {
        // dot_block's per-row accumulation is exactly `dot`, so each output
        // is bit-identical to the pairwise prepared_distance.
        kernels::dot_block(query, panel, out);
        for o in out.iter_mut() {
            *o = (1.0 - *o).max(0.0);
        }
    }

    /// Symmetric per-vector scaling: `scale = max|v| / 127`, codes are
    /// `round(v / scale)` in `[-127, 127]`. A zero vector quantizes to all
    /// zeros with scale 0, and the integer probe then reports distance 1 —
    /// the same zero-vector convention as the f32 path.
    fn quantize(&self, prepared: &[f32]) -> Option<(Vec<i8>, f32)> {
        let max_abs = prepared.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        if max_abs == 0.0 {
            return Some((vec![0; prepared.len()], 0.0));
        }
        let scale = max_abs / 127.0;
        let inv = 127.0 / max_abs;
        let codes =
            prepared.iter().map(|&x| (x * inv).round().clamp(-127.0, 127.0) as i8).collect();
        Some((codes, scale))
    }

    #[inline]
    fn quantized_distance(&self, a: &[i8], sa: f32, b: &[i8], sb: f32) -> f32 {
        // Approximate `1 − a·b` with the exact integer dot of the codes
        // rescaled once. Deterministic on every backend: the i32 dot is
        // exact, and the float rescale is two muls and a sub in fixed order.
        (1.0 - kernels::dot_i8(a, b) as f32 * (sa * sb)).max(0.0)
    }

    fn quantized_distance_block(
        &self,
        query: &[i8],
        qscale: f32,
        panel: &[i8],
        scales: &[f32],
        out: &mut [f32],
    ) {
        let d = query.len();
        assert_eq!(panel.len(), d * out.len(), "panel/rows mismatch");
        assert_eq!(scales.len(), out.len(), "scales/rows mismatch");
        let mut dots = vec![0i32; out.len()];
        kernels::dot_i8_block(query, panel, &mut dots);
        for ((o, &idot), &s) in out.iter_mut().zip(&dots).zip(scales) {
            *o = (1.0 - idot as f32 * (qscale * s)).max(0.0);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn quantized_distance_rows(
        &self,
        query: &[i8],
        qscale: f32,
        codes: &[i8],
        scales: &[f32],
        rows: &[usize],
        idots: &mut Vec<i32>,
        out: &mut Vec<f32>,
    ) {
        // The row-indexed kernel computes the same exact integer dots as the
        // pairwise path; the decode is the identical two-mul-one-sub chain.
        idots.clear();
        idots.resize(rows.len(), 0);
        kernels::dot_i8_rows(query, codes, rows, idots);
        out.clear();
        out.extend(
            idots
                .iter()
                .zip(rows)
                .map(|(&idot, &r)| (1.0 - idot as f32 * (qscale * scales[r])).max(0.0)),
        );
    }
}

/// Euclidean (L2) distance. Stored form is the raw vector.
#[derive(Debug, Clone, Copy, Default)]
pub struct EuclideanDistance;

impl Metric for EuclideanDistance {
    #[inline]
    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        kernels::l2_sq(a, b).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_identical_is_zero() {
        let d = CosineDistance.distance(&[1.0, 2.0], &[1.0, 2.0]);
        assert!(d.abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        let d = CosineDistance.distance(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_unit_distance() {
        // The shared zero-vector convention, pinned for both code paths:
        // similarity 0 ⇒ distance 1, raw and prepared alike.
        assert_eq!(CosineDistance.distance(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
        let mut z = vec![0.0, 0.0];
        let mut u = vec![1.0, 0.0];
        assert_eq!(CosineDistance.prepare(&mut z), 0.0);
        CosineDistance.prepare(&mut u);
        assert_eq!(CosineDistance.prepared_distance(&z, &u), 1.0);
        assert_eq!(CosineDistance.prepared_distance(&z, &z), 1.0);
    }

    #[test]
    fn cosine_matches_pas_embed_convention() {
        // One shared implementation: 1 − pas_embed::cosine, bit for bit.
        let a = [0.2, -0.5, 0.7, 0.1];
        let b = [0.9, 0.1, -0.3, 0.4];
        let expect = (1.0 - pas_embed::cosine(&a, &b)).max(0.0);
        assert_eq!(CosineDistance.distance(&a, &b).to_bits(), expect.to_bits());
        assert_eq!(CosineDistance.distance(&[0.0; 3], &[1.0, 2.0, 3.0]), 1.0);
    }

    #[test]
    fn prepare_returns_original_norm_and_normalizes() {
        let mut v = vec![3.0, 4.0];
        let norm = CosineDistance.prepare(&mut v);
        assert_eq!(norm, 5.0);
        assert!((kernels::sum_sq(&v).sqrt() - 1.0).abs() < 1e-6);
        // Euclidean keeps the vector as-is but still reports the norm.
        let mut w = vec![3.0, 4.0];
        assert_eq!(EuclideanDistance.prepare(&mut w), 5.0);
        assert_eq!(w, vec![3.0, 4.0]);
    }

    #[test]
    fn prepared_distance_tracks_raw_distance() {
        let raw_pairs =
            [([0.2f32, -0.5, 0.7], [0.9f32, 0.1, -0.3]), ([1.0, 1.0, 0.0], [1.0, 0.9, 0.1])];
        for (a, b) in raw_pairs {
            let raw = CosineDistance.distance(&a, &b);
            let (mut pa, mut pb) = (a.to_vec(), b.to_vec());
            CosineDistance.prepare(&mut pa);
            CosineDistance.prepare(&mut pb);
            let prepared = CosineDistance.prepared_distance(&pa, &pb);
            assert!((raw - prepared).abs() < 1e-5, "raw {raw} vs prepared {prepared}");
        }
    }

    #[test]
    fn euclidean_known_value() {
        let d = EuclideanDistance.distance(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((d - 5.0).abs() < 1e-6);
    }

    #[test]
    fn block_distance_bit_matches_pairwise() {
        let query = {
            let mut q = vec![0.2f32, -0.5, 0.7, 0.1, 0.4];
            CosineDistance.prepare(&mut q);
            q
        };
        let rows: Vec<Vec<f32>> = (0..7)
            .map(|r| {
                let mut v: Vec<f32> = (0..5).map(|i| ((r * 5 + i) as f32 * 0.37).sin()).collect();
                CosineDistance.prepare(&mut v);
                v
            })
            .collect();
        let panel: Vec<f32> = rows.iter().flatten().copied().collect();
        let mut out = vec![0.0f32; rows.len()];
        CosineDistance.prepared_distance_block(&query, &panel, &mut out);
        for (r, v) in rows.iter().enumerate() {
            assert_eq!(
                out[r].to_bits(),
                CosineDistance.prepared_distance(&query, v).to_bits(),
                "row {r}"
            );
        }
    }

    #[test]
    fn quantization_approximates_and_keeps_conventions() {
        // Euclidean opts out.
        assert!(EuclideanDistance.quantize(&[1.0, 2.0]).is_none());
        // Cosine quantizes prepared (unit) vectors with small error.
        for seed in 0..5 {
            let mut v: Vec<f32> = (0..48).map(|i| ((i + seed * 31) as f32 * 0.23).sin()).collect();
            let mut w: Vec<f32> = (0..48).map(|i| ((i + seed * 17) as f32 * 0.41).cos()).collect();
            CosineDistance.prepare(&mut v);
            CosineDistance.prepare(&mut w);
            let (cv, sv) = CosineDistance.quantize(&v).unwrap();
            let (cw, sw) = CosineDistance.quantize(&w).unwrap();
            let exact = CosineDistance.prepared_distance(&v, &w);
            let approx = CosineDistance.quantized_distance(&cv, sv, &cw, sw);
            assert!((exact - approx).abs() < 0.02, "seed {seed}: exact {exact} vs approx {approx}");
        }
        // Zero vector: scale 0, all-zero codes, distance 1 — the shared
        // convention survives quantization.
        let (cz, sz) = CosineDistance.quantize(&[0.0; 8]).unwrap();
        assert_eq!(sz, 0.0);
        let mut u = vec![1.0f32, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        CosineDistance.prepare(&mut u);
        let (cu, su) = CosineDistance.quantize(&u).unwrap();
        assert_eq!(CosineDistance.quantized_distance(&cz, sz, &cu, su), 1.0);
        // Block form is bit-identical to pairwise.
        let panel: Vec<i8> = cz.iter().chain(&cu).copied().collect();
        let mut out = vec![0.0f32; 2];
        CosineDistance.quantized_distance_block(&cu, su, &panel, &[sz, su], &mut out);
        assert_eq!(out[0].to_bits(), CosineDistance.quantized_distance(&cu, su, &cz, sz).to_bits());
        assert_eq!(out[1].to_bits(), CosineDistance.quantized_distance(&cu, su, &cu, su).to_bits());
        assert!(out[1] < 1e-3, "self distance after quantization: {}", out[1]);
    }

    #[test]
    fn metrics_are_symmetric() {
        let a = [0.2, -0.5, 0.7];
        let b = [0.9, 0.1, -0.3];
        assert_eq!(CosineDistance.distance(&a, &b), CosineDistance.distance(&b, &a));
        assert_eq!(EuclideanDistance.distance(&a, &b), EuclideanDistance.distance(&b, &a));
    }
}

//! Brute-force exact nearest-neighbour index.
//!
//! Shares the query interface of [`crate::Hnsw`]; used as ground truth in
//! recall tests, as the small-collection fast path in the deduplicator, and
//! as the baseline in the ANN benchmarks.
//!
//! Like the HNSW index, vectors are stored in the metric's *prepared* form
//! plus their original L2 norm ([`crate::Metric::prepare`]): under cosine
//! the scan evaluates `1 − dot` per element instead of recomputing three
//! norms per probe.

use crate::metric::Metric;
use crate::Neighbor;

// Observability counters: a brute-force scan probes every stored vector,
// so the tallies are exact functions of the collection size and query
// count regardless of the parallel chunking.
static OBS_SEARCHES: pas_obs::Counter = pas_obs::Counter::new("ann.exact.searches");
static OBS_PROBES: pas_obs::Counter = pas_obs::Counter::new("ann.exact.probes");

/// Exhaustive-scan index over the inserted vectors.
pub struct ExactIndex<M: Metric> {
    metric: M,
    /// Prepared (e.g. unit-normalized) vectors.
    vectors: Vec<Vec<f32>>,
    /// Original L2 norm of each vector, recorded at insert.
    norms: Vec<f32>,
}

impl<M: Metric> ExactIndex<M> {
    /// Creates an empty index with the given metric.
    pub fn new(metric: M) -> Self {
        ExactIndex { metric, vectors: Vec::new(), norms: Vec::new() }
    }

    /// Inserts a vector, returning its id (insertion order).
    pub fn insert(&mut self, mut vector: Vec<f32>) -> usize {
        let id = self.vectors.len();
        self.norms.push(self.metric.prepare(&mut vector));
        self.vectors.push(vector);
        id
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Returns the stored vector for `id`, in the metric's prepared form
    /// (under cosine: the unit vector — multiply by [`ExactIndex::norm`] to
    /// recover the original magnitude).
    pub fn vector(&self, id: usize) -> &[f32] {
        &self.vectors[id]
    }

    /// Original L2 norm of the vector inserted as `id`.
    pub fn norm(&self, id: usize) -> f32 {
        self.norms[id]
    }

    /// Prepares a query once for the probes of a whole scan.
    fn prepared_query(&self, query: &[f32]) -> Vec<f32> {
        let mut q = query.to_vec();
        self.metric.prepare(&mut q);
        q
    }

    /// Exact `k` nearest neighbours of `query`, closest first; ties broken
    /// by id for determinism.
    ///
    /// Large collections are scanned in parallel: fixed-size chunks (never
    /// dependent on the thread count) each reduce to a local top-`k`, and
    /// the ordered partial results merge sequentially — so the output is
    /// identical at any `--threads` setting.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        OBS_SEARCHES.incr();
        OBS_PROBES.add(self.vectors.len() as u64);
        let query = self.prepared_query(query);
        let chunk_starts: Vec<usize> = (0..self.vectors.len()).step_by(Self::SCAN_CHUNK).collect();
        let mut hits: Vec<Neighbor> = if chunk_starts.len() <= 1 {
            self.scan_range(&query, 0, self.vectors.len(), usize::MAX)
        } else {
            pas_par::par_map(&chunk_starts, |_, &start| {
                let end = (start + Self::SCAN_CHUNK).min(self.vectors.len());
                self.scan_range(&query, start, end, k)
            })
            .into_iter()
            .flatten()
            .collect()
        };
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then_with(|| a.id.cmp(&b.id)));
        hits.truncate(k);
        hits
    }

    /// Vectors scanned per parallel work item in [`ExactIndex::search`] and
    /// [`ExactIndex::search_batch`].
    const SCAN_CHUNK: usize = 2048;

    /// Distances for ids in `start..end` against an already-prepared query,
    /// sorted, truncated to `k`.
    fn scan_range(&self, query: &[f32], start: usize, end: usize, k: usize) -> Vec<Neighbor> {
        let mut hits: Vec<Neighbor> = self.vectors[start..end]
            .iter()
            .enumerate()
            .map(|(off, v)| Neighbor {
                id: start + off,
                distance: self.metric.prepared_distance(query, v),
            })
            .collect();
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then_with(|| a.id.cmp(&b.id)));
        if k != usize::MAX {
            hits.truncate(k);
        }
        hits
    }

    /// `k` nearest neighbours for every query, computed in parallel (one
    /// work item per query). Results are in query order.
    pub fn search_batch(&self, queries: &[Vec<f32>], k: usize) -> Vec<Vec<Neighbor>> {
        OBS_SEARCHES.add(queries.len() as u64);
        OBS_PROBES.add((queries.len() * self.vectors.len()) as u64);
        pas_par::par_map(queries, |_, q| {
            self.scan_range(&self.prepared_query(q), 0, self.vectors.len(), k)
        })
    }

    /// All ids whose distance to `query` is at most `radius`.
    pub fn search_radius(&self, query: &[f32], radius: f32) -> Vec<Neighbor> {
        OBS_SEARCHES.incr();
        OBS_PROBES.add(self.vectors.len() as u64);
        let query = self.prepared_query(query);
        let mut hits: Vec<Neighbor> = self
            .vectors
            .iter()
            .enumerate()
            .filter_map(|(id, v)| {
                let distance = self.metric.prepared_distance(&query, v);
                (distance <= radius).then_some(Neighbor { id, distance })
            })
            .collect();
        hits.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{CosineDistance, EuclideanDistance};

    fn index_with_points() -> ExactIndex<EuclideanDistance> {
        let mut idx = ExactIndex::new(EuclideanDistance);
        for p in [[0.0, 0.0], [1.0, 0.0], [0.0, 2.0], [3.0, 3.0]] {
            idx.insert(p.to_vec());
        }
        idx
    }

    #[test]
    fn finds_nearest_in_order() {
        let idx = index_with_points();
        let hits = idx.search(&[0.1, 0.0], 3);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let idx = index_with_points();
        assert_eq!(idx.search(&[0.0, 0.0], 10).len(), 4);
    }

    #[test]
    fn radius_search_filters() {
        let idx = index_with_points();
        let hits = idx.search_radius(&[0.0, 0.0], 1.5);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx: ExactIndex<EuclideanDistance> = ExactIndex::new(EuclideanDistance);
        assert!(idx.search(&[1.0], 5).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn chunked_parallel_scan_matches_serial_order() {
        // Enough vectors to span several scan chunks.
        let mut idx = ExactIndex::new(EuclideanDistance);
        for i in 0..(super::ExactIndex::<EuclideanDistance>::SCAN_CHUNK * 3 + 17) {
            let x = (i as f32 * 0.37).sin();
            let y = (i as f32 * 0.11).cos();
            idx.insert(vec![x, y]);
        }
        let query = [0.2, -0.4];
        let run = |threads| pas_par::with_threads(threads, || idx.search(&query, 25));
        let serial = run(1);
        assert_eq!(serial.len(), 25);
        for w in serial.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        assert_eq!(run(8), serial);
    }

    #[test]
    fn search_batch_matches_per_query_search() {
        let idx = index_with_points();
        let queries = vec![vec![0.1, 0.0], vec![3.0, 3.0], vec![-1.0, -1.0]];
        let batch = idx.search_batch(&queries, 2);
        assert_eq!(batch.len(), 3);
        for (q, hits) in queries.iter().zip(&batch) {
            assert_eq!(hits, &idx.search(q, 2));
        }
    }

    #[test]
    fn tie_break_by_id() {
        let mut idx = ExactIndex::new(EuclideanDistance);
        idx.insert(vec![1.0, 0.0]);
        idx.insert(vec![1.0, 0.0]);
        let hits = idx.search(&[1.0, 0.0], 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 1);
    }

    #[test]
    fn cosine_store_is_prenormalized_and_scale_invariant() {
        let mut idx = ExactIndex::new(CosineDistance);
        idx.insert(vec![3.0, 0.0, 4.0]);
        idx.insert(vec![0.0, 1.0, 0.0]);
        assert_eq!(idx.norm(0), 5.0);
        assert!((pas_kernels::sum_sq(idx.vector(0)).sqrt() - 1.0).abs() < 1e-6);
        // An unnormalized query parallel to vector 0 probes at distance ~0.
        let hits = idx.search(&[0.3, 0.0, 0.4], 2);
        assert_eq!(hits[0].id, 0);
        assert!(hits[0].distance < 1e-6);
        assert!((hits[1].distance - 1.0).abs() < 1e-6);
    }
}

//! Brute-force exact nearest-neighbour index.
//!
//! Shares the query interface of [`crate::Hnsw`]; used as ground truth in
//! recall tests, as the small-collection fast path in the deduplicator, and
//! as the baseline in the ANN benchmarks.
//!
//! Like the HNSW index, vectors are stored in the metric's *prepared* form
//! plus their original L2 norm ([`crate::Metric::prepare`]) — and they are
//! stored **flat**: one contiguous row-major buffer, so a scan range is
//! already the packed panel [`crate::Metric::prepared_distance_block`]
//! wants. Under cosine a scan is then a handful of block dots instead of a
//! per-element `1 − dot` loop.
//!
//! With [`ExactIndex::set_quantization`] the index additionally keeps int8
//! codes ([`crate::quant::QuantStore`]) and probes through the integer path:
//! approximate-scan everything, keep [`crate::quant::rerank_overfetch`]`(k)`
//! candidates, exactly re-rank those in f32. Results stay deterministic at
//! every thread count and kernel backend.
//!
//! [`ExactIndex::set_product_quantization`] swaps the int8 tier for PQ codes
//! ([`crate::quant::PqStore`], `dim/8` bytes per vector): each scan builds
//! one fixed-point ADC table and ranks every row with pure integer adds,
//! over-fetching [`crate::quant::pq_rerank_overfetch`]`(k)` before the same
//! exact f32 re-rank. The codebook trains lazily once
//! [`crate::quant::PQ_TRAIN_MIN`] rows exist; until then scans stay f32.

use crate::metric::Metric;
use crate::quant::{
    pq_rerank_overfetch, rerank_overfetch, PqConfig, PqStore, QuantStore, OBS_PQ, OBS_QUANTIZED,
    OBS_RERANK, PQ_TRAIN_MIN,
};
use crate::Neighbor;

// Observability counters: a brute-force scan probes every stored vector,
// so the tallies are exact functions of the collection size and query
// count regardless of the parallel chunking.
static OBS_SEARCHES: pas_obs::Counter = pas_obs::Counter::new("ann.exact.searches");
static OBS_PROBES: pas_obs::Counter = pas_obs::Counter::new("ann.exact.probes");

/// Exhaustive-scan index over the inserted vectors.
pub struct ExactIndex<M: Metric> {
    metric: M,
    /// Row length; 0 until the first insert locks it in.
    dim: usize,
    /// Prepared (e.g. unit-normalized) vectors, flat row-major.
    data: Vec<f32>,
    /// Original L2 norm of each vector, recorded at insert.
    norms: Vec<f32>,
    /// int8 codes + scales when quantized probing is on.
    quant: Option<QuantStore>,
    /// PQ codes when product-quantized probing is on (possibly untrained).
    pq: Option<PqStore>,
}

impl<M: Metric> ExactIndex<M> {
    /// Creates an empty index with the given metric.
    pub fn new(metric: M) -> Self {
        ExactIndex { metric, dim: 0, data: Vec::new(), norms: Vec::new(), quant: None, pq: None }
    }

    /// Inserts a vector, returning its id (insertion order).
    ///
    /// # Panics
    /// Panics when the dimension differs from previously inserted vectors.
    pub fn insert(&mut self, mut vector: Vec<f32>) -> usize {
        let id = self.norms.len();
        if id == 0 {
            self.dim = vector.len();
        }
        assert_eq!(vector.len(), self.dim, "dimension mismatch at insert");
        self.norms.push(self.metric.prepare(&mut vector));
        if let Some(quant) = &mut self.quant {
            quant.push(&self.metric, &vector);
        }
        self.data.extend_from_slice(&vector);
        let (dim, len) = (self.dim, self.norms.len());
        if let Some(pq) = &mut self.pq {
            if pq.ready() {
                pq.push(&self.data[id * dim..(id + 1) * dim]);
            } else if len >= PQ_TRAIN_MIN {
                Self::train_pq(pq, &self.data, dim, len);
            }
        }
        id
    }

    /// Trains `pq` over all currently stored rows and encodes them.
    fn train_pq(pq: &mut PqStore, data: &[f32], dim: usize, len: usize) {
        let rows: Vec<&[f32]> = (0..len).map(|id| &data[id * dim..(id + 1) * dim]).collect();
        pq.train_encode(&rows, dim);
    }

    /// Turns int8 quantized probing on or off. Enabling quantizes every
    /// stored vector (and all future inserts) and drops any PQ tier;
    /// disabling drops the codes. Searches stay exact either way — the
    /// quantized path re-ranks an over-fetched candidate set with f32
    /// distances.
    ///
    /// # Panics
    /// Panics when the metric does not support quantization
    /// ([`Metric::quantize`] returns `None`).
    pub fn set_quantization(&mut self, enabled: bool) {
        if !enabled {
            self.quant = None;
            return;
        }
        self.pq = None;
        if self.quant.is_some() {
            return;
        }
        assert!(self.metric.quantize(&[]).is_some(), "metric has no quantized probe path");
        let mut store = QuantStore::new();
        for id in 0..self.norms.len() {
            store.push(&self.metric, self.vector(id));
        }
        self.quant = Some(store);
    }

    /// Turns product-quantized probing on or off. Enabling drops any int8
    /// tier (the tiers are mutually exclusive) and trains the codebook over
    /// the stored rows — immediately if at least [`PQ_TRAIN_MIN`] exist,
    /// otherwise lazily at the insert that reaches the threshold; scans fall
    /// back to exact f32 until then. Searches stay exact either way thanks
    /// to the f32 re-rank.
    pub fn set_product_quantization(&mut self, enabled: bool) {
        if !enabled {
            self.pq = None;
            return;
        }
        self.quant = None;
        if self.pq.is_some() {
            return;
        }
        let mut pq = PqStore::new(PqConfig::default());
        if self.norms.len() >= PQ_TRAIN_MIN {
            Self::train_pq(&mut pq, &self.data, self.dim, self.norms.len());
        }
        self.pq = Some(pq);
    }

    /// True when the int8 probe path is active.
    pub fn quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// True when the PQ probe path is active (codebook may still be
    /// untrained — see [`ExactIndex::set_product_quantization`]).
    pub fn product_quantized(&self) -> bool {
        self.pq.is_some()
    }

    /// Bytes per vector the probe path touches: `m` (≈ dim/8) when a trained
    /// PQ tier is active, `dim + 4` when int8-quantized (codes + scale),
    /// `4·dim` for the f32 scan.
    pub fn probe_bytes_per_vector(&self) -> usize {
        if let Some(pq) = &self.pq {
            if pq.ready() {
                return pq.bytes_per_vector();
            }
        }
        match &self.quant {
            Some(q) if !q.is_empty() => q.bytes_per_vector(),
            _ => self.dim * std::mem::size_of::<f32>(),
        }
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.norms.len()
    }

    /// True when no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }

    /// Returns the stored vector for `id`, in the metric's prepared form
    /// (under cosine: the unit vector — multiply by [`ExactIndex::norm`] to
    /// recover the original magnitude).
    pub fn vector(&self, id: usize) -> &[f32] {
        &self.data[id * self.dim..(id + 1) * self.dim]
    }

    /// Original L2 norm of the vector inserted as `id`.
    pub fn norm(&self, id: usize) -> f32 {
        self.norms[id]
    }

    /// Prepares a query once for the probes of a whole scan.
    fn prepared_query(&self, query: &[f32]) -> Vec<f32> {
        let mut q = query.to_vec();
        self.metric.prepare(&mut q);
        q
    }

    /// Exact `k` nearest neighbours of `query`, closest first; ties broken
    /// by id for determinism.
    ///
    /// Large collections are scanned in parallel: fixed-size chunks (never
    /// dependent on the thread count) each reduce to a local top-`k`, and
    /// the ordered partial results merge sequentially — so the output is
    /// identical at any `--threads` setting.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        OBS_SEARCHES.incr();
        OBS_PROBES.add(self.len() as u64);
        let query = self.prepared_query(query);
        self.search_prepared(&query, k)
    }

    /// Vectors scanned per parallel work item in [`ExactIndex::search`] and
    /// [`ExactIndex::search_batch`].
    const SCAN_CHUNK: usize = 2048;

    /// Search body for an already-prepared query (no counters).
    fn search_prepared(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        if let Some(pq) = &self.pq {
            if pq.ready() {
                return self.search_pq(query, pq, k);
            }
        }
        if let Some(quant) = &self.quant {
            return self.search_quantized(query, quant, k);
        }
        let mut hits = self.top_by(k, |start, end, cap| self.scan_range(query, start, end, cap));
        hits.truncate(k);
        hits
    }

    /// Chunked parallel scan skeleton: every `SCAN_CHUNK` range reduces to a
    /// local top-`cap`, partial results merge in chunk order and re-sort.
    /// The chunk size is fixed (never thread-count dependent), so the merged
    /// list is identical at any `--threads` setting.
    fn top_by(
        &self,
        cap: usize,
        scan: impl Fn(usize, usize, usize) -> Vec<Neighbor> + Send + Sync,
    ) -> Vec<Neighbor> {
        let n = self.len();
        let chunk_starts: Vec<usize> = (0..n).step_by(Self::SCAN_CHUNK).collect();
        let mut hits: Vec<Neighbor> = if chunk_starts.len() <= 1 {
            scan(0, n, usize::MAX)
        } else {
            pas_par::par_map(&chunk_starts, |_, &start| {
                let end = (start + Self::SCAN_CHUNK).min(n);
                scan(start, end, cap)
            })
            .into_iter()
            .flatten()
            .collect()
        };
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then_with(|| a.id.cmp(&b.id)));
        hits
    }

    /// Distances for ids in `start..end` against an already-prepared query,
    /// sorted, truncated to `k`. The flat store makes `start..end` a packed
    /// panel, so this is one block probe.
    fn scan_range(&self, query: &[f32], start: usize, end: usize, k: usize) -> Vec<Neighbor> {
        let mut distances = vec![0.0f32; end - start];
        self.metric.prepared_distance_block(
            query,
            &self.data[start * self.dim..end * self.dim],
            &mut distances,
        );
        let mut hits: Vec<Neighbor> = distances
            .into_iter()
            .enumerate()
            .map(|(off, distance)| Neighbor { id: start + off, distance })
            .collect();
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then_with(|| a.id.cmp(&b.id)));
        if k != usize::MAX {
            hits.truncate(k);
        }
        hits
    }

    /// int8 probe: approximate-scan all code rows, keep the
    /// `rerank_overfetch(k)` best by `(approx distance, id)`, then compute
    /// exact f32 distances for just those and return the true top-`k`.
    fn search_quantized(&self, query: &[f32], quant: &QuantStore, k: usize) -> Vec<Neighbor> {
        let (qcodes, qscale) =
            self.metric.quantize(query).expect("metric has no quantized probe path");
        let fetch = rerank_overfetch(k);
        OBS_QUANTIZED.add(self.len() as u64);
        let mut approx = self.top_by(fetch, |start, end, cap| {
            let (panel, scales) = quant.rows(start, end);
            let mut distances = vec![0.0f32; end - start];
            self.metric.quantized_distance_block(&qcodes, qscale, panel, scales, &mut distances);
            let mut hits: Vec<Neighbor> = distances
                .into_iter()
                .enumerate()
                .map(|(off, distance)| Neighbor { id: start + off, distance })
                .collect();
            hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then_with(|| a.id.cmp(&b.id)));
            if cap != usize::MAX {
                hits.truncate(cap);
            }
            hits
        });
        approx.truncate(fetch);
        OBS_RERANK.add(approx.len() as u64);
        let mut exact: Vec<Neighbor> = approx
            .into_iter()
            .map(|h| Neighbor {
                id: h.id,
                distance: self.metric.prepared_distance(query, self.vector(h.id)),
            })
            .collect();
        exact.sort_by(|a, b| a.distance.total_cmp(&b.distance).then_with(|| a.id.cmp(&b.id)));
        exact.truncate(k);
        exact
    }

    /// PQ probe: build one ADC table for the query, approximate-scan all
    /// code rows with integer LUT adds, keep the `pq_rerank_overfetch(k)`
    /// best by `(approx distance, id)`, then compute exact f32 distances for
    /// just those and return the true top-`k`.
    fn search_pq(&self, query: &[f32], pq: &PqStore, k: usize) -> Vec<Neighbor> {
        let table = pq.table(query);
        let fetch = pq_rerank_overfetch(k);
        OBS_PQ.add(self.len() as u64);
        let mut approx = self.top_by(fetch, |start, end, cap| {
            let mut sums = Vec::new();
            let mut distances = Vec::new();
            table.distance_block(pq.rows(start, end), &mut sums, &mut distances);
            let mut hits: Vec<Neighbor> = distances
                .into_iter()
                .enumerate()
                .map(|(off, distance)| Neighbor { id: start + off, distance })
                .collect();
            hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then_with(|| a.id.cmp(&b.id)));
            if cap != usize::MAX {
                hits.truncate(cap);
            }
            hits
        });
        approx.truncate(fetch);
        OBS_RERANK.add(approx.len() as u64);
        let mut exact: Vec<Neighbor> = approx
            .into_iter()
            .map(|h| Neighbor {
                id: h.id,
                distance: self.metric.prepared_distance(query, self.vector(h.id)),
            })
            .collect();
        exact.sort_by(|a, b| a.distance.total_cmp(&b.distance).then_with(|| a.id.cmp(&b.id)));
        exact.truncate(k);
        exact
    }

    /// `k` nearest neighbours for every query, computed in parallel (one
    /// work item per query). Results are in query order.
    pub fn search_batch(&self, queries: &[Vec<f32>], k: usize) -> Vec<Vec<Neighbor>> {
        OBS_SEARCHES.add(queries.len() as u64);
        OBS_PROBES.add((queries.len() * self.len()) as u64);
        pas_par::par_map(queries, |_, q| {
            let query = self.prepared_query(q);
            self.search_prepared(&query, k)
        })
    }

    /// All ids whose distance to `query` is at most `radius`. Always the
    /// exact f32 path — a radius cut cannot tolerate approximation.
    pub fn search_radius(&self, query: &[f32], radius: f32) -> Vec<Neighbor> {
        OBS_SEARCHES.incr();
        OBS_PROBES.add(self.len() as u64);
        let query = self.prepared_query(query);
        let mut distances = vec![0.0f32; self.len()];
        self.metric.prepared_distance_block(&query, &self.data, &mut distances);
        let mut hits: Vec<Neighbor> = distances
            .into_iter()
            .enumerate()
            .filter_map(|(id, distance)| (distance <= radius).then_some(Neighbor { id, distance }))
            .collect();
        hits.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{CosineDistance, EuclideanDistance};

    fn index_with_points() -> ExactIndex<EuclideanDistance> {
        let mut idx = ExactIndex::new(EuclideanDistance);
        for p in [[0.0, 0.0], [1.0, 0.0], [0.0, 2.0], [3.0, 3.0]] {
            idx.insert(p.to_vec());
        }
        idx
    }

    #[test]
    fn finds_nearest_in_order() {
        let idx = index_with_points();
        let hits = idx.search(&[0.1, 0.0], 3);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let idx = index_with_points();
        assert_eq!(idx.search(&[0.0, 0.0], 10).len(), 4);
    }

    #[test]
    fn radius_search_filters() {
        let idx = index_with_points();
        let hits = idx.search_radius(&[0.0, 0.0], 1.5);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx: ExactIndex<EuclideanDistance> = ExactIndex::new(EuclideanDistance);
        assert!(idx.search(&[1.0], 5).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn chunked_parallel_scan_matches_serial_order() {
        // Enough vectors to span several scan chunks.
        let mut idx = ExactIndex::new(EuclideanDistance);
        for i in 0..(super::ExactIndex::<EuclideanDistance>::SCAN_CHUNK * 3 + 17) {
            let x = (i as f32 * 0.37).sin();
            let y = (i as f32 * 0.11).cos();
            idx.insert(vec![x, y]);
        }
        let query = [0.2, -0.4];
        let run = |threads| pas_par::with_threads(threads, || idx.search(&query, 25));
        let serial = run(1);
        assert_eq!(serial.len(), 25);
        for w in serial.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        assert_eq!(run(8), serial);
    }

    #[test]
    fn search_batch_matches_per_query_search() {
        let idx = index_with_points();
        let queries = vec![vec![0.1, 0.0], vec![3.0, 3.0], vec![-1.0, -1.0]];
        let batch = idx.search_batch(&queries, 2);
        assert_eq!(batch.len(), 3);
        for (q, hits) in queries.iter().zip(&batch) {
            assert_eq!(hits, &idx.search(q, 2));
        }
    }

    #[test]
    fn tie_break_by_id() {
        let mut idx = ExactIndex::new(EuclideanDistance);
        idx.insert(vec![1.0, 0.0]);
        idx.insert(vec![1.0, 0.0]);
        let hits = idx.search(&[1.0, 0.0], 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 1);
    }

    #[test]
    fn cosine_store_is_prenormalized_and_scale_invariant() {
        let mut idx = ExactIndex::new(CosineDistance);
        idx.insert(vec![3.0, 0.0, 4.0]);
        idx.insert(vec![0.0, 1.0, 0.0]);
        assert_eq!(idx.norm(0), 5.0);
        assert!((pas_kernels::sum_sq(idx.vector(0)).sqrt() - 1.0).abs() < 1e-6);
        // An unnormalized query parallel to vector 0 probes at distance ~0.
        let hits = idx.search(&[0.3, 0.0, 0.4], 2);
        assert_eq!(hits[0].id, 0);
        assert!(hits[0].distance < 1e-6);
        assert!((hits[1].distance - 1.0).abs() < 1e-6);
    }

    /// Unit vectors on a ring, dense enough that int8 rounding error could
    /// flip neighbors without the re-rank.
    fn ring(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                let x = i as f32 * 0.113;
                vec![x.sin(), x.cos(), (x * 0.7).sin(), (x * 1.3).cos()]
            })
            .collect()
    }

    #[test]
    fn quantized_search_matches_f32_search_exactly() {
        let mut plain = ExactIndex::new(CosineDistance);
        let mut quant = ExactIndex::new(CosineDistance);
        quant.set_quantization(true);
        for v in ring(400) {
            plain.insert(v.clone());
            quant.insert(v);
        }
        assert!(quant.quantized());
        assert_eq!(quant.probe_bytes_per_vector(), 4 + 4); // dim i8 + scale
        assert_eq!(plain.probe_bytes_per_vector(), 16); // dim f32
        for (qi, q) in ring(400).into_iter().step_by(29).enumerate() {
            let want = plain.search(&q, 5);
            let got = quant.search(&q, 5);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.id, w.id, "query {qi}");
                // Re-ranked distances are the exact f32 ones, bit for bit.
                assert_eq!(g.distance.to_bits(), w.distance.to_bits(), "query {qi}");
            }
        }
        // Enabling after the fact quantizes retroactively and matches too.
        let mut late = ExactIndex::new(CosineDistance);
        for v in ring(400) {
            late.insert(v);
        }
        late.set_quantization(true);
        let q = vec![0.4, 0.6, -0.2, 0.1];
        assert_eq!(late.search(&q, 3), quant.search(&q, 3));
        // And switching off drops back to the plain path.
        late.set_quantization(false);
        assert!(!late.quantized());
        assert_eq!(late.search(&q, 3), plain.search(&q, 3));
    }

    #[test]
    fn quantized_scan_is_thread_invariant() {
        let mut idx = ExactIndex::new(CosineDistance);
        idx.set_quantization(true);
        for i in 0..(super::ExactIndex::<CosineDistance>::SCAN_CHUNK * 2 + 31) {
            let x = i as f32 * 0.0371;
            idx.insert(vec![x.sin(), x.cos(), (x * 0.9).sin(), (x * 1.7).cos()]);
        }
        let query = [0.2, -0.4, 0.6, 0.1];
        let run = |threads| pas_par::with_threads(threads, || idx.search(&query, 9));
        assert_eq!(run(1), run(8));
    }

    #[test]
    #[should_panic(expected = "no quantized probe path")]
    fn quantization_rejects_unsupported_metric() {
        let mut idx = ExactIndex::new(EuclideanDistance);
        idx.set_quantization(true);
    }

    /// Clustered unit vectors: `n` points around `clusters` smooth anchors.
    fn clustered(n: usize, clusters: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                let c = (i % clusters) as f32;
                (0..dim)
                    .map(|d| (d as f32 * 0.61 + c * 2.3).sin() + (i as f32 * 0.013).sin() * 0.05)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pq_search_recall_and_lazy_training() {
        let mut plain = ExactIndex::new(CosineDistance);
        let mut pq = ExactIndex::new(CosineDistance);
        pq.set_product_quantization(true);
        assert!(pq.product_quantized());
        let vecs = clustered(500, 13, 16);
        for (i, v) in vecs.iter().enumerate() {
            plain.insert(v.clone());
            pq.insert(v.clone());
            if i + 1 < PQ_TRAIN_MIN {
                // Below the training floor the probe path is still f32.
                assert_eq!(pq.probe_bytes_per_vector(), 16 * 4);
            }
        }
        // Trained: dim 16 → 2 bytes per vector, ≥ 8x below int8's dim+4.
        assert_eq!(pq.probe_bytes_per_vector(), 2);
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in vecs.iter().step_by(17) {
            let want = plain.search(q, 10);
            let got = pq.search(q, 10);
            assert_eq!(got.len(), want.len());
            let want_ids: Vec<usize> = want.iter().map(|h| h.id).collect();
            hit += got.iter().filter(|h| want_ids.contains(&h.id)).count();
            total += want.len();
            // Whatever PQ returns carries exact f32 distances.
            for g in &got {
                let exact = plain.search_radius(&vecs[g.id], 0.0);
                assert!(!exact.is_empty() || g.distance >= 0.0);
            }
        }
        assert!(hit as f64 >= total as f64 * 0.95, "recall {hit}/{total} below 0.95");
        // Disabling falls back to the plain scan, bit-identical.
        pq.set_product_quantization(false);
        let q = &vecs[3];
        assert_eq!(pq.search(q, 5), plain.search(q, 5));
    }

    #[test]
    fn pq_and_int8_tiers_are_mutually_exclusive() {
        let mut idx = ExactIndex::new(CosineDistance);
        for v in clustered(PQ_TRAIN_MIN + 10, 7, 8) {
            idx.insert(v);
        }
        idx.set_quantization(true);
        assert!(idx.quantized());
        idx.set_product_quantization(true);
        assert!(idx.product_quantized() && !idx.quantized());
        assert_eq!(idx.probe_bytes_per_vector(), 1); // dim 8 → m 1
        idx.set_quantization(true);
        assert!(idx.quantized() && !idx.product_quantized());
        assert_eq!(idx.probe_bytes_per_vector(), 8 + 4);
    }

    #[test]
    fn pq_search_is_thread_invariant() {
        let mut idx = ExactIndex::new(CosineDistance);
        idx.set_product_quantization(true);
        for v in clustered(super::ExactIndex::<CosineDistance>::SCAN_CHUNK * 2 + 31, 11, 8) {
            idx.insert(v);
        }
        let query = clustered(1, 5, 8).pop().unwrap();
        let run = |threads| pas_par::with_threads(threads, || idx.search(&query, 9));
        assert_eq!(run(1), run(8));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn insert_rejects_mixed_dims() {
        let mut idx = ExactIndex::new(EuclideanDistance);
        idx.insert(vec![1.0, 2.0]);
        idx.insert(vec![1.0]);
    }
}

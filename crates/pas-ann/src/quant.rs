//! Shared int8 quantized-vector storage for the indexes.
//!
//! A [`QuantStore`] holds one int8 code row plus one `f32` scale per stored
//! vector, flat and contiguous so block probes ([`pas_kernels::dot_i8_block`]
//! via [`crate::Metric::quantized_distance_block`]) scan it without
//! gathering. The traversal-resident working set per vector drops from
//! `4·dim` bytes (f32) to `dim + 4` bytes — the ~4× cut the bench reports —
//! while the exact f32 rows stay out-of-band for the re-rank pass.
//!
//! The re-rank contract: a quantized probe first selects
//! [`rerank_overfetch`]`(k)` candidates by approximate integer distance,
//! then recomputes exact f32 distances for just those and returns the true
//! top-`k`. The property tests pin recall@k == 1.0 against the pure-f32
//! index at this over-fetch on unit-vector workloads.

use crate::metric::Metric;

// Observability counters shared by both indexes' quantized probe paths:
// vectors probed through int8 codes, and candidates exactly re-ranked.
pub(crate) static OBS_QUANTIZED: pas_obs::Counter = pas_obs::Counter::new("ann.probe.quantized");
pub(crate) static OBS_RERANK: pas_obs::Counter = pas_obs::Counter::new("ann.probe.rerank");

/// How many candidates a quantized probe over-fetches before the exact f32
/// re-rank keeps `k`. Generous on purpose: int8 cosine error on unit vectors
/// is ~1e-2, so a 4k+32 margin makes the re-ranked top-k match the pure-f32
/// top-k on every workload the property tests throw at it.
pub fn rerank_overfetch(k: usize) -> usize {
    k * 4 + 32
}

/// Flat per-vector int8 codes + scales, aligned with index ids.
#[derive(Debug, Clone, Default)]
pub struct QuantStore {
    dim: usize,
    codes: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantStore {
    /// Empty store; the dimension locks in at the first [`QuantStore::push`].
    pub fn new() -> Self {
        QuantStore::default()
    }

    /// Quantizes a prepared vector via the metric and appends it.
    ///
    /// # Panics
    /// Panics when the metric does not support quantization or the
    /// dimension differs from earlier rows.
    pub fn push<M: Metric>(&mut self, metric: &M, prepared: &[f32]) {
        let (codes, scale) = metric.quantize(prepared).expect("metric has no quantized probe path");
        if self.scales.is_empty() {
            self.dim = codes.len();
        }
        assert_eq!(codes.len(), self.dim, "quantized row dimension mismatch");
        self.codes.extend_from_slice(&codes);
        self.scales.push(scale);
    }

    /// Appends an all-zero placeholder row (scale 0) for a removed slot, so
    /// row indices stay aligned with positional ids.
    pub fn push_placeholder(&mut self, dim: usize) {
        if self.scales.is_empty() {
            self.dim = dim;
        }
        assert_eq!(dim, self.dim, "quantized row dimension mismatch");
        self.codes.resize(self.codes.len() + self.dim, 0);
        self.scales.push(0.0);
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.scales.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }

    /// Code row and scale for `id`.
    pub fn row(&self, id: usize) -> (&[i8], f32) {
        (&self.codes[id * self.dim..(id + 1) * self.dim], self.scales[id])
    }

    /// Contiguous code rows for `start..end` plus their scales — the panel
    /// form the block probes consume.
    pub fn rows(&self, start: usize, end: usize) -> (&[i8], &[f32]) {
        (&self.codes[start * self.dim..end * self.dim], &self.scales[start..end])
    }

    /// Gathers the code rows for `ids` into caller-owned panel buffers
    /// (cleared first). For the batched HNSW expansions, whose neighbor ids
    /// are not contiguous.
    pub fn gather(&self, ids: &[usize], panel: &mut Vec<i8>, scales: &mut Vec<f32>) {
        panel.clear();
        scales.clear();
        for &id in ids {
            let (codes, scale) = self.row(id);
            panel.extend_from_slice(codes);
            scales.push(scale);
        }
    }

    /// Probe-path bytes per stored vector (codes + scale) — what a
    /// traversal actually touches, vs `4·dim` for f32 rows.
    pub fn bytes_per_vector(&self) -> usize {
        self.dim + std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::CosineDistance;

    fn prepared(seed: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..16).map(|i| ((i + seed * 7) as f32 * 0.29).sin()).collect();
        CosineDistance.prepare(&mut v);
        v
    }

    #[test]
    fn rows_round_trip_and_pack() {
        let mut store = QuantStore::new();
        let vecs: Vec<Vec<f32>> = (0..5).map(prepared).collect();
        for v in &vecs {
            store.push(&CosineDistance, v);
        }
        assert_eq!(store.len(), 5);
        assert_eq!(store.bytes_per_vector(), 16 + 4);
        for (id, v) in vecs.iter().enumerate() {
            let (codes, scale) = store.row(id);
            let (want_codes, want_scale) = CosineDistance.quantize(v).unwrap();
            assert_eq!(codes, &want_codes[..], "row {id}");
            assert_eq!(scale.to_bits(), want_scale.to_bits(), "row {id}");
        }
        let (panel, scales) = store.rows(1, 4);
        assert_eq!(panel.len(), 3 * 16);
        assert_eq!(scales.len(), 3);
        let mut gathered = Vec::new();
        let mut gscales = Vec::new();
        store.gather(&[4, 0, 2], &mut gathered, &mut gscales);
        assert_eq!(&gathered[..16], store.row(4).0);
        assert_eq!(gscales[1].to_bits(), store.row(0).1.to_bits());
    }

    #[test]
    fn overfetch_grows_with_k() {
        assert!(rerank_overfetch(1) >= 32);
        assert!(rerank_overfetch(10) > rerank_overfetch(1));
    }

    #[test]
    #[should_panic(expected = "no quantized probe path")]
    fn push_rejects_unquantizable_metric() {
        let mut store = QuantStore::new();
        store.push(&crate::metric::EuclideanDistance, &[1.0, 2.0]);
    }
}

//! Shared quantized-vector storage for the indexes: the int8 scalar tier
//! and the product-quantization (PQ) tier.
//!
//! A [`QuantStore`] holds one int8 code row plus one `f32` scale per stored
//! vector, flat and contiguous so block probes ([`pas_kernels::dot_i8_block`]
//! via [`crate::Metric::quantized_distance_block`]) scan it without
//! gathering. The traversal-resident working set per vector drops from
//! `4·dim` bytes (f32) to `dim + 4` bytes — the ~4× cut the bench reports —
//! while the exact f32 rows stay out-of-band for the re-rank pass.
//!
//! A [`PqStore`] goes further: vectors split into `m` subspaces, each
//! subspace gets a seeded-k-means codebook of 256 centroids
//! ([`PqCodebook`]), and a stored vector is just the `m` one-byte centroid
//! ids — `dim / 8` bytes per vector at the default subspace width of 8,
//! ~8× below the int8 tier and ~32× below f32. A probe builds one ADC
//! (asymmetric distance computation) table per query — per-subspace dots
//! against every centroid, quantized to 16-bit fixed point ([`PqTable`]) —
//! and each stored vector's approximate distance is then `m` integer table
//! adds ([`pas_kernels::lut_gather`]). Integer accumulation is associative,
//! so PQ probes are bit-identical on every kernel backend and at every
//! thread count by construction.
//!
//! The re-rank contract: a quantized probe first selects
//! [`rerank_overfetch`]`(k)` (int8) or [`pq_rerank_overfetch`]`(k)` (PQ)
//! candidates by approximate distance, then recomputes exact f32 distances
//! for just those and returns the true top-`k`. The property tests pin
//! recall@k == 1.0 (int8) and ≥ 0.95 (PQ) against the pure-f32 index at
//! these over-fetches.

use crate::kmeans::{kmeans, KMeansConfig};
use crate::metric::Metric;

// Observability counters shared by both indexes' quantized probe paths:
// vectors probed through int8 codes, candidates exactly re-ranked, vectors
// probed through PQ codes, and ADC tables built. All are exact functions of
// the workload, so they are safe in golden fixtures.
pub(crate) static OBS_QUANTIZED: pas_obs::Counter = pas_obs::Counter::new("ann.probe.quantized");
pub(crate) static OBS_RERANK: pas_obs::Counter = pas_obs::Counter::new("ann.probe.rerank");
pub(crate) static OBS_PQ: pas_obs::Counter = pas_obs::Counter::new("ann.probe.pq");
pub(crate) static OBS_PQ_TABLES: pas_obs::Counter = pas_obs::Counter::new("ann.pq.table_build");

// Probe-path bytes per vector, per quantization tier, recorded when a tier
// activates (serial contexts only — tier toggles and lazy training both run
// under `&mut self`). Deterministic functions of the dimension, so
// fixture-safe.
pub(crate) static OBS_BPV_INT8: pas_obs::Gauge = pas_obs::Gauge::new("ann.bytes_per_vector.int8");
pub(crate) static OBS_BPV_PQ: pas_obs::Gauge = pas_obs::Gauge::new("ann.bytes_per_vector.pq");

/// How many candidates a quantized probe over-fetches before the exact f32
/// re-rank keeps `k`. Generous on purpose: int8 cosine error on unit vectors
/// is ~1e-2, so a 4k+32 margin makes the re-ranked top-k match the pure-f32
/// top-k on every workload the property tests throw at it.
pub fn rerank_overfetch(k: usize) -> usize {
    k * 4 + 32
}

/// Flat per-vector int8 codes + scales, aligned with index ids.
#[derive(Debug, Clone, Default)]
pub struct QuantStore {
    dim: usize,
    codes: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantStore {
    /// Empty store; the dimension locks in at the first [`QuantStore::push`].
    pub fn new() -> Self {
        QuantStore::default()
    }

    /// Quantizes a prepared vector via the metric and appends it.
    ///
    /// # Panics
    /// Panics when the metric does not support quantization or the
    /// dimension differs from earlier rows.
    pub fn push<M: Metric>(&mut self, metric: &M, prepared: &[f32]) {
        let (codes, scale) = metric.quantize(prepared).expect("metric has no quantized probe path");
        if self.scales.is_empty() {
            self.dim = codes.len();
            OBS_BPV_INT8.set(self.bytes_per_vector() as u64);
        }
        assert_eq!(codes.len(), self.dim, "quantized row dimension mismatch");
        self.codes.extend_from_slice(&codes);
        self.scales.push(scale);
    }

    /// Appends an all-zero placeholder row (scale 0) for a removed slot, so
    /// row indices stay aligned with positional ids.
    pub fn push_placeholder(&mut self, dim: usize) {
        if self.scales.is_empty() {
            self.dim = dim;
        }
        assert_eq!(dim, self.dim, "quantized row dimension mismatch");
        self.codes.resize(self.codes.len() + self.dim, 0);
        self.scales.push(0.0);
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.scales.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }

    /// Code row and scale for `id`.
    pub fn row(&self, id: usize) -> (&[i8], f32) {
        (&self.codes[id * self.dim..(id + 1) * self.dim], self.scales[id])
    }

    /// Contiguous code rows for `start..end` plus their scales — the panel
    /// form the block probes consume.
    pub fn rows(&self, start: usize, end: usize) -> (&[i8], &[f32]) {
        (&self.codes[start * self.dim..end * self.dim], &self.scales[start..end])
    }

    /// The flat row-major code store plus all per-row scales — what the
    /// row-indexed probe path ([`pas_kernels::dot_i8_rows`]) reads straight
    /// through, with no panel packing.
    pub fn flat(&self) -> (&[i8], &[f32]) {
        (&self.codes, &self.scales)
    }

    /// Gathers the code rows for `ids` into caller-owned panel buffers
    /// (cleared first). For the batched HNSW expansions, whose neighbor ids
    /// are not contiguous.
    pub fn gather(&self, ids: &[usize], panel: &mut Vec<i8>, scales: &mut Vec<f32>) {
        panel.clear();
        scales.clear();
        for &id in ids {
            let (codes, scale) = self.row(id);
            panel.extend_from_slice(codes);
            scales.push(scale);
        }
    }

    /// Probe-path bytes per stored vector (codes + scale) — what a
    /// traversal actually touches, vs `4·dim` for f32 rows.
    pub fn bytes_per_vector(&self) -> usize {
        self.dim + std::mem::size_of::<f32>()
    }

    /// Raw parts for the dump codec: `(dim, codes, scales)`.
    pub(crate) fn to_parts(&self) -> (usize, &[i8], &[f32]) {
        (self.dim, &self.codes, &self.scales)
    }

    /// Rebuilds a store from dumped parts.
    ///
    /// # Panics
    /// Panics when the code length is not `dim * scales.len()`.
    pub(crate) fn from_parts(dim: usize, codes: Vec<i8>, scales: Vec<f32>) -> QuantStore {
        assert_eq!(codes.len(), dim * scales.len(), "quantized parts shape mismatch");
        QuantStore { dim, codes, scales }
    }
}

/// How many candidates a PQ probe over-fetches before the exact f32 re-rank
/// keeps `k`. Wider than the int8 margin: PQ codes are lossy (sub-byte per
/// dimension), so the approximate ranking is noisier and the recall target is
/// ≥ 0.95 rather than the int8 tier's exact 1.0.
pub fn pq_rerank_overfetch(k: usize) -> usize {
    k * 8 + 64
}

/// Centroid count per subspace — one byte of code addresses all of them.
const PQ_KC: usize = 256;

/// Fixed-point bias added to every ADC table entry so the stored `u32` slots
/// are non-negative. Subtracted back out (times `m`) when decoding a row sum.
const PQ_LUT_BIAS: i32 = 1 << 15;

/// Product-quantization hyper-parameters.
#[derive(Debug, Clone)]
pub struct PqConfig {
    /// Training-sample cap: rows are stride-sampled down to this many before
    /// k-means. Bounds codebook-training cost on big stores; 256 samples per
    /// 256-centroid subspace keeps debug-build tests fast while the seeded
    /// sampling stays deterministic.
    pub train_cap: usize,
    /// Lloyd iterations per subspace codebook.
    pub max_iters: usize,
    /// Base RNG seed; each subspace trains with a seed derived from it.
    pub seed: u64,
}

impl Default for PqConfig {
    fn default() -> Self {
        PqConfig { train_cap: 256, max_iters: 8, seed: 0x70a5 }
    }
}

/// Picks the subspace width for `dim`: the widest of 8/4/2/1 that divides it.
/// At the widest split a code row is `dim / 8` bytes — 8× below int8, 32×
/// below f32.
fn pq_sub_width(dim: usize) -> usize {
    assert!(dim > 0, "product quantization requires dim > 0");
    [8usize, 4, 2, 1].into_iter().find(|&w| dim.is_multiple_of(w)).expect("1 divides dim")
}

/// Per-subspace k-means codebooks: `m` subspaces × up to 256 centroids each.
///
/// Centroid storage is padded to exactly [`PQ_KC`] rows per subspace so ADC
/// table construction is one fixed-shape [`pas_kernels::dot_block`] per
/// subspace; pad rows are zero and no code ever references them.
#[derive(Debug, Clone)]
pub struct PqCodebook {
    dim: usize,
    sub: usize,
    m: usize,
    /// Centroids actually trained per subspace (k-means clamps to the sample
    /// count); codes only ever index `0..kc`.
    kc: usize,
    /// `m` panels of `PQ_KC × sub`, subspace-major.
    centroids: Vec<f32>,
}

impl PqCodebook {
    /// Trains one codebook per subspace over `rows` (empty slices — removed
    /// slots — are skipped). Subspaces train in parallel via
    /// [`pas_par::par_map`] with per-subspace derived seeds, so the result is
    /// bit-identical at any thread count.
    ///
    /// # Panics
    /// Panics when no non-empty training row exists.
    pub fn train(rows: &[&[f32]], dim: usize, cfg: &PqConfig) -> PqCodebook {
        let sub = pq_sub_width(dim);
        let m = dim / sub;
        let live: Vec<&[f32]> = rows.iter().copied().filter(|r| !r.is_empty()).collect();
        assert!(!live.is_empty(), "PqCodebook::train requires at least one live row");
        // Deterministic stride sample down to the training cap.
        let cap = cfg.train_cap.max(1);
        let step = live.len().div_ceil(cap);
        let sample: Vec<&[f32]> = live.iter().copied().step_by(step).collect();
        let kc = PQ_KC.min(sample.len());

        let _span = pas_obs::span("ann.pq.train");
        let subspaces: Vec<usize> = (0..m).collect();
        let panels = pas_par::par_map(&subspaces, |_, &s| {
            let points: Vec<Vec<f32>> =
                sample.iter().map(|r| r[s * sub..(s + 1) * sub].to_vec()).collect();
            let res = kmeans(
                &points,
                &KMeansConfig {
                    k: kc,
                    max_iters: cfg.max_iters,
                    tolerance: 1e-4,
                    seed: pas_par::derive_seed(cfg.seed, s as u64),
                },
            );
            let mut panel = vec![0.0f32; PQ_KC * sub];
            for (c, centroid) in res.centroids.iter().enumerate() {
                panel[c * sub..(c + 1) * sub].copy_from_slice(centroid);
            }
            panel
        });
        let mut centroids = Vec::with_capacity(m * PQ_KC * sub);
        for panel in panels {
            centroids.extend_from_slice(&panel);
        }
        PqCodebook { dim, sub, m, kc, centroids }
    }

    /// Subspace count == bytes per encoded vector.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Input dimensionality the codebook was trained for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `PQ_KC × sub` centroid panel for subspace `s`.
    fn panel(&self, s: usize) -> &[f32] {
        &self.centroids[s * PQ_KC * self.sub..(s + 1) * PQ_KC * self.sub]
    }

    /// Raw parts for the dump codec: `(dim, sub, m, kc, centroids)`.
    pub(crate) fn to_parts(&self) -> (usize, usize, usize, usize, &[f32]) {
        (self.dim, self.sub, self.m, self.kc, &self.centroids)
    }

    /// Rebuilds a codebook from dumped parts.
    ///
    /// # Panics
    /// Panics when the panel shape is inconsistent with `(m, sub)`.
    pub(crate) fn from_parts(
        dim: usize,
        sub: usize,
        m: usize,
        kc: usize,
        centroids: Vec<f32>,
    ) -> PqCodebook {
        assert_eq!(dim, m * sub, "codebook dim mismatch");
        assert_eq!(centroids.len(), m * PQ_KC * sub, "codebook panel shape mismatch");
        assert!(kc <= PQ_KC, "codebook kc out of range");
        PqCodebook { dim, sub, m, kc, centroids }
    }

    /// Encodes a vector as `m` centroid ids (per-subspace nearest centroid,
    /// ties broken toward the lowest id).
    pub fn encode_into(&self, v: &[f32], out: &mut Vec<u8>) {
        assert_eq!(v.len(), self.dim, "encode dimension mismatch");
        for s in 0..self.m {
            let q = &v[s * self.sub..(s + 1) * self.sub];
            let panel = self.panel(s);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..self.kc {
                let d = pas_kernels::l2_sq(q, &panel[c * self.sub..(c + 1) * self.sub]);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            out.push(best as u8);
        }
    }

    /// Builds the per-query ADC table: for each subspace, the dot of the
    /// query slice against every centroid, quantized to 16-bit fixed point in
    /// `u32` slots (see [`PqTable`]). The dots come from
    /// [`pas_kernels::dot_block`] — backend-pinned bit-identical — and the
    /// fixed-point conversion is elementwise, so table construction is as
    /// deterministic as a single probe.
    pub fn table(&self, query: &[f32]) -> PqTable {
        assert_eq!(query.len(), self.dim, "table dimension mismatch");
        let mut dots = vec![0.0f32; self.m * PQ_KC];
        for s in 0..self.m {
            pas_kernels::dot_block(
                &query[s * self.sub..(s + 1) * self.sub],
                self.panel(s),
                &mut dots[s * PQ_KC..(s + 1) * PQ_KC],
            );
        }
        let amax = dots.iter().fold(0.0f32, |a, &d| a.max(d.abs()));
        let (scale, unit) = if amax > 0.0 { (32767.0 / amax, amax / 32767.0) } else { (0.0, 0.0) };
        let lut: Vec<u32> =
            dots.iter().map(|&d| ((d * scale).round() as i32 + PQ_LUT_BIAS) as u32).collect();
        OBS_PQ_TABLES.incr();
        PqTable { m: self.m, unit, lut }
    }
}

/// A per-query ADC lookup table in fixed point.
///
/// Slot `s·256 + c` holds `round(dot(q_s, centroid_{s,c}) · 32767/amax) +
/// 32768` where `amax` is the largest |dot| in the table — a biased 16-bit
/// fixed-point value in a `u32` slot (the `u32` width lets the AVX2 kernel
/// use plain dword gathers). A row's approximate distance is `m` integer
/// table adds ([`pas_kernels::lut_gather`]): integer addition is associative,
/// so the sum — and hence the whole PQ ranking — is bit-identical on every
/// backend and at every thread count. Decoding subtracts the bias and scales
/// back: `dist = max(0, 1 − (sum − m·32768)·unit)`, the same `1 − dot` form
/// as the exact cosine probe.
#[derive(Debug, Clone)]
pub struct PqTable {
    m: usize,
    /// Fixed-point step in dot units: `amax / 32767` (0 for an all-zero
    /// query, which decodes every row to distance 1.0 — the zero-vector
    /// convention the exact metric uses).
    unit: f32,
    lut: Vec<u32>,
}

impl PqTable {
    /// Decodes an integer LUT sum into an approximate cosine distance.
    #[inline]
    fn decode(&self, sum: u32) -> f32 {
        let centered = sum as i64 - self.m as i64 * PQ_LUT_BIAS as i64;
        (1.0 - centered as f32 * self.unit).max(0.0)
    }

    /// Approximate distance for one code row.
    #[inline]
    pub fn distance(&self, codes: &[u8]) -> f32 {
        self.decode(pas_kernels::lut_gather(&self.lut, codes))
    }

    /// Approximate distances for a packed panel of `out.len()` code rows
    /// (`panel[r·m..(r+1)·m]` is row `r`), via the blocked gather kernel.
    pub fn distance_block(&self, panel: &[u8], sums: &mut Vec<u32>, out: &mut Vec<f32>) {
        let rows = panel.len() / self.m.max(1);
        sums.clear();
        sums.resize(rows, 0);
        pas_kernels::lut_gather_block(&self.lut, panel, sums);
        out.clear();
        out.extend(sums.iter().map(|&s| self.decode(s)));
    }

    /// Approximate distances for the code rows `rows[j]` of a flat store,
    /// via the row-indexed gather kernel — no panel packing.
    pub fn distance_rows(
        &self,
        codes: &[u8],
        rows: &[usize],
        sums: &mut Vec<u32>,
        out: &mut Vec<f32>,
    ) {
        sums.clear();
        sums.resize(rows.len(), 0);
        pas_kernels::lut_gather_rows(&self.lut, codes, rows, sums);
        out.clear();
        out.extend(sums.iter().map(|&s| self.decode(s)));
    }
}

/// Minimum live rows before a lazily-enabled PQ store trains its codebook.
/// Below this the indexes keep probing in f32; k-means on a handful of rows
/// would memorize them and generalize poorly to later inserts.
pub const PQ_TRAIN_MIN: usize = 64;

/// Flat per-vector PQ code rows, aligned with index ids.
///
/// Created untrained; the owning index calls [`PqStore::train_encode`] once
/// enough rows exist (see [`PQ_TRAIN_MIN`]), after which new rows are encoded
/// on insert. Until then [`PqStore::ready`] is false and probes fall back to
/// exact f32.
#[derive(Debug, Clone)]
pub struct PqStore {
    cfg: PqConfig,
    codebook: Option<PqCodebook>,
    codes: Vec<u8>,
    rows: usize,
}

impl PqStore {
    /// Empty, untrained store.
    pub fn new(cfg: PqConfig) -> Self {
        PqStore { cfg, codebook: None, codes: Vec::new(), rows: 0 }
    }

    /// True once the codebook is trained and rows are encoded.
    pub fn ready(&self) -> bool {
        self.codebook.is_some()
    }

    /// Bytes per encoded vector (== subspace count). 0 before training.
    pub fn bytes_per_vector(&self) -> usize {
        self.codebook.as_ref().map_or(0, |cb| cb.m)
    }

    /// Number of stored rows (placeholders included). 0 before training.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows are encoded yet.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Trains the codebook on `rows` and encodes every row (empty slices —
    /// removed slots — become placeholder rows, keeping positional ids
    /// aligned). Replaces any previous codebook and codes.
    pub fn train_encode(&mut self, rows: &[&[f32]], dim: usize) {
        let codebook = PqCodebook::train(rows, dim, &self.cfg);
        let m = codebook.m;
        self.codes.clear();
        self.codes.reserve(rows.len() * m);
        let encoded = pas_par::par_map(rows, |_, r| {
            let mut row = Vec::with_capacity(m);
            if r.is_empty() {
                row.resize(m, 0u8);
            } else {
                codebook.encode_into(r, &mut row);
            }
            row
        });
        for row in encoded {
            self.codes.extend_from_slice(&row);
        }
        self.rows = rows.len();
        self.codebook = Some(codebook);
        OBS_BPV_PQ.set(m as u64);
    }

    /// Encodes and appends one prepared vector.
    ///
    /// # Panics
    /// Panics when the store is not [`PqStore::ready`].
    pub fn push(&mut self, prepared: &[f32]) {
        let cb = self.codebook.as_ref().expect("PqStore::push before train_encode");
        cb.encode_into(prepared, &mut self.codes);
        self.rows += 1;
    }

    /// Appends an all-zero placeholder row for a removed slot.
    pub fn push_placeholder(&mut self) {
        let m = self.codebook.as_ref().expect("PqStore::push_placeholder before train_encode").m;
        self.codes.resize(self.codes.len() + m, 0);
        self.rows += 1;
    }

    /// Code row for `id`.
    pub fn row(&self, id: usize) -> &[u8] {
        let m = self.bytes_per_vector();
        &self.codes[id * m..(id + 1) * m]
    }

    /// Contiguous code rows for `start..end` — the panel form
    /// [`PqTable::distance_block`] consumes.
    pub fn rows(&self, start: usize, end: usize) -> &[u8] {
        let m = self.bytes_per_vector();
        &self.codes[start * m..end * m]
    }

    /// The flat row-major code store — what the row-indexed probe path
    /// ([`PqTable::distance_rows`]) reads straight through.
    pub fn flat(&self) -> &[u8] {
        &self.codes
    }

    /// Gathers the code rows for `ids` into a caller-owned panel buffer
    /// (cleared first), for the batched HNSW expansions.
    pub fn gather(&self, ids: &[usize], panel: &mut Vec<u8>) {
        panel.clear();
        for &id in ids {
            panel.extend_from_slice(self.row(id));
        }
    }

    /// Builds the ADC table for `query`.
    ///
    /// # Panics
    /// Panics when the store is not [`PqStore::ready`].
    pub fn table(&self, query: &[f32]) -> PqTable {
        self.codebook.as_ref().expect("PqStore::table before train_encode").table(query)
    }

    /// Raw parts for the dump codec: `(cfg, codebook, codes, rows)`.
    pub(crate) fn to_parts(&self) -> (&PqConfig, Option<&PqCodebook>, &[u8], usize) {
        (&self.cfg, self.codebook.as_ref(), &self.codes, self.rows)
    }

    /// Rebuilds a store from dumped parts.
    ///
    /// # Panics
    /// Panics when the code length is not `rows * m` (or non-empty while
    /// untrained).
    pub(crate) fn from_parts(
        cfg: PqConfig,
        codebook: Option<PqCodebook>,
        codes: Vec<u8>,
        rows: usize,
    ) -> PqStore {
        let m = codebook.as_ref().map_or(0, |cb| cb.m);
        assert_eq!(codes.len(), rows * m, "PQ parts shape mismatch");
        PqStore { cfg, codebook, codes, rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::CosineDistance;

    fn prepared(seed: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..16).map(|i| ((i + seed * 7) as f32 * 0.29).sin()).collect();
        CosineDistance.prepare(&mut v);
        v
    }

    #[test]
    fn rows_round_trip_and_pack() {
        let mut store = QuantStore::new();
        let vecs: Vec<Vec<f32>> = (0..5).map(prepared).collect();
        for v in &vecs {
            store.push(&CosineDistance, v);
        }
        assert_eq!(store.len(), 5);
        assert_eq!(store.bytes_per_vector(), 16 + 4);
        for (id, v) in vecs.iter().enumerate() {
            let (codes, scale) = store.row(id);
            let (want_codes, want_scale) = CosineDistance.quantize(v).unwrap();
            assert_eq!(codes, &want_codes[..], "row {id}");
            assert_eq!(scale.to_bits(), want_scale.to_bits(), "row {id}");
        }
        let (panel, scales) = store.rows(1, 4);
        assert_eq!(panel.len(), 3 * 16);
        assert_eq!(scales.len(), 3);
        let mut gathered = Vec::new();
        let mut gscales = Vec::new();
        store.gather(&[4, 0, 2], &mut gathered, &mut gscales);
        assert_eq!(&gathered[..16], store.row(4).0);
        assert_eq!(gscales[1].to_bits(), store.row(0).1.to_bits());
    }

    #[test]
    fn overfetch_grows_with_k() {
        assert!(rerank_overfetch(1) >= 32);
        assert!(rerank_overfetch(10) > rerank_overfetch(1));
    }

    #[test]
    #[should_panic(expected = "no quantized probe path")]
    fn push_rejects_unquantizable_metric() {
        let mut store = QuantStore::new();
        store.push(&crate::metric::EuclideanDistance, &[1.0, 2.0]);
    }

    fn prepared_dim(seed: usize, dim: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|i| ((i * 13 + seed * 7) as f32 * 0.37).sin()).collect();
        CosineDistance.prepare(&mut v);
        v
    }

    #[test]
    fn pq_sub_width_picks_widest_divisor() {
        assert_eq!(pq_sub_width(64), 8);
        assert_eq!(pq_sub_width(12), 4);
        assert_eq!(pq_sub_width(10), 2);
        assert_eq!(pq_sub_width(7), 1);
    }

    #[test]
    fn pq_store_trains_encodes_and_probes() {
        let dim = 16;
        let vecs: Vec<Vec<f32>> = (0..80).map(|s| prepared_dim(s, dim)).collect();
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        let mut store = PqStore::new(PqConfig::default());
        assert!(!store.ready());
        store.train_encode(&refs, dim);
        assert!(store.ready());
        assert_eq!(store.len(), 80);
        // dim 16 → sub 8 → m 2 bytes per vector.
        assert_eq!(store.bytes_per_vector(), 2);

        let query = prepared_dim(997, dim);
        let table = store.table(&query);
        // Single-row distances agree with the blocked path on a packed panel.
        let panel = store.rows(0, store.len());
        let mut sums = Vec::new();
        let mut block = Vec::new();
        table.distance_block(panel, &mut sums, &mut block);
        for (id, b) in block.iter().enumerate() {
            assert_eq!(table.distance(store.row(id)).to_bits(), b.to_bits(), "row {id}");
        }
        // The approximate distance tracks the exact one: the PQ-nearest row
        // should be among the exact top quarter on this smooth workload.
        let exact: Vec<f32> =
            vecs.iter().map(|v| CosineDistance.prepared_distance(&query, v)).collect();
        let pq_best = (0..store.len())
            .min_by(|&a, &b| block[a].total_cmp(&block[b]).then(a.cmp(&b)))
            .unwrap();
        let mut order: Vec<usize> = (0..store.len()).collect();
        order.sort_by(|&a, &b| exact[a].total_cmp(&exact[b]));
        let rank = order.iter().position(|&i| i == pq_best).unwrap();
        assert!(rank < 20, "PQ-nearest row ranks {rank} exactly");
    }

    #[test]
    fn pq_push_matches_train_encode() {
        let dim = 8;
        let vecs: Vec<Vec<f32>> = (0..70).map(|s| prepared_dim(s, dim)).collect();
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        let mut store = PqStore::new(PqConfig::default());
        store.train_encode(&refs[..64], dim);
        for v in &refs[64..] {
            store.push(v);
        }
        store.push_placeholder();
        // Re-encoding a trained row reproduces its stored codes.
        let mut again = Vec::new();
        store.codebook.as_ref().unwrap().encode_into(&vecs[3], &mut again);
        assert_eq!(store.row(3), &again[..]);
        assert_eq!(store.len(), 71);
        assert_eq!(store.row(70), &[0u8; 1][..]);
    }

    #[test]
    fn pq_table_zero_query_decodes_to_unit_distance() {
        let dim = 8;
        let vecs: Vec<Vec<f32>> = (0..8).map(|s| prepared_dim(s, dim)).collect();
        let refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        let mut store = PqStore::new(PqConfig::default());
        store.train_encode(&refs, dim);
        let table = store.table(&vec![0.0; dim]);
        assert_eq!(table.distance(store.row(0)), 1.0);
    }

    #[test]
    fn pq_train_skips_removed_rows() {
        let dim = 8;
        let vecs: Vec<Vec<f32>> = (0..40).map(|s| prepared_dim(s, dim)).collect();
        let mut refs: Vec<&[f32]> = vecs.iter().map(|v| v.as_slice()).collect();
        refs[5] = &[];
        refs[17] = &[];
        let mut store = PqStore::new(PqConfig::default());
        store.train_encode(&refs, dim);
        assert_eq!(store.len(), 40);
        assert_eq!(store.row(5), &[0u8; 1][..]);
    }

    #[test]
    fn pq_overfetch_wider_than_int8() {
        assert!(pq_rerank_overfetch(1) > rerank_overfetch(1));
        assert!(pq_rerank_overfetch(10) > pq_rerank_overfetch(1));
    }
}

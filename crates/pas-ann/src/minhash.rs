//! MinHash signatures and LSH banding — the classical near-duplicate
//! detector, provided as an alternative backend to the embedding+HNSW
//! pipeline and as its correctness cross-check.
//!
//! A document is a set of shingle hashes; its MinHash signature stores, for
//! each of `num_hashes` seeded permutations, the minimum permuted value.
//! The fraction of agreeing signature positions is an unbiased estimator of
//! the Jaccard similarity of the shingle sets. LSH banding groups
//! signatures into `bands` bands of `rows` rows; documents sharing any
//! band bucket become candidate duplicates, which are then verified against
//! the signature estimate.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// MinHash parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinHashConfig {
    /// Number of hash permutations (= signature length). Must be
    /// `bands * rows`.
    pub num_hashes: usize,
    /// LSH bands.
    pub bands: usize,
    /// Rows per band.
    pub rows: usize,
    /// Permutation seed.
    pub seed: u64,
}

impl Default for MinHashConfig {
    fn default() -> Self {
        MinHashConfig { num_hashes: 64, bands: 16, rows: 4, seed: 0x314a5 }
    }
}

impl MinHashConfig {
    fn validate(&self) {
        assert!(self.num_hashes > 0, "need at least one hash");
        assert_eq!(self.bands * self.rows, self.num_hashes, "bands*rows must equal num_hashes");
    }
}

/// A MinHash signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature(Vec<u64>);

impl Signature {
    /// Signature length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the signature is empty (empty input set).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Computes MinHash signatures.
///
/// ```
/// use pas_ann::{MinHashConfig, MinHasher};
///
/// let h = MinHasher::new(MinHashConfig::default());
/// let a = h.signature(&[1, 2, 3, 4, 5, 6, 7, 8]);
/// let b = h.signature(&[1, 2, 3, 4, 5, 6, 7, 9]);
/// let est = h.estimate_jaccard(&a, &b);
/// assert!(est > 0.5, "seven of nine elements shared: {est}");
/// ```
#[derive(Debug, Clone)]
pub struct MinHasher {
    config: MinHashConfig,
    /// Per-permutation `(multiplier, addend)` for the universal hash family
    /// `h_i(x) = (a_i·x + b_i) mixed`.
    params: Vec<(u64, u64)>,
}

#[inline]
fn mix(x: u64) -> u64 {
    // splitmix64 finalizer: full-avalanche permutation of u64.
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl MinHasher {
    /// Creates a hasher.
    pub fn new(config: MinHashConfig) -> Self {
        config.validate();
        let mut state = config.seed | 1;
        let params = (0..config.num_hashes)
            .map(|_| {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let a = mix(state) | 1; // odd multiplier
                let b = mix(state ^ 0xabcd);
                (a, b)
            })
            .collect();
        MinHasher { config, params }
    }

    /// The configuration.
    pub fn config(&self) -> &MinHashConfig {
        &self.config
    }

    /// Signature of a set of element hashes. An empty set yields an empty
    /// signature (no bucket membership, similar to nothing).
    pub fn signature(&self, elements: &[u64]) -> Signature {
        if elements.is_empty() {
            return Signature(Vec::new());
        }
        let sig = self
            .params
            .iter()
            .map(|&(a, b)| {
                elements
                    .iter()
                    .map(|&x| mix(x.wrapping_mul(a).wrapping_add(b)))
                    .min()
                    .expect("non-empty")
            })
            .collect();
        Signature(sig)
    }

    /// Unbiased Jaccard estimate from two signatures (0.0 when either is
    /// empty and the other is not; 1.0 when both are empty).
    pub fn estimate_jaccard(&self, a: &Signature, b: &Signature) -> f64 {
        match (a.is_empty(), b.is_empty()) {
            (true, true) => 1.0,
            (true, false) | (false, true) => 0.0,
            _ => {
                let agree = a.0.iter().zip(&b.0).filter(|(x, y)| x == y).count();
                agree as f64 / a.0.len() as f64
            }
        }
    }
}

/// LSH index over signatures, with banding.
pub struct LshIndex {
    hasher: MinHasher,
    /// `buckets[band][band_key]` → document ids.
    buckets: Vec<HashMap<u64, Vec<usize>>>,
    signatures: Vec<Signature>,
}

impl LshIndex {
    /// Creates an empty index.
    pub fn new(config: MinHashConfig) -> Self {
        config.validate();
        let bands = config.bands;
        LshIndex {
            hasher: MinHasher::new(config),
            buckets: vec![HashMap::new(); bands],
            signatures: Vec::new(),
        }
    }

    /// The underlying hasher.
    pub fn hasher(&self) -> &MinHasher {
        &self.hasher
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    fn band_key(sig: &Signature, band: usize, rows: usize) -> u64 {
        let slice = &sig.0[band * rows..(band + 1) * rows];
        let mut acc = band as u64 ^ 0x5bd1_e995;
        for &v in slice {
            acc = mix(acc ^ v);
        }
        acc
    }

    /// Candidate duplicates of `elements` among the already-indexed
    /// documents (deduplicated ids, unordered).
    pub fn candidates(&self, sig: &Signature) -> Vec<usize> {
        if sig.is_empty() {
            return Vec::new();
        }
        let rows = self.hasher.config.rows;
        let mut out: Vec<usize> = Vec::new();
        for (band, buckets) in self.buckets.iter().enumerate() {
            if let Some(ids) = buckets.get(&Self::band_key(sig, band, rows)) {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Indexes a document's element hashes; returns `(id, signature)`.
    pub fn insert(&mut self, elements: &[u64]) -> (usize, Signature) {
        let sig = self.hasher.signature(elements);
        let id = self.signatures.len();
        if !sig.is_empty() {
            let rows = self.hasher.config.rows;
            for (band, buckets) in self.buckets.iter_mut().enumerate() {
                buckets.entry(Self::band_key(&sig, band, rows)).or_default().push(id);
            }
        }
        self.signatures.push(sig.clone());
        (id, sig)
    }

    /// Signature of a previously inserted document.
    pub fn signature_of(&self, id: usize) -> &Signature {
        &self.signatures[id]
    }
}

/// MinHash-based near-duplicate grouping over texts, mirroring
/// [`crate::Deduplicator`]'s outcome shape.
pub struct MinHashDeduplicator;

impl MinHashDeduplicator {
    /// Groups texts whose estimated shingle-Jaccard is at least
    /// `threshold`; keeps the first member of each group.
    pub fn run(
        config: MinHashConfig,
        shingle_sets: &[Vec<u64>],
        threshold: f64,
    ) -> crate::dedup::DedupOutcome {
        let mut index = LshIndex::new(config);
        let mut group_of: Vec<usize> = Vec::with_capacity(shingle_sets.len());
        let mut kept: Vec<usize> = Vec::new();
        let mut group_count = 0usize;

        for (i, elements) in shingle_sets.iter().enumerate() {
            let sig = index.hasher().signature(elements);
            let mut assigned: Option<usize> = None;
            for cand in index.candidates(&sig) {
                let est = index.hasher().estimate_jaccard(&sig, index.signature_of(cand));
                if est >= threshold {
                    assigned = Some(group_of[cand]);
                    break;
                }
            }
            let group = assigned.unwrap_or_else(|| {
                let g = group_count;
                group_count += 1;
                kept.push(i);
                g
            });
            index.insert(elements);
            group_of.push(group);
        }
        crate::dedup::DedupOutcome { kept, group_of, group_count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shingles(text: &str) -> Vec<u64> {
        let mut v = pas_text_shingles(text);
        v.sort_unstable();
        v.dedup();
        v
    }

    // Local shingle helper to avoid a dependency edge from pas-ann to
    // pas-text in the library itself; tests approximate 3-word shingles
    // with rolling sums of word hashes.
    fn pas_text_shingles(text: &str) -> Vec<u64> {
        let words: Vec<u64> = text
            .split_whitespace()
            .map(|w| {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in w.to_lowercase().bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                h
            })
            .collect();
        if words.len() < 3 {
            return words;
        }
        words.windows(3).map(|w| mix(w[0] ^ mix(w[1] ^ mix(w[2])))).collect()
    }

    fn true_jaccard(a: &[u64], b: &[u64]) -> f64 {
        let sa: std::collections::HashSet<u64> = a.iter().copied().collect();
        let sb: std::collections::HashSet<u64> = b.iter().copied().collect();
        if sa.is_empty() && sb.is_empty() {
            return 1.0;
        }
        let inter = sa.intersection(&sb).count();
        inter as f64 / (sa.len() + sb.len() - inter) as f64
    }

    #[test]
    fn identical_sets_estimate_one() {
        let h = MinHasher::new(MinHashConfig::default());
        let s = shingles("the quick brown fox jumps over the lazy dog again and again");
        let sig = h.signature(&s);
        assert!((h.estimate_jaccard(&sig, &sig) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let h = MinHasher::new(MinHashConfig::default());
        let a = h.signature(&shingles("alpha beta gamma delta epsilon zeta eta theta"));
        let b = h.signature(&shingles("one two three four five six seven eight"));
        assert!(h.estimate_jaccard(&a, &b) < 0.15);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        let h = MinHasher::new(MinHashConfig {
            num_hashes: 256,
            bands: 32,
            rows: 8,
            ..MinHashConfig::default()
        });
        let base = "a b c d e f g h i j k l m n o p q r s t";
        let variant = "a b c d e f g h i j k l m n o p q r s CHANGED";
        let sa = shingles(base);
        let sb = shingles(variant);
        let truth = true_jaccard(&sa, &sb);
        let est = h.estimate_jaccard(&h.signature(&sa), &h.signature(&sb));
        assert!((truth - est).abs() < 0.15, "true {truth} vs estimated {est}");
    }

    #[test]
    fn empty_sets_behave() {
        let h = MinHasher::new(MinHashConfig::default());
        let empty = h.signature(&[]);
        let full = h.signature(&shingles("some actual words here for once"));
        assert!(empty.is_empty());
        assert_eq!(h.estimate_jaccard(&empty, &empty), 1.0);
        assert_eq!(h.estimate_jaccard(&empty, &full), 0.0);
    }

    #[test]
    fn lsh_surfaces_near_duplicates_as_candidates() {
        let mut index = LshIndex::new(MinHashConfig::default());
        let a = shingles("how do i sort a list of a million integers efficiently in rust");
        let b = shingles("how do i sort a list of a million integers efficiently in rust please");
        let c = shingles("write a poem about the moon in autumn for my grandmother tonight");
        index.insert(&a);
        index.insert(&c);
        let sig_b = index.hasher().signature(&b);
        let cands = index.candidates(&sig_b);
        assert!(cands.contains(&0), "near-duplicate must be a candidate");
        assert!(!cands.contains(&1), "unrelated doc should not collide");
    }

    #[test]
    fn dedup_groups_exact_duplicates() {
        let texts = [
            "the selection pipeline removes duplicated prompts from the corpus",
            "the selection pipeline removes duplicated prompts from the corpus",
            "an entirely different sentence about barbecue recipes and charcoal",
        ];
        let sets: Vec<Vec<u64>> = texts.iter().map(|t| shingles(t)).collect();
        let out = MinHashDeduplicator::run(MinHashConfig::default(), &sets, 0.8);
        assert_eq!(out.kept, vec![0, 2]);
        assert_eq!(out.group_of[0], out.group_of[1]);
        assert_ne!(out.group_of[0], out.group_of[2]);
    }

    #[test]
    fn dedup_outcome_shape_is_consistent() {
        let sets: Vec<Vec<u64>> = (0..10)
            .map(|i| shingles(&format!("document number {i} with its own words entirely {i}")))
            .collect();
        let out = MinHashDeduplicator::run(MinHashConfig::default(), &sets, 0.9);
        assert_eq!(out.group_of.len(), 10);
        assert_eq!(out.kept.len(), out.group_count);
    }

    #[test]
    #[should_panic(expected = "bands*rows")]
    fn invalid_banding_rejected() {
        MinHasher::new(MinHashConfig { num_hashes: 10, bands: 3, rows: 4, seed: 0 });
    }
}

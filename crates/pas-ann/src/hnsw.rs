//! Hierarchical Navigable Small World (HNSW) index.
//!
//! Implements the construction and search procedures of Malkov & Yashunin
//! (2016): every inserted vector gets a geometrically distributed level; each
//! level holds a proximity graph; queries descend greedily from the top
//! layer and run an `ef`-bounded best-first search at layer 0.
//!
//! The implementation favours clarity and determinism (seeded level
//! assignment, id-ordered tie-breaks) over micro-optimization; the exact
//! scanner in [`crate::exact`] provides the correctness oracle in tests and
//! the speed baseline in benches.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::metric::Metric;
use crate::Neighbor;

// Observability counters. Probe counts (distance evaluations) per
// `search_layer` call are a pure function of the graph and query, and the
// parallel build plans against a frozen wave graph, so the totals are
// thread-count invariant even though the adds happen inside `par_map`.
static OBS_SEARCHES: pas_obs::Counter = pas_obs::Counter::new("ann.hnsw.searches");
static OBS_PROBES: pas_obs::Counter = pas_obs::Counter::new("ann.hnsw.probes");

/// HNSW construction parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HnswConfig {
    /// Max bidirectional links per node per layer (layer 0 uses `2 * m`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Seed for the level-assignment RNG.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig { m: 16, ef_construction: 100, seed: 0x9a5 }
    }
}

/// Distance-ordered candidate for the heaps. `Reverse`-style ordering is
/// obtained by negating through the wrapper types below.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    distance: f32,
    id: usize,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by distance, ties by id (deterministic).
        self.distance.total_cmp(&other.distance).then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    /// `neighbors[l]` = adjacency at layer `l`; length = node level + 1.
    neighbors: Vec<Vec<usize>>,
}

impl Node {
    fn level(&self) -> usize {
        self.neighbors.len() - 1
    }
}

/// The HNSW index. Generic over the distance [`Metric`].
///
/// Vectors are stored in the metric's *prepared* form ([`Metric::prepare`])
/// plus their original L2 norm: under [`crate::CosineDistance`] that is the
/// unit vector, so every probe during construction and search is a single
/// fused dot product (`1 − a·b`) instead of recomputing both operand norms.
/// Queries are prepared once per call.
pub struct Hnsw<M: Metric> {
    config: HnswConfig,
    metric: M,
    /// Prepared (e.g. unit-normalized) vectors, one per node.
    vectors: Vec<Vec<f32>>,
    /// Original L2 norm of each vector, recorded at insert.
    norms: Vec<f32>,
    nodes: Vec<Node>,
    entry: Option<usize>,
    rng: StdRng,
    level_norm: f64,
}

impl<M: Metric> Hnsw<M> {
    /// Creates an empty index.
    ///
    /// # Panics
    /// Panics when `m < 2` or `ef_construction == 0`.
    pub fn new(config: HnswConfig, metric: M) -> Self {
        assert!(config.m >= 2, "m must be at least 2");
        assert!(config.ef_construction > 0, "ef_construction must be positive");
        let level_norm = 1.0 / (config.m as f64).ln();
        let rng = StdRng::seed_from_u64(config.seed);
        Hnsw {
            config,
            metric,
            vectors: Vec::new(),
            norms: Vec::new(),
            nodes: Vec::new(),
            entry: None,
            rng,
            level_norm,
        }
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The stored vector for `id`, in the metric's prepared form (under
    /// cosine: the unit vector — multiply by [`Hnsw::norm`] to recover the
    /// original magnitude).
    pub fn vector(&self, id: usize) -> &[f32] {
        &self.vectors[id]
    }

    /// Original L2 norm of the vector inserted as `id`.
    pub fn norm(&self, id: usize) -> f32 {
        self.norms[id]
    }

    fn random_level(&mut self) -> usize {
        let u: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
        ((-u.ln()) * self.level_norm).floor() as usize
    }

    #[inline]
    fn dist(&self, a: usize, query: &[f32]) -> f32 {
        self.metric.prepared_distance(&self.vectors[a], query)
    }

    /// Best-first search at one layer. `query` must already be in prepared
    /// form. Returns up to `ef` closest candidates, unsorted.
    fn search_layer(&self, query: &[f32], entry: usize, ef: usize, layer: usize) -> Vec<Candidate> {
        let mut visited = vec![false; self.nodes.len()];
        visited[entry] = true;
        let mut probes = 1u64;
        let entry_cand = Candidate { distance: self.dist(entry, query), id: entry };

        // `candidates`: min-heap (via Reverse) of nodes to expand.
        let mut candidates: BinaryHeap<std::cmp::Reverse<Candidate>> = BinaryHeap::new();
        candidates.push(std::cmp::Reverse(entry_cand));
        // `results`: max-heap keeping the `ef` best found so far.
        let mut results: BinaryHeap<Candidate> = BinaryHeap::new();
        results.push(entry_cand);

        while let Some(std::cmp::Reverse(current)) = candidates.pop() {
            let worst = results.peek().expect("results never empty").distance;
            if current.distance > worst && results.len() >= ef {
                break;
            }
            for &next in &self.nodes[current.id].neighbors[layer] {
                if visited[next] {
                    continue;
                }
                visited[next] = true;
                probes += 1;
                let d = self.dist(next, query);
                let worst = results.peek().expect("non-empty").distance;
                if results.len() < ef || d < worst {
                    let cand = Candidate { distance: d, id: next };
                    candidates.push(std::cmp::Reverse(cand));
                    results.push(cand);
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        OBS_PROBES.add(probes);
        results.into_vec()
    }

    /// Greedy descent to the closest node at `layer`, starting from `entry`.
    fn greedy_step(&self, query: &[f32], mut entry: usize, layer: usize) -> usize {
        let mut best = self.dist(entry, query);
        loop {
            let mut improved = false;
            for &next in &self.nodes[entry].neighbors[layer] {
                let d = self.dist(next, query);
                if d < best {
                    best = d;
                    entry = next;
                    improved = true;
                }
            }
            if !improved {
                return entry;
            }
        }
    }

    fn max_links(&self, layer: usize) -> usize {
        if layer == 0 {
            self.config.m * 2
        } else {
            self.config.m
        }
    }

    /// Inserts a vector, returning its id (insertion order).
    pub fn insert(&mut self, mut vector: Vec<f32>) -> usize {
        let norm = self.metric.prepare(&mut vector);
        let level = self.random_level();
        let links = self.plan_insert(&vector, level);
        self.commit_plan(vector, norm, level, links)
    }

    /// Computes the layer-wise link selection for inserting `query` (already
    /// in prepared form) at `level`, *without mutating the graph*. This is
    /// the expensive half of an insert (all the distance evaluations live
    /// here) and is a pure function of the current graph, so
    /// [`Hnsw::build_batch`] runs it for a whole wave of vectors in
    /// parallel. Returns `links[layer]` = selected peers for each layer from
    /// 0 up to `min(level, top_level)`; empty when the index is empty.
    fn plan_insert(&self, query: &[f32], level: usize) -> Vec<Vec<usize>> {
        let Some(mut entry) = self.entry else {
            return Vec::new();
        };
        let top_level = self.nodes[entry].level();

        // Phase 1: descend through layers above the new node's level.
        for layer in ((level + 1)..=top_level).rev() {
            entry = self.greedy_step(query, entry, layer);
        }

        // Phase 2: select links on each layer from min(level, top) down to 0.
        let mut links = vec![Vec::new(); level.min(top_level) + 1];
        for layer in (0..=level.min(top_level)).rev() {
            let mut sorted = self.search_layer(query, entry, self.config.ef_construction, layer);
            sorted.sort();
            let m = self.max_links(layer);
            links[layer] = sorted.iter().take(m).map(|c| c.id).collect();
            // Continue descent from the closest node found on this layer.
            if let Some(best) = sorted.first() {
                entry = best.id;
            }
        }
        links
    }

    /// Applies a plan from [`Hnsw::plan_insert`]: registers the prepared
    /// vector and its original norm, wires the bidirectional links, trims
    /// overfull peers, and promotes the entry point when the new node's
    /// level exceeds the current top. Cheap (no distance evaluations except
    /// inside `shrink_links`) and always sequential — the graph mutation
    /// order is what keeps builds deterministic.
    fn commit_plan(
        &mut self,
        vector: Vec<f32>,
        norm: f32,
        level: usize,
        links: Vec<Vec<usize>>,
    ) -> usize {
        let id = self.vectors.len();
        let prev_top = self.entry.map(|e| self.nodes[e].level());
        self.vectors.push(vector);
        self.norms.push(norm);
        self.nodes.push(Node { neighbors: vec![Vec::new(); level + 1] });
        for (layer, peers) in links.iter().enumerate() {
            for &peer in peers {
                self.nodes[id].neighbors[layer].push(peer);
                self.nodes[peer].neighbors[layer].push(id);
                self.shrink_links(peer, layer);
            }
        }
        match prev_top {
            None => self.entry = Some(id),
            Some(top) if level > top => self.entry = Some(id),
            _ => {}
        }
        id
    }

    /// Bulk insertion with parallel distance evaluations. Returns the ids
    /// assigned, in input order.
    ///
    /// Vectors are processed in *waves*: every vector in a wave plans its
    /// links concurrently against the graph as frozen at the wave start
    /// (via [`pas_par::par_map`] — pure reads), then the plans are committed
    /// sequentially in input order. Wave sizes grow with the graph
    /// (1, 2, 4, … capped at [`Hnsw::MAX_WAVE`]) and never depend on the
    /// thread count, and levels are pre-drawn from the index RNG in input
    /// order, so the resulting graph is bit-identical at any `--threads`
    /// setting. The graph differs slightly from the one incremental
    /// [`Hnsw::insert`] calls would build (wave peers don't see each other
    /// while planning), but it satisfies the same HNSW invariants and recall
    /// bounds — see `batch_build_recall_matches_incremental`.
    pub fn build_batch(&mut self, vectors: Vec<Vec<f32>>) -> Vec<usize> {
        let levels: Vec<usize> = vectors.iter().map(|_| self.random_level()).collect();
        // Prepare every vector once up front (unit-normalize under cosine) —
        // element-wise work, safely parallel, order-independent.
        let prepared = pas_par::par_map(&vectors, |_, v| {
            let mut v = v.clone();
            let norm = self.metric.prepare(&mut v);
            (v, norm)
        });
        drop(vectors);
        let mut ids = Vec::with_capacity(prepared.len());
        let mut prepared: Vec<Option<(Vec<f32>, f32)>> = prepared.into_iter().map(Some).collect();
        let mut next = 0;
        while next < prepared.len() {
            let wave = (prepared.len() - next).min(self.len().clamp(1, Self::MAX_WAVE));
            let plans = {
                let wave_inputs: Vec<(usize, &[f32])> = (next..next + wave)
                    .map(|i| (i, prepared[i].as_ref().expect("not yet committed").0.as_slice()))
                    .collect();
                pas_par::par_map(&wave_inputs, |_, &(i, v)| self.plan_insert(v, levels[i]))
            };
            for (j, links) in plans.into_iter().enumerate() {
                let i = next + j;
                let (v, norm) = prepared[i].take().expect("committed once");
                ids.push(self.commit_plan(v, norm, levels[i], links));
            }
            next += wave;
        }
        ids
    }

    /// Cap on the number of vectors planned concurrently per wave of
    /// [`Hnsw::build_batch`]. Bounds how stale the frozen graph each plan
    /// sees can get (graph quality) while leaving enough items in flight to
    /// occupy every worker (speed).
    pub const MAX_WAVE: usize = 64;

    /// Trims a node's adjacency at `layer` to at most `max_links` using the
    /// diversity heuristic of Malkov & Yashunin's Algorithm 4: walk the
    /// candidates closest-first and keep one only when it is closer to the
    /// base than to every neighbour already kept; then backfill remaining
    /// slots with the closest pruned candidates ("keep pruned connections").
    /// Plain closest-`M` truncation severs every inbound link of an outlier
    /// (it is everyone's farthest neighbour), disconnecting it from the
    /// graph; the heuristic preserves such bridges.
    fn shrink_links(&mut self, node: usize, layer: usize) {
        let m = self.max_links(layer);
        if self.nodes[node].neighbors[layer].len() <= m {
            return;
        }
        let base = self.vectors[node].clone();
        let mut links: Vec<Candidate> = self.nodes[node].neighbors[layer]
            .iter()
            .map(|&peer| Candidate {
                distance: self.metric.prepared_distance(&base, &self.vectors[peer]),
                id: peer,
            })
            .collect();
        links.sort();
        let mut selected: Vec<Candidate> = Vec::with_capacity(m);
        let mut pruned: Vec<Candidate> = Vec::new();
        for cand in links {
            if selected.len() >= m {
                break;
            }
            let diverse = selected.iter().all(|s| {
                cand.distance
                    < self.metric.prepared_distance(&self.vectors[cand.id], &self.vectors[s.id])
            });
            if diverse {
                selected.push(cand);
            } else {
                pruned.push(cand);
            }
        }
        for cand in pruned {
            if selected.len() >= m {
                break;
            }
            selected.push(cand);
        }
        self.nodes[node].neighbors[layer] = selected.into_iter().map(|c| c.id).collect();
    }

    /// Searches the `k` nearest neighbours of `query` with beam width `ef`
    /// (clamped up to `k`). Closest first; ties by id. The query is prepared
    /// once (one normalization under cosine); every probe after that is a
    /// prepared-form distance.
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Neighbor> {
        OBS_SEARCHES.incr();
        let Some(mut entry) = self.entry else {
            return Vec::new();
        };
        let mut prepared = query.to_vec();
        self.metric.prepare(&mut prepared);
        let query = prepared.as_slice();
        let top_level = self.nodes[entry].level();
        for layer in (1..=top_level).rev() {
            entry = self.greedy_step(query, entry, layer);
        }
        let mut found = self.search_layer(query, entry, ef.max(k).max(1), 0);
        found.sort();
        found.into_iter().take(k).map(|c| Neighbor { id: c.id, distance: c.distance }).collect()
    }

    /// All neighbours within `radius` of `query`, found by running an
    /// `ef`-bounded search and filtering. With `ef` well above the expected
    /// group size this matches exact radius search with high probability.
    pub fn search_radius(&self, query: &[f32], radius: f32, ef: usize) -> Vec<Neighbor> {
        self.search(query, ef, ef).into_iter().filter(|n| n.distance <= radius).collect()
    }

    /// Captures the index state for persistence. The metric is not part of
    /// the snapshot — supply the same one to [`Hnsw::from_snapshot`].
    pub fn snapshot(&self) -> HnswSnapshot {
        HnswSnapshot {
            config: self.config.clone(),
            vectors: self.vectors.clone(),
            norms: self.norms.clone(),
            nodes: self.nodes.clone(),
            entry: self.entry,
        }
    }

    /// Restores an index from a snapshot. Searches reproduce exactly;
    /// *future inserts* draw levels from a reseeded RNG (seed ⊕ node count),
    /// so an index that keeps growing after a reload follows a different —
    /// but equally valid — level sequence than one that never stopped.
    pub fn from_snapshot(snapshot: HnswSnapshot, metric: M) -> Self {
        let level_norm = 1.0 / (snapshot.config.m as f64).ln();
        let rng = StdRng::seed_from_u64(
            snapshot.config.seed ^ (snapshot.nodes.len() as u64).rotate_left(21),
        );
        Hnsw {
            config: snapshot.config,
            metric,
            vectors: snapshot.vectors,
            norms: snapshot.norms,
            nodes: snapshot.nodes,
            entry: snapshot.entry,
            rng,
            level_norm,
        }
    }
}

/// Serializable state of an [`Hnsw`] index: graph, prepared vectors and
/// their original norms, entry point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HnswSnapshot {
    config: HnswConfig,
    vectors: Vec<Vec<f32>>,
    norms: Vec<f32>,
    nodes: Vec<Node>,
    entry: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactIndex;
    use crate::metric::{CosineDistance, EuclideanDistance};
    use rand::RngExt;

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect()).collect()
    }

    #[test]
    fn empty_index_searches_empty() {
        let idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        assert!(idx.search(&[1.0, 2.0], 3, 16).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn single_element() {
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        idx.insert(vec![1.0, 1.0]);
        let hits = idx.search(&[0.0, 0.0], 5, 16);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn exact_match_is_found_first() {
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        let vecs = random_vectors(100, 8, 1);
        for v in &vecs {
            idx.insert(v.clone());
        }
        let hits = idx.search(&vecs[37], 1, 50);
        assert_eq!(hits[0].id, 37);
        assert!(hits[0].distance < 1e-6);
    }

    #[test]
    fn recall_at_10_vs_exact() {
        let vecs = random_vectors(500, 16, 7);
        let mut hnsw =
            Hnsw::new(HnswConfig { m: 12, ef_construction: 80, seed: 3 }, EuclideanDistance);
        let mut exact = ExactIndex::new(EuclideanDistance);
        for v in &vecs {
            hnsw.insert(v.clone());
            exact.insert(v.clone());
        }
        let queries = random_vectors(20, 16, 99);
        let mut hits_total = 0usize;
        for q in &queries {
            let truth: std::collections::HashSet<usize> =
                exact.search(q, 10).into_iter().map(|n| n.id).collect();
            let approx = hnsw.search(q, 10, 80);
            hits_total += approx.iter().filter(|n| truth.contains(&n.id)).count();
        }
        let recall = hits_total as f64 / (10 * queries.len()) as f64;
        assert!(recall >= 0.9, "recall@10 = {recall}");
    }

    #[test]
    fn results_sorted_by_distance() {
        let vecs = random_vectors(100, 4, 11);
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        for v in &vecs {
            idx.insert(v.clone());
        }
        let hits = idx.search(&vecs[0], 10, 64);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn radius_search_only_returns_within_radius() {
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        idx.insert(vec![0.0, 0.0]);
        idx.insert(vec![0.1, 0.0]);
        idx.insert(vec![5.0, 5.0]);
        let hits = idx.search_radius(&[0.0, 0.0], 0.5, 16);
        let ids: Vec<usize> = hits.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn deterministic_given_seed() {
        let vecs = random_vectors(80, 8, 5);
        let build = |seed| {
            let mut idx =
                Hnsw::new(HnswConfig { seed, ..HnswConfig::default() }, EuclideanDistance);
            for v in &vecs {
                idx.insert(v.clone());
            }
            idx.search(&vecs[3], 5, 32).into_iter().map(|n| n.id).collect::<Vec<_>>()
        };
        assert_eq!(build(42), build(42));
    }

    #[test]
    fn snapshot_round_trip_preserves_searches() {
        let vecs = random_vectors(120, 8, 17);
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        for v in &vecs {
            idx.insert(v.clone());
        }
        let json = serde_json::to_string(&idx.snapshot()).unwrap();
        let snapshot: HnswSnapshot = serde_json::from_str(&json).unwrap();
        let restored = Hnsw::from_snapshot(snapshot, EuclideanDistance);
        for q in vecs.iter().step_by(13) {
            let a: Vec<usize> = idx.search(q, 5, 32).into_iter().map(|n| n.id).collect();
            let b: Vec<usize> = restored.search(q, 5, 32).into_iter().map(|n| n.id).collect();
            assert_eq!(a, b);
        }
        assert_eq!(restored.len(), idx.len());
    }

    #[test]
    fn restored_index_accepts_new_inserts() {
        let vecs = random_vectors(60, 4, 19);
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        for v in &vecs {
            idx.insert(v.clone());
        }
        let mut restored = Hnsw::from_snapshot(idx.snapshot(), EuclideanDistance);
        let new_point = vec![9.0, 9.0, 9.0, 9.0];
        let id = restored.insert(new_point.clone());
        assert_eq!(id, 60);
        let hit = &restored.search(&new_point, 1, 32)[0];
        assert_eq!(hit.id, 60);
        assert!(hit.distance < 1e-5);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_m_rejected() {
        let _ = Hnsw::new(HnswConfig { m: 1, ..HnswConfig::default() }, EuclideanDistance);
    }

    #[test]
    fn batch_build_assigns_sequential_ids() {
        let vecs = random_vectors(150, 8, 23);
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        let ids = idx.build_batch(vecs);
        assert_eq!(ids, (0..150).collect::<Vec<_>>());
        assert_eq!(idx.len(), 150);
    }

    #[test]
    fn batch_build_is_thread_count_invariant() {
        let vecs = random_vectors(300, 8, 29);
        let build = |threads: usize| {
            pas_par::with_threads(threads, || {
                let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
                idx.build_batch(vecs.clone());
                let snap = serde_json::to_string(&idx.snapshot()).unwrap();
                let probes: Vec<Vec<usize>> = vecs
                    .iter()
                    .step_by(17)
                    .map(|q| idx.search(q, 5, 48).into_iter().map(|n| n.id).collect())
                    .collect();
                (snap, probes)
            })
        };
        let serial = build(1);
        assert_eq!(build(2), serial);
        assert_eq!(build(8), serial);
    }

    #[test]
    fn batch_build_recall_matches_incremental() {
        let vecs = random_vectors(500, 16, 7);
        let mut hnsw =
            Hnsw::new(HnswConfig { m: 12, ef_construction: 80, seed: 3 }, EuclideanDistance);
        hnsw.build_batch(vecs.clone());
        let mut exact = ExactIndex::new(EuclideanDistance);
        for v in &vecs {
            exact.insert(v.clone());
        }
        let queries = random_vectors(20, 16, 99);
        let mut hits_total = 0usize;
        for q in &queries {
            let truth: std::collections::HashSet<usize> =
                exact.search(q, 10).into_iter().map(|n| n.id).collect();
            let approx = hnsw.search(q, 10, 80);
            hits_total += approx.iter().filter(|n| truth.contains(&n.id)).count();
        }
        let recall = hits_total as f64 / (10 * queries.len()) as f64;
        assert!(recall >= 0.9, "batch-built recall@10 = {recall}");
    }

    #[test]
    fn batch_build_draws_same_levels_as_incremental() {
        // The level sequence comes from the index RNG in input order, so a
        // batch build consumes exactly the same draws as incremental inserts.
        let vecs = random_vectors(40, 4, 31);
        let mut a = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        a.build_batch(vecs.clone());
        let mut b = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        for v in &vecs {
            b.insert(v.clone());
        }
        let levels =
            |idx: &Hnsw<EuclideanDistance>| idx.nodes.iter().map(|n| n.level()).collect::<Vec<_>>();
        assert_eq!(levels(&a), levels(&b));
    }

    #[test]
    fn batch_build_on_top_of_existing_index() {
        let vecs = random_vectors(120, 8, 37);
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        for v in &vecs[..40] {
            idx.insert(v.clone());
        }
        let ids = idx.build_batch(vecs[40..].to_vec());
        assert_eq!(ids.first(), Some(&40));
        assert_eq!(idx.len(), 120);
        let hits = idx.search(&vecs[100], 1, 64);
        assert_eq!(hits[0].id, 100);
        assert!(hits[0].distance < 1e-6);
    }

    #[test]
    fn cosine_store_is_prenormalized_and_keeps_norms() {
        let mut idx = Hnsw::new(HnswConfig::default(), CosineDistance);
        idx.insert(vec![3.0, 0.0, 4.0]);
        idx.insert(vec![0.0, 0.0, 0.0]);
        assert_eq!(idx.norm(0), 5.0);
        assert!((pas_kernels::sum_sq(idx.vector(0)).sqrt() - 1.0).abs() < 1e-6);
        assert_eq!(idx.norm(1), 0.0);
        assert_eq!(idx.vector(1), &[0.0, 0.0, 0.0]);
        // Scale-invariant probe: an unnormalized query parallel to vector 0
        // still lands at distance ~0.
        let hits = idx.search(&[30.0, 0.0, 40.0], 1, 16);
        assert_eq!(hits[0].id, 0);
        assert!(hits[0].distance < 1e-6);
    }

    #[test]
    fn batch_build_prepares_like_incremental_inserts() {
        let vecs: Vec<Vec<f32>> = random_vectors(90, 8, 41)
            .into_iter()
            .map(|v| v.into_iter().map(|x| x * 3.0).collect())
            .collect();
        let mut batch = Hnsw::new(HnswConfig::default(), CosineDistance);
        batch.build_batch(vecs.clone());
        let mut incremental = Hnsw::new(HnswConfig::default(), CosineDistance);
        for v in &vecs {
            incremental.insert(v.clone());
        }
        for id in 0..vecs.len() {
            assert_eq!(batch.vector(id), incremental.vector(id), "stored vector {id}");
            assert_eq!(batch.norm(id).to_bits(), incremental.norm(id).to_bits(), "norm {id}");
        }
    }

    #[test]
    fn batch_build_empty_input_is_noop() {
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        assert!(idx.build_batch(Vec::new()).is_empty());
        assert!(idx.is_empty());
    }
}

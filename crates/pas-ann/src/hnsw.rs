//! Hierarchical Navigable Small World (HNSW) index.
//!
//! Implements the construction and search procedures of Malkov & Yashunin
//! (2016): every inserted vector gets a geometrically distributed level; each
//! level holds a proximity graph; queries descend greedily from the top
//! layer and run an `ef`-bounded best-first search at layer 0.
//!
//! The implementation favours clarity and determinism (seeded level
//! assignment, id-ordered tie-breaks) over micro-optimization; the exact
//! scanner in [`crate::exact`] provides the correctness oracle in tests and
//! the speed baseline in benches.
//!
//! Three speed layers sit on top of the textbook algorithm, none of which
//! changes a single output bit relative to the baseline paths they replace:
//!
//! - **Quantized traversal** ([`Hnsw::set_quantization`] for int8,
//!   [`Hnsw::set_product_quantization`] for PQ codes): graph construction
//!   stays f32 (the graph is identical either way), but search probes run on
//!   integer codes and an over-fetched candidate set is re-ranked with exact
//!   f32 distances (see [`crate::quant`]).
//! - **Batched multi-query search** ([`Hnsw::search_batch`]): a micro-batch
//!   of queries walks layer 0 in lock-step; packed neighbor panels are built
//!   once per expanded node, cached across rounds, and probed with block
//!   kernels by every query that reaches the node. Each query's heap
//!   trajectory is exactly its sequential one, so the results equal
//!   per-query [`Hnsw::search`] bit-for-bit.
//! - **Incremental removal** ([`Hnsw::remove`]): unlink a node and re-link
//!   its peers through the diversity heuristic, instead of tombstoning and
//!   rebuilding the live set.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::metric::Metric;
use crate::quant::{
    pq_rerank_overfetch, rerank_overfetch, PqCodebook, PqConfig, PqStore, PqTable, QuantStore,
    OBS_PQ, OBS_QUANTIZED, OBS_RERANK, PQ_TRAIN_MIN,
};
use crate::Neighbor;

// Observability counters. Probe counts (distance evaluations) per
// `search_layer` call are a pure function of the graph and query, and the
// parallel build plans against a frozen wave graph, so the totals are
// thread-count invariant even though the adds happen inside `par_map`.
static OBS_SEARCHES: pas_obs::Counter = pas_obs::Counter::new("ann.hnsw.searches");
static OBS_PROBES: pas_obs::Counter = pas_obs::Counter::new("ann.hnsw.probes");
// Batched-probe counters: micro-batches dispatched and queries they carried.
static OBS_BATCHES: pas_obs::Counter = pas_obs::Counter::new("ann.search_batch.batches");
static OBS_BATCH_QUERIES: pas_obs::Counter = pas_obs::Counter::new("ann.search_batch.queries");

/// Below this many rows a row-indexed block-kernel call costs more than its
/// quad-row sharing saves (the quads are 4 wide); probe lazily instead.
/// Size-based only, so deterministic.
const MIN_ROW_BLOCK: usize = 4;

/// HNSW construction parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HnswConfig {
    /// Max bidirectional links per node per layer (layer 0 uses `2 * m`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Seed for the level-assignment RNG.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig { m: 16, ef_construction: 100, seed: 0x9a5 }
    }
}

/// Distance-ordered candidate for the heaps. `Reverse`-style ordering is
/// obtained by negating through the wrapper types below.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    distance: f32,
    id: usize,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by distance, ties by id (deterministic).
        self.distance.total_cmp(&other.distance).then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    /// `neighbors[l]` = adjacency at layer `l`; length = node level + 1.
    neighbors: Vec<Vec<usize>>,
}

impl Node {
    fn level(&self) -> usize {
        self.neighbors.len() - 1
    }
}

/// Per-query layer-0 state inside [`Hnsw::search_batch`]: the same two heaps
/// plus visited set that `search_layer` keeps on its stack, promoted to a
/// struct so a micro-batch of beams can advance in lock-step.
struct Beam {
    candidates: BinaryHeap<std::cmp::Reverse<Candidate>>,
    results: BinaryHeap<Candidate>,
    visited: Vec<bool>,
    active: bool,
    probes: u64,
}

impl Beam {
    /// The accept/evict step of `search_layer`'s inner loop, verbatim.
    fn offer(&mut self, d: f32, id: usize, ef: usize) {
        let worst = self.results.peek().expect("results never empty").distance;
        if self.results.len() < ef || d < worst {
            let cand = Candidate { distance: d, id };
            self.candidates.push(std::cmp::Reverse(cand));
            self.results.push(cand);
            if self.results.len() > ef {
                self.results.pop();
            }
        }
    }

    /// Consumes one expansion's precomputed neighbor distances. Unvisited
    /// rows are taken in adjacency order, exactly like the lazy path; rows
    /// already visited are skipped without counting a probe.
    fn absorb_block(&mut self, neighbors: &[usize], dvec: &[f32], ef: usize) {
        for (j, &next) in neighbors.iter().enumerate() {
            if self.visited[next] {
                continue;
            }
            self.visited[next] = true;
            self.probes += 1;
            self.offer(dvec[j], next, ef);
        }
    }
}

/// The HNSW index. Generic over the distance [`Metric`].
///
/// Vectors are stored in the metric's *prepared* form ([`Metric::prepare`])
/// plus their original L2 norm: under [`crate::CosineDistance`] that is the
/// unit vector, so every probe during construction and search is a single
/// fused dot product (`1 − a·b`) instead of recomputing both operand norms.
/// Queries are prepared once per call.
pub struct Hnsw<M: Metric> {
    config: HnswConfig,
    metric: M,
    /// Prepared (e.g. unit-normalized) vectors, one per node. Removed slots
    /// hold an empty vector (the id is never probed again).
    vectors: Vec<Vec<f32>>,
    /// Original L2 norm of each vector, recorded at insert.
    norms: Vec<f32>,
    nodes: Vec<Node>,
    entry: Option<usize>,
    rng: StdRng,
    level_norm: f64,
    /// Vector dimension, locked at the first insert (0 = not yet known).
    dim: usize,
    /// `dead[id]` once [`Hnsw::remove`] unlinked `id`. Ids are positional
    /// and never reused.
    dead: Vec<bool>,
    /// Count of live (not removed) nodes.
    live: usize,
    /// int8 codes for the quantized probe path, row-aligned with ids.
    quant: Option<QuantStore>,
    /// PQ codes for the product-quantized probe path, row-aligned with ids
    /// (possibly untrained — probes stay f32 until it is ready).
    pq: Option<PqStore>,
}

impl<M: Metric> Hnsw<M> {
    /// Creates an empty index.
    ///
    /// # Panics
    /// Panics when `m < 2` or `ef_construction == 0`.
    pub fn new(config: HnswConfig, metric: M) -> Self {
        assert!(config.m >= 2, "m must be at least 2");
        assert!(config.ef_construction > 0, "ef_construction must be positive");
        let level_norm = 1.0 / (config.m as f64).ln();
        let rng = StdRng::seed_from_u64(config.seed);
        Hnsw {
            config,
            metric,
            vectors: Vec::new(),
            norms: Vec::new(),
            nodes: Vec::new(),
            entry: None,
            rng,
            level_norm,
            dim: 0,
            dead: Vec::new(),
            live: 0,
            quant: None,
            pq: None,
        }
    }

    /// Number of stored vector slots, including removed ones (ids are
    /// positional). See [`Hnsw::live_len`] for the live count.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Number of live (not removed) vectors.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// True when `id` has been removed from the graph.
    pub fn is_removed(&self, id: usize) -> bool {
        self.dead[id]
    }

    /// The stored vector for `id`, in the metric's prepared form (under
    /// cosine: the unit vector — multiply by [`Hnsw::norm`] to recover the
    /// original magnitude).
    pub fn vector(&self, id: usize) -> &[f32] {
        &self.vectors[id]
    }

    /// Original L2 norm of the vector inserted as `id`.
    pub fn norm(&self, id: usize) -> f32 {
        self.norms[id]
    }

    fn random_level(&mut self) -> usize {
        let u: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
        ((-u.ln()) * self.level_norm).floor() as usize
    }

    #[inline]
    fn dist(&self, a: usize, query: &[f32]) -> f32 {
        self.metric.prepared_distance(&self.vectors[a], query)
    }

    /// Best-first search at one layer. `query` must already be in prepared
    /// form. Returns up to `ef` closest candidates, unsorted.
    fn search_layer(&self, query: &[f32], entry: usize, ef: usize, layer: usize) -> Vec<Candidate> {
        let (found, probes) = self.search_layer_with(&|id| self.dist(id, query), entry, ef, layer);
        OBS_PROBES.add(probes);
        found
    }

    /// `search_layer` over an arbitrary per-id distance (f32 or quantized).
    /// Returns the candidates plus the probe count so callers attribute the
    /// probes to the right counters.
    fn search_layer_with(
        &self,
        dist: &dyn Fn(usize) -> f32,
        entry: usize,
        ef: usize,
        layer: usize,
    ) -> (Vec<Candidate>, u64) {
        let mut visited = vec![false; self.nodes.len()];
        visited[entry] = true;
        let mut probes = 1u64;
        let entry_cand = Candidate { distance: dist(entry), id: entry };

        // `candidates`: min-heap (via Reverse) of nodes to expand.
        let mut candidates: BinaryHeap<std::cmp::Reverse<Candidate>> = BinaryHeap::new();
        candidates.push(std::cmp::Reverse(entry_cand));
        // `results`: max-heap keeping the `ef` best found so far.
        let mut results: BinaryHeap<Candidate> = BinaryHeap::new();
        results.push(entry_cand);

        while let Some(std::cmp::Reverse(current)) = candidates.pop() {
            let worst = results.peek().expect("results never empty").distance;
            if current.distance > worst && results.len() >= ef {
                break;
            }
            for &next in &self.nodes[current.id].neighbors[layer] {
                if visited[next] {
                    continue;
                }
                visited[next] = true;
                probes += 1;
                let d = dist(next);
                let worst = results.peek().expect("non-empty").distance;
                if results.len() < ef || d < worst {
                    let cand = Candidate { distance: d, id: next };
                    candidates.push(std::cmp::Reverse(cand));
                    results.push(cand);
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        (results.into_vec(), probes)
    }

    /// [`Hnsw::search_layer_with`] at layer 0 with the probes computed in
    /// row-indexed blocks: each expansion collects the current node's
    /// unvisited neighbors (marking them, in adjacency order) and hands them
    /// to `distn` four-plus rows per kernel call instead of one `dist` call
    /// per row. The offer sequence — order and values — is exactly the lazy
    /// walk's, so the returned candidate set is bit-identical; only the
    /// speed differs. The quantized tiers of [`Hnsw::search_batch`] walk
    /// each query through this.
    fn search_layer0_blocked(
        &self,
        dist: &dyn Fn(usize) -> f32,
        distn: &mut dyn FnMut(&[usize], &mut Vec<f32>),
        entry: usize,
        ef: usize,
    ) -> (Vec<Candidate>, u64) {
        let mut visited = vec![false; self.nodes.len()];
        visited[entry] = true;
        let mut probes = 1u64;
        let entry_cand = Candidate { distance: dist(entry), id: entry };
        let mut candidates: BinaryHeap<std::cmp::Reverse<Candidate>> = BinaryHeap::new();
        candidates.push(std::cmp::Reverse(entry_cand));
        let mut results: BinaryHeap<Candidate> = BinaryHeap::new();
        results.push(entry_cand);
        let mut sub: Vec<usize> = Vec::new();
        let mut dvec: Vec<f32> = Vec::new();

        while let Some(std::cmp::Reverse(current)) = candidates.pop() {
            let worst = results.peek().expect("results never empty").distance;
            if current.distance > worst && results.len() >= ef {
                break;
            }
            sub.clear();
            for &next in &self.nodes[current.id].neighbors[0] {
                if !visited[next] {
                    visited[next] = true;
                    sub.push(next);
                }
            }
            if sub.is_empty() {
                continue;
            }
            probes += sub.len() as u64;
            if sub.len() < MIN_ROW_BLOCK {
                dvec.clear();
                dvec.extend(sub.iter().map(|&next| dist(next)));
            } else {
                distn(&sub, &mut dvec);
            }
            for (j, &next) in sub.iter().enumerate() {
                let d = dvec[j];
                let worst = results.peek().expect("non-empty").distance;
                if results.len() < ef || d < worst {
                    let cand = Candidate { distance: d, id: next };
                    candidates.push(std::cmp::Reverse(cand));
                    results.push(cand);
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        (results.into_vec(), probes)
    }

    /// Greedy descent to the closest node at `layer`, starting from `entry`.
    fn greedy_step(&self, query: &[f32], entry: usize, layer: usize) -> usize {
        self.greedy_step_with(&|id| self.dist(id, query), entry, layer)
    }

    /// `greedy_step` over an arbitrary per-id distance.
    fn greedy_step_with(
        &self,
        dist: &dyn Fn(usize) -> f32,
        mut entry: usize,
        layer: usize,
    ) -> usize {
        let mut best = dist(entry);
        loop {
            let mut improved = false;
            for &next in &self.nodes[entry].neighbors[layer] {
                let d = dist(next);
                if d < best {
                    best = d;
                    entry = next;
                    improved = true;
                }
            }
            if !improved {
                return entry;
            }
        }
    }

    /// Layer-0 beam width for a `(k, ef)` request: `max(ef, k, 1)`, widened
    /// to at least [`rerank_overfetch`]`(k)` when the int8 probe path is on —
    /// or [`pq_rerank_overfetch`]`(k)` when a trained PQ tier is — so the
    /// exact re-rank has enough candidates to pin recall.
    fn beam_width(&self, k: usize, ef: usize) -> usize {
        let base = ef.max(k).max(1);
        if self.pq_ready().is_some() {
            base.max(pq_rerank_overfetch(k))
        } else if self.quant.is_some() {
            base.max(rerank_overfetch(k))
        } else {
            base
        }
    }

    /// The PQ store, when present *and* trained (the probe-path switch).
    fn pq_ready(&self) -> Option<&PqStore> {
        self.pq.as_ref().filter(|pq| pq.ready())
    }

    /// Trains the PQ codebook over all current rows (removed slots become
    /// placeholders) and encodes them.
    fn train_pq(&mut self) {
        let rows: Vec<&[f32]> = self.vectors.iter().map(|v| v.as_slice()).collect();
        self.pq.as_mut().expect("train_pq without a PQ store").train_encode(&rows, self.dim);
    }

    fn max_links(&self, layer: usize) -> usize {
        if layer == 0 {
            self.config.m * 2
        } else {
            self.config.m
        }
    }

    /// Inserts a vector, returning its id (insertion order).
    pub fn insert(&mut self, mut vector: Vec<f32>) -> usize {
        let norm = self.metric.prepare(&mut vector);
        let level = self.random_level();
        let links = self.plan_insert(&vector, level);
        self.commit_plan(vector, norm, level, links)
    }

    /// Computes the layer-wise link selection for inserting `query` (already
    /// in prepared form) at `level`, *without mutating the graph*. This is
    /// the expensive half of an insert (all the distance evaluations live
    /// here) and is a pure function of the current graph, so
    /// [`Hnsw::build_batch`] runs it for a whole wave of vectors in
    /// parallel. Returns `links[layer]` = selected peers for each layer from
    /// 0 up to `min(level, top_level)`; empty when the index is empty.
    fn plan_insert(&self, query: &[f32], level: usize) -> Vec<Vec<usize>> {
        let Some(mut entry) = self.entry else {
            return Vec::new();
        };
        let top_level = self.nodes[entry].level();

        // Phase 1: descend through layers above the new node's level.
        for layer in ((level + 1)..=top_level).rev() {
            entry = self.greedy_step(query, entry, layer);
        }

        // Phase 2: select links on each layer from min(level, top) down to 0.
        let mut links = vec![Vec::new(); level.min(top_level) + 1];
        for layer in (0..=level.min(top_level)).rev() {
            let mut sorted = self.search_layer(query, entry, self.config.ef_construction, layer);
            sorted.sort();
            let m = self.max_links(layer);
            links[layer] = sorted.iter().take(m).map(|c| c.id).collect();
            // Continue descent from the closest node found on this layer.
            if let Some(best) = sorted.first() {
                entry = best.id;
            }
        }
        links
    }

    /// Applies a plan from [`Hnsw::plan_insert`]: registers the prepared
    /// vector and its original norm, wires the bidirectional links, trims
    /// overfull peers, and promotes the entry point when the new node's
    /// level exceeds the current top. Cheap (no distance evaluations except
    /// inside `shrink_links`) and always sequential — the graph mutation
    /// order is what keeps builds deterministic.
    fn commit_plan(
        &mut self,
        vector: Vec<f32>,
        norm: f32,
        level: usize,
        links: Vec<Vec<usize>>,
    ) -> usize {
        let id = self.vectors.len();
        if self.dim == 0 {
            self.dim = vector.len();
        } else {
            assert_eq!(vector.len(), self.dim, "vector dimension mismatch at insert");
        }
        let prev_top = self.entry.map(|e| self.nodes[e].level());
        if let Some(store) = self.quant.as_mut() {
            store.push(&self.metric, &vector);
        }
        if let Some(pq) = self.pq.as_mut() {
            if pq.ready() {
                pq.push(&vector);
            }
        }
        self.vectors.push(vector);
        self.norms.push(norm);
        self.dead.push(false);
        self.live += 1;
        if self.pq.as_ref().is_some_and(|pq| !pq.ready()) && self.live >= PQ_TRAIN_MIN {
            self.train_pq();
        }
        self.nodes.push(Node { neighbors: vec![Vec::new(); level + 1] });
        for (layer, peers) in links.iter().enumerate() {
            for &peer in peers {
                self.nodes[id].neighbors[layer].push(peer);
                self.nodes[peer].neighbors[layer].push(id);
                self.shrink_links(peer, layer);
            }
        }
        match prev_top {
            None => self.entry = Some(id),
            Some(top) if level > top => self.entry = Some(id),
            _ => {}
        }
        id
    }

    /// Bulk insertion with parallel distance evaluations. Returns the ids
    /// assigned, in input order.
    ///
    /// Vectors are processed in *waves*: every vector in a wave plans its
    /// links concurrently against the graph as frozen at the wave start
    /// (via [`pas_par::par_map`] — pure reads), then the plans are committed
    /// sequentially in input order. Wave sizes grow with the graph
    /// (1, 2, 4, … capped at [`Hnsw::MAX_WAVE`]) and never depend on the
    /// thread count, and levels are pre-drawn from the index RNG in input
    /// order, so the resulting graph is bit-identical at any `--threads`
    /// setting. The graph differs slightly from the one incremental
    /// [`Hnsw::insert`] calls would build (wave peers don't see each other
    /// while planning), but it satisfies the same HNSW invariants and recall
    /// bounds — see `batch_build_recall_matches_incremental`.
    pub fn build_batch(&mut self, vectors: Vec<Vec<f32>>) -> Vec<usize> {
        let levels: Vec<usize> = vectors.iter().map(|_| self.random_level()).collect();
        // Prepare every vector once up front (unit-normalize under cosine) —
        // element-wise work, safely parallel, order-independent.
        let prepared = pas_par::par_map(&vectors, |_, v| {
            let mut v = v.clone();
            let norm = self.metric.prepare(&mut v);
            (v, norm)
        });
        drop(vectors);
        let mut ids = Vec::with_capacity(prepared.len());
        let mut prepared: Vec<Option<(Vec<f32>, f32)>> = prepared.into_iter().map(Some).collect();
        let mut next = 0;
        while next < prepared.len() {
            let wave = (prepared.len() - next).min(self.len().clamp(1, Self::MAX_WAVE));
            let plans = {
                let wave_inputs: Vec<(usize, &[f32])> = (next..next + wave)
                    .map(|i| (i, prepared[i].as_ref().expect("not yet committed").0.as_slice()))
                    .collect();
                pas_par::par_map(&wave_inputs, |_, &(i, v)| self.plan_insert(v, levels[i]))
            };
            for (j, links) in plans.into_iter().enumerate() {
                let i = next + j;
                let (v, norm) = prepared[i].take().expect("committed once");
                ids.push(self.commit_plan(v, norm, levels[i], links));
            }
            next += wave;
        }
        ids
    }

    /// Cap on the number of vectors planned concurrently per wave of
    /// [`Hnsw::build_batch`]. Bounds how stale the frozen graph each plan
    /// sees can get (graph quality) while leaving enough items in flight to
    /// occupy every worker (speed).
    pub const MAX_WAVE: usize = 64;

    /// Trims a node's adjacency at `layer` to at most `max_links` using the
    /// diversity heuristic of Malkov & Yashunin's Algorithm 4: walk the
    /// candidates closest-first and keep one only when it is closer to the
    /// base than to every neighbour already kept; then backfill remaining
    /// slots with the closest pruned candidates ("keep pruned connections").
    /// Plain closest-`M` truncation severs every inbound link of an outlier
    /// (it is everyone's farthest neighbour), disconnecting it from the
    /// graph; the heuristic preserves such bridges.
    fn shrink_links(&mut self, node: usize, layer: usize) {
        let m = self.max_links(layer);
        if self.nodes[node].neighbors[layer].len() <= m {
            return;
        }
        let base = self.vectors[node].clone();
        let mut links: Vec<Candidate> = self.nodes[node].neighbors[layer]
            .iter()
            .map(|&peer| Candidate {
                distance: self.metric.prepared_distance(&base, &self.vectors[peer]),
                id: peer,
            })
            .collect();
        links.sort();
        let mut selected: Vec<Candidate> = Vec::with_capacity(m);
        let mut pruned: Vec<Candidate> = Vec::new();
        for cand in links {
            if selected.len() >= m {
                break;
            }
            let diverse = selected.iter().all(|s| {
                cand.distance
                    < self.metric.prepared_distance(&self.vectors[cand.id], &self.vectors[s.id])
            });
            if diverse {
                selected.push(cand);
            } else {
                pruned.push(cand);
            }
        }
        for cand in pruned {
            if selected.len() >= m {
                break;
            }
            selected.push(cand);
        }
        self.nodes[node].neighbors[layer] = selected.into_iter().map(|c| c.id).collect();
    }

    /// Switches the int8 quantized probe path on or off.
    ///
    /// When on, every stored vector gets an int8 code row ([`QuantStore`]);
    /// searches traverse the graph on integer dots and finish with an exact
    /// f32 re-rank of an over-fetched candidate set ([`rerank_overfetch`]).
    /// Graph construction stays f32 either way, so toggling quantization
    /// never changes the graph — only the probe arithmetic. Integer dots are
    /// exact, so quantized traversal is invariant across kernel backends.
    ///
    /// # Panics
    /// Panics when the metric has no quantized probe path
    /// ([`Metric::quantize`] returns `None`).
    pub fn set_quantization(&mut self, enabled: bool) {
        if !enabled {
            self.quant = None;
            return;
        }
        self.pq = None;
        if self.quant.is_some() {
            return;
        }
        assert!(self.metric.quantize(&[]).is_some(), "metric has no quantized probe path");
        let mut store = QuantStore::new();
        for id in 0..self.vectors.len() {
            if self.dead[id] {
                store.push_placeholder(self.dim);
            } else {
                store.push(&self.metric, &self.vectors[id]);
            }
        }
        self.quant = Some(store);
    }

    /// True when the int8 quantized probe path is active.
    pub fn quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Switches the product-quantized probe path on or off.
    ///
    /// When on, stored vectors get `m ≈ dim/8`-byte PQ code rows
    /// ([`PqStore`]) and searches traverse the graph on fixed-point ADC
    /// table adds, finishing with an exact f32 re-rank of a
    /// [`pq_rerank_overfetch`]-widened candidate set. Enabling drops any
    /// int8 tier (the tiers are mutually exclusive). The codebook trains
    /// over the stored rows — immediately when at least [`PQ_TRAIN_MIN`]
    /// live vectors exist, otherwise lazily at the insert that reaches the
    /// threshold; probes stay f32 until then. Graph construction stays f32
    /// either way, so toggling PQ never changes the graph — only the probe
    /// arithmetic, which is pure integer adds and therefore invariant
    /// across kernel backends and thread counts.
    pub fn set_product_quantization(&mut self, enabled: bool) {
        if !enabled {
            self.pq = None;
            return;
        }
        self.quant = None;
        if self.pq.is_some() {
            return;
        }
        self.pq = Some(PqStore::new(PqConfig::default()));
        if self.live >= PQ_TRAIN_MIN {
            self.train_pq();
        }
    }

    /// True when the PQ probe path is active (the codebook may still be
    /// untrained — see [`Hnsw::set_product_quantization`]).
    pub fn product_quantized(&self) -> bool {
        self.pq.is_some()
    }

    /// Bytes the traversal touches per stored vector: `m` (≈ dim/8) with a
    /// trained PQ tier, `dim + 4` with int8 quantization on, `4 * dim` for
    /// the f32 path.
    pub fn probe_bytes_per_vector(&self) -> usize {
        if let Some(pq) = self.pq_ready() {
            return pq.bytes_per_vector();
        }
        match &self.quant {
            Some(store) => store.bytes_per_vector(),
            None => self.dim * std::mem::size_of::<f32>(),
        }
    }

    /// Exact-f32 re-rank of a quantized candidate set: recompute true
    /// distances for every candidate the beam returned, sort, keep `k`.
    fn rerank_exact(&self, query: &[f32], found: Vec<Candidate>, k: usize) -> Vec<Neighbor> {
        OBS_RERANK.add(found.len() as u64);
        let mut exact: Vec<Candidate> = found
            .into_iter()
            .map(|c| Candidate { distance: self.dist(c.id, query), id: c.id })
            .collect();
        exact.sort();
        exact.into_iter().take(k).map(|c| Neighbor { id: c.id, distance: c.distance }).collect()
    }

    /// Searches the `k` nearest neighbours of `query` with beam width `ef`
    /// (clamped up to `k`). Closest first; ties by id. The query is prepared
    /// once (one normalization under cosine); every probe after that is a
    /// prepared-form distance — or an integer dot when quantization is on,
    /// followed by an exact f32 re-rank of the over-fetched beam.
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Neighbor> {
        OBS_SEARCHES.incr();
        let Some(mut entry) = self.entry else {
            return Vec::new();
        };
        let mut prepared = query.to_vec();
        self.metric.prepare(&mut prepared);
        let query = prepared.as_slice();
        let top_level = self.nodes[entry].level();
        let ef0 = self.beam_width(k, ef);
        if let Some(pq) = self.pq_ready() {
            let table = pq.table(query);
            let qd = |id: usize| table.distance(pq.row(id));
            for layer in (1..=top_level).rev() {
                entry = self.greedy_step_with(&qd, entry, layer);
            }
            let (found, probes) = self.search_layer_with(&qd, entry, ef0, 0);
            OBS_PROBES.add(probes);
            OBS_PQ.add(probes);
            return self.rerank_exact(query, found, k);
        }
        if let Some(store) = &self.quant {
            let (qcodes, qscale) =
                self.metric.quantize(query).expect("quantized index requires a quantizing metric");
            let qd = |id: usize| {
                let (codes, scale) = store.row(id);
                self.metric.quantized_distance(&qcodes, qscale, codes, scale)
            };
            for layer in (1..=top_level).rev() {
                entry = self.greedy_step_with(&qd, entry, layer);
            }
            let (found, probes) = self.search_layer_with(&qd, entry, ef0, 0);
            OBS_PROBES.add(probes);
            OBS_QUANTIZED.add(probes);
            self.rerank_exact(query, found, k)
        } else {
            for layer in (1..=top_level).rev() {
                entry = self.greedy_step(query, entry, layer);
            }
            let mut found = self.search_layer(query, entry, ef0, 0);
            found.sort();
            found.into_iter().take(k).map(|c| Neighbor { id: c.id, distance: c.distance }).collect()
        }
    }

    /// Searches a micro-batch of queries, bit-identical to mapping
    /// [`Hnsw::search`] over them one by one.
    ///
    /// All queries descend the upper layers independently, then walk layer 0
    /// in lock-step rounds: each round every still-active beam pops its next
    /// expansion node, the round's expansions are grouped by node id, and
    /// each group's neighbor rows are packed once into a contiguous panel
    /// that every grouped query probes with one block-kernel call
    /// ([`Metric::prepared_distance_block`] / int8 when quantized). Block
    /// rows are bit-identical to pairwise probes and each beam consumes them
    /// in adjacency order, so every query's heap trajectory — and therefore
    /// its result — is exactly the sequential one.
    pub fn search_batch(&self, queries: &[Vec<f32>], k: usize, ef: usize) -> Vec<Vec<Neighbor>> {
        if queries.is_empty() {
            return Vec::new();
        }
        OBS_BATCHES.incr();
        OBS_BATCH_QUERIES.add(queries.len() as u64);
        OBS_SEARCHES.add(queries.len() as u64);
        let Some(entry0) = self.entry else {
            return queries.iter().map(|_| Vec::new()).collect();
        };
        let prepared: Vec<Vec<f32>> = queries
            .iter()
            .map(|q| {
                let mut p = q.clone();
                self.metric.prepare(&mut p);
                p
            })
            .collect();
        let quantized: Option<Vec<(Vec<i8>, f32)>> = self.quant.as_ref().map(|_| {
            prepared
                .iter()
                .map(|p| {
                    self.metric.quantize(p).expect("quantized index requires a quantizing metric")
                })
                .collect()
        });
        // One ADC table per query, built up front and shared by every
        // lock-step round (and the upper-layer descents) of the whole
        // micro-batch.
        let pq_store = self.pq_ready();
        let tables: Option<Vec<PqTable>> =
            pq_store.map(|pq| prepared.iter().map(|p| pq.table(p)).collect());
        let dist_for = |qi: usize, id: usize| -> f32 {
            if let (Some(pq), Some(tables)) = (pq_store, &tables) {
                return tables[qi].distance(pq.row(id));
            }
            match (&self.quant, &quantized) {
                (Some(store), Some(q)) => {
                    let (codes, scale) = store.row(id);
                    self.metric.quantized_distance(&q[qi].0, q[qi].1, codes, scale)
                }
                _ => self.dist(id, &prepared[qi]),
            }
        };
        let ef0 = self.beam_width(k, ef);
        let top_level = self.nodes[entry0].level();

        // Quantized tiers: walk the queries one after another, each through
        // the row-blocked layer-0 walk. Their code stores are small enough
        // to stay cache-resident, so there is no memory traffic for
        // lock-stepped queries to share — and lock-stepping actively hurts
        // the PQ tier, whose per-query 8 KB ADC tables would thrash L1 if
        // interleaved. Per-query blocking keeps one query's table (and int8
        // codes) hot while the quad-row kernels deliver the batch speedup.
        if self.quant.is_some() || pq_store.is_some() {
            let mut sums: Vec<u32> = Vec::new();
            let mut idots: Vec<i32> = Vec::new();
            let mut probes = 0u64;
            let mut out = Vec::with_capacity(queries.len());
            for qi in 0..queries.len() {
                let mut entry = entry0;
                for layer in (1..=top_level).rev() {
                    entry = self.greedy_step_with(&|id| dist_for(qi, id), entry, layer);
                }
                let (found, p) = if let (Some(pq), Some(tables)) = (pq_store, &tables) {
                    let mut distn = |rows: &[usize], dv: &mut Vec<f32>| {
                        tables[qi].distance_rows(pq.flat(), rows, &mut sums, dv)
                    };
                    self.search_layer0_blocked(&|id| dist_for(qi, id), &mut distn, entry, ef0)
                } else {
                    let store = self.quant.as_ref().expect("int8 tier");
                    let q = quantized.as_ref().expect("int8 tier");
                    let (codes, scales) = store.flat();
                    let mut distn = |rows: &[usize], dv: &mut Vec<f32>| {
                        self.metric.quantized_distance_rows(
                            &q[qi].0, q[qi].1, codes, scales, rows, &mut idots, dv,
                        )
                    };
                    self.search_layer0_blocked(&|id| dist_for(qi, id), &mut distn, entry, ef0)
                };
                probes += p;
                out.push(self.rerank_exact(&prepared[qi], found, k));
            }
            OBS_PROBES.add(probes);
            if pq_store.is_some() {
                OBS_PQ.add(probes);
            } else {
                OBS_QUANTIZED.add(probes);
            }
            return out;
        }

        // f32 tier: upper-layer descent per query, then a layer-0 beam
        // primed exactly like `search_layer`'s prologue, advanced in
        // lock-step rounds that share packed panels.
        let mut beams: Vec<Beam> = (0..queries.len())
            .map(|qi| {
                let mut entry = entry0;
                for layer in (1..=top_level).rev() {
                    entry = self.greedy_step_with(&|id| dist_for(qi, id), entry, layer);
                }
                let mut visited = vec![false; self.nodes.len()];
                visited[entry] = true;
                let entry_cand = Candidate { distance: dist_for(qi, entry), id: entry };
                let mut candidates = BinaryHeap::new();
                candidates.push(std::cmp::Reverse(entry_cand));
                let mut results = BinaryHeap::new();
                results.push(entry_cand);
                Beam { candidates, results, visited, active: true, probes: 1 }
            })
            .collect();

        // Shared-node neighbor rows are packed into panels: a scratch panel
        // per group plus an append-only arena of packed *full-adjacency*
        // panels. A full panel is cached the first time a group needs every
        // row of a node's adjacency and reused — zero packing cost, zero
        // wasted rows — by any later round (including lone beams) whose
        // needed rows are again the full adjacency. Partially-needed panels
        // are never cached: probing a stale full panel would compute
        // distances for rows every beam has already visited, which costs
        // more than the packing it saves.
        let mut panel_f32: Vec<f32> = Vec::new();
        let mut arena_f32: Vec<f32> = Vec::new();
        let mut arena_rows: HashMap<usize, usize> = HashMap::new();
        let mut next_arena_row = 0usize;
        let mut dvec: Vec<f32> = Vec::new();
        let mut sub: Vec<usize> = Vec::new();
        // Expansions of one round as (node, query) pairs; sorted, equal-node
        // runs form the groups. Reused across rounds — no per-round allocs.
        let mut expansions: Vec<(usize, usize)> = Vec::new();
        // Below this many panel rows a pack + block call costs more than it
        // saves; probe lazily instead. Size-based only, so deterministic.
        const MIN_PANEL_ROWS: usize = 8;
        loop {
            // Each active beam pops one expansion; group them by node id.
            // A beam contributes at most one expansion per round, so group
            // processing order cannot affect any single beam's trajectory.
            expansions.clear();
            for (qi, beam) in beams.iter_mut().enumerate() {
                if !beam.active {
                    continue;
                }
                match beam.candidates.pop() {
                    None => beam.active = false,
                    Some(std::cmp::Reverse(current)) => {
                        let worst = beam.results.peek().expect("results never empty").distance;
                        if current.distance > worst && beam.results.len() >= ef0 {
                            beam.active = false;
                        } else {
                            expansions.push((current.id, qi));
                        }
                    }
                }
            }
            if expansions.is_empty() {
                break;
            }
            // Pairs are unique (one pop per beam), so the unstable sort is a
            // deterministic total order: ascending node, then query.
            expansions.sort_unstable();
            let mut start = 0;
            while start < expansions.len() {
                let node = expansions[start].0;
                let mut end = start + 1;
                while end < expansions.len() && expansions[end].0 == node {
                    end += 1;
                }
                let group = &expansions[start..end];
                start = end;
                let neighbors = self.nodes[node].neighbors[0].as_slice();
                if neighbors.is_empty() {
                    continue;
                }
                // Lone beam: the sequential inner loop verbatim — no row
                // collection, no pack, no block call — unless the arena
                // already holds this node's packed panel (then the block
                // kernel is worth probing even a single query with). Every
                // branch condition depends only on sizes and the —
                // deterministic — expansion history, so the per-row
                // arithmetic path is identical on every run.
                if group.len() == 1 && !arena_rows.contains_key(&node) {
                    let qi = group[0].1;
                    let beam = &mut beams[qi];
                    for &next in neighbors {
                        if beam.visited[next] {
                            continue;
                        }
                        beam.visited[next] = true;
                        beam.probes += 1;
                        let d = dist_for(qi, next);
                        beam.offer(d, next, ef0);
                    }
                    continue;
                }
                // The rows at least one grouped beam still needs, in
                // adjacency order — converged beams have visited most
                // neighbors already, so this stays tight.
                sub.clear();
                sub.extend(
                    neighbors
                        .iter()
                        .copied()
                        .filter(|&next| group.iter().any(|&(_, qi)| !beams[qi].visited[next])),
                );
                if sub.is_empty() {
                    continue;
                }
                // f32 tier: pack the needed rows once (or fetch the node's
                // cached full panel), then probe with one block-kernel call
                // per grouped query. `absorb_block` skips each beam's own
                // visited rows, so trajectories stay sequential-exact. Lazy
                // when the rows are too few to amortize a pack + block
                // call, or when a lone beam expands a node whose full panel
                // is not already in the arena (packing for one consumer is
                // pure overhead).
                let full = sub.len() == neighbors.len();
                let cached = if full { arena_rows.get(&node).copied() } else { None };
                if sub.len() < MIN_PANEL_ROWS || (group.len() == 1 && cached.is_none()) {
                    for &(_, qi) in group {
                        let beam = &mut beams[qi];
                        for &next in &sub {
                            if beam.visited[next] {
                                continue;
                            }
                            beam.visited[next] = true;
                            beam.probes += 1;
                            let d = dist_for(qi, next);
                            beam.offer(d, next, ef0);
                        }
                    }
                    continue;
                }
                let rows = sub.len();
                // A full panel enters the arena on first pack so later
                // rounds reuse it for free; partial panels live in scratch.
                let row0 = match (full, cached) {
                    (true, Some(row0)) => Some(row0),
                    (true, None) => {
                        arena_rows.insert(node, next_arena_row);
                        next_arena_row += rows;
                        None
                    }
                    (false, _) => None,
                };
                let panel: &[f32] = match row0 {
                    Some(row0) => &arena_f32[row0 * self.dim..(row0 + rows) * self.dim],
                    None if full => {
                        let at = arena_f32.len();
                        for &next in &sub {
                            arena_f32.extend_from_slice(&self.vectors[next]);
                        }
                        &arena_f32[at..]
                    }
                    None => {
                        panel_f32.clear();
                        for &next in &sub {
                            panel_f32.extend_from_slice(&self.vectors[next]);
                        }
                        &panel_f32
                    }
                };
                dvec.resize(rows, 0.0);
                for &(_, qi) in group {
                    self.metric.prepared_distance_block(&prepared[qi], panel, &mut dvec);
                    beams[qi].absorb_block(&sub, &dvec, ef0);
                }
            }
        }

        let mut probes = 0u64;
        let out = beams
            .into_iter()
            .map(|beam| {
                probes += beam.probes;
                let mut found = beam.results.into_vec();
                found.sort();
                found
                    .into_iter()
                    .take(k)
                    .map(|c| Neighbor { id: c.id, distance: c.distance })
                    .collect()
            })
            .collect();
        OBS_PROBES.add(probes);
        out
    }

    /// Removes `id` from the graph, returning whether it was live.
    ///
    /// The node is unlinked from every peer, and on each layer its peers are
    /// offered the removed node's other peers as replacement link candidates
    /// (then trimmed by the usual diversity heuristic), so the neighborhood
    /// stays connected without a rebuild. Ids are positional and never
    /// reused; the freed slot keeps its id but drops its vector storage.
    /// When `id` was the entry point, the entry moves to the highest-level
    /// live node (smallest id on ties).
    pub fn remove(&mut self, id: usize) -> bool {
        if id >= self.nodes.len() || self.dead[id] {
            return false;
        }
        let top = self.nodes[id].level();
        for layer in 0..=top {
            let mut peers = std::mem::take(&mut self.nodes[id].neighbors[layer]);
            // Links are wired bidirectionally but `shrink_links` trims each
            // side independently, so nodes outside `id`'s own adjacency may
            // still hold an inbound edge — sweep them all, and offer the
            // holders re-links too.
            for n in 0..self.nodes.len() {
                if n == id || self.dead[n] || self.nodes[n].neighbors.len() <= layer {
                    continue;
                }
                let list = &mut self.nodes[n].neighbors[layer];
                let before = list.len();
                list.retain(|&x| x != id);
                if list.len() != before && !peers.contains(&n) {
                    peers.push(n);
                }
            }
            for &p in &peers {
                let mut changed = false;
                for &q in &peers {
                    if q == p || self.nodes[p].neighbors[layer].contains(&q) {
                        continue;
                    }
                    self.nodes[p].neighbors[layer].push(q);
                    changed = true;
                }
                if changed {
                    self.shrink_links(p, layer);
                }
            }
        }
        self.dead[id] = true;
        self.live -= 1;
        self.vectors[id] = Vec::new();
        if self.entry == Some(id) {
            self.entry = self.pick_entry();
        }
        true
    }

    /// Deterministic entry repair: highest-level live node, smallest id on
    /// ties. O(n), but removal of the entry point is rare.
    fn pick_entry(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, node) in self.nodes.iter().enumerate() {
            if self.dead[i] {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => node.level() > self.nodes[b].level(),
            };
            if better {
                best = Some(i);
            }
        }
        best
    }

    /// All neighbours within `radius` of `query`, found by running an
    /// `ef`-bounded search and filtering. With `ef` well above the expected
    /// group size this matches exact radius search with high probability.
    pub fn search_radius(&self, query: &[f32], radius: f32, ef: usize) -> Vec<Neighbor> {
        self.search(query, ef, ef).into_iter().filter(|n| n.distance <= radius).collect()
    }

    /// Captures the index state for persistence. The metric is not part of
    /// the snapshot — supply the same one to [`Hnsw::from_snapshot`].
    pub fn snapshot(&self) -> HnswSnapshot {
        HnswSnapshot {
            config: self.config.clone(),
            vectors: self.vectors.clone(),
            norms: self.norms.clone(),
            nodes: self.nodes.clone(),
            entry: self.entry,
            removed: (0..self.nodes.len()).filter(|&i| self.dead[i]).collect(),
        }
    }

    /// Restores an index from a snapshot. Searches reproduce exactly;
    /// *future inserts* draw levels from a reseeded RNG (seed ⊕ node count),
    /// so an index that keeps growing after a reload follows a different —
    /// but equally valid — level sequence than one that never stopped.
    pub fn from_snapshot(snapshot: HnswSnapshot, metric: M) -> Self {
        let level_norm = 1.0 / (snapshot.config.m as f64).ln();
        let rng = StdRng::seed_from_u64(
            snapshot.config.seed ^ (snapshot.nodes.len() as u64).rotate_left(21),
        );
        let mut dead = vec![false; snapshot.nodes.len()];
        for &id in &snapshot.removed {
            dead[id] = true;
        }
        let live = snapshot.nodes.len() - snapshot.removed.len();
        // Removed slots store empty vectors, so the dimension comes from the
        // first live row (0 when none are left — relocked at next insert).
        let dim = snapshot.vectors.iter().find(|v| !v.is_empty()).map_or(0, |v| v.len());
        Hnsw {
            config: snapshot.config,
            metric,
            vectors: snapshot.vectors,
            norms: snapshot.norms,
            nodes: snapshot.nodes,
            entry: snapshot.entry,
            rng,
            level_norm,
            dim,
            dead,
            live,
            quant: None,
            pq: None,
        }
    }

    /// Serializes the complete index state — graph, vectors, removed-id
    /// set, int8/PQ code stores — to a compact binary blob for the
    /// persistence layer.
    ///
    /// Unlike [`Hnsw::snapshot`], a dump carries the quantized tiers
    /// verbatim and preserves RNG continuity: the level RNG draws exactly
    /// one `f64` per stored vector (ids are positional and never reused),
    /// so [`Hnsw::load`] reseeds from `config.seed` and fast-forwards
    /// `len()` draws. A loaded index therefore not only probes
    /// bit-identically to the never-closed one — its *future inserts* draw
    /// the same level sequence too.
    ///
    /// All scalars are little-endian; `f32`s travel as raw bits, so the
    /// round trip is bit-exact on every platform.
    pub fn dump(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(DUMP_MAGIC);
        wire::put_u64(&mut out, self.config.m as u64);
        wire::put_u64(&mut out, self.config.ef_construction as u64);
        wire::put_u64(&mut out, self.config.seed);
        wire::put_u64(&mut out, self.dim as u64);
        let n = self.vectors.len();
        wire::put_u64(&mut out, n as u64);
        wire::put_u64(&mut out, self.entry.map_or(u64::MAX, |e| e as u64));
        wire::put_u64(&mut out, self.live as u64);
        for &norm in &self.norms {
            wire::put_f32(&mut out, norm);
        }
        for &d in &self.dead {
            out.push(d as u8);
        }
        for v in &self.vectors {
            wire::put_u32(&mut out, v.len() as u32);
            for &x in v {
                wire::put_f32(&mut out, x);
            }
        }
        for node in &self.nodes {
            wire::put_u32(&mut out, node.neighbors.len() as u32);
            for layer in &node.neighbors {
                wire::put_u32(&mut out, layer.len() as u32);
                for &peer in layer {
                    wire::put_u32(&mut out, peer as u32);
                }
            }
        }
        match (&self.quant, &self.pq) {
            (Some(store), _) => {
                out.push(1);
                let (qdim, codes, scales) = store.to_parts();
                wire::put_u64(&mut out, qdim as u64);
                wire::put_u64(&mut out, scales.len() as u64);
                out.extend(codes.iter().map(|&c| c as u8));
                for &s in scales {
                    wire::put_f32(&mut out, s);
                }
            }
            (None, Some(pq)) => {
                out.push(2);
                let (cfg, codebook, codes, rows) = pq.to_parts();
                wire::put_u64(&mut out, cfg.train_cap as u64);
                wire::put_u64(&mut out, cfg.max_iters as u64);
                wire::put_u64(&mut out, cfg.seed);
                wire::put_u64(&mut out, rows as u64);
                match codebook {
                    None => out.push(0),
                    Some(cb) => {
                        out.push(1);
                        let (cdim, sub, m, kc, centroids) = cb.to_parts();
                        wire::put_u64(&mut out, cdim as u64);
                        wire::put_u64(&mut out, sub as u64);
                        wire::put_u64(&mut out, m as u64);
                        wire::put_u64(&mut out, kc as u64);
                        wire::put_u64(&mut out, centroids.len() as u64);
                        for &c in centroids {
                            wire::put_f32(&mut out, c);
                        }
                    }
                }
                wire::put_u64(&mut out, codes.len() as u64);
                out.extend_from_slice(codes);
            }
            (None, None) => out.push(0),
        }
        out
    }

    /// Restores an index from [`Hnsw::dump`] bytes. The metric is not part
    /// of the dump — supply the same one that built the index.
    ///
    /// Errors describe the first structural problem found (bad magic,
    /// truncated buffer, out-of-range id, shape mismatch); the caller
    /// (`pas-store`) guards the bytes with a CRC, so an error here means
    /// the snapshot file lied about its own integrity.
    pub fn load(bytes: &[u8], metric: M) -> Result<Self, String> {
        let mut r = wire::Reader::new(bytes);
        if r.take(DUMP_MAGIC.len())? != DUMP_MAGIC {
            return Err("bad dump magic".into());
        }
        let config =
            HnswConfig { m: r.u64()? as usize, ef_construction: r.u64()? as usize, seed: r.u64()? };
        if config.m < 2 || config.ef_construction == 0 {
            return Err("dump config out of range".into());
        }
        let dim = r.u64()? as usize;
        let n = r.u64()? as usize;
        if n > bytes.len() {
            return Err("dump node count exceeds buffer".into());
        }
        let entry = match r.u64()? {
            u64::MAX => None,
            e if (e as usize) < n => Some(e as usize),
            _ => return Err("dump entry id out of range".into()),
        };
        let live = r.u64()? as usize;
        let mut norms = Vec::with_capacity(n);
        for _ in 0..n {
            norms.push(r.f32()?);
        }
        let mut dead = Vec::with_capacity(n);
        for _ in 0..n {
            dead.push(r.u8()? != 0);
        }
        if dead.iter().filter(|&&d| !d).count() != live {
            return Err("dump live count mismatch".into());
        }
        let mut vectors = Vec::with_capacity(n);
        for id in 0..n {
            let len = r.u32()? as usize;
            if len != 0 && len != dim {
                return Err(format!("dump vector {id} has wrong dimension"));
            }
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(r.f32()?);
            }
            vectors.push(v);
        }
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let layers = r.u32()? as usize;
            if layers == 0 {
                return Err("dump node has no layers".into());
            }
            let mut neighbors = Vec::with_capacity(layers);
            for _ in 0..layers {
                let cnt = r.u32()? as usize;
                let mut layer = Vec::with_capacity(cnt);
                for _ in 0..cnt {
                    let peer = r.u32()? as usize;
                    if peer >= n {
                        return Err("dump neighbor id out of range".into());
                    }
                    layer.push(peer);
                }
                neighbors.push(layer);
            }
            nodes.push(Node { neighbors });
        }
        let mut quant = None;
        let mut pq = None;
        match r.u8()? {
            0 => {}
            1 => {
                let qdim = r.u64()? as usize;
                let rows = r.u64()? as usize;
                if rows != n {
                    return Err("dump int8 row count mismatch".into());
                }
                let codes: Vec<i8> = r.take(rows * qdim)?.iter().map(|&b| b as i8).collect();
                let mut scales = Vec::with_capacity(rows);
                for _ in 0..rows {
                    scales.push(r.f32()?);
                }
                quant = Some(QuantStore::from_parts(qdim, codes, scales));
            }
            2 => {
                let cfg = PqConfig {
                    train_cap: r.u64()? as usize,
                    max_iters: r.u64()? as usize,
                    seed: r.u64()?,
                };
                let rows = r.u64()? as usize;
                let codebook = match r.u8()? {
                    0 => None,
                    _ => {
                        let cdim = r.u64()? as usize;
                        let sub = r.u64()? as usize;
                        let m = r.u64()? as usize;
                        let kc = r.u64()? as usize;
                        let clen = r.u64()? as usize;
                        if cdim != m.checked_mul(sub).ok_or("dump codebook overflow")? {
                            return Err("dump codebook shape mismatch".into());
                        }
                        let mut centroids = Vec::with_capacity(clen);
                        for _ in 0..clen {
                            centroids.push(r.f32()?);
                        }
                        Some(PqCodebook::from_parts(cdim, sub, m, kc, centroids))
                    }
                };
                let clen = r.u64()? as usize;
                let codes = r.take(clen)?.to_vec();
                if rows != 0 && rows != n {
                    return Err("dump PQ row count mismatch".into());
                }
                pq = Some(PqStore::from_parts(cfg, codebook, codes, rows));
            }
            _ => return Err("dump has unknown tier tag".into()),
        }
        if !r.is_empty() {
            return Err("dump has trailing bytes".into());
        }
        // RNG continuity: one f64 level draw was consumed per stored vector
        // (insert and build_batch both draw exactly once per id, and ids are
        // never reused), so fast-forwarding n draws reproduces the live
        // index's RNG state exactly.
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 0..n {
            let _: f64 = rng.random();
        }
        let level_norm = 1.0 / (config.m as f64).ln();
        Ok(Hnsw {
            config,
            metric,
            vectors,
            norms,
            nodes,
            entry,
            rng,
            level_norm,
            dim,
            dead,
            live,
            quant,
            pq,
        })
    }
}

/// Magic prefix of an [`Hnsw::dump`] blob.
const DUMP_MAGIC: &[u8] = b"PASHNSW1";

/// Little-endian scalar codec for the dump format. `f32`s travel as raw
/// bits so round trips are bit-exact.
mod wire {
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f32(out: &mut Vec<u8>, v: f32) {
        put_u32(out, v.to_bits());
    }

    /// Bounds-checked cursor over a dump buffer.
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        pub fn new(buf: &'a [u8]) -> Reader<'a> {
            Reader { buf, pos: 0 }
        }

        pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
            if self.buf.len() - self.pos < n {
                return Err("dump truncated".into());
            }
            let s = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        pub fn u8(&mut self) -> Result<u8, String> {
            Ok(self.take(1)?[0])
        }

        pub fn u32(&mut self) -> Result<u32, String> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
        }

        pub fn u64(&mut self) -> Result<u64, String> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
        }

        pub fn f32(&mut self) -> Result<f32, String> {
            Ok(f32::from_bits(self.u32()?))
        }

        pub fn is_empty(&self) -> bool {
            self.pos == self.buf.len()
        }
    }
}

/// Serializable state of an [`Hnsw`] index: graph, prepared vectors and
/// their original norms, entry point, removed ids. The quantized codes are
/// not part of the snapshot — re-enable with [`Hnsw::set_quantization`]
/// after restore (requantization is deterministic, so the codes come back
/// bit-identical).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HnswSnapshot {
    config: HnswConfig,
    vectors: Vec<Vec<f32>>,
    norms: Vec<f32>,
    nodes: Vec<Node>,
    entry: Option<usize>,
    removed: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactIndex;
    use crate::metric::{CosineDistance, EuclideanDistance};
    use rand::RngExt;

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect()).collect()
    }

    #[test]
    fn empty_index_searches_empty() {
        let idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        assert!(idx.search(&[1.0, 2.0], 3, 16).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn single_element() {
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        idx.insert(vec![1.0, 1.0]);
        let hits = idx.search(&[0.0, 0.0], 5, 16);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn exact_match_is_found_first() {
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        let vecs = random_vectors(100, 8, 1);
        for v in &vecs {
            idx.insert(v.clone());
        }
        let hits = idx.search(&vecs[37], 1, 50);
        assert_eq!(hits[0].id, 37);
        assert!(hits[0].distance < 1e-6);
    }

    #[test]
    fn recall_at_10_vs_exact() {
        let vecs = random_vectors(500, 16, 7);
        let mut hnsw =
            Hnsw::new(HnswConfig { m: 12, ef_construction: 80, seed: 3 }, EuclideanDistance);
        let mut exact = ExactIndex::new(EuclideanDistance);
        for v in &vecs {
            hnsw.insert(v.clone());
            exact.insert(v.clone());
        }
        let queries = random_vectors(20, 16, 99);
        let mut hits_total = 0usize;
        for q in &queries {
            let truth: std::collections::HashSet<usize> =
                exact.search(q, 10).into_iter().map(|n| n.id).collect();
            let approx = hnsw.search(q, 10, 80);
            hits_total += approx.iter().filter(|n| truth.contains(&n.id)).count();
        }
        let recall = hits_total as f64 / (10 * queries.len()) as f64;
        assert!(recall >= 0.9, "recall@10 = {recall}");
    }

    #[test]
    fn results_sorted_by_distance() {
        let vecs = random_vectors(100, 4, 11);
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        for v in &vecs {
            idx.insert(v.clone());
        }
        let hits = idx.search(&vecs[0], 10, 64);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn radius_search_only_returns_within_radius() {
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        idx.insert(vec![0.0, 0.0]);
        idx.insert(vec![0.1, 0.0]);
        idx.insert(vec![5.0, 5.0]);
        let hits = idx.search_radius(&[0.0, 0.0], 0.5, 16);
        let ids: Vec<usize> = hits.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn deterministic_given_seed() {
        let vecs = random_vectors(80, 8, 5);
        let build = |seed| {
            let mut idx =
                Hnsw::new(HnswConfig { seed, ..HnswConfig::default() }, EuclideanDistance);
            for v in &vecs {
                idx.insert(v.clone());
            }
            idx.search(&vecs[3], 5, 32).into_iter().map(|n| n.id).collect::<Vec<_>>()
        };
        assert_eq!(build(42), build(42));
    }

    #[test]
    fn snapshot_round_trip_preserves_searches() {
        let vecs = random_vectors(120, 8, 17);
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        for v in &vecs {
            idx.insert(v.clone());
        }
        let json = serde_json::to_string(&idx.snapshot()).unwrap();
        let snapshot: HnswSnapshot = serde_json::from_str(&json).unwrap();
        let restored = Hnsw::from_snapshot(snapshot, EuclideanDistance);
        for q in vecs.iter().step_by(13) {
            let a: Vec<usize> = idx.search(q, 5, 32).into_iter().map(|n| n.id).collect();
            let b: Vec<usize> = restored.search(q, 5, 32).into_iter().map(|n| n.id).collect();
            assert_eq!(a, b);
        }
        assert_eq!(restored.len(), idx.len());
    }

    #[test]
    fn restored_index_accepts_new_inserts() {
        let vecs = random_vectors(60, 4, 19);
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        for v in &vecs {
            idx.insert(v.clone());
        }
        let mut restored = Hnsw::from_snapshot(idx.snapshot(), EuclideanDistance);
        let new_point = vec![9.0, 9.0, 9.0, 9.0];
        let id = restored.insert(new_point.clone());
        assert_eq!(id, 60);
        let hit = &restored.search(&new_point, 1, 32)[0];
        assert_eq!(hit.id, 60);
        assert!(hit.distance < 1e-5);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_m_rejected() {
        let _ = Hnsw::new(HnswConfig { m: 1, ..HnswConfig::default() }, EuclideanDistance);
    }

    #[test]
    fn batch_build_assigns_sequential_ids() {
        let vecs = random_vectors(150, 8, 23);
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        let ids = idx.build_batch(vecs);
        assert_eq!(ids, (0..150).collect::<Vec<_>>());
        assert_eq!(idx.len(), 150);
    }

    #[test]
    fn batch_build_is_thread_count_invariant() {
        let vecs = random_vectors(300, 8, 29);
        let build = |threads: usize| {
            pas_par::with_threads(threads, || {
                let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
                idx.build_batch(vecs.clone());
                let snap = serde_json::to_string(&idx.snapshot()).unwrap();
                let probes: Vec<Vec<usize>> = vecs
                    .iter()
                    .step_by(17)
                    .map(|q| idx.search(q, 5, 48).into_iter().map(|n| n.id).collect())
                    .collect();
                (snap, probes)
            })
        };
        let serial = build(1);
        assert_eq!(build(2), serial);
        assert_eq!(build(8), serial);
    }

    #[test]
    fn batch_build_recall_matches_incremental() {
        let vecs = random_vectors(500, 16, 7);
        let mut hnsw =
            Hnsw::new(HnswConfig { m: 12, ef_construction: 80, seed: 3 }, EuclideanDistance);
        hnsw.build_batch(vecs.clone());
        let mut exact = ExactIndex::new(EuclideanDistance);
        for v in &vecs {
            exact.insert(v.clone());
        }
        let queries = random_vectors(20, 16, 99);
        let mut hits_total = 0usize;
        for q in &queries {
            let truth: std::collections::HashSet<usize> =
                exact.search(q, 10).into_iter().map(|n| n.id).collect();
            let approx = hnsw.search(q, 10, 80);
            hits_total += approx.iter().filter(|n| truth.contains(&n.id)).count();
        }
        let recall = hits_total as f64 / (10 * queries.len()) as f64;
        assert!(recall >= 0.9, "batch-built recall@10 = {recall}");
    }

    #[test]
    fn batch_build_draws_same_levels_as_incremental() {
        // The level sequence comes from the index RNG in input order, so a
        // batch build consumes exactly the same draws as incremental inserts.
        let vecs = random_vectors(40, 4, 31);
        let mut a = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        a.build_batch(vecs.clone());
        let mut b = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        for v in &vecs {
            b.insert(v.clone());
        }
        let levels =
            |idx: &Hnsw<EuclideanDistance>| idx.nodes.iter().map(|n| n.level()).collect::<Vec<_>>();
        assert_eq!(levels(&a), levels(&b));
    }

    #[test]
    fn batch_build_on_top_of_existing_index() {
        let vecs = random_vectors(120, 8, 37);
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        for v in &vecs[..40] {
            idx.insert(v.clone());
        }
        let ids = idx.build_batch(vecs[40..].to_vec());
        assert_eq!(ids.first(), Some(&40));
        assert_eq!(idx.len(), 120);
        let hits = idx.search(&vecs[100], 1, 64);
        assert_eq!(hits[0].id, 100);
        assert!(hits[0].distance < 1e-6);
    }

    #[test]
    fn cosine_store_is_prenormalized_and_keeps_norms() {
        let mut idx = Hnsw::new(HnswConfig::default(), CosineDistance);
        idx.insert(vec![3.0, 0.0, 4.0]);
        idx.insert(vec![0.0, 0.0, 0.0]);
        assert_eq!(idx.norm(0), 5.0);
        assert!((pas_kernels::sum_sq(idx.vector(0)).sqrt() - 1.0).abs() < 1e-6);
        assert_eq!(idx.norm(1), 0.0);
        assert_eq!(idx.vector(1), &[0.0, 0.0, 0.0]);
        // Scale-invariant probe: an unnormalized query parallel to vector 0
        // still lands at distance ~0.
        let hits = idx.search(&[30.0, 0.0, 40.0], 1, 16);
        assert_eq!(hits[0].id, 0);
        assert!(hits[0].distance < 1e-6);
    }

    #[test]
    fn batch_build_prepares_like_incremental_inserts() {
        let vecs: Vec<Vec<f32>> = random_vectors(90, 8, 41)
            .into_iter()
            .map(|v| v.into_iter().map(|x| x * 3.0).collect())
            .collect();
        let mut batch = Hnsw::new(HnswConfig::default(), CosineDistance);
        batch.build_batch(vecs.clone());
        let mut incremental = Hnsw::new(HnswConfig::default(), CosineDistance);
        for v in &vecs {
            incremental.insert(v.clone());
        }
        for id in 0..vecs.len() {
            assert_eq!(batch.vector(id), incremental.vector(id), "stored vector {id}");
            assert_eq!(batch.norm(id).to_bits(), incremental.norm(id).to_bits(), "norm {id}");
        }
    }

    #[test]
    fn batch_build_empty_input_is_noop() {
        let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        assert!(idx.build_batch(Vec::new()).is_empty());
        assert!(idx.is_empty());
    }

    fn cosine_index(n: usize, dim: usize, seed: u64) -> (Hnsw<CosineDistance>, Vec<Vec<f32>>) {
        let vecs = random_vectors(n, dim, seed);
        let mut idx = Hnsw::new(HnswConfig::default(), CosineDistance);
        idx.build_batch(vecs.clone());
        (idx, vecs)
    }

    fn ids_and_bits(hits: &[Neighbor]) -> Vec<(usize, u32)> {
        hits.iter().map(|n| (n.id, n.distance.to_bits())).collect()
    }

    #[test]
    fn quantized_search_matches_f32_search_exactly() {
        let (mut idx, _vecs) = cosine_index(300, 24, 43);
        let queries = random_vectors(12, 24, 101);
        let plain: Vec<_> = queries.iter().map(|q| ids_and_bits(&idx.search(q, 5, 48))).collect();
        idx.set_quantization(true);
        assert!(idx.quantized());
        // ~4x fewer probe-path bytes than the 4*dim f32 rows.
        assert_eq!(idx.probe_bytes_per_vector(), 24 + 4);
        let quant: Vec<_> = queries.iter().map(|q| ids_and_bits(&idx.search(q, 5, 48))).collect();
        assert_eq!(plain, quant, "quantized+rerank results must match pure f32");
        idx.set_quantization(false);
        let back: Vec<_> = queries.iter().map(|q| ids_and_bits(&idx.search(q, 5, 48))).collect();
        assert_eq!(plain, back);
    }

    #[test]
    fn quantized_insert_after_enabling_keeps_rows_aligned() {
        let (mut idx, _vecs) = cosine_index(60, 8, 47);
        idx.set_quantization(true);
        let extra = random_vectors(20, 8, 48);
        for v in &extra {
            idx.insert(v.clone());
        }
        let hits = idx.search(&extra[7], 1, 32);
        assert_eq!(hits[0].id, 60 + 7);
        assert!(hits[0].distance < 1e-6);
    }

    #[test]
    fn search_batch_matches_sequential_search() {
        let (mut idx, vecs) = cosine_index(250, 16, 53);
        let queries: Vec<Vec<f32>> = random_vectors(9, 16, 202)
            .into_iter()
            .chain([vecs[3].clone(), vecs[3].clone()]) // duplicates share panels
            .collect();
        for tier in ["f32", "int8", "pq"] {
            match tier {
                "int8" => idx.set_quantization(true),
                "pq" => idx.set_product_quantization(true),
                _ => idx.set_quantization(false),
            }
            let sequential: Vec<_> =
                queries.iter().map(|q| ids_and_bits(&idx.search(q, 6, 40))).collect();
            let batched: Vec<_> =
                idx.search_batch(&queries, 6, 40).iter().map(|hits| ids_and_bits(hits)).collect();
            assert_eq!(sequential, batched, "tier={tier}");
            // Single-query batches stay equal too (all-lazy path).
            let lone = idx.search_batch(&queries[..1], 6, 40);
            assert_eq!(ids_and_bits(&lone[0]), sequential[0], "tier={tier} single-query");
        }
        idx.set_product_quantization(false);
        assert!(idx.search_batch(&[], 4, 16).is_empty());
        let empty = Hnsw::new(HnswConfig::default(), CosineDistance);
        assert_eq!(empty.search_batch(&queries, 4, 16), vec![Vec::new(); queries.len()]);
    }

    /// Clustered unit-ish vectors: points around `clusters` smooth anchors.
    fn clustered_vectors(n: usize, clusters: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                let c = (i % clusters) as f32;
                (0..dim)
                    .map(|d| (d as f32 * 0.61 + c * 2.3).sin() + (i as f32 * 0.013).sin() * 0.05)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pq_search_recall_vs_f32_search() {
        let vecs = clustered_vectors(400, 11, 32);
        let mut idx = Hnsw::new(HnswConfig { m: 8, ef_construction: 48, seed: 7 }, CosineDistance);
        idx.build_batch(vecs.clone());
        let plain: Vec<_> = vecs.iter().step_by(23).map(|q| idx.search(q, 10, 48)).collect();
        idx.set_product_quantization(true);
        assert!(idx.product_quantized());
        // dim 32 → 4 bytes per vector, 8x+ below the int8 tier's dim+4.
        assert_eq!(idx.probe_bytes_per_vector(), 4);
        let (mut hit, mut total) = (0usize, 0usize);
        for (want, q) in plain.iter().zip(vecs.iter().step_by(23)) {
            let got = idx.search(q, 10, 48);
            let want_ids: Vec<usize> = want.iter().map(|h| h.id).collect();
            hit += got.iter().filter(|h| want_ids.contains(&h.id)).count();
            total += want.len();
            // PQ results carry exact f32 distances (re-ranked).
            for g in &got {
                let exact = CosineDistance.prepared_distance(
                    &{
                        let mut p = q.clone();
                        CosineDistance.prepare(&mut p);
                        p
                    },
                    idx.vector(g.id),
                );
                assert_eq!(g.distance.to_bits(), exact.to_bits());
            }
        }
        assert!(hit as f64 >= total as f64 * 0.95, "recall {hit}/{total} below 0.95");
    }

    #[test]
    fn pq_lazy_training_and_tier_exclusivity() {
        let mut idx = Hnsw::new(HnswConfig::default(), CosineDistance);
        idx.set_product_quantization(true);
        let vecs = clustered_vectors(PQ_TRAIN_MIN + 20, 5, 8);
        for (i, v) in vecs.iter().enumerate() {
            idx.insert(v.clone());
            if i + 1 < PQ_TRAIN_MIN {
                // Below the floor the probe path is still f32.
                assert_eq!(idx.probe_bytes_per_vector(), 8 * 4, "insert {i}");
            }
        }
        // Trained at the threshold; later inserts encode on the fly.
        assert_eq!(idx.probe_bytes_per_vector(), 1);
        let hits = idx.search(&vecs[70], 1, 32);
        assert_eq!(hits[0].id, 70);
        assert!(hits[0].distance < 1e-6);
        // Enabling int8 drops PQ and vice versa.
        idx.set_quantization(true);
        assert!(idx.quantized() && !idx.product_quantized());
        idx.set_product_quantization(true);
        assert!(idx.product_quantized() && !idx.quantized());
    }

    #[test]
    fn pq_training_is_thread_count_invariant() {
        let vecs = clustered_vectors(150, 9, 16);
        let build = |threads: usize| {
            pas_par::with_threads(threads, || {
                let mut idx =
                    Hnsw::new(HnswConfig { m: 8, ef_construction: 32, seed: 3 }, CosineDistance);
                idx.build_batch(vecs.clone());
                idx.set_product_quantization(true);
                vecs.iter()
                    .step_by(13)
                    .map(|q| ids_and_bits(&idx.search(q, 5, 32)))
                    .collect::<Vec<_>>()
            })
        };
        assert_eq!(build(1), build(8));
    }

    #[test]
    fn pq_search_skips_removed_nodes() {
        let vecs = clustered_vectors(160, 7, 16);
        let mut idx = Hnsw::new(HnswConfig::default(), CosineDistance);
        idx.build_batch(vecs.clone());
        idx.set_product_quantization(true);
        for id in (0..160).step_by(5) {
            idx.remove(id);
        }
        for (qi, q) in vecs.iter().enumerate().step_by(11) {
            for hit in idx.search(q, 5, 48) {
                assert!(!idx.is_removed(hit.id), "query {qi} returned removed id {}", hit.id);
            }
        }
    }

    #[test]
    fn remove_unlinks_and_searches_skip_removed() {
        let (mut idx, vecs) = cosine_index(200, 8, 59);
        for id in (0..200).step_by(4) {
            assert!(idx.remove(id));
            assert!(!idx.remove(id), "second remove is a no-op");
        }
        assert_eq!(idx.len(), 200);
        assert_eq!(idx.live_len(), 150);
        for (qi, q) in vecs.iter().enumerate().step_by(7) {
            let hits = idx.search(q, 5, 64);
            assert!(!hits.is_empty());
            for hit in &hits {
                assert!(!idx.is_removed(hit.id), "query {qi} returned removed id {}", hit.id);
            }
            // A live query vector must still find itself through the
            // re-linked graph.
            if qi % 4 != 0 {
                assert_eq!(hits[0].id, qi, "query {qi} lost itself after removals");
                assert!(hits[0].distance < 1e-6);
            }
        }
    }

    #[test]
    fn remove_everything_then_reinsert() {
        let (mut idx, vecs) = cosine_index(40, 6, 61);
        for id in 0..40 {
            idx.remove(id);
        }
        assert_eq!(idx.live_len(), 0);
        assert!(idx.search(&vecs[0], 3, 16).is_empty());
        let id = idx.insert(vecs[1].clone());
        assert_eq!(id, 40, "ids stay positional after removals");
        let hits = idx.search(&vecs[1], 1, 16);
        assert_eq!(hits[0].id, 40);
    }

    #[test]
    fn remove_survives_snapshot_round_trip() {
        let (mut idx, vecs) = cosine_index(120, 8, 67);
        for id in (0..120).step_by(3) {
            idx.remove(id);
        }
        let json = serde_json::to_string(&idx.snapshot()).unwrap();
        let snapshot: HnswSnapshot = serde_json::from_str(&json).unwrap();
        let mut restored = Hnsw::from_snapshot(snapshot, CosineDistance);
        assert_eq!(restored.live_len(), idx.live_len());
        restored.set_quantization(true);
        for q in vecs.iter().step_by(11) {
            let a: Vec<usize> = idx.search(q, 5, 48).into_iter().map(|n| n.id).collect();
            let b: Vec<usize> = restored.search(q, 5, 48).into_iter().map(|n| n.id).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn dump_load_round_trip_is_bit_identical_on_every_tier() {
        for tier in ["f32", "int8", "pq"] {
            let (mut idx, vecs) = cosine_index(150, 16, 71);
            for id in (0..150).step_by(7) {
                idx.remove(id);
            }
            match tier {
                "int8" => idx.set_quantization(true),
                "pq" => idx.set_product_quantization(true),
                _ => {}
            }
            let loaded = Hnsw::load(&idx.dump(), CosineDistance).unwrap();
            assert_eq!(loaded.len(), idx.len());
            assert_eq!(loaded.live_len(), idx.live_len());
            assert_eq!(loaded.quantized(), idx.quantized());
            assert_eq!(loaded.product_quantized(), idx.product_quantized());
            for q in vecs.iter().step_by(9) {
                assert_eq!(
                    ids_and_bits(&idx.search(q, 5, 48)),
                    ids_and_bits(&loaded.search(q, 5, 48)),
                    "tier {tier}"
                );
            }
            // The dump itself round-trips bit-exactly.
            assert_eq!(idx.dump(), loaded.dump(), "tier {tier}");
        }
    }

    #[test]
    fn loaded_index_inserts_bit_identically_to_never_closed() {
        let vecs = random_vectors(120, 12, 73);
        let mut live = Hnsw::new(HnswConfig::default(), CosineDistance);
        for v in &vecs[..80] {
            live.insert(v.clone());
        }
        live.remove(10);
        live.remove(33);
        let mut loaded = Hnsw::load(&live.dump(), CosineDistance).unwrap();
        // Same subsequent inserts on both sides: the loaded index must draw
        // the same levels (RNG fast-forward) and build the same graph.
        for v in &vecs[80..] {
            assert_eq!(live.insert(v.clone()), loaded.insert(v.clone()));
        }
        assert_eq!(live.dump(), loaded.dump());
        for q in vecs.iter().step_by(13) {
            assert_eq!(
                ids_and_bits(&live.search(q, 5, 32)),
                ids_and_bits(&loaded.search(q, 5, 32))
            );
        }
    }

    #[test]
    fn dump_load_empty_and_untrained_pq() {
        let mut idx: Hnsw<CosineDistance> = Hnsw::new(HnswConfig::default(), CosineDistance);
        let loaded = Hnsw::load(&idx.dump(), CosineDistance).unwrap();
        assert!(loaded.is_empty());
        // PQ enabled but below the training threshold: tier survives untrained.
        idx.set_product_quantization(true);
        for v in random_vectors(10, 8, 79) {
            idx.insert(v);
        }
        let loaded = Hnsw::load(&idx.dump(), CosineDistance).unwrap();
        assert!(loaded.product_quantized());
        assert_eq!(loaded.dump(), idx.dump());
    }

    #[test]
    fn load_rejects_corrupt_dumps() {
        let (idx, _vecs) = cosine_index(20, 8, 83);
        let bytes = idx.dump();
        assert!(Hnsw::<CosineDistance>::load(&bytes[..bytes.len() - 1], CosineDistance).is_err());
        assert!(Hnsw::<CosineDistance>::load(b"PASWRONG", CosineDistance).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Hnsw::<CosineDistance>::load(&trailing, CosineDistance).is_err());
    }
}

//! Approximate nearest-neighbour search and clustering.
//!
//! The PAS data-selection pipeline (§3.1 of the paper) deduplicates prompt
//! embeddings with HNSW. This crate implements that substrate from scratch:
//!
//! - [`hnsw`] — a Hierarchical Navigable Small World index (Malkov &
//!   Yashunin, 2016): multi-layer greedy graph search, `ef`-bounded beam
//!   construction, seeded level assignment.
//! - [`exact`] — a brute-force scanner with the same query interface, used
//!   as the ground truth in recall tests and as the baseline in benches.
//! - [`kmeans`] — seeded k-means++ clustering for the grouping step.
//! - [`dedup`] — the near-duplicate grouping engine built on the index.
//! - [`minhash`] — MinHash signatures + LSH banding: the classical
//!   near-duplicate detector, as an alternative dedup backend and a
//!   cross-check for the embedding route.
//! - [`metric`] — pluggable distance metrics.

pub mod dedup;
pub mod exact;
pub mod hnsw;
pub mod kmeans;
pub mod metric;
pub mod minhash;
pub mod quant;

pub use dedup::{DedupConfig, DedupOutcome, Deduplicator};
pub use exact::ExactIndex;
pub use hnsw::{Hnsw, HnswConfig};
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use metric::{CosineDistance, EuclideanDistance, Metric};
pub use minhash::{LshIndex, MinHashConfig, MinHashDeduplicator, MinHasher, Signature};
pub use quant::{PqCodebook, PqConfig, PqStore, PqTable, QuantStore, PQ_TRAIN_MIN};

/// A search hit: item id plus its distance to the query (smaller = closer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the item in insertion order.
    pub id: usize,
    /// Distance under the index's metric.
    pub distance: f32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hnsw_and_exact_agree_on_nearest_neighbor() {
        let vecs: Vec<Vec<f32>> = (0..200)
            .map(|i| {
                let x = (i as f32) * 0.31;
                let mut v = vec![x.sin(), x.cos(), (x * 0.5).sin(), (x * 0.7).cos()];
                pas_embed::normalize_in_place(&mut v);
                v
            })
            .collect();
        let mut hnsw = Hnsw::new(HnswConfig::default(), CosineDistance);
        let mut exact = ExactIndex::new(CosineDistance);
        for v in &vecs {
            hnsw.insert(v.clone());
            exact.insert(v.clone());
        }
        let mut agree = 0;
        for v in vecs.iter().step_by(10) {
            let h = hnsw.search(v, 1, 64);
            let e = exact.search(v, 1);
            if h[0].id == e[0].id {
                agree += 1;
            }
        }
        assert!(agree >= 18, "HNSW top-1 agreement too low: {agree}/20");
    }
}

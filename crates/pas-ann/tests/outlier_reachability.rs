//! Regression: an inserted outlier must stay reachable.
//!
//! With naive closest-M pruning, a far outlier is every peer's farthest
//! neighbour, so all inbound links get severed and the node becomes
//! unreachable. The Algorithm 4 diversity heuristic in `shrink_links`
//! keeps such bridges alive.

use pas_ann::{EuclideanDistance, Hnsw, HnswConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[test]
fn outliers_remain_searchable() {
    let mut rng = StdRng::seed_from_u64(19);
    let mut idx = Hnsw::new(HnswConfig::default(), EuclideanDistance);
    for _ in 0..60 {
        let v: Vec<f32> = (0..4).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect();
        idx.insert(v);
    }
    // Insert several progressively farther outliers; each must be the
    // top-1 result for a query at its own position.
    for scale in [3.0f32, 9.0, 40.0, -25.0] {
        let point = vec![scale; 4];
        let id = idx.insert(point.clone());
        let hit = &idx.search(&point, 1, 32)[0];
        assert_eq!(hit.id, id, "outlier at {scale} unreachable (distance {})", hit.distance);
        assert!(hit.distance < 1e-4);
    }
}

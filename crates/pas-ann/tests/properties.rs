//! Property-based tests for the ANN substrate: HNSW against the exact
//! oracle, k-means invariants, dedup invariants.

use proptest::prelude::*;

use pas_ann::{
    kmeans, CosineDistance, DedupConfig, Deduplicator, EuclideanDistance, ExactIndex, Hnsw,
    HnswConfig, KMeansConfig,
};

fn vectors(n: std::ops::Range<usize>, dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-1.0f32..1.0, dim..=dim), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hnsw_top1_matches_exact_for_existing_points(vs in vectors(5..80, 6)) {
        let mut hnsw = Hnsw::new(HnswConfig { ef_construction: 64, ..HnswConfig::default() }, EuclideanDistance);
        let mut exact = ExactIndex::new(EuclideanDistance);
        for v in &vs {
            hnsw.insert(v.clone());
            exact.insert(v.clone());
        }
        // Querying an inserted point must return distance ~0 at rank 1.
        for (i, v) in vs.iter().enumerate().step_by(7) {
            let hit = &hnsw.search(v, 1, 48)[0];
            prop_assert!(hit.distance < 1e-5, "query {i}: distance {}", hit.distance);
        }
    }

    #[test]
    fn hnsw_recall_at_5_is_high(vs in vectors(60..150, 8)) {
        let mut hnsw = Hnsw::new(HnswConfig { ef_construction: 80, ..HnswConfig::default() }, EuclideanDistance);
        let mut exact = ExactIndex::new(EuclideanDistance);
        for v in &vs {
            hnsw.insert(v.clone());
            exact.insert(v.clone());
        }
        let mut hits = 0usize;
        let mut total = 0usize;
        for v in vs.iter().step_by(11) {
            let truth: std::collections::HashSet<usize> =
                exact.search(v, 5).into_iter().map(|n| n.id).collect();
            for n in hnsw.search(v, 5, 64) {
                total += 1;
                if truth.contains(&n.id) {
                    hits += 1;
                }
            }
        }
        prop_assert!(total == 0 || hits * 10 >= total * 8, "recall {hits}/{total}");
    }

    #[test]
    fn hnsw_results_are_sorted_and_unique(vs in vectors(10..60, 4)) {
        let mut hnsw = Hnsw::new(HnswConfig::default(), EuclideanDistance);
        for v in &vs {
            hnsw.insert(v.clone());
        }
        let res = hnsw.search(&vs[0], 8, 32);
        for w in res.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance);
        }
        let ids: std::collections::HashSet<usize> = res.iter().map(|n| n.id).collect();
        prop_assert_eq!(ids.len(), res.len(), "duplicate ids in results");
    }

    #[test]
    fn kmeans_assignments_are_nearest_centroid(vs in vectors(8..60, 3)) {
        let res = kmeans(&vs, &KMeansConfig { k: 3, ..KMeansConfig::default() });
        for (p, &a) in vs.iter().zip(&res.assignments) {
            let d_assigned: f32 = p.iter().zip(&res.centroids[a]).map(|(x, y)| (x - y).powi(2)).sum();
            for c in &res.centroids {
                let d: f32 = p.iter().zip(c).map(|(x, y)| (x - y).powi(2)).sum();
                prop_assert!(d_assigned <= d + 1e-4);
            }
        }
    }

    #[test]
    fn dedup_partitions_the_input(vs in vectors(5..60, 5)) {
        let out = Deduplicator::run(DedupConfig::default(), vs.clone());
        prop_assert_eq!(out.group_of.len(), vs.len());
        prop_assert!(out.kept.len() <= vs.len());
        prop_assert!(!out.kept.is_empty());
        // Every group id referenced is in range.
        for &g in &out.group_of {
            prop_assert!(g < out.group_count);
        }
        // Kept items are in strictly increasing input order.
        for w in out.kept.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn dedup_is_idempotent(vs in vectors(5..50, 5)) {
        let first = Deduplicator::run(DedupConfig::default(), vs.clone());
        let kept: Vec<Vec<f32>> = first.kept.iter().map(|&i| vs[i].clone()).collect();
        let second = Deduplicator::run(DedupConfig::default(), kept.clone());
        prop_assert_eq!(second.kept.len(), kept.len(), "dedup of deduped must keep all");
    }

    #[test]
    fn cosine_distance_triangle_ish(a in prop::collection::vec(-1.0f32..1.0, 4),
                                    b in prop::collection::vec(-1.0f32..1.0, 4)) {
        use pas_ann::Metric;
        let d = CosineDistance.distance(&a, &b);
        prop_assert!((0.0..=2.0 + 1e-5).contains(&d));
        prop_assert!((CosineDistance.distance(&b, &a) - d).abs() < 1e-6);
    }

    #[test]
    fn quantized_exact_topk_after_rerank_matches_f32(vs in vectors(30..120, 16)) {
        // recall@k == 1.0, and stronger: the exact f32 re-rank over the
        // over-fetched int8 scan returns the plain index's top-k with
        // bit-identical distances.
        let mut plain = ExactIndex::new(CosineDistance);
        let mut quant = ExactIndex::new(CosineDistance);
        quant.set_quantization(true);
        for v in &vs {
            plain.insert(v.clone());
            quant.insert(v.clone());
        }
        for (i, v) in vs.iter().enumerate().step_by(9) {
            let want: Vec<(usize, u32)> =
                plain.search(v, 5).into_iter().map(|n| (n.id, n.distance.to_bits())).collect();
            let got: Vec<(usize, u32)> =
                quant.search(v, 5).into_iter().map(|n| (n.id, n.distance.to_bits())).collect();
            prop_assert_eq!(&got, &want, "exact query {}", i);
        }
    }

    #[test]
    fn quantized_hnsw_topk_after_rerank_matches_f32(vs in vectors(40..120, 12)) {
        // Graph construction always runs in f32, so both indexes hold the
        // same graph; the int8 traversal plus over-fetched f32 re-rank must
        // land on the f32 search's top-k exactly (recall@k == 1.0).
        let mut plain = Hnsw::new(HnswConfig::default(), CosineDistance);
        let mut quant = Hnsw::new(HnswConfig::default(), CosineDistance);
        quant.set_quantization(true);
        for v in &vs {
            plain.insert(v.clone());
            quant.insert(v.clone());
        }
        for (i, v) in vs.iter().enumerate().step_by(7) {
            let want: Vec<(usize, u32)> =
                plain.search(v, 5, 48).into_iter().map(|n| (n.id, n.distance.to_bits())).collect();
            let got: Vec<(usize, u32)> =
                quant.search(v, 5, 48).into_iter().map(|n| (n.id, n.distance.to_bits())).collect();
            prop_assert_eq!(&got, &want, "hnsw query {}", i);
        }
    }

    #[test]
    fn pq_rerank_recall_at_5_on_clustered_data(
        centers in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 16..=16), 3..8),
        jitters in prop::collection::vec(prop::collection::vec(-0.05f32..0.05, 16..=16), 80..150),
    ) {
        // PQ is lossy (no recall == 1.0 guarantee like int8), but on
        // clusterable data — the regime the codebook k-means is built for —
        // the over-fetched ADC scan plus exact f32 re-rank must keep
        // recall@5 at 0.95 or better against the pure-f32 oracle.
        let vs: Vec<Vec<f32>> = jitters
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let c = &centers[i % centers.len()];
                c.iter().zip(j).map(|(a, b)| a + b).collect()
            })
            .collect();
        let mut plain = ExactIndex::new(CosineDistance);
        let mut pq = ExactIndex::new(CosineDistance);
        pq.set_product_quantization(true);
        for v in &vs {
            plain.insert(v.clone());
            pq.insert(v.clone());
        }
        // Enough rows to cross the lazy-training threshold: 2 code bytes
        // per vector at dim 16, not the 64-byte f32 fallback.
        prop_assert_eq!(pq.probe_bytes_per_vector(), 2);
        let mut hits = 0usize;
        let mut total = 0usize;
        for v in vs.iter().step_by(7) {
            let truth: std::collections::HashSet<usize> =
                plain.search(v, 5).into_iter().map(|n| n.id).collect();
            for n in pq.search(v, 5) {
                total += 1;
                if truth.contains(&n.id) {
                    hits += 1;
                }
            }
        }
        prop_assert!(hits * 100 >= total * 95, "PQ recall@5 {}/{}", hits, total);
    }

    #[test]
    fn pq_index_is_bit_identical_across_kernel_backends(vs in vectors(70..120, 8)) {
        // Codebook training (f32 striped kernels), encoding (integer
        // argmin), ADC tables (fixed-point), and the re-ranked probes must
        // all agree bit-for-bit on every backend this CPU has: the whole
        // index is rebuilt under each backend and every probe compared.
        use pas_kernels::Backend;
        let backends: &[Backend] = if pas_kernels::best_supported() == Backend::Avx2 {
            &[Backend::Scalar, Backend::Sse2, Backend::Avx2]
        } else if cfg!(target_arch = "x86_64") {
            &[Backend::Scalar, Backend::Sse2]
        } else {
            &[Backend::Scalar]
        };
        let restore = pas_kernels::backend();
        let runs: Vec<Vec<Vec<(usize, u32)>>> = backends
            .iter()
            .map(|&be| {
                pas_kernels::set_backend(be);
                let mut pq = Hnsw::new(HnswConfig::default(), CosineDistance);
                pq.set_product_quantization(true);
                for v in &vs {
                    pq.insert(v.clone());
                }
                vs.iter()
                    .step_by(9)
                    .map(|q| {
                        pq.search(q, 5, 48)
                            .into_iter()
                            .map(|n| (n.id, n.distance.to_bits()))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        pas_kernels::set_backend(restore);
        for (bi, r) in runs.iter().enumerate().skip(1) {
            prop_assert_eq!(
                r,
                &runs[0],
                "PQ probes diverged: {} vs {}",
                backends[bi].name(),
                backends[0].name()
            );
        }
    }

    #[test]
    fn hnsw_dump_load_round_trip_is_bit_identical_across_tiers(
        vs in vectors(70..120, 8),
        removes in prop::collection::vec(0usize..1000, 0..12),
    ) {
        // The persistence contract (pas-store warm opens): a graph
        // serialized mid-life — after arbitrary inserts and removes, on
        // every probe tier — must deserialize into an index whose probes
        // AND whose future are bit-identical to the original's. 70+ rows
        // keeps the PQ tier above its lazy-training threshold.
        for tier in 0..3u8 {
            let mut live = Hnsw::new(HnswConfig::default(), CosineDistance);
            match tier {
                1 => live.set_quantization(true),
                2 => live.set_product_quantization(true),
                _ => {}
            }
            for v in &vs {
                live.insert(v.clone());
            }
            for &r in &removes {
                live.remove(r % vs.len());
            }
            let bytes = live.dump();
            let loaded = Hnsw::load(&bytes, CosineDistance);
            prop_assert!(loaded.is_ok(), "tier {} load failed: {:?}", tier, loaded.err());
            let mut loaded = loaded.unwrap();
            // Re-serializing the loaded graph reproduces the dump exactly.
            prop_assert_eq!(loaded.dump(), bytes, "tier {} dump drifted through load", tier);
            for (qi, q) in vs.iter().enumerate().step_by(9) {
                let want: Vec<(usize, u32)> =
                    live.search(q, 5, 48).into_iter().map(|n| (n.id, n.distance.to_bits())).collect();
                let got: Vec<(usize, u32)> =
                    loaded.search(q, 5, 48).into_iter().map(|n| (n.id, n.distance.to_bits())).collect();
                prop_assert_eq!(got, want, "tier {} query {} diverged after load", tier, qi);
            }
            // RNG continuity: the loaded graph's *future* matches too — the
            // same inserts land on the same levels and links.
            for v in vs.iter().take(7) {
                let grown: Vec<f32> = v.iter().map(|x| x * 0.9 + 0.05).collect();
                prop_assert_eq!(live.insert(grown.clone()), loaded.insert(grown));
            }
            for (qi, q) in vs.iter().enumerate().step_by(13) {
                let want: Vec<(usize, u32)> =
                    live.search(q, 5, 48).into_iter().map(|n| (n.id, n.distance.to_bits())).collect();
                let got: Vec<(usize, u32)> =
                    loaded.search(q, 5, 48).into_iter().map(|n| (n.id, n.distance.to_bits())).collect();
                prop_assert_eq!(got, want, "tier {} query {} diverged post-load insert", tier, qi);
            }
        }
    }

    #[test]
    fn search_batch_equals_sequential_searches(vs in vectors(20..90, 8)) {
        let mut hnsw = Hnsw::new(HnswConfig::default(), CosineDistance);
        for v in &vs {
            hnsw.insert(v.clone());
        }
        let queries: Vec<Vec<f32>> = vs.iter().step_by(5).cloned().collect();
        let batch = hnsw.search_batch(&queries, 4, 32);
        prop_assert_eq!(batch.len(), queries.len());
        for (qi, (q, got)) in queries.iter().zip(&batch).enumerate() {
            let want = hnsw.search(q, 4, 32);
            prop_assert_eq!(got.len(), want.len(), "query {}", qi);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.id, w.id, "query {}", qi);
                prop_assert_eq!(g.distance.to_bits(), w.distance.to_bits(), "query {}", qi);
            }
        }
    }
}

//! Deterministic high-throughput serving gateway for PAS.
//!
//! The paper's deployment story (PAS "serves heavy traffic from millions
//! of users") needs more than a single serve-time optimizer: it needs a
//! cache in front of `M_p`, batching behind it, and replicas around it.
//! This crate is that serving tier, built as a *deterministic discrete-
//! event simulation* so load tests are bit-reproducible — the same seeded
//! workload produces identical responses, identical ordering, and an
//! identical [`GatewayReport`] on any machine at any thread count.
//!
//! - [`cache`] — [`SemanticCache`]: exact-match LRU complement cache with
//!   a τ-gated ANN near-duplicate tier (off by default; a near hit serves
//!   the *neighbour's* complement), optionally backed by a `pas-store`
//!   segment log for crash-safe warm restarts
//!   ([`SemanticCache::open_from`] / [`SemanticCache::persist_to`]).
//! - [`pool`] — [`ReplicaPool`]: N `DegradingServer` replicas with
//!   decorrelated fault seeds, deterministic least-loaded routing, and
//!   failover; a full-pool outage degrades every request to passthrough.
//! - [`gateway`] — [`Gateway`]: the event loop tying admission control,
//!   micro-batching, cache, and pool together.
//! - [`sim`] — [`EventHeap`]: the `(time, seq)`-ordered future-event list
//!   the gateway loop runs on, shared with `pas-cluster`'s multi-node
//!   loop.
//! - [`workload`] — seeded Zipf-skewed open-loop request generation.
//! - [`report`] — mergeable [`GatewayReport`] with a log₂-bucketed
//!   latency histogram.

pub mod cache;
pub mod gateway;
pub mod pool;
pub mod report;
pub mod sim;
pub mod workload;

pub use cache::{entry_hash, CacheOutcome, OpenMode, SemanticCache, SemanticCacheConfig};
pub use gateway::{cache_embedder, AdmissionPolicy, Gateway, GatewayCache, GatewayConfig};
pub use pool::{ReplicaPool, ServeOutcome};
pub use report::{GatewayReport, LatencyHistogram, ReplicaReport};
pub use sim::EventHeap;
pub use workload::{base_prompt, generate, Request, WorkloadConfig};

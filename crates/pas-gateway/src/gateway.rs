//! The gateway proper: a deterministic discrete-event serving loop.
//!
//! The gateway is simulated rather than clocked: every request carries a
//! simulated arrival time, service costs are fixed per-operation
//! millisecond charges, and the loop pops events off a heap ordered by
//! `(time, seq)` where `seq` is assigned at scheduling time. No wall
//! clock, no OS timer, no thread ever touches the loop state — so a
//! seeded load test produces bit-identical responses, ordering, and
//! [`GatewayReport`] on every machine and at every `pas_par` thread
//! count. Parallelism lives in exactly one place: a dispatched batch's
//! unique prompts are served through [`pas_par::par_map`], whose results
//! come back in item order regardless of interleaving.
//!
//! Request path: arrival → semantic cache lookup (exact, then τ-gated
//! near tier) → on miss, admission control into a bounded queue → micro-
//! batch dispatch (when `batch_max` prompts wait, or `batch_linger_ms`
//! after an enqueue) → replica pool with failover → completion responds,
//! installs fresh complements into the cache, and accounts latency.
//! Degraded results (full-pool exhaustion) are served as passthrough but
//! *never cached* — caching one would keep poisoning hits after the pool
//! recovers.

use std::collections::VecDeque;

use pas_core::PromptOptimizer;
use pas_embed::{EmbeddingCache, NgramEmbedder};
use pas_fault::{FaultConfig, FaultProfile};

use crate::cache::{CacheOutcome, SemanticCache, SemanticCacheConfig};
use crate::pool::{ReplicaPool, ServeOutcome};
use crate::report::{GatewayReport, ReplicaReport};
use crate::sim::EventHeap;
use crate::workload::Request;

// Observability. Every recording below happens on the (serial) event-loop
// thread — the only parallel region is `ReplicaPool::try_serve` inside
// `dispatch`, which records nothing — so gauges are safe and the metrics
// are as deterministic as the loop itself. Aggregate counters are charged
// once per run from the finished report rather than per event.
static OBS_REQUESTS: pas_obs::Counter = pas_obs::Counter::new("gateway.requests");
static OBS_COMPLETED: pas_obs::Counter = pas_obs::Counter::new("gateway.completed");
static OBS_EXACT_HITS: pas_obs::Counter = pas_obs::Counter::new("gateway.cache.exact_hits");
static OBS_NEAR_HITS: pas_obs::Counter = pas_obs::Counter::new("gateway.cache.near_hits");
static OBS_MISSES: pas_obs::Counter = pas_obs::Counter::new("gateway.cache.misses");
static OBS_BATCH_HITS: pas_obs::Counter = pas_obs::Counter::new("gateway.cache.batch_hits");
static OBS_EVICTIONS: pas_obs::Counter = pas_obs::Counter::new("gateway.cache.evictions");
static OBS_SHED: pas_obs::Counter = pas_obs::Counter::new("gateway.shed");
static OBS_REJECTED: pas_obs::Counter = pas_obs::Counter::new("gateway.rejected");
static OBS_DEGRADED: pas_obs::Counter = pas_obs::Counter::new("gateway.degraded");
static OBS_FAILOVERS: pas_obs::Counter = pas_obs::Counter::new("gateway.failovers");
static OBS_BATCHES: pas_obs::Counter = pas_obs::Counter::new("gateway.batches");
static OBS_BATCHED_PROMPTS: pas_obs::Counter = pas_obs::Counter::new("gateway.batched_prompts");
static OBS_BATCH_SIZE: pas_obs::Histogram = pas_obs::Histogram::new("gateway.batch.size");
static OBS_LATENCY: pas_obs::Histogram = pas_obs::Histogram::new("gateway.latency_ms");
static OBS_QUEUE_DEPTH: pas_obs::Gauge = pas_obs::Gauge::new("gateway.queue.depth");
static OBS_POOL_HEALTHY: pas_obs::Gauge = pas_obs::Gauge::new("gateway.pool.healthy");

/// What to do with a cache-miss arrival when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Turn the *new* request away: it is served passthrough immediately.
    Reject,
    /// Shed the *oldest* queued request (served passthrough) to make room
    /// — freshest-first, the usual choice when staleness is the cost.
    ShedOldest,
}

/// Gateway tuning knobs. Service costs are simulated-milliseconds charges,
/// not measurements.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Replica count for the pool.
    pub replicas: usize,
    /// Base fault config; per-replica seeds are derived from its seed.
    pub fault: FaultConfig,
    /// Per-replica profile overrides (index-aligned; missing entries use
    /// `fault.profile`).
    pub replica_profiles: Vec<FaultProfile>,
    /// Semantic cache parameters.
    pub cache: SemanticCacheConfig,
    /// Bound on queued (admitted, undispatched) requests.
    pub queue_capacity: usize,
    /// Full-queue behaviour.
    pub admission: AdmissionPolicy,
    /// Dispatch as soon as this many prompts wait.
    pub batch_max: usize,
    /// … or this long after a prompt was enqueued, whichever first.
    pub batch_linger_ms: u64,
    /// Simulated cost of answering from the cache.
    pub cache_hit_cost_ms: u64,
    /// Simulated fixed cost of dispatching a batch to `M_p`.
    pub batch_overhead_ms: u64,
    /// Simulated marginal cost per unique prompt in a batch.
    pub per_prompt_cost_ms: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            replicas: 2,
            fault: FaultConfig::default(),
            replica_profiles: Vec::new(),
            cache: SemanticCacheConfig::default(),
            queue_capacity: 64,
            admission: AdmissionPolicy::ShedOldest,
            batch_max: 8,
            batch_linger_ms: 6,
            cache_hit_cost_ms: 1,
            batch_overhead_ms: 10,
            per_prompt_cost_ms: 5,
        }
    }
}

enum Event {
    /// Request `i` of the workload arrives.
    Arrival(usize),
    /// The linger timer armed when request `i` was enqueued fires.
    LingerFire(usize),
    /// Batch members whose prompt turned out cached by dispatch time
    /// (second-chance hits) complete without touching the pool.
    CacheServe { members: Vec<usize>, responses: Vec<String> },
    /// A dispatched batch completes on `replica`. `members` are the
    /// requests it answers, `outcomes` one per unique prompt, and
    /// `unique_of[k]` maps member `k` to its outcome index.
    Completion {
        replica: usize,
        members: Vec<usize>,
        unique_of: Vec<usize>,
        outcomes: Vec<ServeOutcome>,
    },
}

/// Per-request lifecycle marker, driving linger-timer validation.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ReqState {
    Pending,
    Queued,
    Dispatched,
    Done,
}

/// The embedder-plus-memo stack the gateway's cache runs on: repeated
/// probes of hot prompts skip re-embedding through a *bounded*
/// [`EmbeddingCache`] sized to the semantic cache.
pub type GatewayCache = SemanticCache<EmbeddingCache<NgramEmbedder>>;

/// Builds the embedder stack [`Gateway::new`] gives its cache — callers
/// reopening a persisted cache ([`SemanticCache::open_from`]) use this to
/// reproduce the exact same embedding pipeline.
pub fn cache_embedder(cache: &SemanticCacheConfig) -> EmbeddingCache<NgramEmbedder> {
    EmbeddingCache::bounded(NgramEmbedder::default(), cache.capacity.max(1) * 2)
}

/// The deterministic serving gateway (module docs). Build one per load
/// test; [`Gateway::run`] consumes a workload and yields every response
/// plus the aggregate [`GatewayReport`].
pub struct Gateway<O: PromptOptimizer> {
    config: GatewayConfig,
    pool: ReplicaPool<O>,
    cache: GatewayCache,
}

impl<O: PromptOptimizer> Gateway<O> {
    /// Builds a gateway over `optimizers` (one per replica; the length
    /// overrides `config.replicas`) with a fresh, empty cache.
    pub fn new(config: GatewayConfig, optimizers: Vec<O>) -> Self {
        let embedder = cache_embedder(&config.cache);
        let cache = SemanticCache::new(config.cache.clone(), embedder);
        Self::with_cache(config, optimizers, cache)
    }

    /// Builds a gateway around an existing cache — one carried over from a
    /// previous gateway ([`Gateway::into_cache`]) or reopened from a store
    /// directory ([`SemanticCache::open_from`]) for a warm restart. The
    /// cache's own construction-time config governs its behaviour;
    /// `config.cache` is not re-applied.
    pub fn with_cache(config: GatewayConfig, optimizers: Vec<O>, cache: GatewayCache) -> Self {
        assert!(!optimizers.is_empty(), "gateway needs at least one replica");
        assert!(config.batch_max > 0, "batch_max must be positive");
        let pool = ReplicaPool::new(optimizers, &config.fault, &config.replica_profiles);
        Gateway { config, pool, cache }
    }

    /// Consumes the gateway and hands back its cache, for a checkpoint
    /// ([`SemanticCache::persist_to`]) or a carry into the next gateway.
    pub fn into_cache(self) -> GatewayCache {
        self.cache
    }

    /// The live cache.
    pub fn cache(&self) -> &GatewayCache {
        &self.cache
    }

    /// Mutable access to the live cache (e.g. to checkpoint mid-soak).
    pub fn cache_mut(&mut self) -> &mut GatewayCache {
        &mut self.cache
    }

    /// Runs the full workload to completion. Returns the response for each
    /// request (index-aligned with `requests`) and the aggregate report.
    pub fn run(&mut self, requests: &[Request]) -> (Vec<String>, GatewayReport) {
        let mut span = pas_obs::span("gateway.run");
        span.items(requests.len() as u64);
        // Cache counters are cumulative per *cache*, which may be carried
        // across gateways or reopened from a store; the report holds this
        // run's delta so per-run reports fold correctly with `merge`.
        let base_hits = self.cache.hits();
        let base_near = self.cache.near_hits();
        let base_misses = self.cache.misses();
        let base_evictions = self.cache.evictions();
        let mut events: EventHeap<Event> = EventHeap::new();
        // Index by position in the slice, not `Request::id` — a workload
        // shard keeps its global ids but is served as a self-contained run.
        for (i, r) in requests.iter().enumerate() {
            events.push(r.arrival_ms, Event::Arrival(i));
        }

        let mut state = vec![ReqState::Pending; requests.len()];
        let mut responses: Vec<Option<String>> = vec![None; requests.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut report = GatewayReport {
            requests: requests.len() as u64,
            per_replica: vec![ReplicaReport::default(); self.pool.len()],
            ..GatewayReport::default()
        };
        let mut now = 0u64;

        while let Some((time, event)) = events.pop() {
            now = time;
            match event {
                Event::Arrival(i) => match self.cache.lookup(&requests[i].prompt) {
                    CacheOutcome::ExactHit(response) | CacheOutcome::NearHit { response, .. } => {
                        state[i] = ReqState::Done;
                        responses[i] = Some(response);
                        report.completed += 1;
                        report.latency.record(self.config.cache_hit_cost_ms);
                        OBS_LATENCY.record(self.config.cache_hit_cost_ms);
                    }
                    CacheOutcome::Miss => {
                        if queue.len() >= self.config.queue_capacity {
                            match self.config.admission {
                                AdmissionPolicy::Reject => {
                                    state[i] = ReqState::Done;
                                    responses[i] = Some(requests[i].prompt.clone());
                                    report.rejected += 1;
                                    report.completed += 1;
                                    report.latency.record(0);
                                    OBS_LATENCY.record(0);
                                    continue;
                                }
                                AdmissionPolicy::ShedOldest => {
                                    let oldest = queue.pop_front().expect("full queue");
                                    state[oldest] = ReqState::Done;
                                    responses[oldest] = Some(requests[oldest].prompt.clone());
                                    report.shed += 1;
                                    report.completed += 1;
                                    report.latency.record(now - requests[oldest].arrival_ms);
                                    OBS_LATENCY.record(now - requests[oldest].arrival_ms);
                                }
                            }
                        }
                        state[i] = ReqState::Queued;
                        queue.push_back(i);
                        OBS_QUEUE_DEPTH.set(queue.len() as u64);
                        if queue.len() >= self.config.batch_max {
                            self.dispatch(
                                &mut queue,
                                &mut state,
                                requests,
                                now,
                                &mut report,
                                &mut events,
                            );
                        } else {
                            events.push(now + self.config.batch_linger_ms, Event::LingerFire(i));
                        }
                    }
                },
                Event::LingerFire(i) => {
                    // Stale once its request was dispatched or shed; a live
                    // fire flushes the whole (sub-batch_max) queue.
                    if state[i] == ReqState::Queued {
                        self.dispatch(
                            &mut queue,
                            &mut state,
                            requests,
                            now,
                            &mut report,
                            &mut events,
                        );
                    }
                }
                Event::CacheServe { members, responses: served } => {
                    for (&i, r) in members.iter().zip(served) {
                        state[i] = ReqState::Done;
                        responses[i] = Some(r);
                        report.completed += 1;
                        report.latency.record(now - requests[i].arrival_ms);
                        OBS_LATENCY.record(now - requests[i].arrival_ms);
                    }
                }
                Event::Completion { replica, members, unique_of, outcomes } => {
                    self.pool.finish(replica, outcomes.len() as u64);
                    OBS_POOL_HEALTHY.set(self.pool.healthy() as u64);
                    // Cache and replica accounting go per unique prompt…
                    for (u, outcome) in outcomes.iter().enumerate() {
                        let owner = members[unique_of.iter().position(|&x| x == u).expect("owner")];
                        match outcome {
                            ServeOutcome::Served { response, replica: served_by, failovers } => {
                                self.cache.insert(&requests[owner].prompt, response);
                                report.failovers += failovers;
                                let r = &mut report.per_replica[*served_by];
                                r.served += 1;
                                if *failovers > 0 {
                                    r.failover_served += 1;
                                }
                            }
                            ServeOutcome::Degraded => {}
                        }
                    }
                    // …responses and latency per member request.
                    for (k, &i) in members.iter().enumerate() {
                        let outcome = &outcomes[unique_of[k]];
                        if *outcome == ServeOutcome::Degraded {
                            report.degraded += 1;
                        }
                        state[i] = ReqState::Done;
                        responses[i] = Some(outcome.response_for(&requests[i].prompt));
                        report.completed += 1;
                        report.latency.record(now - requests[i].arrival_ms);
                        OBS_LATENCY.record(now - requests[i].arrival_ms);
                    }
                }
            }
        }

        debug_assert!(queue.is_empty(), "linger fires must drain the queue");
        report.exact_hits = self.cache.hits() - base_hits;
        report.near_hits = self.cache.near_hits() - base_near;
        report.misses = self.cache.misses() - base_misses;
        report.evictions = self.cache.evictions() - base_evictions;
        report.sim_duration_ms = now;
        for (r, faults) in report.per_replica.iter_mut().zip(self.pool.fault_reports()) {
            r.faults = faults;
        }
        OBS_REQUESTS.add(report.requests);
        OBS_COMPLETED.add(report.completed);
        OBS_EXACT_HITS.add(report.exact_hits);
        OBS_NEAR_HITS.add(report.near_hits);
        OBS_MISSES.add(report.misses);
        OBS_BATCH_HITS.add(report.batch_hits);
        OBS_EVICTIONS.add(report.evictions);
        OBS_SHED.add(report.shed);
        OBS_REJECTED.add(report.rejected);
        OBS_DEGRADED.add(report.degraded);
        OBS_FAILOVERS.add(report.failovers);
        OBS_BATCHES.add(report.batches);
        OBS_BATCHED_PROMPTS.add(report.batched_prompts);
        if pas_obs::enabled() {
            for (idx, r) in report.per_replica.iter().enumerate() {
                pas_obs::counter_add(&format!("gateway.replica{idx}.served"), r.served);
            }
        }
        span.sim_ms(now);
        span.finish();
        let responses = responses.into_iter().map(|r| r.expect("every request answered")).collect();
        (responses, report)
    }

    /// Pops up to `batch_max` queued requests, dedupes their prompts
    /// (first-occurrence order), gives every unique prompt a second-chance
    /// cache probe (batched through [`SemanticCache::lookup_batch`] — an
    /// earlier batch may have completed and cached it while these requests
    /// queued), then serves the remaining unique prompts through the pool
    /// in parallel and schedules the batch's completion.
    fn dispatch(
        &mut self,
        queue: &mut VecDeque<usize>,
        state: &mut [ReqState],
        requests: &[Request],
        now: u64,
        report: &mut GatewayReport,
        events: &mut EventHeap<Event>,
    ) {
        let take = queue.len().min(self.config.batch_max);
        let members: Vec<usize> = queue.drain(..take).collect();
        let mut unique: Vec<&str> = Vec::new();
        let unique_of: Vec<usize> = members
            .iter()
            .map(|&i| {
                let p = requests[i].prompt.as_str();
                match unique.iter().position(|&q| q == p) {
                    Some(u) => u,
                    None => {
                        unique.push(p);
                        unique.len() - 1
                    }
                }
            })
            .collect();
        for &i in &members {
            state[i] = ReqState::Dispatched;
        }
        OBS_QUEUE_DEPTH.set(queue.len() as u64);

        // Second-chance probe. Misses were already counted at arrival; this
        // only harvests prompts cached since then.
        let cached = self.cache.lookup_batch(&unique);
        let mut live_unique: Vec<&str> = Vec::new();
        let remap: Vec<Option<usize>> = cached
            .iter()
            .enumerate()
            .map(|(u, c)| {
                if c.is_none() {
                    live_unique.push(unique[u]);
                    Some(live_unique.len() - 1)
                } else {
                    None
                }
            })
            .collect();
        let mut hit_members = Vec::new();
        let mut hit_responses = Vec::new();
        let mut live_members = Vec::new();
        let mut live_unique_of = Vec::new();
        for (k, &i) in members.iter().enumerate() {
            match &cached[unique_of[k]] {
                Some(response) => {
                    hit_members.push(i);
                    hit_responses.push(response.clone());
                }
                None => {
                    live_members.push(i);
                    live_unique_of.push(remap[unique_of[k]].expect("missed uniques are live"));
                }
            }
        }
        if !hit_members.is_empty() {
            report.batch_hits += hit_members.len() as u64;
            events.push(
                now + self.config.cache_hit_cost_ms,
                Event::CacheServe { members: hit_members, responses: hit_responses },
            );
        }
        if live_unique.is_empty() {
            return;
        }

        let replica = self.pool.route();
        self.pool.begin(replica, live_unique.len() as u64);
        // The only parallel region in the gateway: item-ordered results,
        // content-derived fault coordinates → thread-count invariant.
        let outcomes = pas_par::par_map(&live_unique, |_, p| self.pool.try_serve(replica, p));
        report.batches += 1;
        report.batched_prompts += live_unique.len() as u64;
        OBS_BATCH_SIZE.record(live_unique.len() as u64);
        let cost = self.config.batch_overhead_ms
            + self.config.per_prompt_cost_ms * live_unique.len() as u64;
        events.push(
            now + cost,
            Event::Completion {
                replica,
                members: live_members,
                unique_of: live_unique_of,
                outcomes,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadConfig};
    use pas_core::NoOptimizer;

    /// A toy optimizer with visible, prompt-derived output.
    struct Suffix;

    impl PromptOptimizer for Suffix {
        fn name(&self) -> &str {
            "suffix"
        }
        fn optimize(&self, prompt: &str) -> String {
            format!("{prompt} [augmented]")
        }
        fn requires_human_labels(&self) -> bool {
            false
        }
        fn llm_agnostic(&self) -> bool {
            true
        }
        fn task_agnostic(&self) -> bool {
            true
        }
        fn training_pairs(&self) -> Option<usize> {
            None
        }
    }

    fn gateway_with(config: GatewayConfig) -> Gateway<Suffix> {
        let n = config.replicas;
        Gateway::new(config, (0..n).map(|_| Suffix).collect())
    }

    fn small_workload() -> Vec<Request> {
        generate(&WorkloadConfig {
            requests: 300,
            universe: 25,
            near_dup_rate: 0.2,
            ..WorkloadConfig::default()
        })
    }

    #[test]
    fn every_request_is_answered_with_the_augmentation() {
        let requests = small_workload();
        let (responses, report) = gateway_with(GatewayConfig::default()).run(&requests);
        assert_eq!(responses.len(), requests.len());
        for (r, resp) in requests.iter().zip(&responses) {
            assert_eq!(resp, &format!("{} [augmented]", r.prompt));
        }
        assert_eq!(report.completed, report.requests);
        assert_eq!(report.degraded + report.shed + report.rejected, 0);
        assert_eq!(report.latency.count(), report.requests);
    }

    #[test]
    fn hot_prompts_hit_the_cache() {
        let requests = small_workload();
        let (_, report) = gateway_with(GatewayConfig::default()).run(&requests);
        assert!(report.exact_hits > 0, "Zipf head must repeat: {report:?}");
        assert!(report.hit_rate() > 0.3, "hit rate {}", report.hit_rate());
        // Every miss flowed through a batch (or was shed); in-batch
        // dedup can only shrink the dispatched-prompt count.
        assert!(report.batched_prompts + report.shed + report.rejected <= report.misses);
        assert!(report.batches > 0);
    }

    #[test]
    fn tau_enables_the_near_tier() {
        let requests = small_workload();
        let exact_only = gateway_with(GatewayConfig::default()).run(&requests).1;
        assert_eq!(exact_only.near_hits, 0, "τ=0 must keep the near tier off");
        let config = GatewayConfig {
            cache: SemanticCacheConfig { tau: 0.25, ..SemanticCacheConfig::default() },
            ..GatewayConfig::default()
        };
        let near = gateway_with(config).run(&requests).1;
        assert!(near.near_hits > 0, "τ=0.25 must catch workload near-dups: {near:?}");
        assert!(near.hit_rate() > exact_only.hit_rate());
    }

    #[test]
    fn tiny_queue_sheds_or_rejects_but_answers_everyone() {
        let requests = generate(&WorkloadConfig {
            requests: 400,
            universe: 380,
            zipf_s: 0.0,
            near_dup_rate: 0.0,
            mean_interarrival_ms: 1.0,
            ..WorkloadConfig::default()
        });
        for admission in [AdmissionPolicy::ShedOldest, AdmissionPolicy::Reject] {
            let config = GatewayConfig {
                queue_capacity: 2,
                batch_max: 16,
                batch_linger_ms: 40,
                admission,
                ..GatewayConfig::default()
            };
            let (responses, report) = gateway_with(config).run(&requests);
            assert_eq!(report.completed, report.requests);
            assert_eq!(responses.len(), requests.len());
            match admission {
                AdmissionPolicy::ShedOldest => {
                    assert!(report.shed > 0, "tiny queue must shed: {report:?}");
                    assert_eq!(report.rejected, 0);
                }
                AdmissionPolicy::Reject => {
                    assert!(report.rejected > 0, "tiny queue must reject: {report:?}");
                    assert_eq!(report.shed, 0);
                }
            }
            // Shed/rejected requests still get the passthrough answer.
            for (r, resp) in requests.iter().zip(&responses) {
                assert!(
                    resp == &format!("{} [augmented]", r.prompt)
                        || resp == &NoOptimizer.optimize(&r.prompt)
                );
            }
        }
    }

    #[test]
    fn batching_dedupes_identical_prompts() {
        // Ten identical prompts arriving together: one unique prompt serves
        // the whole batch.
        let requests: Vec<Request> = (0..10)
            .map(|id| Request { id, arrival_ms: 0, prompt: "the same question".into() })
            .collect();
        let config = GatewayConfig { batch_max: 10, ..GatewayConfig::default() };
        let (responses, report) = gateway_with(config).run(&requests);
        assert!(responses.iter().all(|r| r == "the same question [augmented]"));
        assert_eq!(report.batches, 1);
        assert_eq!(report.batched_prompts, 1, "duplicates must be deduped in-batch");
    }

    #[test]
    fn queued_duplicates_get_second_chance_cache_hits() {
        // P is dispatched alone at t=15 (linger) and its complement lands in
        // the cache at t=30. The second P arrives at t=20 — after the first
        // dispatch, before the completion — so it misses at arrival, queues,
        // and its own dispatch at t=35 finds the prompt cached: served
        // without a second pool trip.
        let requests = vec![
            Request { id: 0, arrival_ms: 0, prompt: "the recurring question".into() },
            Request { id: 1, arrival_ms: 20, prompt: "the recurring question".into() },
        ];
        let config = GatewayConfig {
            batch_max: 8,
            batch_linger_ms: 15,
            batch_overhead_ms: 10,
            per_prompt_cost_ms: 5,
            ..GatewayConfig::default()
        };
        let (responses, report) = gateway_with(config).run(&requests);
        assert!(responses.iter().all(|r| r == "the recurring question [augmented]"));
        assert_eq!(report.misses, 2, "both arrivals miss at arrival time");
        assert_eq!(report.batch_hits, 1, "the queued duplicate must hit at dispatch");
        assert_eq!(report.batches, 1, "only the first request reaches the pool");
        assert_eq!(report.batched_prompts, 1);
        assert_eq!(report.completed, 2);
    }

    #[test]
    fn quantized_cache_serves_identical_traffic() {
        let requests = small_workload();
        let run = |quantized: bool| {
            let config = GatewayConfig {
                cache: SemanticCacheConfig {
                    tau: 0.25,
                    capacity: 32,
                    quantized,
                    ..SemanticCacheConfig::default()
                },
                ..GatewayConfig::default()
            };
            gateway_with(config).run(&requests)
        };
        let (resp_f32, report_f32) = run(false);
        let (resp_q, report_q) = run(true);
        assert_eq!(resp_f32, resp_q, "int8 probe path must not change responses");
        assert_eq!(report_f32, report_q);
    }

    #[test]
    fn small_capacity_cache_evicts() {
        let config = GatewayConfig {
            cache: SemanticCacheConfig { capacity: 4, ..SemanticCacheConfig::default() },
            ..GatewayConfig::default()
        };
        let (_, report) = gateway_with(config).run(&small_workload());
        assert!(report.evictions > 0, "capacity 4 must churn: {report:?}");
    }
}

//! Seeded open-loop workload generation for gateway soak tests.
//!
//! Production prompt traffic has two properties the cache design banks on:
//! popularity is heavy-tailed (a small head of prompts dominates) and a
//! meaningful slice of requests are *near*-duplicates of popular prompts —
//! the same question with different whitespace, punctuation, or trailing
//! pleasantries. The generator models both: prompt identities are drawn
//! Zipf(s) from a fixed universe, a seeded coin turns some draws into
//! surface variants of their base prompt, and arrivals are open-loop
//! (exponential inter-arrival times, independent of service capacity —
//! the regime where queues actually build).
//!
//! Everything is a pure function of [`WorkloadConfig`]: request `i` draws
//! from an RNG seeded `derive_seed(seed, i)`, so the workload is
//! bit-reproducible and any request can be regenerated in isolation.

use rand::{RngExt, SeedableRng, StdRng};

/// Parameters for a generated request stream.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Total requests to generate.
    pub requests: usize,
    /// Distinct base prompts in the universe.
    pub universe: usize,
    /// Zipf skew exponent `s` (weights `1/rank^s`); `0` is uniform,
    /// `~1.1` matches heavy-tailed prompt traffic.
    pub zipf_s: f64,
    /// Probability that a draw is a surface variant (near-duplicate) of
    /// its base prompt instead of the base prompt verbatim.
    pub near_dup_rate: f64,
    /// Mean exponential inter-arrival gap in simulated milliseconds.
    pub mean_interarrival_ms: f64,
    /// Base seed for all draws.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            requests: 2000,
            universe: 150,
            zipf_s: 1.1,
            near_dup_rate: 0.15,
            mean_interarrival_ms: 4.0,
            seed: 0x90a7,
        }
    }
}

/// Derivation lane separating per-node workload seeds from every other
/// derived stream under a fleet seed.
pub const NODE_LANE: u64 = 0x4e0d;

impl WorkloadConfig {
    /// This fleet-level config specialized to one cluster node: identical
    /// shape and rates, with the Zipf/arrival seed derived from
    /// `(fleet seed, node id)`. Nodes of a multi-node soak draw
    /// *decorrelated* traffic — same popularity law, different heads and
    /// arrival clocks — instead of replaying one node's stream N times,
    /// while the fleet as a whole stays a pure function of the fleet seed.
    pub fn for_node(&self, node: u32) -> WorkloadConfig {
        WorkloadConfig {
            seed: pas_par::derive_seed_path(self.seed, &[NODE_LANE, u64::from(node)]),
            ..self.clone()
        }
    }
}

/// One generated request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Sequential id, also the tie-break key in the event loop.
    pub id: usize,
    /// Simulated arrival time.
    pub arrival_ms: u64,
    /// The prompt text.
    pub prompt: String,
}

/// Topic vocabulary for templated prompts; fixed so prompt text — and with
/// it ngram-embedding geometry — is stable across runs and machines.
const TOPICS: &[&str] = &[
    "sorting a vector of structs by key",
    "streaming a csv file without loading it",
    "writing a binary search over sorted ranks",
    "profiling a slow sql join",
    "batching requests to a rate limited api",
    "parsing dates across time zones",
    "sharding a key value store",
    "retrying failed uploads with backoff",
    "caching query results safely",
    "debugging a deadlock between two mutexes",
    "compressing log files on rotation",
    "validating user input in a web form",
];

const STYLES: &[&str] = &["explain", "give me code for", "what is the best way of", "summarize"];

/// Surface mutations applied to build near-duplicate variants. Chosen to
/// move the prompt only slightly in character-ngram space so a reasonable
/// τ (≈0.1–0.3) catches them.
const VARIANTS: &[&str] = &["?", " please", " thanks", "!", " asap"];

/// The `rank`-th base prompt (0 = most popular) of a `universe`-sized
/// world. Pure function, so tests can name prompts without a generator.
pub fn base_prompt(rank: usize, universe: usize) -> String {
    debug_assert!(rank < universe);
    let style = STYLES[rank % STYLES.len()];
    let topic = TOPICS[rank % TOPICS.len()];
    // The rank suffix keeps prompts distinct once style×topic combinations
    // are exhausted, without dominating the ngram profile.
    format!("{style} {topic} v{}", rank / (STYLES.len() * TOPICS.len()))
}

/// Cumulative Zipf weights over ranks `0..universe`, normalized to end at
/// `1.0`. Fixed left-to-right summation order keeps the table (and every
/// draw made through it) bit-stable.
fn zipf_cdf(universe: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = (0..universe)
        .map(|rank| {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            acc
        })
        .collect();
    let total = acc;
    for w in &mut cdf {
        *w /= total;
    }
    cdf
}

/// Generates the full request stream described by `config`.
pub fn generate(config: &WorkloadConfig) -> Vec<Request> {
    let cdf = zipf_cdf(config.universe.max(1), config.zipf_s);
    let mut arrival = 0.0f64;
    let mut clock_rng = StdRng::seed_from_u64(pas_par::derive_seed(config.seed, u64::MAX));
    (0..config.requests)
        .map(|i| {
            // Per-request derived stream: prompt identity and variant are a
            // function of (seed, i) alone.
            let mut rng = StdRng::seed_from_u64(pas_par::derive_seed(config.seed, i as u64));
            let u: f64 = rng.random();
            let rank = cdf.partition_point(|&c| c < u).min(cdf.len() - 1);
            let mut prompt = base_prompt(rank, config.universe.max(1));
            if rng.random_bool(config.near_dup_rate) {
                prompt.push_str(VARIANTS[rng.random_range(0..VARIANTS.len())]);
            }
            // Arrivals use their own stream so adding per-request draws
            // never shifts the arrival process.
            let u: f64 = clock_rng.random();
            arrival += -u.max(1e-12).ln() * config.mean_interarrival_ms;
            Request { id: i, arrival_ms: arrival as u64, prompt }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn generation_is_bit_reproducible() {
        let config = WorkloadConfig::default();
        assert_eq!(generate(&config), generate(&config));
    }

    #[test]
    fn per_node_workloads_are_decorrelated_but_derived() {
        let fleet = WorkloadConfig { requests: 200, ..WorkloadConfig::default() };
        let a = generate(&fleet.for_node(0));
        let b = generate(&fleet.for_node(1));
        assert_ne!(a, b, "two nodes must not replay identical traffic");
        // Node streams are pure functions of (fleet seed, node id).
        assert_eq!(a, generate(&fleet.for_node(0)));
        // And distinct from the raw fleet-seed stream.
        assert_ne!(a, generate(&fleet));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&WorkloadConfig::default());
        let b = generate(&WorkloadConfig { seed: 1, ..WorkloadConfig::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_nondecreasing_and_ids_sequential() {
        let requests = generate(&WorkloadConfig::default());
        for (i, pair) in requests.windows(2).enumerate() {
            assert!(pair[1].arrival_ms >= pair[0].arrival_ms, "arrival order broke at {i}");
        }
        assert!(requests.iter().enumerate().all(|(i, r)| r.id == i));
    }

    #[test]
    fn zipf_skew_concentrates_mass_on_the_head() {
        let config = WorkloadConfig { requests: 4000, near_dup_rate: 0.0, ..Default::default() };
        let requests = generate(&config);
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for r in &requests {
            *counts.entry(r.prompt.as_str()).or_default() += 1;
        }
        let top = base_prompt(0, config.universe);
        let head = counts.get(top.as_str()).copied().unwrap_or(0);
        // Under s=1.1 over 150 ranks the top prompt holds ~16% of mass.
        assert!(head > requests.len() / 10, "head prompt got only {head}/{}", requests.len());
        assert!(counts.len() > 30, "tail collapsed: {} distinct prompts", counts.len());
    }

    #[test]
    fn near_dup_rate_controls_variant_share() {
        let base = WorkloadConfig { requests: 3000, ..Default::default() };
        let none = generate(&WorkloadConfig { near_dup_rate: 0.0, ..base.clone() });
        let half = generate(&WorkloadConfig { near_dup_rate: 0.5, ..base.clone() });
        // Base prompts always end in the rank suffix ("v0", "v1", …), so a
        // variant ending can only come from the variant pass.
        let is_variant = |r: &Request| VARIANTS.iter().any(|v| r.prompt.ends_with(v));
        assert_eq!(none.iter().filter(|r| is_variant(r)).count(), 0);
        let share = half.iter().filter(|r| is_variant(r)).count() as f64 / half.len() as f64;
        assert!((0.4..0.6).contains(&share), "variant share {share}");
    }

    #[test]
    fn variants_stay_near_their_base_in_embedding_space() {
        use pas_embed::{cosine, Embedder, NgramEmbedder};
        let e = NgramEmbedder::default();
        for rank in 0..8 {
            let base = base_prompt(rank, 150);
            for v in VARIANTS {
                let sim = cosine(&e.embed(&base), &e.embed(&format!("{base}{v}")));
                assert!(sim > 0.85, "variant {v:?} drifted: cos {sim}");
            }
        }
    }
}

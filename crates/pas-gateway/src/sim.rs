//! The discrete-event scheduling core shared by [`Gateway`](crate::Gateway)
//! and `pas-cluster`.
//!
//! [`EventHeap`] is a future-event list ordered by `(time, seq)`: `seq` is
//! assigned at push time, making the order total and a pure function of
//! the schedule itself — never of wall-clock time, thread interleaving, or
//! heap internals. Popping advances a monotone simulated clock. Both the
//! single-node gateway loop and the multi-node cluster loop drain one of
//! these serially; parallelism lives only *inside* individual events
//! (batch dispatch through `pas_par::par_map`), which is the workspace's
//! whole determinism story.

use std::collections::BinaryHeap;

/// Heap entry ordered by `(time, seq)`; `seq` is unique, making the order
/// total and independent of anything but the schedule itself.
struct Scheduled<E> {
    time: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic future-event list with a monotone simulated clock.
pub struct EventHeap<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: u64,
}

impl<E> Default for EventHeap<E> {
    fn default() -> Self {
        EventHeap::new()
    }
}

impl<E> EventHeap<E> {
    /// An empty schedule at simulated time zero.
    pub fn new() -> EventHeap<E> {
        EventHeap { heap: BinaryHeap::new(), seq: 0, now: 0 }
    }

    /// Schedules `event` at absolute simulated time `time`. Events sharing
    /// a time fire in push order.
    pub fn push(&mut self, time: u64, event: E) {
        let s = Scheduled { time, seq: self.seq, event };
        self.seq += 1;
        self.heap.push(s);
    }

    /// Pops the earliest event, advancing the clock to its time (the clock
    /// never runs backwards, even for events scheduled in the past).
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Scheduled { time, event, .. } = self.heap.pop()?;
        self.now = self.now.max(time);
        Some((self.now, event))
    }

    /// The current simulated time: the timestamp of the latest pop.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Events still scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing remains scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_push_order_tiebreak() {
        let mut h = EventHeap::new();
        h.push(5, "c");
        h.push(1, "a");
        h.push(5, "d");
        h.push(3, "b");
        let order: Vec<_> = std::iter::from_fn(|| h.pop()).collect();
        assert_eq!(order, vec![(1, "a"), (3, "b"), (5, "c"), (5, "d")]);
    }

    #[test]
    fn clock_is_monotone_even_for_late_pushes() {
        let mut h = EventHeap::new();
        h.push(10, "late");
        assert_eq!(h.pop(), Some((10, "late")));
        // An event scheduled "in the past" fires at the current clock.
        h.push(4, "stale");
        assert_eq!(h.pop(), Some((10, "stale")));
        assert_eq!(h.now(), 10);
        assert!(h.is_empty());
    }
}

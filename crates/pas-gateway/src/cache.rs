//! The semantic complement cache: exact-match LRU in front of an ANN
//! near-duplicate tier.
//!
//! Prompt traffic is dominated by repeats and near-repeats (Zhang & Khan
//! document heavy near-duplicate mass in real prompt datasets), so the
//! cheapest way to serve `p → cat(p, p_c)` at scale is to not recompute
//! `p_c` at all:
//!
//! 1. **Exact tier** — a hash map from the prompt string to its cached
//!    complement. Free of caveats: an exact hit returns bit-identically
//!    what the optimizer would have produced.
//! 2. **Near tier** — the prompt is embedded (`pas-embed`) and probed
//!    against a cosine [`Hnsw`] (`pas-ann`) over the cached prompts; a
//!    neighbour within distance `τ` serves *its* cached response. This is a
//!    deliberate behaviour change gated behind `τ` — at the default
//!    `τ = 0` the tier is off and the cache is exact-only.
//!
//! Both tiers share one LRU capacity bound. Evicted entries are unlinked
//! from the HNSW graph incrementally ([`Hnsw::remove`] re-links the
//! victim's neighborhood in place), so probe cost tracks the live set
//! without rebuild pauses. A full rebuild survives as a rare fallback that
//! reclaims the dead entries' string storage once they heavily outnumber
//! the live set. The near tier can additionally run its graph traversal on
//! int8-quantized codes ([`SemanticCacheConfig::quantized`]) — the exact
//! f32 re-rank inside `pas-ann` keeps the served neighbors bit-identical.
//!
//! The cache is a plain `&mut self` structure: the gateway's event loop is
//! serial (that is what makes runs bit-reproducible), so no interior
//! locking is needed.

use std::collections::HashMap;

use pas_ann::{CosineDistance, Hnsw, HnswConfig};
use pas_embed::Embedder;

/// Configuration for [`SemanticCache`].
#[derive(Debug, Clone)]
pub struct SemanticCacheConfig {
    /// Maximum live entries (LRU-evicted beyond this). `0` disables the
    /// cache entirely: every lookup misses and nothing is stored.
    pub capacity: usize,
    /// Near-duplicate distance threshold in cosine-distance space
    /// (`1 − cos`). `0.0` (the default) disables the near tier: only exact
    /// string matches hit.
    pub tau: f32,
    /// Beam width for near-tier probes.
    pub ef: usize,
    /// Construction parameters for the ANN index over cached prompts.
    pub hnsw: HnswConfig,
    /// Run near-tier graph traversal on int8-quantized codes with exact
    /// f32 re-rank (identical results, ~4x smaller probe working set).
    pub quantized: bool,
    /// Run near-tier graph traversal on product-quantized codes (~dim/8
    /// bytes per cached prompt, ~32x below f32) with exact f32 re-rank.
    /// Wins over `quantized` when both are set; the codebook trains lazily
    /// once enough prompts are cached (probes stay f32 before that).
    pub pq: bool,
}

impl Default for SemanticCacheConfig {
    fn default() -> Self {
        SemanticCacheConfig {
            capacity: 4096,
            tau: 0.0,
            ef: 32,
            hnsw: HnswConfig { m: 8, ef_construction: 48, seed: 0x9a7e }, // small serving index
            quantized: false,
            pq: false,
        }
    }
}

/// What a cache lookup found.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheOutcome {
    /// The exact prompt was cached; its own complement is returned.
    ExactHit(String),
    /// A near-duplicate neighbour within τ was cached; the *neighbour's*
    /// complement is returned (τ-gated behaviour change, see module docs).
    NearHit {
        /// The neighbour's cached response.
        response: String,
        /// Cosine distance between the query and the neighbour prompt.
        distance: f32,
    },
    /// Nothing usable cached; the request must go to the replica pool.
    Miss,
}

struct Entry {
    prompt: String,
    response: String,
    alive: bool,
    /// Recency stamp; larger = more recently used.
    stamp: u64,
}

/// Exact-match LRU map + tombstoned ANN near-duplicate tier (module docs).
pub struct SemanticCache<E> {
    config: SemanticCacheConfig,
    embedder: E,
    /// prompt → entry id, live entries only.
    exact: HashMap<String, usize>,
    /// All entries ever inserted, id-aligned with the ANN index; dead ones
    /// are tombstones until the next rebuild.
    entries: Vec<Entry>,
    /// stamp → entry id, live entries only (stamps are unique).
    lru: std::collections::BTreeMap<u64, usize>,
    index: Hnsw<CosineDistance>,
    clock: u64,
    hits: u64,
    near_hits: u64,
    misses: u64,
    evictions: u64,
}

impl<E: Embedder> SemanticCache<E> {
    /// Creates an empty cache that embeds with `embedder` (only used when
    /// `config.tau > 0`).
    pub fn new(config: SemanticCacheConfig, embedder: E) -> Self {
        let mut index = Hnsw::new(config.hnsw.clone(), CosineDistance);
        if config.pq {
            index.set_product_quantization(true);
        } else if config.quantized {
            index.set_quantization(true);
        }
        SemanticCache {
            config,
            embedder,
            exact: HashMap::new(),
            entries: Vec::new(),
            lru: std::collections::BTreeMap::new(),
            index,
            clock: 0,
            hits: 0,
            near_hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Live cached entries.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// Exact-tier hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Near-tier hits so far.
    pub fn near_hits(&self) -> u64 {
        self.near_hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn touch(&mut self, id: usize) {
        self.lru.remove(&self.entries[id].stamp);
        self.clock += 1;
        self.entries[id].stamp = self.clock;
        self.lru.insert(self.clock, id);
    }

    /// Looks `prompt` up in both tiers, updating recency and counters.
    pub fn lookup(&mut self, prompt: &str) -> CacheOutcome {
        if self.config.capacity == 0 {
            self.misses += 1;
            return CacheOutcome::Miss;
        }
        if let Some(&id) = self.exact.get(prompt) {
            self.hits += 1;
            self.touch(id);
            return CacheOutcome::ExactHit(self.entries[id].response.clone());
        }
        if self.config.tau > 0.0 && !self.exact.is_empty() {
            let query = self.embedder.embed(prompt);
            // Over-fetch a little so a tombstoned nearest neighbour does
            // not hide a live one right behind it.
            let neighbors = self.index.search(&query, 4, self.config.ef);
            if let Some(n) = neighbors.into_iter().find(|n| self.entries[n.id].alive) {
                if n.distance <= self.config.tau {
                    self.near_hits += 1;
                    self.touch(n.id);
                    return CacheOutcome::NearHit {
                        response: self.entries[n.id].response.clone(),
                        distance: n.distance,
                    };
                }
            }
        }
        self.misses += 1;
        CacheOutcome::Miss
    }

    /// Probes both tiers for a whole micro-batch at dispatch time, *without*
    /// the per-arrival hit/miss accounting — [`SemanticCache::lookup`]
    /// already counted these prompts when they arrived; this is the second
    /// chance an enqueued request gets after earlier batches completed and
    /// installed fresh complements. All near-tier probes of the batch run
    /// through one [`Hnsw::search_batch`] call, sharing packed neighbor
    /// panels across the queries. Hits refresh recency.
    pub fn lookup_batch(&mut self, prompts: &[&str]) -> Vec<Option<String>> {
        if self.config.capacity == 0 {
            return vec![None; prompts.len()];
        }
        let mut out: Vec<Option<String>> = Vec::with_capacity(prompts.len());
        let mut pending: Vec<usize> = Vec::new();
        for &p in prompts {
            if let Some(&id) = self.exact.get(p) {
                self.touch(id);
                out.push(Some(self.entries[id].response.clone()));
            } else {
                if self.config.tau > 0.0 && !self.exact.is_empty() {
                    pending.push(out.len());
                }
                out.push(None);
            }
        }
        if !pending.is_empty() {
            let queries: Vec<Vec<f32>> =
                pending.iter().map(|&pi| self.embedder.embed(prompts[pi])).collect();
            let results = self.index.search_batch(&queries, 4, self.config.ef);
            for (&pi, neighbors) in pending.iter().zip(&results) {
                if let Some(n) = neighbors.iter().find(|n| self.entries[n.id].alive) {
                    if n.distance <= self.config.tau {
                        self.touch(n.id);
                        out[pi] = Some(self.entries[n.id].response.clone());
                    }
                }
            }
        }
        out
    }

    /// Caches `response` for `prompt`, evicting the least-recently-used
    /// entries beyond capacity. A prompt already cached keeps its existing
    /// entry (complements are deterministic, so re-insertion is a no-op).
    pub fn insert(&mut self, prompt: &str, response: &str) {
        if self.config.capacity == 0 || self.exact.contains_key(prompt) {
            return;
        }
        while self.exact.len() >= self.config.capacity {
            let (&stamp, &victim) = self.lru.iter().next().expect("LRU mirrors exact map");
            self.lru.remove(&stamp);
            self.exact.remove(&self.entries[victim].prompt);
            self.entries[victim].alive = false;
            if self.config.tau > 0.0 {
                // Unlink the victim from the ANN graph in place; probe cost
                // stays proportional to the live set without a rebuild.
                self.index.remove(victim);
            }
            self.evictions += 1;
        }
        self.clock += 1;
        let id = if self.config.tau > 0.0 {
            self.index.insert(self.embedder.embed(prompt))
        } else {
            // Exact-only mode never probes the ANN tier; skip the index
            // entirely and keep ids aligned with `entries` alone.
            self.entries.len()
        };
        debug_assert_eq!(id, self.entries.len(), "index ids must align with entries");
        self.entries.push(Entry {
            prompt: prompt.to_string(),
            response: response.to_string(),
            alive: true,
            stamp: self.clock,
        });
        self.exact.insert(prompt.to_string(), id);
        self.lru.insert(self.clock, id);
        self.maybe_compact();
    }

    /// Fallback compaction: evicted ids are already unlinked from the graph
    /// incrementally, but dead `entries` slots still pin their prompt and
    /// response strings (and empty graph slots). Once the dead heavily
    /// outnumber the live set, rebuild everything from the live entries to
    /// reclaim that storage.
    fn maybe_compact(&mut self) {
        let dead = self.entries.len() - self.exact.len();
        if dead <= 8 * self.exact.len().max(1) || dead < 64 {
            return;
        }
        let live: Vec<Entry> =
            std::mem::take(&mut self.entries).into_iter().filter(|e| e.alive).collect();
        self.index = Hnsw::new(self.config.hnsw.clone(), CosineDistance);
        if self.config.pq {
            self.index.set_product_quantization(true);
        } else if self.config.quantized {
            self.index.set_quantization(true);
        }
        self.exact.clear();
        self.lru.clear();
        for (id, entry) in live.iter().enumerate() {
            if self.config.tau > 0.0 {
                let got = self.index.insert(self.embedder.embed(&entry.prompt));
                debug_assert_eq!(got, id);
            }
            self.exact.insert(entry.prompt.clone(), id);
            self.lru.insert(entry.stamp, id);
        }
        self.entries = live;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_embed::NgramEmbedder;

    fn cache(capacity: usize, tau: f32) -> SemanticCache<NgramEmbedder> {
        let config = SemanticCacheConfig { capacity, tau, ..SemanticCacheConfig::default() };
        SemanticCache::new(config, NgramEmbedder::default())
    }

    #[test]
    fn exact_tier_round_trips() {
        let mut c = cache(8, 0.0);
        assert_eq!(c.lookup("how do I sort a vec"), CacheOutcome::Miss);
        c.insert("how do I sort a vec", "how do I sort a vec [c]");
        assert_eq!(
            c.lookup("how do I sort a vec"),
            CacheOutcome::ExactHit("how do I sort a vec [c]".into())
        );
        assert_eq!((c.hits(), c.misses(), c.len()), (1, 1, 1));
    }

    #[test]
    fn tau_zero_never_near_hits() {
        let mut c = cache(8, 0.0);
        c.insert("please sort this list of numbers", "r1");
        assert_eq!(c.lookup("please sort this list of numbers!"), CacheOutcome::Miss);
        assert_eq!(c.near_hits(), 0);
    }

    #[test]
    fn near_tier_serves_close_neighbors_only() {
        let mut c = cache(8, 0.2);
        c.insert("please sort this list of numbers for me", "r1");
        match c.lookup("please sort this list of numbers for me!") {
            CacheOutcome::NearHit { response, distance } => {
                assert_eq!(response, "r1");
                // NB: the ngram featurizer strips punctuation, so the "!"
                // variant can land at distance exactly 0.
                assert!((0.0..=0.2).contains(&distance), "distance {distance}");
            }
            other => panic!("expected a near hit, got {other:?}"),
        }
        assert_eq!(c.lookup("write a poem about the autumn moon"), CacheOutcome::Miss);
        assert_eq!((c.near_hits(), c.misses()), (1, 1));
    }

    #[test]
    fn capacity_evicts_lru_and_tombstones_hide_from_near_tier() {
        let mut c = cache(2, 0.2);
        c.insert("alpha prompt one about databases", "r-alpha");
        c.insert("beta prompt two about compilers", "r-beta");
        assert!(matches!(c.lookup("alpha prompt one about databases"), CacheOutcome::ExactHit(_)));
        // beta is now LRU; inserting gamma evicts it.
        c.insert("gamma prompt three about gardening", "r-gamma");
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.lookup("beta prompt two about compilers"), CacheOutcome::Miss);
        // The evicted entry must not be served by the near tier either.
        assert_eq!(c.lookup("beta prompt two about compilers!"), CacheOutcome::Miss);
        // Survivors still hit.
        assert!(matches!(c.lookup("alpha prompt one about databases"), CacheOutcome::ExactHit(_)));
        assert!(matches!(
            c.lookup("gamma prompt three about gardening"),
            CacheOutcome::ExactHit(_)
        ));
    }

    #[test]
    fn disabled_cache_never_stores() {
        let mut c = cache(0, 0.5);
        c.insert("a prompt", "a response");
        assert_eq!(c.lookup("a prompt"), CacheOutcome::Miss);
        assert!(c.is_empty());
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn reinsert_keeps_the_existing_entry() {
        let mut c = cache(4, 0.0);
        c.insert("p", "r1");
        c.insert("p", "r2-should-be-ignored");
        assert_eq!(c.lookup("p"), CacheOutcome::ExactHit("r1".into()));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn compaction_preserves_behavior_under_churn() {
        let mut c = cache(4, 0.25);
        // Insert far more distinct prompts than capacity: every eviction
        // unlinks its victim from the graph incrementally, and the dead
        // entries pile high enough to cross the fallback-rebuild threshold.
        for i in 0..150 {
            let prompt = format!("distinct request number {i} about topic {}", i % 13);
            c.insert(&prompt, &format!("resp-{i}"));
        }
        assert_eq!(c.len(), 4);
        assert!(c.evictions() >= 146);
        // The four most recent entries are live and exactly retrievable.
        for i in 146..150 {
            let prompt = format!("distinct request number {i} about topic {}", i % 13);
            assert_eq!(c.lookup(&prompt), CacheOutcome::ExactHit(format!("resp-{i}")), "{i}");
        }
        // Near probes only ever see live entries.
        match c.lookup("distinct request number 149 about topic 6!") {
            CacheOutcome::NearHit { response, .. } => assert_eq!(response, "resp-149"),
            CacheOutcome::ExactHit(_) => panic!("punctuated variant cannot exact-hit"),
            CacheOutcome::Miss => {} // acceptable: τ may exclude the variant
        }
    }

    #[test]
    fn quantized_near_tier_serves_identical_results() {
        let prompts: Vec<String> = (0..40)
            .map(|i| format!("request number {i} about subject {} in style {}", i % 7, i % 3))
            .collect();
        let run = |quantized: bool| {
            let config = SemanticCacheConfig {
                capacity: 16,
                tau: 0.3,
                quantized,
                ..SemanticCacheConfig::default()
            };
            let mut c = SemanticCache::new(config, NgramEmbedder::default());
            let mut log = Vec::new();
            for p in &prompts {
                let out = c.lookup(p);
                if matches!(out, CacheOutcome::Miss) {
                    c.insert(p, &format!("{p} [c]"));
                }
                log.push(format!("{out:?}"));
                log.push(format!("{:?}", c.lookup(&format!("{p}!"))));
            }
            (log, c.hits(), c.near_hits(), c.misses(), c.evictions())
        };
        assert_eq!(run(false), run(true), "int8 probe path must not change served results");
    }

    #[test]
    fn pq_near_tier_serves_identical_results() {
        // Enough traffic that the PQ codebook actually trains (the lazy
        // threshold is PQ_TRAIN_MIN inserts) and evictions churn the index.
        let prompts: Vec<String> = (0..160)
            .map(|i| format!("request number {i} about subject {} in style {}", i % 7, i % 3))
            .collect();
        let run = |pq: bool| {
            let config = SemanticCacheConfig {
                capacity: 96,
                tau: 0.3,
                pq,
                ..SemanticCacheConfig::default()
            };
            let mut c = SemanticCache::new(config, NgramEmbedder::default());
            let mut log = Vec::new();
            for p in &prompts {
                let out = c.lookup(p);
                if matches!(out, CacheOutcome::Miss) {
                    c.insert(p, &format!("{p} [c]"));
                }
                log.push(format!("{out:?}"));
                log.push(format!("{:?}", c.lookup(&format!("{p}!"))));
            }
            (log, c.hits(), c.near_hits(), c.misses(), c.evictions())
        };
        assert_eq!(run(false), run(true), "PQ probe path must not change served results");
    }

    #[test]
    fn lookup_batch_hits_both_tiers_without_miss_accounting() {
        let mut c = cache(8, 0.2);
        c.insert("explain the borrow checker to me", "r-borrow");
        c.insert("what is a lifetime annotation", "r-lifetime");
        let misses_before = c.misses();
        let got = c.lookup_batch(&[
            "explain the borrow checker to me",     // exact hit
            "explain the borrow checker to me!",    // near hit (punctuation)
            "write a haiku about compilers please", // miss
        ]);
        assert_eq!(got[0].as_deref(), Some("r-borrow"));
        assert_eq!(got[1].as_deref(), Some("r-borrow"));
        assert_eq!(got[2], None);
        assert_eq!(c.misses(), misses_before, "dispatch probes must not recount misses");
        // Recency was refreshed: inserting two more prompts must evict the
        // untouched entry first, not the batch-hit one.
        let mut c2 = cache(2, 0.0);
        c2.insert("keep me", "r1");
        c2.insert("evict me", "r2");
        let _ = c2.lookup_batch(&["keep me"]);
        c2.insert("newcomer", "r3");
        assert!(matches!(c2.lookup("keep me"), CacheOutcome::ExactHit(_)));
        assert_eq!(c2.lookup("evict me"), CacheOutcome::Miss);
    }

    #[test]
    fn lookup_sequences_are_deterministic() {
        let run = || {
            let mut c = cache(8, 0.3);
            let mut log = Vec::new();
            for i in 0..40 {
                let p = format!("prompt {} about thing {}", i % 11, i % 5);
                let out = c.lookup(&p);
                if matches!(out, CacheOutcome::Miss) {
                    c.insert(&p, &format!("resp {}", i % 11));
                }
                log.push(format!("{out:?}"));
            }
            (log, c.hits(), c.near_hits(), c.misses(), c.evictions())
        };
        assert_eq!(run(), run());
    }
}

//! The semantic complement cache: exact-match LRU in front of an ANN
//! near-duplicate tier.
//!
//! Prompt traffic is dominated by repeats and near-repeats (Zhang & Khan
//! document heavy near-duplicate mass in real prompt datasets), so the
//! cheapest way to serve `p → cat(p, p_c)` at scale is to not recompute
//! `p_c` at all:
//!
//! 1. **Exact tier** — a hash map from the prompt string to its cached
//!    complement. Free of caveats: an exact hit returns bit-identically
//!    what the optimizer would have produced.
//! 2. **Near tier** — the prompt is embedded (`pas-embed`) and probed
//!    against a cosine [`Hnsw`] (`pas-ann`) over the cached prompts; a
//!    neighbour within distance `τ` serves *its* cached response. This is a
//!    deliberate behaviour change gated behind `τ` — at the default
//!    `τ = 0` the tier is off and the cache is exact-only.
//!
//! Both tiers share one LRU capacity bound. Evicted entries are unlinked
//! from the HNSW graph incrementally ([`Hnsw::remove`] re-links the
//! victim's neighborhood in place), so probe cost tracks the live set
//! without rebuild pauses. A full rebuild survives as a rare fallback that
//! reclaims the dead entries' string storage once they heavily outnumber
//! the live set. The near tier can additionally run its graph traversal on
//! int8-quantized codes ([`SemanticCacheConfig::quantized`]) — the exact
//! f32 re-rank inside `pas-ann` keeps the served neighbors bit-identical.
//!
//! The cache is a plain `&mut self` structure: the gateway's event loop is
//! serial (that is what makes runs bit-reproducible), so no interior
//! locking is needed.
//!
//! **Persistence** (optional): [`SemanticCache::open_from`] backs the cache
//! with a `pas-store` segment log in a directory and write-through-logs
//! every state change — entry insertions (meta + raw-embedding vector
//! records), recency touches, and evictions (tombstones) — so a reopened
//! cache reconstructs the live one *bit-identically*: same LRU order, same
//! HNSW graph, same future probes. [`SemanticCache::persist_to`] adds a
//! checkpoint so the next open skips replay (warm restart). Every append
//! is flushed before the serving path continues, which is what makes a
//! kill-without-checkpoint recoverable: a cold reopen replays the full log
//! and lands exactly where the killed process was.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use pas_ann::{CosineDistance, Hnsw, HnswConfig};
use pas_embed::Embedder;
use pas_fault::DiskFaults;
use pas_store::{
    read_snapshot, wire, write_snapshot, Record, RecordMeta, SegmentLog, SnapshotData, StoreConfig,
};

/// Configuration for [`SemanticCache`].
#[derive(Debug, Clone)]
pub struct SemanticCacheConfig {
    /// Maximum live entries (LRU-evicted beyond this). `0` disables the
    /// cache entirely: every lookup misses and nothing is stored.
    pub capacity: usize,
    /// Near-duplicate distance threshold in cosine-distance space
    /// (`1 − cos`). `0.0` (the default) disables the near tier: only exact
    /// string matches hit.
    pub tau: f32,
    /// Beam width for near-tier probes.
    pub ef: usize,
    /// Construction parameters for the ANN index over cached prompts.
    pub hnsw: HnswConfig,
    /// Run near-tier graph traversal on int8-quantized codes with exact
    /// f32 re-rank (identical results, ~4x smaller probe working set).
    pub quantized: bool,
    /// Run near-tier graph traversal on product-quantized codes (~dim/8
    /// bytes per cached prompt, ~32x below f32) with exact f32 re-rank.
    /// Wins over `quantized` when both are set; the codebook trains lazily
    /// once enough prompts are cached (probes stay f32 before that).
    pub pq: bool,
}

impl Default for SemanticCacheConfig {
    fn default() -> Self {
        SemanticCacheConfig {
            capacity: 4096,
            tau: 0.0,
            ef: 32,
            hnsw: HnswConfig { m: 8, ef_construction: 48, seed: 0x9a7e }, // small serving index
            quantized: false,
            pq: false,
        }
    }
}

/// How [`SemanticCache::open_from`] rebuilds state from a store directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Restore from the checkpoint snapshot when one matches the log head,
    /// then replay only the log suffix. Falls back to a full replay when
    /// the checkpoint is missing, torn, or stale.
    Warm,
    /// Ignore any checkpoint and replay the whole log, re-inserting the
    /// *logged* raw embeddings (no re-embedding).
    Replay,
    /// Replay the whole log but re-embed every prompt instead of using the
    /// logged vectors — the pre-`pas-store` restart cost, kept as the
    /// benchmark baseline. Bit-identical to `Replay` (embedding is
    /// deterministic), just slow.
    Reembed,
}

/// Record-category tag for committed cache entries.
const META_ENTRY: &str = "cache";
/// Record-category tag for recency touches (stamp-only meta records).
const META_TOUCH: &str = "touch";
/// Record-category tag for in-place version upgrades of a live entry.
const META_UPDATE: &str = "update";
/// Meta field key holding the prompt text.
const FIELD_PROMPT: &str = "p";
/// Meta field key holding the cached response.
const FIELD_RESPONSE: &str = "r";
/// Meta field key holding the entry version.
const FIELD_VERSION: &str = "v";
/// Magic prefix of the checkpoint payload (v2 added per-entry versions).
const SNAP_PAYLOAD_MAGIC: &[u8] = b"PASCSNP2";

/// FNV-1a over the prompt bytes — the key coordinate of
/// [`SemanticCache::digest`]. Stable across processes and architectures,
/// so two replicas hash the same prompt to the same digest slot.
pub fn entry_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over the fields that determine how a replayed log drives the
/// cache: the index geometry and probe tier, plus whether the near tier
/// exists at all. Two configs with the same fingerprint replay a log to
/// the same state; anything else is a hard error at open.
fn config_fingerprint(config: &SemanticCacheConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in [
        u64::from_le_bytes(*b"PASCACHE"),
        (config.tau > 0.0) as u64,
        config.quantized as u64,
        config.pq as u64,
        config.hnsw.m as u64,
        config.hnsw.ef_construction as u64,
        config.hnsw.seed,
    ] {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn entry_meta(prompt: &str, response: &str, stamp: u64, version: u64) -> RecordMeta {
    RecordMeta {
        category: META_ENTRY.to_string(),
        degraded: false,
        stamp,
        fields: vec![
            (FIELD_PROMPT.to_string(), prompt.to_string()),
            (FIELD_RESPONSE.to_string(), response.to_string()),
            (FIELD_VERSION.to_string(), version.to_string()),
        ],
    }
}

/// The write-through log behind a persistent cache. The first failed write
/// freezes it (`error` goes sticky): the cache keeps serving from memory,
/// nothing further is logged, and the durable state stays a consistent
/// prefix — exactly what a reopen recovers.
struct CacheStore {
    log: SegmentLog,
    error: Option<io::Error>,
}

/// What a cache lookup found.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheOutcome {
    /// The exact prompt was cached; its own complement is returned.
    ExactHit(String),
    /// A near-duplicate neighbour within τ was cached; the *neighbour's*
    /// complement is returned (τ-gated behaviour change, see module docs).
    NearHit {
        /// The neighbour's cached response.
        response: String,
        /// Cosine distance between the query and the neighbour prompt.
        distance: f32,
    },
    /// Nothing usable cached; the request must go to the replica pool.
    Miss,
}

struct Entry {
    prompt: String,
    response: String,
    alive: bool,
    /// Recency stamp; larger = more recently used.
    stamp: u64,
    /// Write version; replicas only ever apply monotone upgrades, which is
    /// what makes duplicated/reordered replication messages idempotent.
    version: u64,
}

/// Exact-match LRU map + tombstoned ANN near-duplicate tier (module docs).
pub struct SemanticCache<E> {
    config: SemanticCacheConfig,
    embedder: E,
    /// prompt → entry id, live entries only.
    exact: HashMap<String, usize>,
    /// All entries ever inserted, id-aligned with the ANN index; dead ones
    /// are tombstones until the next rebuild.
    entries: Vec<Entry>,
    /// stamp → entry id, live entries only (stamps are unique).
    lru: std::collections::BTreeMap<u64, usize>,
    index: Hnsw<CosineDistance>,
    clock: u64,
    hits: u64,
    near_hits: u64,
    misses: u64,
    evictions: u64,
    /// Write-through segment log; `None` for a purely in-memory cache.
    store: Option<CacheStore>,
}

impl<E: Embedder> SemanticCache<E> {
    /// Creates an empty cache that embeds with `embedder` (only used when
    /// `config.tau > 0`).
    pub fn new(config: SemanticCacheConfig, embedder: E) -> Self {
        let mut index = Hnsw::new(config.hnsw.clone(), CosineDistance);
        if config.pq {
            index.set_product_quantization(true);
        } else if config.quantized {
            index.set_quantization(true);
        }
        SemanticCache {
            config,
            embedder,
            exact: HashMap::new(),
            entries: Vec::new(),
            lru: std::collections::BTreeMap::new(),
            index,
            clock: 0,
            hits: 0,
            near_hits: 0,
            misses: 0,
            evictions: 0,
            store: None,
        }
    }

    /// Opens (or creates) a persistent cache backed by the segment log in
    /// `dir`, rebuilding state per `mode`. The directory must have been
    /// written under the same [`config_fingerprint`]-relevant config
    /// (τ on/off, probe tier, HNSW geometry) — a mismatch is a hard error.
    /// All subsequent state changes are write-through-logged.
    pub fn open_from(
        config: SemanticCacheConfig,
        embedder: E,
        dir: &Path,
        mode: OpenMode,
    ) -> io::Result<Self> {
        Self::open_from_with(config, embedder, dir, mode, None)
    }

    /// [`SemanticCache::open_from`] with an optional disk-fault schedule
    /// threaded into the log, so chaos tests can kill the cache's store at
    /// any append/compact boundary.
    pub fn open_from_with(
        config: SemanticCacheConfig,
        embedder: E,
        dir: &Path,
        mode: OpenMode,
        faults: Option<DiskFaults>,
    ) -> io::Result<Self> {
        let fingerprint = config_fingerprint(&config);
        let store_config = StoreConfig { fingerprint, ..StoreConfig::default() };
        let (log, records) = SegmentLog::open(dir, store_config, faults)?;
        let mut cache = SemanticCache::new(config, embedder);
        let mut start = 0usize;
        if mode == OpenMode::Warm {
            if let Some(snap) = read_snapshot(dir, fingerprint)? {
                // A checkpoint is only usable when it pins a prefix of the
                // *current* generation; anything else (pre-compaction, or
                // ahead of a log that lost a torn tail) replays cold.
                if snap.generation == log.generation() && snap.op_count <= records.len() as u64 {
                    cache.restore_snapshot(&snap.payload)?;
                    start = snap.op_count as usize;
                }
            }
        }
        let reembed = mode == OpenMode::Reembed;
        let mut pending: HashMap<u64, RecordMeta> = HashMap::new();
        for record in &records[start..] {
            cache.apply_record(record, reembed, &mut pending)?;
        }
        // A meta left in `pending` is a crash between an insert's meta and
        // vector records: an invisible orphan, dropped by design.
        cache.store = Some(CacheStore { log, error: None });
        Ok(cache)
    }

    /// Writes a checkpoint pinning the full cache state to the current log
    /// position, so the next [`OpenMode::Warm`] open restores it without
    /// replay. On a cache that is not yet persistent, first attaches a
    /// fresh store in `dir` (the directory must not already hold a log);
    /// adoption runs a compaction, so for `τ > 0` the graph is rebuilt
    /// exactly as the fallback compaction would.
    pub fn persist_to(&mut self, dir: &Path) -> io::Result<()> {
        if let Some(store) = &self.store {
            if store.log.dir() != dir {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("pas-gateway: cache already persists to {}", store.log.dir().display()),
                ));
            }
        } else {
            let fingerprint = config_fingerprint(&self.config);
            let store_config = StoreConfig { fingerprint, ..StoreConfig::default() };
            let (log, records) = SegmentLog::open(dir, store_config, None)?;
            if !records.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "pas-gateway: directory already holds a cache log; reopen it with open_from",
                ));
            }
            self.store = Some(CacheStore { log, error: None });
            self.compact_now();
        }
        let store = self.store.as_ref().expect("store attached above");
        if let Some(e) = &store.error {
            return Err(io::Error::new(
                e.kind(),
                format!("pas-gateway: cache store frozen by earlier write error: {e}"),
            ));
        }
        let data = SnapshotData {
            generation: store.log.generation(),
            op_count: store.log.op_count(),
            payload: self.snapshot_payload(),
        };
        write_snapshot(dir, config_fingerprint(&self.config), &data, store.log.faults())
    }

    /// The directory this cache persists to, if any.
    pub fn store_dir(&self) -> Option<&Path> {
        self.store.as_ref().map(|s| s.log.dir())
    }

    /// The sticky store error, if a write-through append ever failed. The
    /// cache keeps serving from memory past a store error; the durable
    /// state is frozen at the last successful write.
    pub fn store_error(&self) -> Option<&io::Error> {
        self.store.as_ref().and_then(|s| s.error.as_ref())
    }

    /// Appends `record` to the attached log, if any; the first failure
    /// freezes the store (sticky error) instead of surfacing mid-serve.
    fn log_record(&mut self, record: Record) {
        if let Some(store) = &mut self.store {
            if store.error.is_none() {
                if let Err(e) = store.log.append(&record) {
                    store.error = Some(e);
                }
            }
        }
    }

    /// Applies one replayed log record. Mirrors the live mutation paths
    /// (insert / touch / evict) exactly, minus counters and logging.
    fn apply_record(
        &mut self,
        record: &Record,
        reembed: bool,
        pending: &mut HashMap<u64, RecordMeta>,
    ) -> io::Result<()> {
        match record {
            Record::Meta { id, meta } if meta.category == META_TOUCH => {
                let id = *id as usize;
                let Some(e) = self.entries.get_mut(id) else {
                    return Err(wire::corrupt("cache log: touch of unknown id"));
                };
                if e.alive {
                    self.lru.remove(&e.stamp);
                    e.stamp = meta.stamp;
                    self.lru.insert(meta.stamp, id);
                }
                self.clock = self.clock.max(meta.stamp);
            }
            Record::Meta { id, meta } if meta.category == META_UPDATE => {
                let id = *id as usize;
                let Some(e) = self.entries.get_mut(id) else {
                    return Err(wire::corrupt("cache log: update of unknown id"));
                };
                if e.alive {
                    self.lru.remove(&e.stamp);
                    e.stamp = meta.stamp;
                    e.response = meta.field(FIELD_RESPONSE).unwrap_or_default().to_string();
                    e.version = meta.field(FIELD_VERSION).and_then(|v| v.parse().ok()).unwrap_or(1);
                    self.lru.insert(meta.stamp, id);
                }
                self.clock = self.clock.max(meta.stamp);
            }
            Record::Meta { id, meta } => {
                pending.insert(*id, meta.clone());
            }
            Record::Vector { id, vector } => {
                let meta = pending
                    .remove(id)
                    .ok_or_else(|| wire::corrupt("cache log: vector record without meta"))?;
                let id = *id as usize;
                if id != self.entries.len() {
                    return Err(wire::corrupt("cache log: out-of-order entry id"));
                }
                let prompt = meta.field(FIELD_PROMPT).unwrap_or_default().to_string();
                let response = meta.field(FIELD_RESPONSE).unwrap_or_default().to_string();
                let version = meta.field(FIELD_VERSION).and_then(|v| v.parse().ok()).unwrap_or(1);
                if self.config.tau > 0.0 {
                    let v = if reembed { self.embedder.embed(&prompt) } else { vector.clone() };
                    let got = self.index.insert(v);
                    debug_assert_eq!(got, id, "replayed ids must align with entries");
                }
                self.clock = self.clock.max(meta.stamp);
                self.exact.insert(prompt.clone(), id);
                self.lru.insert(meta.stamp, id);
                self.entries.push(Entry {
                    prompt,
                    response,
                    alive: true,
                    stamp: meta.stamp,
                    version,
                });
            }
            Record::Tombstone { id } => {
                let id = *id as usize;
                let Some(e) = self.entries.get_mut(id) else {
                    return Err(wire::corrupt("cache log: tombstone for unknown id"));
                };
                if e.alive {
                    e.alive = false;
                    self.lru.remove(&e.stamp);
                    self.exact.remove(&e.prompt);
                    if self.config.tau > 0.0 {
                        self.index.remove(id);
                    }
                }
            }
        }
        Ok(())
    }

    /// Serializes the full cache state: clock, every entry slot (dead ones
    /// as stamp-only placeholders — replay just needs their count), and
    /// the HNSW graph dump when the near tier is on.
    fn snapshot_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(SNAP_PAYLOAD_MAGIC);
        wire::put_u64(&mut out, self.clock);
        wire::put_u64(&mut out, self.entries.len() as u64);
        for e in &self.entries {
            out.push(e.alive as u8);
            wire::put_u64(&mut out, e.stamp);
            wire::put_u64(&mut out, if e.alive { e.version } else { 0 });
            let (p, r) = if e.alive { (e.prompt.as_str(), e.response.as_str()) } else { ("", "") };
            wire::put_str(&mut out, p);
            wire::put_str(&mut out, r);
        }
        if self.config.tau > 0.0 {
            let dump = self.index.dump();
            wire::put_u64(&mut out, dump.len() as u64);
            out.extend_from_slice(&dump);
        } else {
            wire::put_u64(&mut out, 0);
        }
        out
    }

    /// Restores the state serialized by [`SemanticCache::snapshot_payload`].
    fn restore_snapshot(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut r = wire::Reader::new(payload);
        if r.take(SNAP_PAYLOAD_MAGIC.len())? != SNAP_PAYLOAD_MAGIC {
            return Err(wire::corrupt("cache snapshot: bad magic"));
        }
        self.clock = r.u64()?;
        let n = r.u64()? as usize;
        if n > payload.len() {
            return Err(wire::corrupt("cache snapshot: entry count exceeds payload"));
        }
        self.entries = Vec::with_capacity(n);
        self.exact.clear();
        self.lru.clear();
        for id in 0..n {
            let alive = r.u8()? != 0;
            let stamp = r.u64()?;
            let version = r.u64()?;
            let prompt = r.str()?;
            let response = r.str()?;
            if alive {
                self.exact.insert(prompt.clone(), id);
                self.lru.insert(stamp, id);
            }
            self.entries.push(Entry { prompt, response, alive, stamp, version });
        }
        let dump_len = r.u64()? as usize;
        let dump = r.take(dump_len)?;
        if !r.is_empty() {
            return Err(wire::corrupt("cache snapshot: trailing bytes"));
        }
        if self.config.tau > 0.0 {
            self.index = Hnsw::load(dump, CosineDistance).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("pas-gateway: cache snapshot graph: {e}"),
                )
            })?;
        }
        Ok(())
    }

    /// Live cached entries.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// Live `(prompt, response)` pairs in LRU order (least recently used
    /// first) — the deterministic export order for shard hand-off:
    /// replaying the pairs through [`SemanticCache::insert`] on a
    /// receiving cache reproduces the donor's relative recency.
    pub fn live_entries_lru(&self) -> Vec<(&str, &str)> {
        self.lru
            .values()
            .map(|&id| {
                let e = &self.entries[id];
                (e.prompt.as_str(), e.response.as_str())
            })
            .collect()
    }

    /// Live `(prompt, response, version)` triples in LRU order — the
    /// versioned export replication hand-off and inspection use.
    pub fn live_entries_versioned(&self) -> Vec<(&str, &str, u64)> {
        self.lru
            .values()
            .map(|&id| {
                let e = &self.entries[id];
                (e.prompt.as_str(), e.response.as_str(), e.version)
            })
            .collect()
    }

    /// The merkle-lite digest anti-entropy exchanges: `(entry_hash(prompt),
    /// version)` pairs over the live set, sorted by hash so two replicas'
    /// digests are comparable with a merge walk (and binary-searchable).
    pub fn digest(&self) -> Vec<(u64, u64)> {
        let mut d: Vec<(u64, u64)> = self
            .lru
            .values()
            .map(|&id| {
                let e = &self.entries[id];
                (entry_hash(&e.prompt), e.version)
            })
            .collect();
        d.sort_unstable();
        d
    }

    /// Reads `prompt`'s live `(response, version)` without touching
    /// recency or hit counters — the inspection/repair-side read.
    pub fn peek(&self, prompt: &str) -> Option<(&str, u64)> {
        self.exact.get(prompt).map(|&id| {
            let e = &self.entries[id];
            (e.response.as_str(), e.version)
        })
    }

    /// The live version of `prompt`, if cached.
    pub fn version_of(&self, prompt: &str) -> Option<u64> {
        self.exact.get(prompt).map(|&id| self.entries[id].version)
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// Exact-tier hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Near-tier hits so far.
    pub fn near_hits(&self) -> u64 {
        self.near_hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn touch(&mut self, id: usize) {
        self.lru.remove(&self.entries[id].stamp);
        self.clock += 1;
        self.entries[id].stamp = self.clock;
        self.lru.insert(self.clock, id);
        if self.store.is_some() {
            // Touches are logged so a replayed cache reproduces the live
            // LRU order exactly — that is what makes a kill + cold reopen
            // byte-identical to never restarting, not just prefix-correct.
            self.log_record(Record::Meta {
                id: id as u64,
                meta: RecordMeta {
                    category: META_TOUCH.to_string(),
                    stamp: self.clock,
                    ..RecordMeta::default()
                },
            });
        }
    }

    /// Looks `prompt` up in both tiers, updating recency and counters.
    pub fn lookup(&mut self, prompt: &str) -> CacheOutcome {
        if self.config.capacity == 0 {
            self.misses += 1;
            return CacheOutcome::Miss;
        }
        if let Some(&id) = self.exact.get(prompt) {
            self.hits += 1;
            self.touch(id);
            return CacheOutcome::ExactHit(self.entries[id].response.clone());
        }
        if self.config.tau > 0.0 && !self.exact.is_empty() {
            let query = self.embedder.embed(prompt);
            // Over-fetch a little so a tombstoned nearest neighbour does
            // not hide a live one right behind it.
            let neighbors = self.index.search(&query, 4, self.config.ef);
            if let Some(n) = neighbors.into_iter().find(|n| self.entries[n.id].alive) {
                if n.distance <= self.config.tau {
                    self.near_hits += 1;
                    self.touch(n.id);
                    return CacheOutcome::NearHit {
                        response: self.entries[n.id].response.clone(),
                        distance: n.distance,
                    };
                }
            }
        }
        self.misses += 1;
        CacheOutcome::Miss
    }

    /// Probes both tiers for a whole micro-batch at dispatch time, *without*
    /// the per-arrival hit/miss accounting — [`SemanticCache::lookup`]
    /// already counted these prompts when they arrived; this is the second
    /// chance an enqueued request gets after earlier batches completed and
    /// installed fresh complements. All near-tier probes of the batch run
    /// through one [`Hnsw::search_batch`] call, sharing packed neighbor
    /// panels across the queries. Hits refresh recency.
    pub fn lookup_batch(&mut self, prompts: &[&str]) -> Vec<Option<String>> {
        if self.config.capacity == 0 {
            return vec![None; prompts.len()];
        }
        let mut out: Vec<Option<String>> = Vec::with_capacity(prompts.len());
        let mut pending: Vec<usize> = Vec::new();
        for &p in prompts {
            if let Some(&id) = self.exact.get(p) {
                self.touch(id);
                out.push(Some(self.entries[id].response.clone()));
            } else {
                if self.config.tau > 0.0 && !self.exact.is_empty() {
                    pending.push(out.len());
                }
                out.push(None);
            }
        }
        if !pending.is_empty() {
            let queries: Vec<Vec<f32>> =
                pending.iter().map(|&pi| self.embedder.embed(prompts[pi])).collect();
            let results = self.index.search_batch(&queries, 4, self.config.ef);
            for (&pi, neighbors) in pending.iter().zip(&results) {
                if let Some(n) = neighbors.iter().find(|n| self.entries[n.id].alive) {
                    if n.distance <= self.config.tau {
                        self.touch(n.id);
                        out[pi] = Some(self.entries[n.id].response.clone());
                    }
                }
            }
        }
        out
    }

    /// Caches `response` for `prompt`, evicting the least-recently-used
    /// entries beyond capacity. A prompt already cached keeps its existing
    /// entry (complements are deterministic, so re-insertion is a no-op).
    pub fn insert(&mut self, prompt: &str, response: &str) {
        self.insert_versioned(prompt, response, 1);
    }

    /// Versioned insert, the replication primitive: applies `(response,
    /// version)` only when it advances the entry — a fresh prompt installs
    /// at `version`, a live entry upgrades in place iff `version` is
    /// strictly newer (the id and its ANN row, keyed by the prompt
    /// embedding, stay put). Older and equal versions are no-ops, so
    /// duplicated or reordered replication messages are idempotent and a
    /// replica can never regress to a stale response. Returns whether the
    /// cache changed.
    pub fn insert_versioned(&mut self, prompt: &str, response: &str, version: u64) -> bool {
        if self.config.capacity == 0 {
            return false;
        }
        if let Some(&id) = self.exact.get(prompt) {
            if self.entries[id].version >= version {
                return false;
            }
            self.lru.remove(&self.entries[id].stamp);
            self.clock += 1;
            let e = &mut self.entries[id];
            e.stamp = self.clock;
            e.response = response.to_string();
            e.version = version;
            self.lru.insert(self.clock, id);
            if self.store.is_some() {
                self.log_record(Record::Meta {
                    id: id as u64,
                    meta: RecordMeta {
                        category: META_UPDATE.to_string(),
                        degraded: false,
                        stamp: self.clock,
                        fields: vec![
                            (FIELD_RESPONSE.to_string(), response.to_string()),
                            (FIELD_VERSION.to_string(), version.to_string()),
                        ],
                    },
                });
            }
            return true;
        }
        while self.exact.len() >= self.config.capacity {
            let (&stamp, &victim) = self.lru.iter().next().expect("LRU mirrors exact map");
            self.lru.remove(&stamp);
            self.exact.remove(&self.entries[victim].prompt);
            self.entries[victim].alive = false;
            if self.config.tau > 0.0 {
                // Unlink the victim from the ANN graph in place; probe cost
                // stays proportional to the live set without a rebuild.
                self.index.remove(victim);
            }
            self.log_record(Record::Tombstone { id: victim as u64 });
            self.evictions += 1;
        }
        self.clock += 1;
        let id = self.entries.len();
        // Exact-only mode never probes the ANN tier: skip embedding and the
        // index entirely and keep ids aligned with `entries` alone. The raw
        // (unprepared) embedding is what gets logged — `Hnsw::insert`
        // prepares internally, so replaying the logged bits reproduces the
        // graph bit-exactly.
        let raw = if self.config.tau > 0.0 { self.embedder.embed(prompt) } else { Vec::new() };
        if self.store.is_some() {
            // Meta first, vector second: the vector record is the commit
            // point, so a crash between the two leaves an invisible orphan
            // rather than a half-materialized entry.
            self.log_record(Record::Meta {
                id: id as u64,
                meta: entry_meta(prompt, response, self.clock, version),
            });
            self.log_record(Record::Vector { id: id as u64, vector: raw.clone() });
        }
        if self.config.tau > 0.0 {
            let got = self.index.insert(raw);
            debug_assert_eq!(got, id, "index ids must align with entries");
        }
        self.entries.push(Entry {
            prompt: prompt.to_string(),
            response: response.to_string(),
            alive: true,
            stamp: self.clock,
            version,
        });
        self.exact.insert(prompt.to_string(), id);
        self.lru.insert(self.clock, id);
        self.maybe_compact();
        true
    }

    /// Fallback compaction: evicted ids are already unlinked from the graph
    /// incrementally, but dead `entries` slots still pin their prompt and
    /// response strings (and empty graph slots). Once the dead heavily
    /// outnumber the live set, rebuild everything from the live entries to
    /// reclaim that storage.
    fn maybe_compact(&mut self) {
        let dead = self.entries.len() - self.exact.len();
        if dead <= 8 * self.exact.len().max(1) || dead < 64 {
            return;
        }
        self.compact_now();
    }

    /// The rebuild itself, shared by the fallback trigger and store
    /// adoption ([`SemanticCache::persist_to`] on an unpersisted cache).
    fn compact_now(&mut self) {
        let live: Vec<Entry> =
            std::mem::take(&mut self.entries).into_iter().filter(|e| e.alive).collect();
        // Sync the log first: compact it down to exactly the records whose
        // replay reproduces the rebuilt state below (renumbered ids, same
        // stamps, re-embedded raw vectors — embedding is deterministic, so
        // the bits match what the rebuild inserts).
        if let Some(store) = &mut self.store {
            if store.error.is_none() {
                let mut records = Vec::with_capacity(live.len() * 2);
                for (id, entry) in live.iter().enumerate() {
                    let vector = if self.config.tau > 0.0 {
                        self.embedder.embed(&entry.prompt)
                    } else {
                        Vec::new()
                    };
                    records.push(Record::Meta {
                        id: id as u64,
                        meta: entry_meta(
                            &entry.prompt,
                            &entry.response,
                            entry.stamp,
                            entry.version,
                        ),
                    });
                    records.push(Record::Vector { id: id as u64, vector });
                }
                if let Err(e) = store.log.compact(&records) {
                    store.error = Some(e);
                }
            }
        }
        self.index = Hnsw::new(self.config.hnsw.clone(), CosineDistance);
        if self.config.pq {
            self.index.set_product_quantization(true);
        } else if self.config.quantized {
            self.index.set_quantization(true);
        }
        self.exact.clear();
        self.lru.clear();
        for (id, entry) in live.iter().enumerate() {
            if self.config.tau > 0.0 {
                let got = self.index.insert(self.embedder.embed(&entry.prompt));
                debug_assert_eq!(got, id);
            }
            self.exact.insert(entry.prompt.clone(), id);
            self.lru.insert(entry.stamp, id);
        }
        self.entries = live;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_embed::NgramEmbedder;

    fn cache(capacity: usize, tau: f32) -> SemanticCache<NgramEmbedder> {
        let config = SemanticCacheConfig { capacity, tau, ..SemanticCacheConfig::default() };
        SemanticCache::new(config, NgramEmbedder::default())
    }

    #[test]
    fn exact_tier_round_trips() {
        let mut c = cache(8, 0.0);
        assert_eq!(c.lookup("how do I sort a vec"), CacheOutcome::Miss);
        c.insert("how do I sort a vec", "how do I sort a vec [c]");
        assert_eq!(
            c.lookup("how do I sort a vec"),
            CacheOutcome::ExactHit("how do I sort a vec [c]".into())
        );
        assert_eq!((c.hits(), c.misses(), c.len()), (1, 1, 1));
    }

    #[test]
    fn tau_zero_never_near_hits() {
        let mut c = cache(8, 0.0);
        c.insert("please sort this list of numbers", "r1");
        assert_eq!(c.lookup("please sort this list of numbers!"), CacheOutcome::Miss);
        assert_eq!(c.near_hits(), 0);
    }

    #[test]
    fn near_tier_serves_close_neighbors_only() {
        let mut c = cache(8, 0.2);
        c.insert("please sort this list of numbers for me", "r1");
        match c.lookup("please sort this list of numbers for me!") {
            CacheOutcome::NearHit { response, distance } => {
                assert_eq!(response, "r1");
                // NB: the ngram featurizer strips punctuation, so the "!"
                // variant can land at distance exactly 0.
                assert!((0.0..=0.2).contains(&distance), "distance {distance}");
            }
            other => panic!("expected a near hit, got {other:?}"),
        }
        assert_eq!(c.lookup("write a poem about the autumn moon"), CacheOutcome::Miss);
        assert_eq!((c.near_hits(), c.misses()), (1, 1));
    }

    #[test]
    fn capacity_evicts_lru_and_tombstones_hide_from_near_tier() {
        let mut c = cache(2, 0.2);
        c.insert("alpha prompt one about databases", "r-alpha");
        c.insert("beta prompt two about compilers", "r-beta");
        assert!(matches!(c.lookup("alpha prompt one about databases"), CacheOutcome::ExactHit(_)));
        // beta is now LRU; inserting gamma evicts it.
        c.insert("gamma prompt three about gardening", "r-gamma");
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.lookup("beta prompt two about compilers"), CacheOutcome::Miss);
        // The evicted entry must not be served by the near tier either.
        assert_eq!(c.lookup("beta prompt two about compilers!"), CacheOutcome::Miss);
        // Survivors still hit.
        assert!(matches!(c.lookup("alpha prompt one about databases"), CacheOutcome::ExactHit(_)));
        assert!(matches!(
            c.lookup("gamma prompt three about gardening"),
            CacheOutcome::ExactHit(_)
        ));
    }

    #[test]
    fn disabled_cache_never_stores() {
        let mut c = cache(0, 0.5);
        c.insert("a prompt", "a response");
        assert_eq!(c.lookup("a prompt"), CacheOutcome::Miss);
        assert!(c.is_empty());
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn reinsert_keeps_the_existing_entry() {
        let mut c = cache(4, 0.0);
        c.insert("p", "r1");
        c.insert("p", "r2-should-be-ignored");
        assert_eq!(c.lookup("p"), CacheOutcome::ExactHit("r1".into()));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn versioned_insert_applies_only_monotone_upgrades() {
        let mut c = cache(4, 0.0);
        assert!(c.insert_versioned("p", "v2", 2));
        assert_eq!(c.peek("p"), Some(("v2", 2)));
        // Stale and duplicate versions are idempotent no-ops.
        assert!(!c.insert_versioned("p", "v1-stale", 1));
        assert!(!c.insert_versioned("p", "v2-dup", 2));
        assert_eq!(c.peek("p"), Some(("v2", 2)));
        // A strictly newer version upgrades in place: same entry count.
        assert!(c.insert_versioned("p", "v5", 5));
        assert_eq!(c.peek("p"), Some(("v5", 5)));
        assert_eq!(c.version_of("p"), Some(5));
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup("p"), CacheOutcome::ExactHit("v5".into()));
        // Plain inserts are version 1 and peek does not touch counters.
        c.insert("q", "rq");
        assert_eq!(c.version_of("q"), Some(1));
        assert_eq!(c.version_of("absent"), None);
    }

    #[test]
    fn versioned_upgrade_keeps_the_near_tier_row() {
        let mut c = cache(8, 0.2);
        c.insert_versioned("please sort this list of numbers for me", "old", 1);
        c.insert_versioned("please sort this list of numbers for me", "new", 3);
        match c.lookup("please sort this list of numbers for me!") {
            CacheOutcome::NearHit { response, .. } => assert_eq!(response, "new"),
            other => panic!("expected a near hit, got {other:?}"),
        }
    }

    #[test]
    fn digest_is_sorted_and_tracks_versions() {
        let mut c = cache(8, 0.0);
        c.insert_versioned("alpha", "a", 1);
        c.insert_versioned("beta", "b", 4);
        let d = c.digest();
        assert_eq!(d.len(), 2);
        assert!(d.windows(2).all(|w| w[0].0 < w[1].0), "digest must be hash-sorted");
        let beta = d.iter().find(|&&(h, _)| h == entry_hash("beta")).unwrap();
        assert_eq!(beta.1, 4);
        // Upgrading bumps the digest version; identical caches agree.
        c.insert_versioned("alpha", "a2", 7);
        let alpha = c.digest().into_iter().find(|&(h, _)| h == entry_hash("alpha")).unwrap();
        assert_eq!(alpha.1, 7);
        let mut twin = cache(8, 0.0);
        twin.insert_versioned("beta", "b", 4);
        twin.insert_versioned("alpha", "a2", 7);
        assert_eq!(twin.digest(), c.digest(), "digest must ignore insertion order");
    }

    #[test]
    fn versions_survive_persistence_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "pas-cache-version-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = SemanticCacheConfig { capacity: 8, ..SemanticCacheConfig::default() };
        let mut c = SemanticCache::open_from(
            config.clone(),
            NgramEmbedder::default(),
            &dir,
            OpenMode::Replay,
        )
        .unwrap();
        c.insert_versioned("p", "v2", 2);
        c.insert_versioned("p", "v6", 6);
        c.insert_versioned("q", "q1", 1);
        drop(c);
        // Cold replay reapplies the insert and the in-place update.
        let replayed = SemanticCache::open_from(
            config.clone(),
            NgramEmbedder::default(),
            &dir,
            OpenMode::Replay,
        )
        .unwrap();
        assert_eq!(replayed.peek("p"), Some(("v6", 6)));
        assert_eq!(replayed.peek("q"), Some(("q1", 1)));
        let digest = replayed.digest();
        // Warm restore from a checkpoint carries versions too.
        let mut warm = replayed;
        warm.persist_to(&dir).unwrap();
        drop(warm);
        let snap = SemanticCache::open_from(config, NgramEmbedder::default(), &dir, OpenMode::Warm)
            .unwrap();
        assert_eq!(snap.peek("p"), Some(("v6", 6)));
        assert_eq!(snap.digest(), digest);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_behavior_under_churn() {
        let mut c = cache(4, 0.25);
        // Insert far more distinct prompts than capacity: every eviction
        // unlinks its victim from the graph incrementally, and the dead
        // entries pile high enough to cross the fallback-rebuild threshold.
        for i in 0..150 {
            let prompt = format!("distinct request number {i} about topic {}", i % 13);
            c.insert(&prompt, &format!("resp-{i}"));
        }
        assert_eq!(c.len(), 4);
        assert!(c.evictions() >= 146);
        // The four most recent entries are live and exactly retrievable.
        for i in 146..150 {
            let prompt = format!("distinct request number {i} about topic {}", i % 13);
            assert_eq!(c.lookup(&prompt), CacheOutcome::ExactHit(format!("resp-{i}")), "{i}");
        }
        // Near probes only ever see live entries.
        match c.lookup("distinct request number 149 about topic 6!") {
            CacheOutcome::NearHit { response, .. } => assert_eq!(response, "resp-149"),
            CacheOutcome::ExactHit(_) => panic!("punctuated variant cannot exact-hit"),
            CacheOutcome::Miss => {} // acceptable: τ may exclude the variant
        }
    }

    #[test]
    fn quantized_near_tier_serves_identical_results() {
        let prompts: Vec<String> = (0..40)
            .map(|i| format!("request number {i} about subject {} in style {}", i % 7, i % 3))
            .collect();
        let run = |quantized: bool| {
            let config = SemanticCacheConfig {
                capacity: 16,
                tau: 0.3,
                quantized,
                ..SemanticCacheConfig::default()
            };
            let mut c = SemanticCache::new(config, NgramEmbedder::default());
            let mut log = Vec::new();
            for p in &prompts {
                let out = c.lookup(p);
                if matches!(out, CacheOutcome::Miss) {
                    c.insert(p, &format!("{p} [c]"));
                }
                log.push(format!("{out:?}"));
                log.push(format!("{:?}", c.lookup(&format!("{p}!"))));
            }
            (log, c.hits(), c.near_hits(), c.misses(), c.evictions())
        };
        assert_eq!(run(false), run(true), "int8 probe path must not change served results");
    }

    #[test]
    fn pq_near_tier_serves_identical_results() {
        // Enough traffic that the PQ codebook actually trains (the lazy
        // threshold is PQ_TRAIN_MIN inserts) and evictions churn the index.
        let prompts: Vec<String> = (0..160)
            .map(|i| format!("request number {i} about subject {} in style {}", i % 7, i % 3))
            .collect();
        let run = |pq: bool| {
            let config = SemanticCacheConfig {
                capacity: 96,
                tau: 0.3,
                pq,
                ..SemanticCacheConfig::default()
            };
            let mut c = SemanticCache::new(config, NgramEmbedder::default());
            let mut log = Vec::new();
            for p in &prompts {
                let out = c.lookup(p);
                if matches!(out, CacheOutcome::Miss) {
                    c.insert(p, &format!("{p} [c]"));
                }
                log.push(format!("{out:?}"));
                log.push(format!("{:?}", c.lookup(&format!("{p}!"))));
            }
            (log, c.hits(), c.near_hits(), c.misses(), c.evictions())
        };
        assert_eq!(run(false), run(true), "PQ probe path must not change served results");
    }

    #[test]
    fn lookup_batch_hits_both_tiers_without_miss_accounting() {
        let mut c = cache(8, 0.2);
        c.insert("explain the borrow checker to me", "r-borrow");
        c.insert("what is a lifetime annotation", "r-lifetime");
        let misses_before = c.misses();
        let got = c.lookup_batch(&[
            "explain the borrow checker to me",     // exact hit
            "explain the borrow checker to me!",    // near hit (punctuation)
            "write a haiku about compilers please", // miss
        ]);
        assert_eq!(got[0].as_deref(), Some("r-borrow"));
        assert_eq!(got[1].as_deref(), Some("r-borrow"));
        assert_eq!(got[2], None);
        assert_eq!(c.misses(), misses_before, "dispatch probes must not recount misses");
        // Recency was refreshed: inserting two more prompts must evict the
        // untouched entry first, not the batch-hit one.
        let mut c2 = cache(2, 0.0);
        c2.insert("keep me", "r1");
        c2.insert("evict me", "r2");
        let _ = c2.lookup_batch(&["keep me"]);
        c2.insert("newcomer", "r3");
        assert!(matches!(c2.lookup("keep me"), CacheOutcome::ExactHit(_)));
        assert_eq!(c2.lookup("evict me"), CacheOutcome::Miss);
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pas-cache-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Drives `c` through a deterministic lookup/insert script and returns
    /// a byte-comparable trace of everything it served and counted.
    fn drive(c: &mut SemanticCache<NgramEmbedder>, lo: usize, hi: usize) -> Vec<String> {
        let mut log = Vec::new();
        for i in lo..hi {
            let p = format!("prompt {} about thing {}", i % 23, i % 7);
            let out = c.lookup(&p);
            if matches!(out, CacheOutcome::Miss) {
                c.insert(&p, &format!("resp {}", i % 23));
            }
            log.push(format!("{out:?}"));
        }
        log
    }

    #[test]
    fn persistent_cache_restarts_bit_identically_in_every_mode() {
        let config =
            SemanticCacheConfig { capacity: 8, tau: 0.3, ..SemanticCacheConfig::default() };
        // Uninterrupted baseline: one cache serves the whole script.
        let base_dir = tmp("base");
        let mut base = SemanticCache::open_from(
            config.clone(),
            NgramEmbedder::default(),
            &base_dir,
            OpenMode::Replay,
        )
        .unwrap();
        let first = drive(&mut base, 0, 60);
        let rest = drive(&mut base, 60, 120);
        assert!(base.store_error().is_none());

        for mode in [OpenMode::Warm, OpenMode::Replay, OpenMode::Reembed] {
            let dir = tmp(&format!("{mode:?}"));
            let mut c = SemanticCache::open_from(
                config.clone(),
                NgramEmbedder::default(),
                &dir,
                OpenMode::Replay,
            )
            .unwrap();
            assert_eq!(drive(&mut c, 0, 60), first, "{mode:?}");
            if mode == OpenMode::Warm {
                c.persist_to(&dir).unwrap();
            }
            // Drop without checkpoint for Replay/Reembed: a kill. Every
            // append was flushed, so the log holds the full history.
            drop(c);
            let mut c =
                SemanticCache::open_from(config.clone(), NgramEmbedder::default(), &dir, mode)
                    .unwrap();
            assert_eq!(
                drive(&mut c, 60, 120),
                rest,
                "{mode:?} restart must serve byte-identically to never restarting"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
        std::fs::remove_dir_all(&base_dir).unwrap();
    }

    #[test]
    fn exact_only_cache_persists_lru_order() {
        let dir = tmp("exact");
        let config = SemanticCacheConfig { capacity: 2, ..SemanticCacheConfig::default() };
        let mut c = SemanticCache::open_from(
            config.clone(),
            NgramEmbedder::default(),
            &dir,
            OpenMode::Replay,
        )
        .unwrap();
        c.insert("keep me", "r1");
        c.insert("evict me", "r2");
        // Touch "keep me" so it is the most recent — the touch must be
        // durable for the restart to evict the right victim.
        assert!(matches!(c.lookup("keep me"), CacheOutcome::ExactHit(_)));
        drop(c);
        let mut c =
            SemanticCache::open_from(config, NgramEmbedder::default(), &dir, OpenMode::Replay)
                .unwrap();
        assert_eq!(c.len(), 2);
        c.insert("newcomer", "r3");
        assert!(matches!(c.lookup("keep me"), CacheOutcome::ExactHit(_)));
        assert_eq!(c.lookup("evict me"), CacheOutcome::Miss);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persist_to_adopts_an_unpersisted_cache() {
        let dir = tmp("adopt");
        let mut c = cache(8, 0.0);
        c.insert("alpha", "r-alpha");
        c.insert("beta", "r-beta");
        assert_eq!(c.store_dir(), None);
        c.persist_to(&dir).unwrap();
        assert_eq!(c.store_dir(), Some(dir.as_path()));
        // Post-adoption writes are logged too.
        c.insert("gamma", "r-gamma");
        drop(c);
        let mut c = SemanticCache::open_from(
            SemanticCacheConfig { capacity: 8, ..SemanticCacheConfig::default() },
            NgramEmbedder::default(),
            &dir,
            OpenMode::Warm,
        )
        .unwrap();
        assert_eq!(c.len(), 3);
        for (p, r) in [("alpha", "r-alpha"), ("beta", "r-beta"), ("gamma", "r-gamma")] {
            assert_eq!(c.lookup(p), CacheOutcome::ExactHit(r.into()), "{p}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_config_refuses_the_log() {
        let dir = tmp("fingerprint");
        let config =
            SemanticCacheConfig { capacity: 8, tau: 0.2, ..SemanticCacheConfig::default() };
        let mut c = SemanticCache::open_from(
            config.clone(),
            NgramEmbedder::default(),
            &dir,
            OpenMode::Replay,
        )
        .unwrap();
        c.insert("a prompt", "a response");
        drop(c);
        let other = SemanticCacheConfig {
            hnsw: HnswConfig { seed: 0xdead, ..config.hnsw.clone() },
            ..config
        };
        let err = SemanticCache::open_from(other, NgramEmbedder::default(), &dir, OpenMode::Replay)
            .err()
            .expect("mismatched config must refuse the log");
        assert!(err.to_string().contains("fingerprint"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_error_freezes_the_log_but_the_cache_keeps_serving() {
        let dir = tmp("freeze");
        let config = SemanticCacheConfig { capacity: 16, ..SemanticCacheConfig::default() };
        // Crash the 5th disk op; the short-write/flush-fail shape is seeded.
        let faults = pas_fault::DiskFaults::crash_at(0x5eed, 5);
        let mut c = SemanticCache::open_from_with(
            config.clone(),
            NgramEmbedder::default(),
            &dir,
            OpenMode::Replay,
            Some(faults),
        )
        .unwrap();
        for i in 0..12 {
            c.insert(&format!("prompt {i}"), &format!("resp {i}"));
        }
        assert!(c.store_error().is_some(), "the injected fault must freeze the store");
        // In-memory serving is unaffected…
        assert_eq!(c.len(), 12);
        assert_eq!(c.lookup("prompt 11"), CacheOutcome::ExactHit("resp 11".into()));
        // …and a checkpoint on a frozen store is refused.
        assert!(c.persist_to(&dir).is_err());
        drop(c);
        // Reopen (no faults): the recovered entries are a prefix of the
        // inserted sequence, each with its correct response.
        let mut c =
            SemanticCache::open_from(config, NgramEmbedder::default(), &dir, OpenMode::Replay)
                .unwrap();
        assert!(c.len() < 12, "the crash must have cut the durable prefix short");
        for i in 0..c.len() {
            assert_eq!(
                c.lookup(&format!("prompt {i}")),
                CacheOutcome::ExactHit(format!("resp {i}")),
                "entry {i} of the durable prefix"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_syncs_the_log() {
        let dir = tmp("compact-sync");
        let config =
            SemanticCacheConfig { capacity: 4, tau: 0.25, ..SemanticCacheConfig::default() };
        let mut c = SemanticCache::open_from(
            config.clone(),
            NgramEmbedder::default(),
            &dir,
            OpenMode::Replay,
        )
        .unwrap();
        // Cross the fallback-rebuild threshold (compaction_preserves_
        // behavior_under_churn shape) so the log compacts at least once.
        for i in 0..150 {
            let prompt = format!("distinct request number {i} about topic {}", i % 13);
            c.insert(&prompt, &format!("resp-{i}"));
        }
        assert!(c.store_error().is_none());
        let live: Vec<String> = (146..150)
            .map(|i| {
                format!(
                    "{:?}",
                    c.lookup(&format!("distinct request number {i} about topic {}", i % 13))
                )
            })
            .collect();
        drop(c);
        let mut c =
            SemanticCache::open_from(config, NgramEmbedder::default(), &dir, OpenMode::Replay)
                .unwrap();
        assert_eq!(c.len(), 4);
        let reopened: Vec<String> = (146..150)
            .map(|i| {
                format!(
                    "{:?}",
                    c.lookup(&format!("distinct request number {i} about topic {}", i % 13))
                )
            })
            .collect();
        assert_eq!(reopened, live, "replay of the compacted log must reproduce the live cache");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lookup_sequences_are_deterministic() {
        let run = || {
            let mut c = cache(8, 0.3);
            let mut log = Vec::new();
            for i in 0..40 {
                let p = format!("prompt {} about thing {}", i % 11, i % 5);
                let out = c.lookup(&p);
                if matches!(out, CacheOutcome::Miss) {
                    c.insert(&p, &format!("resp {}", i % 11));
                }
                log.push(format!("{out:?}"));
            }
            (log, c.hits(), c.near_hits(), c.misses(), c.evictions())
        };
        assert_eq!(run(), run());
    }
}

//! Mergeable accounting for a gateway run.
//!
//! Like `FaultReport` and `GenReport`, [`GatewayReport`] is built for
//! *ordered reduction*: every field is either a plain sum, a bucket-wise
//! histogram sum, or a max, so [`GatewayReport::merge`] is associative with
//! [`GatewayReport::default`] as the identity — shard-level soak reports
//! fold into a fleet report in any grouping.
//!
//! Latencies are simulated milliseconds recorded into a fixed
//! power-of-two-bucketed [`LatencyHistogram`]; percentiles are read off the
//! bucket upper edges, so p50/p99 are a pure function of the recorded
//! multiset (and therefore bit-reproducible).

use serde::{Deserialize, Serialize};

use pas_fault::FaultReport;

/// Number of latency buckets: bucket `i ≥ 1` holds latencies in
/// `[2^(i−1), 2^i)` ms, bucket 0 holds 0 ms, the last bucket everything
/// beyond. 40 buckets cover ~17 simulated years.
const BUCKETS: usize = 40;

/// A fixed-bucket (powers of two) latency histogram over simulated
/// milliseconds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ms: u64,
    max_ms: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: vec![0; BUCKETS], count: 0, sum_ms: 0, max_ms: 0 }
    }
}

impl LatencyHistogram {
    fn bucket_for(ms: u64) -> usize {
        if ms == 0 {
            0
        } else {
            ((64 - ms.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Upper edge (inclusive representative) of bucket `i`.
    fn bucket_edge(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, ms: u64) {
        self.buckets[Self::bucket_for(ms)] += 1;
        self.count += 1;
        self.sum_ms += ms;
        self.max_ms = self.max_ms.max(ms);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in ms (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms as f64 / self.count as f64
        }
    }

    /// Largest observation.
    pub fn max_ms(&self) -> u64 {
        self.max_ms
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the upper edge of the bucket
    /// containing it — an upper bound on the true quantile, never off by
    /// more than the bucket width. Returns 0 for an empty histogram.
    pub fn quantile_ms(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_edge(i).min(self.max_ms);
            }
        }
        self.max_ms
    }

    /// Folds `other` into `self` bucket-wise. Associative; `default` is the
    /// identity.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ms += other.sum_ms;
        self.max_ms = self.max_ms.max(other.max_ms);
    }
}

/// Per-replica serving counters plus the replica's fault-layer accounting.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReplicaReport {
    /// Prompts this replica answered successfully.
    pub served: u64,
    /// Prompts that failed over *to* this replica and succeeded here.
    pub failover_served: u64,
    /// Fault-stack accounting for this replica's boundary.
    pub faults: FaultReport,
}

impl ReplicaReport {
    /// Folds `other` into `self` (plain sums + [`FaultReport::merge`]).
    pub fn merge(&mut self, other: &ReplicaReport) {
        self.served += other.served;
        self.failover_served += other.failover_served;
        self.faults.merge(&other.faults);
    }
}

/// Everything one gateway run (or one shard of a fleet soak) did.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GatewayReport {
    /// Requests that arrived.
    pub requests: u64,
    /// Requests answered (the gateway never drops a request: always equals
    /// `requests` at the end of a run).
    pub completed: u64,
    /// Requests answered from the exact-match cache tier.
    pub exact_hits: u64,
    /// Requests answered from the ANN near-duplicate tier (a neighbour's
    /// complement within τ).
    pub near_hits: u64,
    /// Requests that missed the cache and went to the scheduler.
    pub misses: u64,
    /// Second-chance hits: requests that missed at arrival but found their
    /// prompt cached by dispatch time (an earlier batch completed and
    /// installed it while they sat in the queue), so they never reached the
    /// pool. Counted *in addition to* `misses` — the arrival-time miss
    /// accounting is not rewritten.
    pub batch_hits: u64,
    /// Complement-cache entries evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Requests shed (oldest-dropped) by admission control; served
    /// passthrough.
    pub shed: u64,
    /// Requests rejected at arrival by admission control; served
    /// passthrough.
    pub rejected: u64,
    /// Requests whose `M_p` call failed on every replica; served
    /// passthrough.
    pub degraded: u64,
    /// Micro-batches dispatched to the replica pool.
    pub batches: u64,
    /// Distinct prompts sent in those batches (in-batch duplicates are
    /// answered once).
    pub batched_prompts: u64,
    /// Prompts that had to fail over past at least one dead replica.
    pub failovers: u64,
    /// End-to-end simulated latency per request.
    pub latency: LatencyHistogram,
    /// Simulated duration of the run (max over merged shards).
    pub sim_duration_ms: u64,
    /// Per-replica serving and fault accounting, indexed by replica id.
    pub per_replica: Vec<ReplicaReport>,
}

impl GatewayReport {
    /// Cache hit rate over all arrived requests (exact + near hits).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.exact_hits + self.near_hits) as f64 / self.requests as f64
        }
    }

    /// Median simulated latency (bucket upper edge).
    pub fn p50_ms(&self) -> u64 {
        self.latency.quantile_ms(0.50)
    }

    /// 99th-percentile simulated latency (bucket upper edge).
    pub fn p99_ms(&self) -> u64 {
        self.latency.quantile_ms(0.99)
    }

    /// Completed requests per simulated second.
    pub fn throughput_rps(&self) -> f64 {
        if self.sim_duration_ms == 0 {
            0.0
        } else {
            self.completed as f64 * 1000.0 / self.sim_duration_ms as f64
        }
    }

    /// Requests answered with the bare prompt (admission sheds/rejects plus
    /// replica-pool degradations) — the plug-and-play fallback total.
    pub fn passthroughs(&self) -> u64 {
        self.shed + self.rejected + self.degraded
    }

    /// Folds `other` into `self`: counters and histograms sum, durations
    /// max, per-replica reports merge index-wise. Associative, with
    /// [`GatewayReport::default`] as the identity.
    pub fn merge(&mut self, other: &GatewayReport) {
        self.requests += other.requests;
        self.completed += other.completed;
        self.exact_hits += other.exact_hits;
        self.near_hits += other.near_hits;
        self.misses += other.misses;
        self.batch_hits += other.batch_hits;
        self.evictions += other.evictions;
        self.shed += other.shed;
        self.rejected += other.rejected;
        self.degraded += other.degraded;
        self.batches += other.batches;
        self.batched_prompts += other.batched_prompts;
        self.failovers += other.failovers;
        self.latency.merge(&other.latency);
        self.sim_duration_ms = self.sim_duration_ms.max(other.sim_duration_ms);
        if self.per_replica.len() < other.per_replica.len() {
            self.per_replica.resize(other.per_replica.len(), ReplicaReport::default());
        }
        for (mine, theirs) in self.per_replica.iter_mut().zip(&other.per_replica) {
            mine.merge(theirs);
        }
    }

    /// One-paragraph human summary for CLI/bin output.
    pub fn render_summary(&self) -> String {
        format!(
            concat!(
                "{} requests in {} simulated ms ({:.1} req/s): ",
                "{} exact hits, {} near hits, {} misses (hit rate {:.1}%); ",
                "{} batches ({} prompts), {} second-chance hits, {} evictions; ",
                "latency p50 {} ms, p99 {} ms, max {} ms; ",
                "passthroughs: {} shed, {} rejected, {} degraded"
            ),
            self.requests,
            self.sim_duration_ms,
            self.throughput_rps(),
            self.exact_hits,
            self.near_hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.batches,
            self.batched_prompts,
            self.batch_hits,
            self.evictions,
            self.p50_ms(),
            self.p99_ms(),
            self.latency.max_ms(),
            self.shed,
            self.rejected,
            self.degraded,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let mut h = LatencyHistogram::default();
        for ms in [0u64, 1, 2, 3, 5, 9, 17, 100, 1000] {
            h.record(ms);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max_ms(), 1000);
        assert!(h.quantile_ms(0.5) >= 3, "p50 {} below true median", h.quantile_ms(0.5));
        assert!(h.quantile_ms(0.5) <= 7, "p50 {} above bucket edge", h.quantile_ms(0.5));
        assert_eq!(h.quantile_ms(1.0), 1000);
        assert_eq!(LatencyHistogram::default().quantile_ms(0.99), 0);
    }

    #[test]
    fn histogram_merge_equals_joint_recording() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut joint = LatencyHistogram::default();
        for i in 0..200u64 {
            let ms = (i * 37) % 4096;
            if i % 2 == 0 {
                a.record(ms)
            } else {
                b.record(ms)
            }
            joint.record(ms);
        }
        a.merge(&b);
        assert_eq!(a, joint);
    }

    fn arb_report(seed: u64) -> GatewayReport {
        let f = |k: u64| (seed.rotate_left(k as u32).wrapping_mul(k + 5)) % 500;
        let mut latency = LatencyHistogram::default();
        for k in 0..f(1) % 40 {
            latency.record(seed.rotate_right(k as u32) % 9999);
        }
        GatewayReport {
            requests: f(2),
            completed: f(3),
            exact_hits: f(4),
            near_hits: f(5),
            misses: f(6),
            batch_hits: f(20),
            evictions: f(7),
            shed: f(8),
            rejected: f(9),
            degraded: f(10),
            batches: f(11),
            batched_prompts: f(12),
            failovers: f(13),
            latency,
            sim_duration_ms: f(14),
            per_replica: (0..(seed % 4))
                .map(|r| ReplicaReport { served: f(15 + r), ..ReplicaReport::default() })
                .collect(),
        }
    }

    #[test]
    fn merge_is_associative_with_identity() {
        for seed in [1u64, 99, 0xdead, 31337] {
            let (a, b, c) = (arb_report(seed), arb_report(seed ^ 7), arb_report(seed ^ 1234));
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right, "associativity at seed {seed}");

            let mut id = GatewayReport::default();
            id.merge(&a);
            assert_eq!(id, a, "left identity at seed {seed}");
            let mut back = a.clone();
            back.merge(&GatewayReport::default());
            assert_eq!(back, a, "right identity at seed {seed}");
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = arb_report(42);
        let json = serde_json::to_string(&r).unwrap();
        let back: GatewayReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn summary_mentions_the_headline_numbers() {
        let mut r = GatewayReport { requests: 10, completed: 10, ..GatewayReport::default() };
        r.exact_hits = 4;
        r.misses = 6;
        let s = r.render_summary();
        assert!(s.contains("10 requests"), "{s}");
        assert!(s.contains("hit rate 40.0%"), "{s}");
    }
}

//! The replica pool: N fault-isolated copies of the serve-time optimizer.
//!
//! Each replica is a [`DegradingServer`] with its *own* fault stack —
//! injector seed derived per replica via [`pas_par::derive_seed_path`], so
//! one replica's chaos schedule never lines up with another's, and its own
//! circuit breaker, so one replica's outage never poisons its peers'
//! health signal.
//!
//! Routing is deterministic least-loaded: the gateway picks the healthy
//! replica (breaker closed) with the fewest in-flight prompts, lowest id
//! winning ties. Serving a miss batch walks the pool starting at the
//! routed replica — if it errors out, the next replica is tried
//! (*failover*), and only when the whole pool is exhausted does the
//! request degrade to passthrough. That is the pool-level form of the
//! plug-and-play guarantee: a full-pool outage serves every prompt exactly
//! as [`pas_core::NoOptimizer`] would, never an error.

use pas_core::{DegradingServer, PromptOptimizer};
use pas_fault::{FaultConfig, FaultProfile, FaultReport};

/// Derivation lane for per-replica fault seeds (disjoint from the
/// pipeline's `pas_par` lanes, which start at 1).
pub const REPLICA_LANE: u64 = 0x5e77;

/// How a prompt left the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeOutcome {
    /// `replica` produced the augmented prompt after `failovers` dead
    /// replicas were skipped.
    Served { response: String, replica: usize, failovers: u64 },
    /// Every replica was exhausted; the caller must serve the bare prompt.
    Degraded,
}

impl ServeOutcome {
    /// The text to answer with, given the original prompt (passthrough on
    /// degradation — the plug-and-play guarantee).
    pub fn response_for(&self, prompt: &str) -> String {
        match self {
            ServeOutcome::Served { response, .. } => response.clone(),
            ServeOutcome::Degraded => prompt.to_string(),
        }
    }
}

/// A pool of [`DegradingServer`]-wrapped optimizer replicas with
/// deterministic least-loaded routing and failover.
pub struct ReplicaPool<O: PromptOptimizer> {
    replicas: Vec<DegradingServer<O>>,
    /// Prompts currently dispatched per replica (maintained by the serial
    /// event loop, hence no atomics).
    in_flight: Vec<u64>,
}

impl<O: PromptOptimizer> ReplicaPool<O> {
    /// Builds the pool. Replica `r` gets `profiles[r]` when provided (a
    /// shorter/empty slice falls back to `base.profile`), and a fault seed
    /// derived from `base.seed` along the replica lane, so schedules are
    /// decorrelated across replicas but pinned per replica.
    pub fn new(optimizers: Vec<O>, base: &FaultConfig, profiles: &[FaultProfile]) -> Self {
        let replicas: Vec<DegradingServer<O>> = optimizers
            .into_iter()
            .enumerate()
            .map(|(r, opt)| {
                let config = FaultConfig {
                    profile: profiles.get(r).cloned().unwrap_or_else(|| base.profile.clone()),
                    seed: pas_par::derive_seed_path(base.seed, &[REPLICA_LANE, r as u64]),
                    policy: base.policy.clone(),
                };
                DegradingServer::new(opt, &config)
            })
            .collect();
        let in_flight = vec![0; replicas.len()];
        ReplicaPool { replicas, in_flight }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True for an empty pool (never built by the gateway, but the type
    /// permits it).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Replicas whose breaker is currently closed.
    pub fn healthy(&self) -> usize {
        self.replicas.iter().filter(|r| !r.breaker_open()).count()
    }

    /// Deterministic least-loaded routing: the healthy replica with the
    /// fewest in-flight prompts, lowest id on ties; if every breaker is
    /// open, the least-loaded replica overall (its probe slots are the only
    /// path back to health).
    pub fn route(&self) -> usize {
        let pick =
            |ids: &mut dyn Iterator<Item = usize>| ids.min_by_key(|&r| (self.in_flight[r], r));
        let mut healthy = (0..self.replicas.len()).filter(|&r| !self.replicas[r].breaker_open());
        pick(&mut healthy).or_else(|| pick(&mut (0..self.replicas.len()))).expect("non-empty pool")
    }

    /// Marks `count` prompts dispatched to `replica`.
    pub fn begin(&mut self, replica: usize, count: u64) {
        self.in_flight[replica] += count;
    }

    /// Marks `count` prompts completed on `replica`.
    pub fn finish(&mut self, replica: usize, count: u64) {
        self.in_flight[replica] -= count;
    }

    /// Serves one prompt, starting at `start` and failing over through the
    /// pool in id order (wrapping) until a replica answers. Thread-safe:
    /// touches only the replicas' internally synchronized fault stacks, so
    /// batch dispatch may call it from `pas_par::par_map`.
    pub fn try_serve(&self, start: usize, prompt: &str) -> ServeOutcome {
        for hop in 0..self.replicas.len() {
            let replica = (start + hop) % self.replicas.len();
            if let Ok(response) = self.replicas[replica].try_optimize(prompt) {
                return ServeOutcome::Served { response, replica, failovers: hop as u64 };
            }
        }
        ServeOutcome::Degraded
    }

    /// Per-replica fault-layer accounting.
    pub fn fault_reports(&self) -> Vec<FaultReport> {
        self.replicas.iter().map(|r| r.fault_report()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_core::NoOptimizer;

    /// A toy optimizer with visible, prompt-derived output.
    struct Suffix;

    impl PromptOptimizer for Suffix {
        fn name(&self) -> &str {
            "suffix"
        }
        fn optimize(&self, prompt: &str) -> String {
            format!("{prompt} [augmented]")
        }
        fn requires_human_labels(&self) -> bool {
            false
        }
        fn llm_agnostic(&self) -> bool {
            true
        }
        fn task_agnostic(&self) -> bool {
            true
        }
        fn training_pairs(&self) -> Option<usize> {
            None
        }
    }

    fn pool_of(n: usize, profiles: &[FaultProfile]) -> ReplicaPool<Suffix> {
        let optimizers = (0..n).map(|_| Suffix).collect();
        ReplicaPool::new(optimizers, &FaultConfig::default(), profiles)
    }

    #[test]
    fn routes_least_loaded_with_lowest_id_ties() {
        let mut pool = pool_of(3, &[]);
        assert_eq!(pool.route(), 0);
        pool.begin(0, 2);
        pool.begin(1, 1);
        assert_eq!(pool.route(), 2);
        pool.begin(2, 1);
        assert_eq!(pool.route(), 1, "ties break toward the lowest id");
        pool.finish(0, 2);
        assert_eq!(pool.route(), 0);
    }

    #[test]
    fn healthy_pool_serves_without_failover() {
        let pool = pool_of(2, &[]);
        let out = pool.try_serve(1, "hello");
        assert_eq!(
            out,
            ServeOutcome::Served { response: "hello [augmented]".into(), replica: 1, failovers: 0 }
        );
        assert_eq!(out.response_for("hello"), "hello [augmented]");
    }

    #[test]
    fn failover_skips_a_dead_replica() {
        let pool = pool_of(3, &[FaultProfile::none(), FaultProfile::outage()]);
        // Start at the dead replica 1: failover must land on replica 2.
        match pool.try_serve(1, "q") {
            ServeOutcome::Served { replica, failovers, response } => {
                assert_eq!((replica, failovers), (2, 1));
                assert_eq!(response, "q [augmented]");
            }
            ServeOutcome::Degraded => panic!("live replicas remain"),
        }
        assert!(pool.fault_reports()[1].total_faults() > 0);
        assert_eq!(pool.fault_reports()[0].total_faults(), 0);
    }

    #[test]
    fn full_outage_degrades_and_routing_still_answers() {
        let pool = pool_of(2, &[FaultProfile::outage(), FaultProfile::outage()]);
        for prompt in ["a", "b", "longer prompt c"] {
            let out = pool.try_serve(pool.route(), prompt);
            assert_eq!(out, ServeOutcome::Degraded);
            assert_eq!(out.response_for(prompt), NoOptimizer.optimize(prompt));
        }
        // Once the breakers latch open, `healthy` reflects it but routing
        // still returns a replica (probe slots are the recovery path).
        while pool.healthy() > 0 {
            pool.try_serve(0, "drive the breakers open");
        }
        assert_eq!(pool.route(), 0);
    }

    #[test]
    fn replica_fault_seeds_are_decorrelated() {
        // Under the same bursty profile, two replicas must not fault on an
        // identical schedule: drive both with the same prompts and compare
        // injected-fault counts per replica.
        let pool = pool_of(2, &[FaultProfile::bursty(), FaultProfile::bursty()]);
        for i in 0..40 {
            let p = format!("probe {i}");
            pool.try_serve(0, &p);
            pool.try_serve(1, &p);
        }
        let reports = pool.fault_reports();
        let a: Vec<u64> = vec![reports[0].transient, reports[0].timeouts, reports[0].garbled];
        let b: Vec<u64> = vec![reports[1].transient, reports[1].timeouts, reports[1].garbled];
        assert_ne!(a, b, "per-replica seeds must decorrelate fault schedules: {a:?} vs {b:?}");
    }
}

//! Property tests for the `pas-obs` snapshot algebra: histogram merge
//! laws, counter saturation, and bucket-boundary invariants — the same
//! shape as the `GenReport`/`FaultReport`/`GatewayReport` merge proptests.

use proptest::prelude::*;

use pas_obs::{
    bucket_edge, bucket_for, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot, BUCKETS,
};

/// A deterministic pseudo-arbitrary snapshot; proptest drives `seed`.
fn arb_snapshot(seed: u64) -> MetricsSnapshot {
    let f = |k: u64| (seed.rotate_left(k as u32).wrapping_mul(k + 3)) % 1000;
    let mut snap = MetricsSnapshot::default();
    for k in 0..(seed % 5) {
        snap.counters.insert(format!("c{}", f(k) % 7), f(k + 10).max(1));
    }
    for k in 0..(seed % 3) {
        snap.gauges.insert(
            format!("g{}", f(k) % 3),
            GaugeSnapshot { last: f(k + 20), max: f(k + 21), updates: f(k + 22).max(1) },
        );
    }
    for k in 0..(seed % 4) {
        let mut h = HistogramSnapshot::default();
        for j in 0..(f(k + 30) % 50) {
            h.record(seed.rotate_right(j as u32) % 100_000);
        }
        snap.histograms.insert(format!("h{}", f(k) % 4), h);
    }
    snap
}

fn arb_histogram(seed: u64) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::default();
    for j in 0..(seed % 80) {
        h.record(seed.rotate_right(j as u32).wrapping_mul(j + 1) % 1_000_000);
    }
    h
}

proptest! {
    #[test]
    fn histogram_merge_is_commutative(a in 0u64..10_000, b in 0u64..10_000) {
        let (a, b) = (arb_histogram(a), arb_histogram(b));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_merge_is_associative_with_identity(
        a in 0u64..10_000, b in 0u64..10_000, c in 0u64..10_000
    ) {
        let (a, b, c) = (arb_histogram(a), arb_histogram(b), arb_histogram(c));
        let left = {
            let mut ab = a.clone();
            ab.merge(&b);
            ab.merge(&c);
            ab
        };
        let right = {
            let mut bc = b.clone();
            bc.merge(&c);
            let mut out = a.clone();
            out.merge(&bc);
            out
        };
        prop_assert_eq!(left, right);

        let mut id = HistogramSnapshot::default();
        id.merge(&a);
        prop_assert_eq!(&id, &a);
        let mut back = a.clone();
        back.merge(&HistogramSnapshot::default());
        prop_assert_eq!(&back, &a);
    }

    #[test]
    fn snapshot_merge_is_associative_with_identity(
        a in 0u64..10_000, b in 0u64..10_000, c in 0u64..10_000
    ) {
        let (a, b, c) = (arb_snapshot(a), arb_snapshot(b), arb_snapshot(c));
        let left = {
            let mut ab = a.clone();
            ab.merge(&b);
            ab.merge(&c);
            ab
        };
        let right = {
            let mut bc = b.clone();
            bc.merge(&c);
            let mut out = a.clone();
            out.merge(&bc);
            out
        };
        prop_assert_eq!(left, right);

        let mut id = MetricsSnapshot::default();
        id.merge(&a);
        prop_assert_eq!(&id, &a);
        let mut back = a.clone();
        back.merge(&MetricsSnapshot::default());
        prop_assert_eq!(&back, &a);
    }

    #[test]
    fn snapshot_counter_merge_saturates(a in 0u64..10_000) {
        let mut big = MetricsSnapshot::default();
        big.counters.insert("c".to_string(), u64::MAX - a);
        let mut add = MetricsSnapshot::default();
        add.counters.insert("c".to_string(), a.saturating_add(17));
        big.merge(&add);
        prop_assert_eq!(big.counter("c"), u64::MAX, "counter sums must saturate, not wrap");
    }

    #[test]
    fn bucket_boundaries_partition_the_domain(v in 0u64..u64::MAX) {
        let b = bucket_for(v);
        prop_assert!(b < BUCKETS);
        // The value must lie within its bucket's edges: above the previous
        // bucket's inclusive upper edge, at or below its own.
        if b > 0 {
            prop_assert!(v > bucket_edge(b - 1), "{v} vs lower edge of bucket {b}");
        }
        prop_assert!(v <= bucket_edge(b), "{v} vs upper edge of bucket {b}");
        // Buckets are monotone: larger values never land in smaller buckets.
        prop_assert!(bucket_for(v.saturating_add(1)) >= b);
    }

    #[test]
    fn histogram_record_preserves_count_and_bounds(seed in 0u64..10_000) {
        let h = arb_histogram(seed);
        let total: u64 = h.buckets.iter().sum();
        prop_assert_eq!(total, h.count, "bucket mass must equal the observation count");
        prop_assert!(h.quantile(0.0) <= h.quantile(0.5));
        prop_assert!(h.quantile(0.5) <= h.quantile(1.0));
        prop_assert!(h.quantile(1.0) <= h.max);
        prop_assert!(h.max <= h.sum, "the max is one of the summands");
    }

    #[test]
    fn snapshot_json_round_trips(seed in 0u64..10_000) {
        let snap = arb_snapshot(seed);
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).unwrap();
        prop_assert_eq!(&back, &snap);
        // Canonical: re-serializing the parse is byte-identical.
        prop_assert_eq!(back.to_json(), json);
    }
}

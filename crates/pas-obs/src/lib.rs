//! Deterministic observability for the PAS workspace.
//!
//! Wall-clock metrics would make every instrumented run unique; this crate
//! instead measures the quantities the workspace already keeps
//! deterministic — item counts, simulated milliseconds, cache tiers, queue
//! depths — through three primitives:
//!
//! - **Counters** — saturating atomic sums. Safe anywhere, including
//!   inside `pas_par::par_map` closures: addition commutes, so totals are
//!   thread-count invariant whenever the work set is.
//! - **Gauges** — last-writer values (queue depth, healthy replicas).
//!   Serial contexts only; the gateway's event loop is the canonical
//!   writer.
//! - **Histograms** — fixed power-of-two buckets (the same layout as
//!   `pas-gateway`'s latency histogram), recording simulated-time
//!   distributions bucket-exactly.
//!
//! [`snapshot()`] exports everything as a [`MetricsSnapshot`]:
//! canonically ordered, integer-only, with an associative
//! [`MetricsSnapshot::merge`] so sharded soak runs reduce like the
//! existing report types. A snapshot of a seeded run is **bit-identical
//! at any thread count**, which makes committed snapshots stable golden
//! test fixtures (`tests/snapshots/` at the workspace root).
//!
//! Collection is off by default (`set_enabled(true)` opts in; a disabled
//! call is one relaxed atomic load). Building with `--features noop`
//! compiles every recording call out entirely while keeping the snapshot
//! data model available.

pub mod snapshot;

#[cfg(not(feature = "noop"))]
mod registry;
#[cfg(not(feature = "noop"))]
use registry::trace_push;
#[cfg(not(feature = "noop"))]
pub use registry::{
    counter_add, enabled, gauge_set, observe, reset, set_enabled, snapshot, take_trace, Counter,
    Gauge, Histogram, SpanRecord,
};

#[cfg(feature = "noop")]
mod noop;
#[cfg(feature = "noop")]
use noop::trace_push;
#[cfg(feature = "noop")]
pub use noop::{
    counter_add, enabled, gauge_set, observe, reset, set_enabled, snapshot, take_trace, Counter,
    Gauge, Histogram, SpanRecord,
};

mod span;
pub use span::{span, Span};

pub use snapshot::{
    bucket_edge, bucket_for, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot, BUCKETS,
};

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    // The registry (and its enabled flag) is process-global and libtest
    // runs tests concurrently, so every test serializes on this lock and
    // uses its own metric names.
    static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    static T1_HITS: Counter = Counter::new("t1.hits");

    #[test]
    fn disabled_registry_collects_nothing() {
        let _guard = LOCK.lock();
        static OFF: Counter = Counter::new("t0.off");
        set_enabled(false);
        OFF.add(5);
        counter_add("t0.off_dyn", 2);
        gauge_set("t0.gauge", 1);
        observe("t0.hist", 1);
        let snap = snapshot();
        assert_eq!(snap.counter("t0.off"), 0);
        assert_eq!(snap.counter("t0.off_dyn"), 0);
        assert!(!snap.gauges.contains_key("t0.gauge"));
        assert!(!snap.histograms.contains_key("t0.hist"));
    }

    #[test]
    fn enabled_counters_accumulate_and_reset_in_place() {
        let _guard = LOCK.lock();
        set_enabled(true);
        T1_HITS.add(2);
        T1_HITS.incr();
        assert_eq!(snapshot().counter("t1.hits"), 3);
        reset();
        assert_eq!(snapshot().counter("t1.hits"), 0);
        // The static handle must survive a reset (zeroed, not detached).
        T1_HITS.incr();
        assert_eq!(snapshot().counter("t1.hits"), 1);
    }

    #[test]
    fn gauges_and_histograms_export() {
        let _guard = LOCK.lock();
        set_enabled(true);
        static DEPTH: Gauge = Gauge::new("t2.depth");
        static LAT: Histogram = Histogram::new("t2.lat");
        DEPTH.set(4);
        DEPTH.set(9);
        DEPTH.set(2);
        LAT.record(0);
        LAT.record(5);
        LAT.record(5000);
        let snap = snapshot();
        let g = &snap.gauges["t2.depth"];
        assert_eq!((g.last, g.max, g.updates), (2, 9, 3));
        let h = &snap.histograms["t2.lat"];
        assert_eq!((h.count, h.sum, h.max), (3, 5005, 5000));
        assert_eq!(h.buckets[bucket_for(0)], 1);
        assert_eq!(h.buckets[bucket_for(5)], 1);
        assert_eq!(h.buckets[bucket_for(5000)], 1);
    }

    #[test]
    fn spans_record_calls_items_and_trace() {
        let _guard = LOCK.lock();
        set_enabled(true);
        {
            let mut s = span("t3.stage");
            s.items(10);
            s.sim_ms(42);
        }
        let snap = snapshot();
        assert_eq!(snap.counter("t3.stage.calls"), 1);
        assert_eq!(snap.counter("t3.stage.items"), 10);
        assert_eq!(snap.histograms["t3.stage.sim_ms"].sum, 42);
        let trace = take_trace();
        assert!(trace.contains(&SpanRecord { name: "t3.stage", items: 10, sim_ms: Some(42) }));
    }

    #[test]
    fn counter_adds_saturate() {
        let _guard = LOCK.lock();
        set_enabled(true);
        static SAT: Counter = Counter::new("t4.sat");
        SAT.add(u64::MAX - 1);
        SAT.add(5);
        assert_eq!(snapshot().counter("t4.sat"), u64::MAX);
    }

    #[test]
    fn parallel_counter_totals_are_exact() {
        let _guard = LOCK.lock();
        set_enabled(true);
        static PAR: Counter = Counter::new("t5.par");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        PAR.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(snapshot().counter("t5.par"), 8000);
    }
}

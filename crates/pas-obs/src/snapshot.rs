//! The exported data model: a point-in-time, order-canonical view of every
//! metric, with an associative [`MetricsSnapshot::merge`] so sharded runs
//! reduce to one snapshot exactly like the existing report types
//! (`GenReport`, `FaultReport`, `GatewayReport`) do.
//!
//! Everything in a snapshot is an integer in simulated units (counts,
//! simulated milliseconds). No wall-clock readings, no floats — that is
//! what makes a committed snapshot a stable cross-machine test fixture.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Histogram bucket count, matching `pas-gateway`'s latency histogram: 40
/// power-of-two buckets cover `0 ms` (bucket 0) through `[2^38, ∞)`.
pub const BUCKETS: usize = 40;

/// The bucket a value lands in: bucket 0 holds exactly 0, bucket `i ≥ 1`
/// holds `[2^(i−1), 2^i)`, and the last bucket absorbs overflow.
pub fn bucket_for(value: u64) -> usize {
    if value == 0 {
        return 0;
    }
    (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
}

/// The inclusive upper edge of bucket `i` (`u64::MAX` for the overflow
/// bucket).
pub fn bucket_edge(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A gauge's exported state. Gauges are last-writer values (queue depth,
/// healthy-replica count) and are only ever written from serial event
/// loops, so `last` is well-defined.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Most recently set value.
    pub last: u64,
    /// Maximum value ever set.
    pub max: u64,
    /// Number of `set` calls folded in.
    pub updates: u64,
}

impl GaugeSnapshot {
    /// Folds `other` in as the *later* of the two windows: `last` follows
    /// the right operand whenever it saw any update. Associative with
    /// `Default` as identity (not commutative — gauges are ordered state).
    pub fn merge(&mut self, other: &GaugeSnapshot) {
        if other.updates > 0 {
            self.last = other.last;
        }
        self.max = self.max.max(other.max);
        self.updates = self.updates.saturating_add(other.updates);
    }
}

/// A histogram's exported state: fixed power-of-two buckets plus the exact
/// count/sum/max of the observations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_for`]); always
    /// [`BUCKETS`] long.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: vec![0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Records one observation (used by tests and the registry backend).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_for(value)] = self.buckets[bucket_for(value)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Bucket-wise sum with `other`. Commutative and associative, with
    /// `Default` as identity.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "histogram shapes must agree");
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Upper-edge estimate of quantile `q ∈ [0, 1]`, clamped to the true
    /// max; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_edge(i).min(self.max);
            }
        }
        self.max
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0 && self.buckets.iter().all(|&b| b == 0)
    }
}

/// A complete, canonically-ordered export of the registry. `BTreeMap`
/// keys make serialization order a pure function of the metric names, and
/// zero-valued entries are never emitted, so a fresh registry snapshots to
/// the merge identity.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone counters (saturating sums).
    pub counters: BTreeMap<String, u64>,
    /// Last-writer gauges.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters and histograms add, gauges
    /// follow the later window. Associative, with `Default` as identity —
    /// the ordered-reduction primitive for sharded soak runs.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, &value) in &other.counters {
            let mine = self.counters.entry(name.clone()).or_insert(0);
            *mine = mine.saturating_add(value);
        }
        for (name, gauge) in &other.gauges {
            self.gauges.entry(name.clone()).or_default().merge(gauge);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// True when nothing was recorded (the merge identity).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// One counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Canonical single-line JSON rendering (stable across machines and
    /// thread counts for deterministic workloads).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization is infallible")
    }

    /// Parses a snapshot back from [`MetricsSnapshot::to_json`] output.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Writes the snapshot as pretty-stable JSON (single line + trailing
    /// newline) to `path`, creating parent directories.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, format!("{}\n", self.to_json()))
    }

    /// Appends the snapshot as one JSONL record to `path`, creating parent
    /// directories (the per-shard export format of sharded soak runs).
    pub fn append_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write as _;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_matches_the_gateway_histogram() {
        assert_eq!(bucket_for(0), 0);
        assert_eq!(bucket_for(1), 1);
        assert_eq!(bucket_for(2), 2);
        assert_eq!(bucket_for(3), 2);
        assert_eq!(bucket_for(4), 3);
        assert_eq!(bucket_for(u64::MAX), BUCKETS - 1);
        for i in 1..BUCKETS - 1 {
            assert_eq!(bucket_for(bucket_edge(i)), i, "upper edge of bucket {i}");
            assert_eq!(bucket_for(bucket_edge(i) + 1), i + 1);
        }
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let mut h = HistogramSnapshot::default();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1106);
        assert_eq!(h.max, 1000);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 1000, "p100 clamps to the true max");
        assert!(h.quantile(0.5) <= h.quantile(0.99));
    }

    #[test]
    fn merge_identity_and_round_trip() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("x.calls".into(), 3);
        a.gauges.insert("q.depth".into(), GaugeSnapshot { last: 2, max: 9, updates: 4 });
        let mut h = HistogramSnapshot::default();
        h.record(7);
        a.histograms.insert("lat".into(), h);

        let mut merged = MetricsSnapshot::default();
        merged.merge(&a);
        assert_eq!(merged, a, "default is the left identity");
        let mut b = a.clone();
        b.merge(&MetricsSnapshot::default());
        assert_eq!(b, a, "default is the right identity");

        let parsed = MetricsSnapshot::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn gauge_merge_takes_the_later_window() {
        let mut g = GaugeSnapshot { last: 5, max: 5, updates: 1 };
        g.merge(&GaugeSnapshot { last: 2, max: 8, updates: 3 });
        assert_eq!(g, GaugeSnapshot { last: 2, max: 8, updates: 4 });
        g.merge(&GaugeSnapshot::default());
        assert_eq!(g.last, 2, "an empty window must not clobber `last`");
    }
}

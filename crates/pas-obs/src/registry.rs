//! The global metrics registry and the handle types instrumentation sites
//! hold.
//!
//! Determinism contract: every counter and histogram write is a
//! *commutative* saturating add, so totals are independent of thread
//! interleaving whenever the multiset of recorded values is (which the
//! workspace's `pas_par` discipline guarantees). Gauges are last-writer
//! state and therefore **must only be written from serial contexts** — in
//! this workspace that means the gateway's discrete-event loop and the
//! single-threaded pipeline driver, never inside a `par_map` closure.
//!
//! Collection is off by default: a disabled registry costs one relaxed
//! atomic load per call and registers nothing, so un-instrumented runs
//! snapshot to the empty (merge-identity) [`MetricsSnapshot`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::snapshot::{GaugeSnapshot, HistogramSnapshot, MetricsSnapshot, BUCKETS};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric collection on or off (default: off). Spans and handles
/// become no-ops while disabled; already-collected values are kept.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True while the registry is collecting.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Saturating atomic add — the counter write primitive. Saturation (rather
/// than wrap) keeps `merge` laws exact at the ceiling.
fn saturating_add(cell: &AtomicU64, n: u64) {
    if n == 0 {
        return;
    }
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_add(n);
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

#[derive(Default)]
struct GaugeState {
    last: u64,
    max: u64,
    updates: u64,
}

struct HistogramState {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramState {
    fn new() -> Self {
        HistogramState {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        saturating_add(&self.buckets[crate::snapshot::bucket_for(value)], 1);
        saturating_add(&self.count, 1);
        saturating_add(&self.sum, value);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    fn export(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A span record appended to the trace buffer when a [`crate::Span`]
/// completes. Spans close in program order on the driving thread, so the
/// trace is deterministic as long as spans wrap serial phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span (stage) name.
    pub name: &'static str,
    /// Items the span reported processing.
    pub items: u64,
    /// Simulated milliseconds, when the span's domain owns a clock.
    pub sim_ms: Option<u64>,
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<Mutex<GaugeState>>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramState>>>,
    trace: Mutex<Vec<SpanRecord>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn counter_cell(name: &str) -> Arc<AtomicU64> {
    let mut map = registry().counters.lock();
    match map.get(name) {
        Some(cell) => Arc::clone(cell),
        None => {
            let cell = Arc::new(AtomicU64::new(0));
            map.insert(name.to_string(), Arc::clone(&cell));
            cell
        }
    }
}

fn gauge_cell(name: &str) -> Arc<Mutex<GaugeState>> {
    let mut map = registry().gauges.lock();
    match map.get(name) {
        Some(cell) => Arc::clone(cell),
        None => {
            let cell = Arc::new(Mutex::new(GaugeState::default()));
            map.insert(name.to_string(), Arc::clone(&cell));
            cell
        }
    }
}

fn histogram_cell(name: &str) -> Arc<HistogramState> {
    let mut map = registry().histograms.lock();
    match map.get(name) {
        Some(cell) => Arc::clone(cell),
        None => {
            let cell = Arc::new(HistogramState::new());
            map.insert(name.to_string(), Arc::clone(&cell));
            cell
        }
    }
}

/// Adds `n` to the named counter (dynamic-name form; prefer a static
/// [`Counter`] on hot paths).
pub fn counter_add(name: &str, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    saturating_add(&counter_cell(name), n);
}

/// Sets the named gauge. Serial contexts only (module docs).
pub fn gauge_set(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let cell = gauge_cell(name);
    let mut g = cell.lock();
    g.last = value;
    g.max = g.max.max(value);
    g.updates = g.updates.saturating_add(1);
}

/// Records one observation into the named histogram.
pub fn observe(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    histogram_cell(name).record(value);
}

/// Appends a completed span to the trace buffer.
pub(crate) fn trace_push(record: SpanRecord) {
    registry().trace.lock().push(record);
}

/// Drains and returns the span trace collected so far.
pub fn take_trace() -> Vec<SpanRecord> {
    std::mem::take(&mut *registry().trace.lock())
}

/// Exports every non-zero metric as a canonically-ordered
/// [`MetricsSnapshot`]. Call from a quiesced point (no in-flight
/// `par_map`) for an exact cut.
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for (name, cell) in registry().counters.lock().iter() {
        let v = cell.load(Ordering::Relaxed);
        if v > 0 {
            snap.counters.insert(name.clone(), v);
        }
    }
    for (name, cell) in registry().gauges.lock().iter() {
        let g = cell.lock();
        if g.updates > 0 {
            snap.gauges.insert(
                name.clone(),
                GaugeSnapshot { last: g.last, max: g.max, updates: g.updates },
            );
        }
    }
    for (name, cell) in registry().histograms.lock().iter() {
        let h = cell.export();
        if !h.is_empty() {
            snap.histograms.insert(name.clone(), h);
        }
    }
    snap
}

/// Zeroes every metric **in place** and clears the trace. Entries are
/// never removed: static handles cache their cells, and dropping an entry
/// would silently detach them.
pub fn reset() {
    for cell in registry().counters.lock().values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in registry().gauges.lock().values() {
        *cell.lock() = GaugeState::default();
    }
    for cell in registry().histograms.lock().values() {
        cell.reset();
    }
    registry().trace.lock().clear();
}

/// A statically-named counter handle. `const`-constructible, so
/// instrumentation sites declare `static X: Counter = Counter::new("…")`
/// and pay one lazy registry lookup ever.
pub struct Counter {
    name: &'static str,
    cell: OnceLock<Arc<AtomicU64>>,
}

impl Counter {
    /// Declares a counter named `name` (registered on first use).
    pub const fn new(name: &'static str) -> Self {
        Counter { name, cell: OnceLock::new() }
    }

    /// Adds `n` (saturating); no-op while collection is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled() || n == 0 {
            return;
        }
        saturating_add(self.cell.get_or_init(|| counter_cell(self.name)), n);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A statically-named gauge handle. Serial contexts only (module docs).
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<Arc<Mutex<GaugeState>>>,
}

impl Gauge {
    /// Declares a gauge named `name` (registered on first use).
    pub const fn new(name: &'static str) -> Self {
        Gauge { name, cell: OnceLock::new() }
    }

    /// Sets the gauge; no-op while collection is disabled.
    #[inline]
    pub fn set(&self, value: u64) {
        if !enabled() {
            return;
        }
        let mut g = self.cell.get_or_init(|| gauge_cell(self.name)).lock();
        g.last = value;
        g.max = g.max.max(value);
        g.updates = g.updates.saturating_add(1);
    }
}

/// A statically-named histogram handle.
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<Arc<HistogramState>>,
}

impl Histogram {
    /// Declares a histogram named `name` (registered on first use).
    pub const fn new(name: &'static str) -> Self {
        Histogram { name, cell: OnceLock::new() }
    }

    /// Records one observation; no-op while collection is disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        self.cell.get_or_init(|| histogram_cell(self.name)).record(value);
    }
}

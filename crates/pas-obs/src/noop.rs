//! Compile-out backend (`--features noop`): the full recording API with
//! empty inline bodies, so instrumented crates build unchanged while every
//! collection call vanishes at compile time. [`snapshot`] always returns
//! the merge identity, proving byte-identical output against
//! un-instrumented builds.

use crate::snapshot::MetricsSnapshot;

/// No-op: collection cannot be enabled in a `noop` build.
#[inline(always)]
pub fn set_enabled(_on: bool) {}

/// Always false in a `noop` build.
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// See [`crate::registry`]; compiled out here.
#[inline(always)]
pub fn counter_add(_name: &str, _n: u64) {}

/// See [`crate::registry`]; compiled out here.
#[inline(always)]
pub fn gauge_set(_name: &str, _value: u64) {}

/// See [`crate::registry`]; compiled out here.
#[inline(always)]
pub fn observe(_name: &str, _value: u64) {}

/// A span record; never produced in a `noop` build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span (stage) name.
    pub name: &'static str,
    /// Items the span reported processing.
    pub items: u64,
    /// Simulated milliseconds, when the span's domain owns a clock.
    pub sim_ms: Option<u64>,
}

#[inline(always)]
pub(crate) fn trace_push(_record: SpanRecord) {}

/// Always empty in a `noop` build.
#[inline(always)]
pub fn take_trace() -> Vec<SpanRecord> {
    Vec::new()
}

/// Always the merge identity in a `noop` build.
#[inline(always)]
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot::default()
}

/// No-op: nothing is ever collected.
#[inline(always)]
pub fn reset() {}

/// Compiled-out counter handle (see [`crate::registry::Counter`]).
pub struct Counter {
    _name: &'static str,
}

impl Counter {
    /// Declares a counter; never registered.
    pub const fn new(name: &'static str) -> Self {
        Counter { _name: name }
    }

    /// No-op.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn incr(&self) {}
}

/// Compiled-out gauge handle (see [`crate::registry::Gauge`]).
pub struct Gauge {
    _name: &'static str,
}

impl Gauge {
    /// Declares a gauge; never registered.
    pub const fn new(name: &'static str) -> Self {
        Gauge { _name: name }
    }

    /// No-op.
    #[inline(always)]
    pub fn set(&self, _value: u64) {}
}

/// Compiled-out histogram handle (see [`crate::registry::Histogram`]).
pub struct Histogram {
    _name: &'static str,
}

impl Histogram {
    /// Declares a histogram; never registered.
    pub const fn new(name: &'static str) -> Self {
        Histogram { _name: name }
    }

    /// No-op.
    #[inline(always)]
    pub fn record(&self, _value: u64) {}
}

//! Span-based tracing over the recording API.
//!
//! A [`Span`] wraps one pipeline stage or simulated-time phase. On
//! completion it records three metrics under its name — `<name>.calls`
//! (counter), `<name>.items` (counter, when items were reported), and
//! `<name>.sim_ms` (histogram, when the span's domain owns a simulated
//! clock) — and appends a [`SpanRecord`] to the trace buffer.
//!
//! Spans carry **simulated** durations supplied by the caller, never
//! wall-clock readings: stages without a clock (the batch pipeline) simply
//! record call/item throughput, and stages with one (fault retries, the
//! gateway event loop) report their simulated elapsed milliseconds. That
//! is what keeps span output bit-identical across machines and thread
//! counts.
//!
//! Determinism contract: open and close spans on the driving thread (any
//! serial context), not inside `par_map` closures — the trace is an
//! ordered log.

use crate::{counter_add, enabled, observe, trace_push, SpanRecord};

/// An in-progress span; records its metrics when dropped (or explicitly
/// via [`Span::finish`]).
#[must_use = "a span records on drop; binding it to `_` closes it immediately"]
pub struct Span {
    name: &'static str,
    items: u64,
    sim_ms: Option<u64>,
    closed: bool,
}

/// Opens a span named `name`.
pub fn span(name: &'static str) -> Span {
    Span { name, items: 0, sim_ms: None, closed: false }
}

impl Span {
    /// Reports `n` items processed under this span (accumulates).
    pub fn items(&mut self, n: u64) {
        self.items = self.items.saturating_add(n);
    }

    /// Reports the span's simulated duration (last write wins).
    pub fn sim_ms(&mut self, ms: u64) {
        self.sim_ms = Some(ms);
    }

    /// Closes the span now instead of at scope end.
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        if !enabled() {
            return;
        }
        counter_add(&format!("{}.calls", self.name), 1);
        if self.items > 0 {
            counter_add(&format!("{}.items", self.name), self.items);
        }
        if let Some(ms) = self.sim_ms {
            observe(&format!("{}.sim_ms", self.name), ms);
        }
        trace_push(SpanRecord { name: self.name, items: self.items, sim_ms: self.sim_ms });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

//! Figure 6 (dataset distribution) and Figure 7 (data efficiency).

use pas_baselines::PreferenceKind;
use pas_core::{NoOptimizer, Pas, PasConfig};
use pas_data::{DatasetStats, PairDataset};
use pas_llm::ModelProfile;

use crate::harness::evaluate_suite;
use crate::report::Table;

use super::context::ExperimentContext;

/// Runs Figure 6: the category distribution of the generated dataset.
pub fn fig6(dataset: &PairDataset) -> DatasetStats {
    DatasetStats::compute(dataset)
}

/// One method's data consumption.
#[derive(Debug, Clone)]
pub struct Consumption {
    /// Method name.
    pub method: String,
    /// Training pairs consumed.
    pub pairs: usize,
    /// Whether the number is measured in this workspace or documented in
    /// the cited paper (PPO/DPO tune the model itself, which is out of
    /// scope here).
    pub measured: bool,
}

/// The complete Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Consumption per method, PAS first.
    pub consumption: Vec<Consumption>,
}

impl Fig7Result {
    /// `Consumption_method / Consumption_PAS` (the paper's efficiency
    /// formula) for each non-PAS method.
    pub fn efficiency_ratios(&self) -> Vec<(String, f64)> {
        let pas = self.consumption.first().map_or(1, |c| c.pairs).max(1) as f64;
        self.consumption.iter().skip(1).map(|c| (c.method.clone(), c.pairs as f64 / pas)).collect()
    }

    /// Renders the consumption bars and efficiency ratios.
    pub fn render(&self) -> String {
        let max = self.consumption.iter().map(|c| c.pairs).max().unwrap_or(1).max(1);
        let mut out = String::from("Figure 7: data consumption of PAS vs other methods\n");
        for c in &self.consumption {
            let bar = (c.pairs * 40) / max;
            out.push_str(&format!(
                "{:<6} {:>8} pairs {} {}\n",
                c.method,
                c.pairs,
                "█".repeat(bar.max(1)),
                if c.measured { "(measured)" } else { "(documented)" },
            ));
        }
        out.push_str("\nEfficiency = Consumption_method / Consumption_PAS\n");
        for (m, r) in self.efficiency_ratios() {
            out.push_str(&format!("  vs {m}: {r:.2}x\n"));
        }
        out
    }
}

/// Runs Figure 7 from the context's measured datasets plus the documented
/// PPO/DPO consumptions.
pub fn fig7(ctx: &ExperimentContext) -> Fig7Result {
    Fig7Result {
        consumption: vec![
            Consumption { method: "PAS".into(), pairs: ctx.dataset.len(), measured: true },
            Consumption { method: "BPO".into(), pairs: ctx.bpo_dataset.len(), measured: true },
            Consumption {
                method: "PPO".into(),
                pairs: PreferenceKind::Ppo.documented_pairs(),
                measured: false,
            },
            Consumption {
                method: "DPO".into(),
                pairs: PreferenceKind::Dpo.documented_pairs(),
                measured: false,
            },
        ],
    }
}

/// A measured learning curve: benchmark score as a function of training
/// pairs. Validates that PAS saturates near its full-dataset score with few
/// pairs (the "only 9000 data points" claim).
#[derive(Debug, Clone)]
pub struct LearningCurve {
    /// `(pairs, average win rate across the probe models)` points.
    pub points: Vec<(usize, f64)>,
}

impl LearningCurve {
    /// Smallest size reaching `frac` of the final score.
    pub fn pairs_to_reach(&self, frac: f64) -> Option<usize> {
        let last = self.points.last()?.1;
        self.points.iter().find(|&&(_, score)| score >= frac * last).map(|&(n, _)| n)
    }

    /// Renders the curve as a table.
    pub fn render(&self) -> String {
        let mut t =
            Table::new("PAS learning curve (pairs → avg win rate)", &["Pairs", "Avg score"]);
        for &(n, s) in &self.points {
            t.row(&[n.to_string(), format!("{s:.2}")]);
        }
        t.render()
    }
}

/// Measures the PAS learning curve over dataset prefixes, probing one
/// mid-tier main model on the Arena suite (cheap but representative).
pub fn learning_curve(ctx: &ExperimentContext, sizes: &[usize]) -> LearningCurve {
    let probe = ctx.model(ModelProfile::main_model_names()[2]); // gpt-4-0613
    let reference = ctx.reference(&ctx.env.arena);
    let points = sizes
        .iter()
        .map(|&n| {
            let subset = ctx.dataset.take(n);
            let (pas, _) = Pas::sft(&PasConfig::default(), &subset);
            let score = if n == 0 {
                evaluate_suite(&probe, &NoOptimizer, &ctx.env.arena, &reference, &ctx.judge)
                    .win_rate
            } else {
                evaluate_suite(&probe, &pas, &ctx.env.arena, &reference, &ctx.judge).win_rate
            };
            (n, score)
        })
        .collect();
    LearningCurve { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_llm::Category;

    #[test]
    fn fig7_ordering_matches_the_paper() {
        let ctx = super::super::context::shared_quick();
        let f7 = fig7(ctx);
        let pairs: Vec<usize> = f7.consumption.iter().map(|c| c.pairs).collect();
        // PAS < BPO < PPO < DPO.
        assert!(pairs.windows(2).all(|w| w[0] < w[1]), "{pairs:?}");
        let ratios = f7.efficiency_ratios();
        assert!(ratios.iter().all(|&(_, r)| r > 1.0));
        assert!(f7.render().contains("Efficiency"));
    }

    #[test]
    fn fig6_distribution_covers_many_categories() {
        let ctx = super::super::context::shared_quick();
        let stats = fig6(&ctx.dataset);
        let populated = stats.per_category.iter().filter(|&&n| n > 0).count();
        assert!(populated >= 10, "only {populated} categories populated");
        assert!(stats.share(Category::QuestionAnswering) > stats.share(Category::Chitchat));
    }

    #[test]
    fn learning_curve_rises_then_saturates() {
        let ctx = super::super::context::shared_quick();
        let full = ctx.dataset.len();
        let curve = learning_curve(ctx, &[0, full / 8, full / 2, full]);
        assert_eq!(curve.points.len(), 4);
        let first = curve.points.first().unwrap().1;
        let last = curve.points.last().unwrap().1;
        assert!(last > first, "curve must rise: {first} → {last}");
        // Half the data should already recover a solid share of the
        // benefit (the data-efficiency claim). The Quick-scale classifier
        // is noisy, so only require a third of the final gain.
        let half = curve.points[2].1;
        assert!(
            half >= first + 0.33 * (last - first),
            "half-data score {half} (first {first}, last {last})"
        );
    }
}

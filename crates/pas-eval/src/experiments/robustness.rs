//! Seed-sweep robustness: are the headline deltas stable across seeds?
//!
//! The paper reports single numbers; a reproduction should show that its
//! shapes are not one lucky seed. This experiment rebuilds the whole world
//! (corpus, training, suites) under several seeds and reports the mean and
//! spread of the two headline deltas (PAS−baseline and PAS−BPO) plus the
//! ablation drop.

use crate::report::Table;

use super::context::{ExperimentContext, Scale};
use super::table1::table1;
use super::table45::table5;

/// Summary statistics over a sweep.
#[derive(Debug, Clone, Copy)]
pub struct Spread {
    /// Mean of the samples.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Spread {
    /// Computes statistics; panics on an empty slice.
    pub fn of(samples: &[f64]) -> Spread {
        assert!(!samples.is_empty(), "spread of empty sample set");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        Spread {
            mean,
            std: var.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Result of the robustness sweep.
#[derive(Debug, Clone)]
pub struct RobustnessResult {
    /// Seeds exercised.
    pub seeds: Vec<u64>,
    /// PAS − baseline per seed.
    pub pas_vs_baseline: Vec<f64>,
    /// PAS − BPO per seed.
    pub pas_vs_bpo: Vec<f64>,
    /// Ablation drop per seed (positive = selection helps).
    pub ablation_drop: Vec<f64>,
}

impl RobustnessResult {
    /// Renders the mean ± std table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            &format!("Robustness over {} seeds {:?}", self.seeds.len(), self.seeds),
            &["Quantity", "Paper", "Mean", "Std", "Min", "Max"],
        );
        let mut row = |label: &str, paper: &str, xs: &[f64]| {
            let s = Spread::of(xs);
            t.row(&[
                label.to_string(),
                paper.to_string(),
                format!("{:+.2}", s.mean),
                format!("{:.2}", s.std),
                format!("{:+.2}", s.min),
                format!("{:+.2}", s.max),
            ]);
        };
        row("PAS vs baseline", "+8.00", &self.pas_vs_baseline);
        row("PAS vs BPO", "+6.09", &self.pas_vs_bpo);
        row("Ablation drop", "+3.80", &self.ablation_drop);
        t.render()
    }

    /// True when every seed preserved the headline orderings.
    pub fn all_seeds_preserve_orderings(&self) -> bool {
        self.pas_vs_baseline.iter().all(|&x| x > 0.0) && self.pas_vs_bpo.iter().all(|&x| x > 0.0)
    }
}

/// Runs the sweep. Each seed rebuilds the full context, so cost scales
/// linearly with `seeds.len()`.
pub fn robustness(scale: Scale, seeds: &[u64]) -> RobustnessResult {
    let mut result = RobustnessResult {
        seeds: seeds.to_vec(),
        pas_vs_baseline: Vec::new(),
        pas_vs_bpo: Vec::new(),
        ablation_drop: Vec::new(),
    };
    for &seed in seeds {
        let ctx = ExperimentContext::build(scale, seed);
        let t1 = table1(&ctx);
        let t5 = table5(&ctx);
        result.pas_vs_baseline.push(t1.pas_vs_baseline());
        result.pas_vs_bpo.push(t1.pas_vs_bpo());
        result.ablation_drop.push(t5.ablation_drop());
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_statistics_are_correct() {
        let s = Spread::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn spread_rejects_empty() {
        let _ = Spread::of(&[]);
    }

    #[test]
    fn render_contains_all_quantities() {
        let r = RobustnessResult {
            seeds: vec![1, 2],
            pas_vs_baseline: vec![8.0, 9.0],
            pas_vs_bpo: vec![6.0, 7.0],
            ablation_drop: vec![2.0, 3.0],
        };
        let out = r.render();
        assert!(out.contains("PAS vs baseline"));
        assert!(out.contains("Ablation drop"));
        assert!(r.all_seeds_preserve_orderings());
    }

    #[test]
    fn negative_delta_breaks_ordering_flag() {
        let r = RobustnessResult {
            seeds: vec![1],
            pas_vs_baseline: vec![8.0],
            pas_vs_bpo: vec![-0.5],
            ablation_drop: vec![2.0],
        };
        assert!(!r.all_seeds_preserve_orderings());
    }
}

//! Table 1: PAS vs BPO vs no APE across the six main models and the three
//! benchmarks.

use pas_core::{NoOptimizer, PromptOptimizer};
use pas_llm::ModelProfile;

use crate::harness::evaluate_suite;
use crate::report::{delta, pct, Table};

use super::context::ExperimentContext;

/// One Table 1 row: a (main model, APE) combination's three scores.
#[derive(Debug, Clone)]
pub struct Row {
    /// Main model name.
    pub model: String,
    /// Arena-Hard win rate.
    pub arena: f64,
    /// AlpacaEval 2.0 win rate.
    pub alpaca: f64,
    /// AlpacaEval 2.0 (LC) win rate.
    pub alpaca_lc: f64,
}

impl Row {
    /// Row average, as in the paper's last column.
    pub fn average(&self) -> f64 {
        (self.arena + self.alpaca + self.alpaca_lc) / 3.0
    }
}

/// The complete Table 1.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// No-APE baseline block.
    pub baseline: Vec<Row>,
    /// BPO block.
    pub bpo: Vec<Row>,
    /// PAS block.
    pub pas: Vec<Row>,
}

fn block_average(rows: &[Row]) -> Row {
    let n = rows.len().max(1) as f64;
    Row {
        model: "Average".into(),
        arena: rows.iter().map(|r| r.arena).sum::<f64>() / n,
        alpaca: rows.iter().map(|r| r.alpaca).sum::<f64>() / n,
        alpaca_lc: rows.iter().map(|r| r.alpaca_lc).sum::<f64>() / n,
    }
}

impl Table1Result {
    /// Mean improvement of PAS over the baseline (paper: ≈ +8).
    pub fn pas_vs_baseline(&self) -> f64 {
        mean_avg(&self.pas) - mean_avg(&self.baseline)
    }

    /// Mean improvement of PAS over BPO (paper: ≈ +6).
    pub fn pas_vs_bpo(&self) -> f64 {
        mean_avg(&self.pas) - mean_avg(&self.bpo)
    }

    /// Renders the three blocks in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 1: Comparison of PAS, BPO and not using APE (baseline)",
            &[
                "Main Model",
                "APE-model",
                "Arena-hard",
                "Alpaca-Eval 2.0",
                "Alpaca-Eval 2.0 (LC)",
                "Average",
            ],
        );
        let mut block = |rows: &[Row], label: &str, against: Option<&[Row]>| {
            for (i, r) in rows.iter().enumerate() {
                let avg = match against {
                    Some(other) => format!(
                        "{} ({})",
                        pct(r.average()),
                        delta(r.average() - other[i].average())
                    ),
                    None => pct(r.average()),
                };
                t.row(&[
                    r.model.clone(),
                    label.to_string(),
                    pct(r.arena),
                    pct(r.alpaca),
                    pct(r.alpaca_lc),
                    avg,
                ]);
            }
            let a = block_average(rows);
            let avg = match against {
                Some(other) => {
                    let oa = block_average(other);
                    format!("{} ({})", pct(a.average()), delta(a.average() - oa.average()))
                }
                None => pct(a.average()),
            };
            t.row(&[
                "Average".to_string(),
                label.to_string(),
                pct(a.arena),
                pct(a.alpaca),
                pct(a.alpaca_lc),
                avg,
            ]);
        };
        block(&self.baseline, "None", None);
        block(&self.bpo, "BPO", None);
        block(&self.pas, "PAS (PAS-None)", Some(&self.baseline));
        block(&self.pas, "PAS (PAS-BPO)", Some(&self.bpo));
        t.render()
    }
}

fn mean_avg(rows: &[Row]) -> f64 {
    rows.iter().map(Row::average).sum::<f64>() / rows.len().max(1) as f64
}

/// Evaluates one optimizer across the six main models and three suites.
///
/// Every (model, benchmark) cell is an independent evaluation, so the full
/// grid fans out through `pas_par::par_map` — the per-item judging inside
/// each cell detects the nesting and runs serially. Scores land in a fixed
/// (model-major) order, identical at any `--threads` setting.
pub fn evaluate_block<O: PromptOptimizer + Sync>(
    ctx: &ExperimentContext,
    optimizer: &O,
) -> Vec<Row> {
    let names = ModelProfile::main_model_names();
    let suites = [&ctx.env.arena, &ctx.env.alpaca, &ctx.env.alpaca_lc];
    let cells: Vec<(usize, usize)> =
        (0..names.len()).flat_map(|m| (0..suites.len()).map(move |s| (m, s))).collect();
    let scores = pas_par::par_map(&cells, |_, &(m, s)| {
        let model = ctx.model(names[m]);
        let suite = suites[s];
        let reference = ctx.reference(suite);
        evaluate_suite(&model, optimizer, suite, &reference, &ctx.judge).win_rate
    });
    names
        .into_iter()
        .enumerate()
        .map(|(m, name)| Row {
            model: name.to_string(),
            arena: scores[m * suites.len()],
            alpaca: scores[m * suites.len() + 1],
            alpaca_lc: scores[m * suites.len() + 2],
        })
        .collect()
}

/// Runs the full Table 1 experiment.
pub fn table1(ctx: &ExperimentContext) -> Table1Result {
    Table1Result {
        baseline: evaluate_block(ctx, &NoOptimizer),
        bpo: evaluate_block(ctx, &ctx.bpo),
        pas: evaluate_block(ctx, &ctx.pas_qwen),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes_match_the_paper() {
        let ctx = super::super::context::shared_quick();
        let t1 = table1(ctx);
        assert_eq!(t1.baseline.len(), 6);
        // Headline shape: PAS beats the baseline and BPO on average.
        assert!(t1.pas_vs_baseline() > 2.0, "PAS-None {}", t1.pas_vs_baseline());
        assert!(t1.pas_vs_bpo() > 0.0, "PAS-BPO {}", t1.pas_vs_bpo());
        // PAS improves every main model on average.
        for (p, b) in t1.pas.iter().zip(&t1.baseline) {
            assert!(
                p.average() > b.average() - 1.0,
                "{}: PAS {} vs baseline {}",
                p.model,
                p.average(),
                b.average()
            );
        }
        let rendered = t1.render();
        assert!(rendered.contains("gpt-4-turbo-2024-04-09"));
        assert!(rendered.contains("PAS (PAS-BPO)"));
    }
}

//! Table 4 (human evaluation), Figure 1b (GSB bars) and Table 5 (ablation).

use crate::human::{run_human_eval, GsbResult, HumanEvalConfig, HumanEvalOutcome};
use crate::report::{delta, pct, Table};

use super::context::ExperimentContext;
use super::table1::{evaluate_block, Row};

/// Table 4: human-evaluation metrics with and without PAS.
#[derive(Debug, Clone)]
pub struct Table4Result {
    /// The full outcome (baseline, with-PAS, GSB).
    pub outcome: HumanEvalOutcome,
}

impl Table4Result {
    /// Mean grade improvement across scenarios.
    pub fn average_gain(&self) -> f64 {
        let base: f64 = self.outcome.baseline.iter().map(|m| m.average).sum();
        let pas: f64 = self.outcome.with_pas.iter().map(|m| m.average).sum();
        (pas - base) / self.outcome.baseline.len().max(1) as f64
    }

    /// Renders the paper's Table 4 layout.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 4: PAS vs non-PAS on human evaluation benchmarks",
            &[
                "Benchmark",
                "Full Mark",
                "Avg Score",
                "Availability",
                "Full Mark (PAS)",
                "Avg Score (PAS)",
                "Availability (PAS)",
            ],
        );
        for (b, p) in self.outcome.baseline.iter().zip(&self.outcome.with_pas) {
            t.row(&[
                b.scenario.name().to_string(),
                format!("{}%", pct(100.0 * b.full_mark)),
                format!("{:.2}", b.average),
                format!("{}%", pct(100.0 * b.availability)),
                format!(
                    "{}% ({})",
                    pct(100.0 * p.full_mark),
                    delta(100.0 * (p.full_mark - b.full_mark))
                ),
                format!("{:.2} ({})", p.average, delta(p.average - b.average)),
                format!(
                    "{}% ({})",
                    pct(100.0 * p.availability),
                    delta(100.0 * (p.availability - b.availability))
                ),
            ]);
        }
        t.render()
    }
}

/// Runs Table 4: human evaluation of PAS plugged into Qwen2-72B.
pub fn table4(ctx: &ExperimentContext, config: &HumanEvalConfig) -> Table4Result {
    Table4Result { outcome: run_human_eval(config, &ctx.pas_qwen, "qwen2-72b-chat") }
}

/// Figure 1b: per-category GSB win bars.
#[derive(Debug, Clone)]
pub struct Fig1bResult {
    /// Per-scenario good/same/bad fractions.
    pub gsb: Vec<GsbResult>,
}

impl Fig1bResult {
    /// Renders ASCII GSB bars.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 1b: human-evaluation GSB (PAS vs baseline)\n");
        for g in &self.gsb {
            let win = (g.good * 30.0).round() as usize;
            let same = (g.same * 30.0).round() as usize;
            let loss = (g.bad * 30.0).round() as usize;
            out.push_str(&format!(
                "{:<26} {:>5.1}% win  [{}{}{}]\n",
                g.scenario.name(),
                100.0 * g.good,
                "█".repeat(win),
                "▒".repeat(same),
                "░".repeat(loss),
            ));
        }
        out
    }

    /// Scenarios where PAS wins more than it loses.
    pub fn net_positive(&self) -> usize {
        self.gsb.iter().filter(|g| g.good > g.bad).count()
    }
}

/// Runs Figure 1b from the same human-evaluation pass as Table 4.
pub fn fig1b(t4: &Table4Result) -> Fig1bResult {
    Fig1bResult { gsb: t4.outcome.gsb.clone() }
}

/// Table 5: ablation of the data-selection/regeneration module.
#[derive(Debug, Clone)]
pub struct Table5Result {
    /// PAS trained on the curated dataset.
    pub pas: Vec<Row>,
    /// PAS trained without selection/regeneration.
    pub wo_selection: Vec<Row>,
    /// Residual flaw rates of the two training datasets.
    pub curated_flaw_rate: f64,
    /// Residual flaw rate without selection.
    pub ablated_flaw_rate: f64,
}

impl Table5Result {
    /// Mean drop from removing selection (paper: ≈ −3.8).
    pub fn ablation_drop(&self) -> f64 {
        let pas: f64 =
            self.pas.iter().map(Row::average).sum::<f64>() / self.pas.len().max(1) as f64;
        let wo: f64 = self.wo_selection.iter().map(Row::average).sum::<f64>()
            / self.wo_selection.len().max(1) as f64;
        pas - wo
    }

    /// Renders the paper's Table 5 layout.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 5: PAS trained on curated data vs without data selection",
            &[
                "Main Model",
                "PAS-model",
                "Arena-hard",
                "Alpaca-Eval 2.0",
                "Alpaca-Eval 2.0 (LC)",
                "Average",
            ],
        );
        for r in &self.pas {
            t.row(&[
                r.model.clone(),
                "PAS".into(),
                pct(r.arena),
                pct(r.alpaca),
                pct(r.alpaca_lc),
                pct(r.average()),
            ]);
        }
        for (r, p) in self.wo_selection.iter().zip(&self.pas) {
            t.row(&[
                r.model.clone(),
                "wo selection".into(),
                pct(r.arena),
                pct(r.alpaca),
                pct(r.alpaca_lc),
                format!("{} ({})", pct(r.average()), delta(r.average() - p.average())),
            ]);
        }
        t.row(&[
            "Residual flaw rate".into(),
            String::new(),
            String::new(),
            String::new(),
            format!("curated {:.1}%", 100.0 * self.curated_flaw_rate),
            format!("wo selection {:.1}%", 100.0 * self.ablated_flaw_rate),
        ]);
        t.render()
    }
}

/// Runs the Table 5 ablation.
pub fn table5(ctx: &ExperimentContext) -> Table5Result {
    Table5Result {
        pas: evaluate_block(ctx, &ctx.pas_qwen),
        wo_selection: evaluate_block(ctx, &ctx.pas_wo_selection),
        curated_flaw_rate: ctx.curated_flaw_rate,
        ablated_flaw_rate: ctx.ablated_flaw_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::human::Scenario;

    #[test]
    fn human_eval_shows_pas_gains() {
        let ctx = super::super::context::shared_quick();
        let t4 =
            table4(ctx, &HumanEvalConfig { items_per_scenario: 25, ..HumanEvalConfig::default() });
        assert_eq!(t4.outcome.baseline.len(), Scenario::ALL.len());
        assert!(t4.average_gain() > 0.0, "gain {}", t4.average_gain());
        let f1b = fig1b(&t4);
        assert!(
            f1b.net_positive() >= 5,
            "PAS should net-win most scenarios, got {}",
            f1b.net_positive()
        );
        assert!(t4.render().contains("Common Sense"));
        assert!(f1b.render().contains("win"));
    }

    #[test]
    fn ablation_drop_is_negative_for_wo_selection() {
        let ctx = super::super::context::shared_quick();
        let t5 = table5(ctx);
        assert!(t5.ablation_drop() > 0.0, "drop {}", t5.ablation_drop());
        assert!(t5.ablated_flaw_rate > t5.curated_flaw_rate);
        assert!(t5.render().contains("wo selection"));
    }
}

//! Extension experiments beyond the paper's tables.
//!
//! 1. **Per-task optimizers vs PAS** — OPRO and ProTeGi optimize one
//!    instruction per (category, model) on a labeled train split; this
//!    experiment measures what that buys on the task they trained for and
//!    what it costs everywhere else, quantifying the task-agnosticity gap
//!    Table 3 only marks with ✗.
//! 2. **Factored vs neural PAS** — the default PAS factors into a trained
//!    aspect model plus a template realizer; [`pas_core::NeuralPas`] is the
//!    end-to-end tokenizer+LM fine-tune. The comparison quantifies the
//!    trade-off: the factored model is far more data-efficient (it wins in
//!    the low-pair regime), while the neural model catches up once it has
//!    enough pairs to imitate the complement distribution.

use pas_baselines::{Opro, OproConfig, ProTeGi, ProTeGiConfig, ZeroShotCot};
use pas_core::{NeuralPas, NeuralPasConfig, NoOptimizer, PromptOptimizer};
use pas_llm::{Category, PromptMeta};

use crate::harness::evaluate_suite;
use crate::report::{pct, Table};
use crate::suite::BenchSuite;

use super::context::ExperimentContext;

/// One method's in-task vs out-of-task scores.
#[derive(Debug, Clone)]
pub struct PerTaskRow {
    /// Method name.
    pub method: String,
    /// Win rate on items of the category it optimized for.
    pub in_task: f64,
    /// Win rate on all other categories.
    pub out_of_task: f64,
}

/// Result of the per-task comparison.
#[derive(Debug, Clone)]
pub struct PerTaskResult {
    /// The category the per-task optimizers trained on.
    pub category: Category,
    /// Rows: None, CoT, OPRO, ProTeGi, PAS.
    pub rows: Vec<PerTaskRow>,
}

impl PerTaskResult {
    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            &format!(
                "Extension: per-task optimizers vs PAS (optimized for {})",
                self.category.name()
            ),
            &["Method", "In-task win rate", "Out-of-task win rate"],
        );
        for r in &self.rows {
            t.row(&[r.method.clone(), pct(r.in_task), pct(r.out_of_task)]);
        }
        t.render()
    }
}

fn split_suite(suite: &BenchSuite, category: Category) -> (BenchSuite, BenchSuite) {
    let (in_items, out_items): (Vec<_>, Vec<_>) =
        suite.items.iter().cloned().partition(|i| i.meta.category == category);
    (
        BenchSuite { items: in_items, ..suite.clone() },
        BenchSuite { items: out_items, ..suite.clone() },
    )
}

/// Runs the per-task comparison on the Alpaca suite against one mid-tier
/// model.
pub fn per_task(ctx: &ExperimentContext, category: Category) -> PerTaskResult {
    per_task_in_env(ctx, category, &ctx.env)
}

/// [`per_task`] over an explicit evaluation environment — the same trained
/// optimizers scored against a different seeded suite draw. This is what
/// lets a seed-sweep test re-run the comparison across environment seeds
/// without rebuilding the (expensive) context.
pub fn per_task_in_env(
    ctx: &ExperimentContext,
    category: Category,
    env: &crate::suite::EvalEnv,
) -> PerTaskResult {
    let model = pas_llm::SimLlm::named("gpt-4-0613", env.world.clone());
    let reference = pas_llm::SimLlm::named(&env.alpaca.reference_model, env.world.clone());
    let (in_suite, out_suite) = split_suite(&env.alpaca, category);

    // Train split for the iterative optimizers: arena items of the target
    // category (disjoint from the alpaca eval items).
    let train: Vec<(String, PromptMeta)> = env
        .arena
        .items
        .iter()
        .filter(|i| i.meta.category == category)
        .take(20)
        .map(|i| (i.prompt.clone(), i.meta.clone()))
        .collect();

    let opro = Opro::optimize_for_task(&OproConfig::default(), category, &model, &train);
    let protegi = ProTeGi::optimize_for_task(&ProTeGiConfig::default(), category, &model, &train);

    let mut rows = Vec::new();
    let mut eval = |label: &str, opt: &dyn PromptOptimizer| {
        let in_task = evaluate_suite(&model, &opt, &in_suite, &reference, &ctx.judge).win_rate;
        let out_of_task = evaluate_suite(&model, &opt, &out_suite, &reference, &ctx.judge).win_rate;
        rows.push(PerTaskRow { method: label.to_string(), in_task, out_of_task });
    };
    eval("None", &NoOptimizer);
    eval("Zero-shot CoT", &ZeroShotCot);
    eval("OPRO", &opro);
    eval("ProTeGi", &protegi);
    eval("PAS", &ctx.pas_qwen);

    PerTaskResult { category, rows }
}

/// Result of the factored-vs-neural PAS comparison.
#[derive(Debug, Clone)]
pub struct NeuralVsFactored {
    /// Factored PAS Arena win rate.
    pub factored: f64,
    /// Neural PAS Arena win rate.
    pub neural: f64,
    /// Baseline Arena win rate.
    pub baseline: f64,
    /// Held-in token NLL of the neural model.
    pub neural_nll: f32,
}

impl NeuralVsFactored {
    /// Renders the ablation table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Extension: factored PAS vs end-to-end neural PAS (Arena-Hard, gpt-4-0613)",
            &["Variant", "Win rate"],
        );
        t.row(&["None", &pct(self.baseline)]);
        t.row(&["PAS (factored)", &pct(self.factored)]);
        t.row(&["PAS-neural (BPE+LM)", &pct(self.neural)]);
        t.render()
    }
}

/// Trains a [`NeuralPas`] on `pairs` pairs of the context's dataset and
/// compares it with the factored model on the Arena suite.
pub fn neural_vs_factored_with(ctx: &ExperimentContext, pairs: usize) -> NeuralVsFactored {
    let model = ctx.model("gpt-4-0613");
    let reference = ctx.reference(&ctx.env.arena);
    // The neural model fine-tunes on a subset for tractability.
    let subset = ctx.dataset.take(pairs);
    let (neural, _) = NeuralPas::sft(&NeuralPasConfig::default(), &subset);
    let neural_nll = neural.eval_nll(&subset.take(100));

    NeuralVsFactored {
        factored: evaluate_suite(&model, &ctx.pas_qwen, &ctx.env.arena, &reference, &ctx.judge)
            .win_rate,
        neural: evaluate_suite(&model, &neural, &ctx.env.arena, &reference, &ctx.judge).win_rate,
        baseline: evaluate_suite(&model, &NoOptimizer, &ctx.env.arena, &reference, &ctx.judge)
            .win_rate,
        neural_nll,
    }
}

/// [`neural_vs_factored_with`] at the default 600-pair budget.
pub fn neural_vs_factored(ctx: &ExperimentContext) -> NeuralVsFactored {
    neural_vs_factored_with(ctx, 600)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_task_comparison_is_structurally_sound() {
        // Structural checks only: the statistically tight claim (PAS beats
        // the baseline out of task) lives in the root `seed_sweep` test,
        // which asserts the margin across several environment seeds rather
        // than gambling on a single draw.
        let ctx = super::super::context::shared_quick();
        let result = per_task(ctx, Category::Analysis);
        assert_eq!(result.rows.len(), 5);
        for row in &result.rows {
            assert!((0.0..=100.0).contains(&row.in_task), "{}: {}", row.method, row.in_task);
            assert!(
                (0.0..=100.0).contains(&row.out_of_task),
                "{}: {}",
                row.method,
                row.out_of_task
            );
        }
        assert!(result.render().contains("OPRO"));
        // The env-override entry point scores the same suite identically.
        let in_env = per_task_in_env(ctx, Category::Analysis, &ctx.env);
        for (a, b) in result.rows.iter().zip(&in_env.rows) {
            assert_eq!(a.method, b.method);
            assert_eq!(a.in_task.to_bits(), b.in_task.to_bits());
            assert_eq!(a.out_of_task.to_bits(), b.out_of_task.to_bits());
        }
    }

    #[test]
    fn factored_pas_beats_neural_pas_in_the_low_data_regime() {
        // At 150 pairs the neural model underfits; the factored model's
        // data efficiency shows. (At full scale the gap closes — see the
        // neural_ablation binary.)
        let ctx = super::super::context::shared_quick();
        let cmp = neural_vs_factored_with(ctx, 150);
        assert!(cmp.factored >= cmp.neural, "factored {} vs neural {}", cmp.factored, cmp.neural);
        assert!(cmp.neural_nll.is_finite());
        assert!(cmp.render().contains("factored"));
    }
}

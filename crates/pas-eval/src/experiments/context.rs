//! Shared experiment state: trained models, datasets, and suites.

use pas_baselines::{Bpo, BpoConfig};
use pas_core::{Pas, PasConfig, PasSystem, SystemConfig};
use pas_data::{CorpusConfig, GenConfig, PairDataset, SelectionConfig};
use pas_llm::SimLlm;

use crate::judge::Judge;
use crate::suite::{EvalEnv, EvalEnvConfig};

/// How big to build everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper scale: ~9k PAS pairs, ~14k BPO pairs, full suites. Minutes.
    Paper,
    /// Quick scale for tests and smoke runs. Seconds.
    Quick,
}

impl Scale {
    fn pas_corpus(self) -> usize {
        match self {
            Scale::Paper => 28_500,
            Scale::Quick => 1_600,
        }
    }

    fn bpo_corpus(self) -> usize {
        match self {
            Scale::Paper => 48_500,
            Scale::Quick => 2_400,
        }
    }

    fn labeled(self) -> usize {
        match self {
            Scale::Paper => 4_000,
            Scale::Quick => 900,
        }
    }

    fn arena_items(self) -> usize {
        match self {
            Scale::Paper => 250,
            Scale::Quick => 120,
        }
    }

    fn alpaca_items(self) -> usize {
        match self {
            Scale::Paper => 300,
            Scale::Quick => 150,
        }
    }
}

/// Everything the table/figure runners need, built once.
pub struct ExperimentContext {
    /// Benchmark suites and the evaluation world.
    pub env: EvalEnv,
    /// The judge.
    pub judge: Judge,
    /// PAS fine-tuned from Qwen2-7B on the curated dataset (the paper's
    /// main configuration).
    pub pas_qwen: Pas,
    /// PAS fine-tuned from LLaMA-2-7B (Table 2's same-base comparison).
    pub pas_llama: Pas,
    /// PAS trained on the dataset generated *without* the selection and
    /// regeneration phase (Table 5's ablation).
    pub pas_wo_selection: Pas,
    /// BPO trained on the larger, noisier preference-derived dataset.
    pub bpo: Bpo,
    /// The curated PAS fine-tuning dataset (~9k pairs at paper scale).
    pub dataset: PairDataset,
    /// The BPO training dataset (~14k pairs at paper scale).
    pub bpo_dataset: PairDataset,
    /// Residual ground-truth flaw rate of the curated dataset.
    pub curated_flaw_rate: f64,
    /// Residual flaw rate of the ablated (w/o selection) dataset.
    pub ablated_flaw_rate: f64,
}

impl ExperimentContext {
    /// Builds all shared state deterministically from `seed`.
    pub fn build(scale: Scale, seed: u64) -> ExperimentContext {
        // The curated PAS pipeline (corpus → §3.1 → Algorithm 1 → SFT).
        let base_cfg = SystemConfig {
            corpus: CorpusConfig { size: scale.pas_corpus(), seed, ..CorpusConfig::default() },
            selection: SelectionConfig {
                labeled_size: scale.labeled(),
                ..SelectionConfig::default()
            },
            generation: GenConfig::default(),
            pas: PasConfig::default(),
        };
        let system = PasSystem::build(&base_cfg);

        // Table 2 variant: same curated dataset, weaker base model.
        let (pas_llama, _) = Pas::sft(
            &PasConfig { base_model: "llama-2-7b-instruct".into(), ..PasConfig::default() },
            &system.dataset,
        );

        // Table 5 ablation: regenerate without selection, retrain.
        let ablated_cfg = SystemConfig {
            generation: GenConfig { selection_enabled: false, ..GenConfig::default() },
            ..base_cfg.clone()
        };
        let ablated = PasSystem::build(&ablated_cfg);

        // BPO: bigger corpus, no critic curation, preference label noise.
        let bpo_cfg = SystemConfig {
            corpus: CorpusConfig {
                size: scale.bpo_corpus(),
                seed: seed ^ 0xb90,
                ..CorpusConfig::default()
            },
            selection: SelectionConfig {
                labeled_size: scale.labeled(),
                ..SelectionConfig::default()
            },
            generation: GenConfig { selection_enabled: false, ..GenConfig::default() },
            pas: PasConfig::default(),
        };
        let bpo_system = PasSystem::build(&bpo_cfg);
        let bpo = Bpo::train(&BpoConfig::default(), &bpo_system.dataset);

        let env = EvalEnv::build(&EvalEnvConfig {
            arena_items: scale.arena_items(),
            alpaca_items: scale.alpaca_items(),
            seed: seed ^ 0xe0a1,
        });

        ExperimentContext {
            env,
            judge: Judge::default(),
            pas_qwen: system.pas,
            pas_llama,
            pas_wo_selection: ablated.pas,
            bpo,
            dataset: system.dataset,
            bpo_dataset: bpo_system.dataset,
            curated_flaw_rate: system.generation_report.residual_flaw_rate(),
            ablated_flaw_rate: ablated.generation_report.residual_flaw_rate(),
        }
    }

    /// Instantiates a main model over the evaluation world.
    pub fn model(&self, name: &str) -> SimLlm {
        SimLlm::named(name, self.env.world.clone())
    }

    /// Instantiates a suite's reference model.
    pub fn reference(&self, suite: &crate::suite::BenchSuite) -> SimLlm {
        SimLlm::named(&suite.reference_model, self.env.world.clone())
    }
}

/// Shared Quick-scale context for the experiment tests: building one takes
/// tens of seconds, so every test reuses a single instance.
#[cfg(test)]
pub(crate) fn shared_quick() -> &'static ExperimentContext {
    use std::sync::OnceLock;
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::build(Scale::Quick, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_builds_consistently() {
        let ctx = ExperimentContext::build(Scale::Quick, 1);
        assert!(ctx.dataset.len() > 200, "PAS dataset {}", ctx.dataset.len());
        assert!(
            ctx.bpo_dataset.len() > ctx.dataset.len(),
            "BPO must consume more data: {} vs {}",
            ctx.bpo_dataset.len(),
            ctx.dataset.len()
        );
        assert!(ctx.ablated_flaw_rate > ctx.curated_flaw_rate);
        assert_eq!(ctx.env.arena.len(), 120);
    }
}

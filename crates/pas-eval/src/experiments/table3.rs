//! Table 3: human labor and flexibility comparison.
//!
//! The rows are read directly off each method's [`PromptOptimizer`]
//! implementation — the table is a property of the code, not a hand-written
//! matrix.

use pas_baselines::{Opro, OproConfig, PreferenceKind, PreferenceTuned, ProTeGi, ProTeGiConfig};
use pas_core::PromptOptimizer;
use pas_llm::{Category, SimLlm};

use crate::report::Table;

use super::context::ExperimentContext;

/// One flexibility row.
#[derive(Debug, Clone)]
pub struct FlexRow {
    /// Method name.
    pub method: String,
    /// "No Human Labor" column.
    pub no_human_labor: bool,
    /// "LLM-Agnostic" column.
    pub llm_agnostic: bool,
    /// "Task-Agnostic" column.
    pub task_agnostic: bool,
}

/// The complete Table 3.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// Rows in the paper's order: PPO, DPO, OPRO, ProTeGi, BPO, PAS.
    pub rows: Vec<FlexRow>,
}

impl Table3Result {
    /// Renders the check/cross matrix.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 3: Need for human labor and flexibility of PAS as a plug-and-play system",
            &["Method", "No Human Labor", "LLM-Agnostic", "Task-Agnostic"],
        );
        let mark = |b: bool| if b { "✓" } else { "✗" };
        for r in &self.rows {
            t.row(&[
                r.method.as_str(),
                mark(r.no_human_labor),
                mark(r.llm_agnostic),
                mark(r.task_agnostic),
            ]);
        }
        t.render()
    }

    /// The methods satisfying all three criteria (the paper: only PAS).
    pub fn fully_flexible(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.no_human_labor && r.llm_agnostic && r.task_agnostic)
            .map(|r| r.method.as_str())
            .collect()
    }
}

fn row_of<O: PromptOptimizer>(label: &str, method: &O) -> FlexRow {
    FlexRow {
        method: label.to_string(),
        no_human_labor: !method.requires_human_labels(),
        llm_agnostic: method.llm_agnostic(),
        task_agnostic: method.task_agnostic(),
    }
}

/// Runs the Table 3 experiment: instantiate each method and read its
/// metadata.
pub fn table3(ctx: &ExperimentContext) -> Table3Result {
    // Tiny task splits for the per-task optimizers; their metadata is
    // structural, but the instances are built for real like everything else.
    let train: Vec<(String, pas_llm::PromptMeta)> = ctx
        .env
        .alpaca
        .items
        .iter()
        .filter(|i| i.meta.category == Category::Analysis)
        .take(8)
        .map(|i| (i.prompt.clone(), i.meta.clone()))
        .collect();
    let target: SimLlm = ctx.model("gpt-3.5-turbo-1106");

    let ppo = PreferenceTuned::tune(PreferenceKind::Ppo, "gpt-3.5-turbo-1106", 77_000);
    let dpo = PreferenceTuned::tune(PreferenceKind::Dpo, "gpt-3.5-turbo-1106", 170_000);
    let opro = Opro::optimize_for_task(
        &OproConfig { iterations: 2, pool_per_iter: 2, ..OproConfig::default() },
        Category::Analysis,
        &target,
        &train,
    );
    let protegi = ProTeGi::optimize_for_task(
        &ProTeGiConfig { rounds: 2, beam_width: 2 },
        Category::Analysis,
        &target,
        &train,
    );

    Table3Result {
        rows: vec![
            row_of("PPO", &ppo),
            row_of("DPO", &dpo),
            row_of("OPRO", &opro),
            row_of("ProTeGi", &protegi),
            row_of("BPO", &ctx.bpo),
            row_of("PAS", &ctx.pas_qwen),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_pas_satisfies_all_three_criteria() {
        let ctx = super::super::context::shared_quick();
        let t3 = table3(ctx);
        assert_eq!(t3.rows.len(), 6);
        assert_eq!(t3.fully_flexible(), vec!["PAS"]);
        // Spot-check against the paper's matrix.
        let by_name = |n: &str| t3.rows.iter().find(|r| r.method == n).unwrap();
        assert!(!by_name("PPO").no_human_labor);
        assert!(!by_name("PPO").llm_agnostic);
        assert!(by_name("PPO").task_agnostic);
        assert!(!by_name("OPRO").task_agnostic);
        assert!(by_name("BPO").llm_agnostic && by_name("BPO").task_agnostic);
        assert!(!by_name("BPO").no_human_labor);
        let rendered = t3.render();
        assert!(rendered.contains("✓") && rendered.contains("✗"));
    }
}

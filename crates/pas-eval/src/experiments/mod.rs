//! One runner per paper table/figure.
//!
//! Every runner takes the shared [`ExperimentContext`] (built once — it
//! holds the trained models and suites) and returns a typed result with a
//! `render()` that prints the same rows the paper reports. The `bench`
//! crate's binaries are thin wrappers over these.

pub mod context;
pub mod extension;
pub mod figures;
pub mod robustness;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table45;

pub use context::{ExperimentContext, Scale};
pub use extension::{
    neural_vs_factored, per_task, per_task_in_env, NeuralVsFactored, PerTaskResult,
};
pub use figures::{fig6, fig7, Fig7Result, LearningCurve};
pub use robustness::{robustness, RobustnessResult, Spread};
pub use table1::{table1, Table1Result};
pub use table2::{table2, Table2Result};
pub use table3::{table3, Table3Result};
pub use table45::{fig1b, table4, table5, Fig1bResult, Table4Result, Table5Result};

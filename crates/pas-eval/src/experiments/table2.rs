//! Table 2: PAS vs BPO with the same base model (LLaMA-2-7B-Instruct).

use crate::report::{delta, pct, Table};

use super::context::ExperimentContext;
use super::table1::{evaluate_block, Row};

/// The complete Table 2.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// BPO block (its released model is LLaMA-2-7B-based).
    pub bpo: Vec<Row>,
    /// PAS fine-tuned from the same LLaMA-2-7B base.
    pub pas: Vec<Row>,
}

impl Table2Result {
    /// Mean improvement of same-base PAS over BPO (paper: ≈ +3.4).
    pub fn pas_vs_bpo(&self) -> f64 {
        mean(&self.pas) - mean(&self.bpo)
    }

    /// Renders the paper's layout.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 2: PAS vs BPO with the same base model (LLaMA-2-7b-instruct)",
            &[
                "Main Model",
                "Method",
                "Arena-hard",
                "Alpaca-Eval 2.0",
                "Alpaca-Eval 2.0 (LC)",
                "Average",
            ],
        );
        for r in &self.bpo {
            t.row(&[
                r.model.clone(),
                "BPO".into(),
                pct(r.arena),
                pct(r.alpaca),
                pct(r.alpaca_lc),
                pct(r.average()),
            ]);
        }
        for (r, b) in self.pas.iter().zip(&self.bpo) {
            t.row(&[
                r.model.clone(),
                "PAS".into(),
                pct(r.arena),
                pct(r.alpaca),
                pct(r.alpaca_lc),
                format!("{} ({})", pct(r.average()), delta(r.average() - b.average())),
            ]);
        }
        t.row(&[
            "Average".into(),
            "PAS-BPO".into(),
            String::new(),
            String::new(),
            String::new(),
            delta(self.pas_vs_bpo()),
        ]);
        t.render()
    }
}

fn mean(rows: &[Row]) -> f64 {
    rows.iter().map(Row::average).sum::<f64>() / rows.len().max(1) as f64
}

/// Runs the Table 2 experiment.
pub fn table2(ctx: &ExperimentContext) -> Table2Result {
    Table2Result { bpo: evaluate_block(ctx, &ctx.bpo), pas: evaluate_block(ctx, &ctx.pas_llama) }
}

#[cfg(test)]
mod tests {
    use super::super::table1::table1;
    use super::*;

    #[test]
    fn same_base_pas_still_beats_bpo_but_by_less() {
        let ctx = super::super::context::shared_quick();
        let t2 = table2(ctx);
        assert!(t2.pas_vs_bpo() > 0.0, "PAS(llama)-BPO {}", t2.pas_vs_bpo());
        // The LLaMA-2-based PAS must trail the Qwen2-based PAS (Table 1 vs
        // Table 2 in the paper).
        let t1 = table1(ctx);
        let qwen_gain = t1.pas_vs_bpo();
        assert!(
            t2.pas_vs_bpo() < qwen_gain + 1.0,
            "llama gain {} should not exceed qwen gain {}",
            t2.pas_vs_bpo(),
            qwen_gain
        );
        assert!(t2.render().contains("PAS-BPO"));
    }
}

//! The GPT-4-judge substitute.
//!
//! The judge grades **response text** against an item's latent rubric: how
//! many of the required aspects the response covers (trigger-phrase
//! detection), whether its conclusion carries the correctness marker,
//! topical relevance, and a penalty for extraneous material. Pairwise
//! comparison adds deterministic pseudo-noise (a hash of both responses) —
//! real GPT-4 judging is noisy but reproducible per transcript, and so is
//! this.
//!
//! Two judging modes mirror the paper's two AlpacaEval columns: the raw
//! judge has the documented verbosity bias (longer answers win slightly
//! more); the **length-controlled** judge removes that term, exactly what
//! AlpacaEval 2.0 (LC)'s logistic correction is for.

use pas_llm::simllm::{
    CORRECT_MARKER, CORRECT_MARKER_ZH, POLISH_LEVELS, POLISH_MARKER, POLISH_MARKER_ZH,
};
use pas_llm::world::{detect_aspects, PromptMeta};
use pas_text::hash::{fx_combine, fx_hash_str};
use pas_text::keyword_overlap;

/// Judge parameters.
#[derive(Debug, Clone)]
pub struct JudgeConfig {
    /// Standard deviation of per-comparison score noise.
    pub noise: f32,
    /// Score margin below which a comparison is a tie.
    pub tie_margin: f32,
    /// Verbosity-bias weight in raw (non-LC) mode.
    pub length_bias: f32,
    /// Seed folded into the noise hash.
    pub seed: u64,
}

impl Default for JudgeConfig {
    fn default() -> Self {
        JudgeConfig { noise: 0.055, tie_margin: 0.01, length_bias: 0.05, seed: 0x10d6e }
    }
}

/// Measured quality features of one response.
#[derive(Debug, Clone, Copy)]
pub struct ResponseQuality {
    /// Fraction of required aspects the response text covers.
    pub coverage: f32,
    /// Covered aspects the rubric never asked for.
    pub extraneous: usize,
    /// Whether the conclusion carries the correctness marker.
    pub correct: bool,
    /// Topic-keyword overlap with the rubric.
    pub relevance: f32,
    /// Overall polish (fluency, grounding, coherence) in `[0, 1]`.
    pub polish: f32,
    /// Length in whitespace words.
    pub words: usize,
}

impl ResponseQuality {
    /// Scalar quality in roughly `[0, 1]`. Polish carries the stable
    /// per-model component; coverage and correctness carry the per-item
    /// rubric.
    pub fn score(&self) -> f32 {
        0.27 * self.coverage
            + 0.25 * if self.correct { 1.0 } else { 0.0 }
            + 0.33 * self.polish
            + 0.15 * self.relevance
            - 0.012 * (self.extraneous.min(4) as f32)
    }
}

/// Grades `response` against `meta`'s rubric.
pub fn assess(meta: &PromptMeta, response: &str) -> ResponseQuality {
    let covered = detect_aspects(response);
    let required = meta.required;
    let coverage = if required.is_empty() {
        1.0
    } else {
        covered.intersection(required).len() as f32 / required.len() as f32
    };
    let polish_units = (response.matches(POLISH_MARKER).count()
        + response.matches(POLISH_MARKER_ZH).count())
    .min(POLISH_LEVELS);
    ResponseQuality {
        coverage,
        extraneous: covered.minus(required).len(),
        correct: response.contains(CORRECT_MARKER) || response.contains(CORRECT_MARKER_ZH),
        relevance: keyword_overlap(&meta.topic, response) as f32,
        polish: polish_units as f32 / POLISH_LEVELS as f32,
        words: response.split_whitespace().count(),
    }
}

/// Outcome of one pairwise comparison, as win credit for the candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Candidate beat the reference (credit 1.0).
    Win,
    /// Too close to call (credit 0.5).
    Tie,
    /// Reference won (credit 0.0).
    Loss,
}

impl Verdict {
    /// Win-rate credit.
    pub fn credit(self) -> f64 {
        match self {
            Verdict::Win => 1.0,
            Verdict::Tie => 0.5,
            Verdict::Loss => 0.0,
        }
    }
}

/// The pairwise judge.
#[derive(Debug, Clone, Default)]
pub struct Judge {
    config: JudgeConfig,
}

impl Judge {
    /// Creates a judge.
    pub fn new(config: JudgeConfig) -> Self {
        Judge { config }
    }

    /// Deterministic pseudo-Gaussian noise for one (response, salt) pair:
    /// sum of three hash-derived uniforms, centred, scaled by `noise`.
    fn noise_for(&self, response: &str, salt: u64) -> f32 {
        let h0 = fx_combine(fx_hash_str(response), self.config.seed ^ salt);
        let mut acc = 0.0f32;
        let mut h = h0;
        for _ in 0..3 {
            h = fx_combine(h, 0x9e37_79b9);
            acc += (h >> 11) as f32 / (1u64 << 53) as f32;
        }
        (acc - 1.5) * self.config.noise * 2.0
    }

    /// Judge-visible score of a response: quality, plus the verbosity bias
    /// unless length-controlled, plus comparison noise.
    fn judged_score(&self, meta: &PromptMeta, response: &str, lc: bool, salt: u64) -> f32 {
        let q = assess(meta, response);
        let mut s = q.score() + self.noise_for(response, salt);
        if !lc {
            // The documented GPT-4 judge verbosity bias: roughly linear in
            // length over the range our responses occupy, capped so padding
            // cannot win unboundedly.
            s += self.config.length_bias * (q.words.min(300) as f32 / 100.0);
        }
        s
    }

    /// Compares candidate vs reference responses under `meta`'s rubric.
    pub fn pairwise(
        &self,
        meta: &PromptMeta,
        candidate: &str,
        reference: &str,
        length_controlled: bool,
    ) -> Verdict {
        // Salt both draws with both responses so swapping arguments flips
        // the verdict rather than re-rolling it.
        let salt = fx_combine(fx_hash_str(candidate), fx_hash_str(reference));
        let sc = self.judged_score(meta, candidate, length_controlled, salt ^ 1);
        let sr = self.judged_score(meta, reference, length_controlled, salt ^ 2);
        if (sc - sr).abs() <= self.config.tie_margin {
            Verdict::Tie
        } else if sc > sr {
            Verdict::Win
        } else {
            Verdict::Loss
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_llm::world::{Aspect, AspectSet, Category};
    use pas_text::lang::Language;

    fn meta(required: AspectSet) -> PromptMeta {
        PromptMeta {
            category: Category::Analysis,
            required,
            explicit: AspectSet::EMPTY,
            ambiguity: 0.3,
            trap: false,
            language: Language::English,
            topic: "solar panels".into(),
        }
    }

    fn good_response() -> String {
        format!(
            "Regarding solar panels: here is a detailed analysis in depth. \
             we cover all cases and consider edge cases. In conclusion, {CORRECT_MARKER}."
        )
    }

    #[test]
    fn assess_measures_coverage_and_correctness() {
        let m = meta([Aspect::Depth, Aspect::Completeness].into_iter().collect());
        let q = assess(&m, &good_response());
        assert!((q.coverage - 1.0).abs() < 1e-6);
        assert!(q.correct);
        assert!(q.relevance > 0.9);
        let bad = assess(&m, "something entirely unrelated and wrong");
        assert_eq!(bad.coverage, 0.0);
        assert!(!bad.correct);
    }

    #[test]
    fn extraneous_material_is_penalized() {
        let m = meta([Aspect::Depth].into_iter().collect());
        let focused = assess(&m, "here is a detailed analysis in depth of solar panels");
        let padded = assess(
            &m,
            "here is a detailed analysis in depth of solar panels, \
             presented in a structured format, with concrete examples, keep it brief",
        );
        assert!(padded.extraneous > focused.extraneous);
        assert!(padded.score() < focused.score());
    }

    #[test]
    fn better_response_wins_in_aggregate() {
        let judge = Judge::default();
        let mut wins = 0.0;
        for i in 0..200 {
            let m = meta([Aspect::Depth, Aspect::Completeness].into_iter().collect());
            let good = format!("{} case {i}", good_response());
            let bad = format!("Regarding solar panels: brief note, case {i}.");
            wins += judge.pairwise(&m, &good, &bad, true).credit();
        }
        assert!(wins / 200.0 > 0.9, "win rate {}", wins / 200.0);
    }

    #[test]
    fn equal_responses_split_credit_symmetrically() {
        let judge = Judge::default();
        let m = meta([Aspect::Depth].into_iter().collect());
        let mut credit = 0.0;
        for i in 0..400 {
            let a = format!("here is a detailed analysis in depth, variant a{i}");
            let b = format!("here is a detailed analysis in depth, variant b{i}");
            credit += judge.pairwise(&m, &a, &b, true).credit();
        }
        let rate = credit / 400.0;
        assert!((0.4..=0.6).contains(&rate), "symmetric rate {rate}");
    }

    #[test]
    fn pairwise_is_antisymmetric() {
        let judge = Judge::default();
        let m = meta([Aspect::Depth].into_iter().collect());
        let a = "here is a detailed analysis in depth of solar panels";
        let b = "a short irrelevant remark";
        let ab = judge.pairwise(&m, a, b, true);
        let ba = judge.pairwise(&m, b, a, true);
        assert!((ab.credit() + ba.credit() - 1.0).abs() < 1e-9, "{ab:?} vs {ba:?}");
    }

    #[test]
    fn verbosity_helps_only_without_length_control() {
        let judge = Judge::new(JudgeConfig { noise: 0.0, ..JudgeConfig::default() });
        let m = meta([Aspect::Depth].into_iter().collect());
        let terse = "here is a detailed analysis in depth of solar panels.";
        let padding =
            "Further supporting observations expand the treatment considerably. ".repeat(12);
        let verbose = format!("{terse} {padding}");
        // Raw mode: the verbose response wins on length bias.
        assert_eq!(judge.pairwise(&m, &verbose, terse, false), Verdict::Win);
        // LC mode: identical substance → tie or terse wins, never a
        // length-driven verbose win by a margin.
        let lc = judge.pairwise(&m, &verbose, terse, true);
        assert_ne!(lc, Verdict::Win, "length alone must not win under LC");
    }

    #[test]
    fn judging_is_deterministic() {
        let judge = Judge::default();
        let m = meta([Aspect::Depth].into_iter().collect());
        let v1 = judge.pairwise(&m, "response alpha", "response beta", false);
        let v2 = judge.pairwise(&m, "response alpha", "response beta", false);
        assert_eq!(v1, v2);
    }
}

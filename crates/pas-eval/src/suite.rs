//! Benchmark suites: Arena-Hard and AlpacaEval 2.0 item sets.
//!
//! Items are drawn from the same synthetic prompt distribution as the
//! training corpus but with fresh seeds (no train/test leakage by
//! construction: different seeds generate disjoint case ids). Arena-Hard
//! keeps only *hard* prompts — several latent deficiencies, traps, high
//! ambiguity — mirroring the real benchmark's "complex and challenging
//! scenarios"; AlpacaEval keeps the general mix. Every item's metadata is
//! registered into one shared [`World`] so the simulated main models can
//! resolve the prompts.

use std::sync::Arc;

use pas_data::{Corpus, CorpusConfig};
use pas_llm::{PromptMeta, World};

/// One benchmark question with its latent grading rubric.
#[derive(Debug, Clone)]
pub struct BenchItem {
    /// The user prompt.
    pub prompt: String,
    /// Latent ground truth the judge grades against.
    pub meta: PromptMeta,
}

/// A named benchmark.
#[derive(Debug, Clone)]
pub struct BenchSuite {
    /// Display name (matches the paper's column headers).
    pub name: String,
    /// The questions.
    pub items: Vec<BenchItem>,
    /// Profile name of the reference model responses are compared against.
    pub reference_model: String,
    /// Whether the judge applies the length-controlled correction.
    pub length_controlled: bool,
}

impl BenchSuite {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the suite has no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Configuration for building the evaluation environment.
#[derive(Debug, Clone)]
pub struct EvalEnvConfig {
    /// Items in the Arena-Hard suite.
    pub arena_items: usize,
    /// Items in each AlpacaEval suite (raw and LC share items).
    pub alpaca_items: usize,
    /// Seed for the evaluation corpora (keep disjoint from training seeds).
    pub seed: u64,
}

impl Default for EvalEnvConfig {
    fn default() -> Self {
        EvalEnvConfig { arena_items: 250, alpaca_items: 300, seed: 0xe7a1 }
    }
}

/// The full evaluation environment: three suites over one shared world.
pub struct EvalEnv {
    /// Shared latent-metadata registry for the simulated models.
    pub world: Arc<World>,
    /// Arena-Hard.
    pub arena: BenchSuite,
    /// AlpacaEval 2.0 (raw win rate).
    pub alpaca: BenchSuite,
    /// AlpacaEval 2.0 (LC) — same items, length-controlled judging.
    pub alpaca_lc: BenchSuite,
}

impl EvalEnv {
    /// Builds the three suites.
    pub fn build(config: &EvalEnvConfig) -> EvalEnv {
        let mut world = World::new();

        let arena_items = harvest(
            &CorpusConfig {
                // Generate with headroom: hardness filtering is selective.
                size: config.arena_items * 8,
                seed: config.seed ^ 0xa0e,
                dup_rate: 0.0,
                junk_rate: 0.0,
                ..CorpusConfig::default()
            },
            config.arena_items,
            true,
            &mut world,
        );
        let alpaca_items = harvest(
            &CorpusConfig {
                size: config.alpaca_items * 2,
                seed: config.seed ^ 0xa19,
                dup_rate: 0.0,
                junk_rate: 0.0,
                ..CorpusConfig::default()
            },
            config.alpaca_items,
            false,
            &mut world,
        );

        // Arena-Hard's judging rubric asks for correctness-first grading,
        // so its judge runs style-neutral (no verbosity bonus); raw
        // AlpacaEval 2.0 keeps the documented GPT-4 length bias, which its
        // LC variant then removes.
        let arena = BenchSuite {
            name: "Arena-hard".into(),
            items: arena_items,
            reference_model: "reference-arena".into(),
            length_controlled: true,
        };
        let alpaca = BenchSuite {
            name: "Alpaca-Eval 2.0".into(),
            items: alpaca_items.clone(),
            reference_model: "reference-alpaca".into(),
            length_controlled: false,
        };
        let alpaca_lc = BenchSuite {
            name: "Alpaca-Eval 2.0 (LC)".into(),
            items: alpaca_items,
            reference_model: "reference-alpaca".into(),
            length_controlled: true,
        };
        EvalEnv { world: Arc::new(world), arena, alpaca, alpaca_lc }
    }
}

/// Draws up to `n` items from a fresh corpus, optionally keeping only hard
/// prompts, and registers their metadata into `world`.
fn harvest(
    corpus_config: &CorpusConfig,
    n: usize,
    hard_only: bool,
    world: &mut World,
) -> Vec<BenchItem> {
    let corpus = Corpus::generate(corpus_config);
    let mut items = Vec::with_capacity(n);
    for rec in corpus.records {
        if items.len() >= n {
            break;
        }
        if rec.latent_quality < 0.3 {
            continue;
        }
        if hard_only {
            let hard = rec.meta.trap
                || rec.meta.deficiencies().len() >= 2
                || (rec.meta.ambiguity > 0.6 && !rec.meta.deficiencies().is_empty());
            if !hard {
                continue;
            }
        }
        world.register(&rec.text, rec.meta.clone());
        items.push(BenchItem { prompt: rec.text, meta: rec.meta });
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_three_suites_with_shared_world() {
        let env = EvalEnv::build(&EvalEnvConfig { arena_items: 40, alpaca_items: 50, seed: 1 });
        assert_eq!(env.arena.len(), 40);
        assert_eq!(env.alpaca.len(), 50);
        assert_eq!(env.alpaca_lc.len(), 50);
        assert!(env.alpaca_lc.length_controlled);
        assert!(!env.alpaca.length_controlled);
        // Every item resolves through the shared world.
        for item in env.arena.items.iter().chain(&env.alpaca.items) {
            assert!(env.world.lookup(&item.prompt).is_some(), "unresolved: {:?}", item.prompt);
        }
    }

    #[test]
    fn arena_items_are_hard() {
        let env = EvalEnv::build(&EvalEnvConfig { arena_items: 60, alpaca_items: 10, seed: 2 });
        for item in &env.arena.items {
            let hard =
                item.meta.trap || item.meta.deficiencies().len() >= 2 || item.meta.ambiguity > 0.6;
            assert!(hard, "easy item in arena: {:?}", item.prompt);
        }
        // Arena must include some traps.
        assert!(env.arena.items.iter().any(|i| i.meta.trap));
    }

    #[test]
    fn suites_are_deterministic_per_seed() {
        let a = EvalEnv::build(&EvalEnvConfig { arena_items: 20, alpaca_items: 20, seed: 7 });
        let b = EvalEnv::build(&EvalEnvConfig { arena_items: 20, alpaca_items: 20, seed: 7 });
        for (x, y) in a.arena.items.iter().zip(&b.arena.items) {
            assert_eq!(x.prompt, y.prompt);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = EvalEnv::build(&EvalEnvConfig { arena_items: 20, alpaca_items: 20, seed: 7 });
        let b = EvalEnv::build(&EvalEnvConfig { arena_items: 20, alpaca_items: 20, seed: 8 });
        let same =
            a.arena.items.iter().zip(&b.arena.items).filter(|(x, y)| x.prompt == y.prompt).count();
        assert!(same < a.arena.len(), "seeds produced identical suites");
    }
}

//! Evaluation harnesses for the PAS paper's experiments.
//!
//! - [`suite`] — benchmark construction: Arena-Hard (hard, trap- and
//!   reasoning-heavy) and AlpacaEval 2.0 (general) item sets, with the
//!   shared [`pas_llm::World`] the simulated main models run against.
//! - [`judge`] — the GPT-4-judge substitute: response quality scoring from
//!   text, pairwise win/tie/loss against a reference model, and the
//!   length-controlled (LC) correction of AlpacaEval 2.0 (LC).
//! - [`harness`] — end-to-end benchmark runs: (main model × optimizer ×
//!   suite) → win-rate score, with items evaluated through the shared
//!   deterministic `pas_par` runtime.
//! - [`human`] — the §4.5 human-evaluation panel: seeded evaluator
//!   personas producing GSB, full-mark, availability, and average-score
//!   metrics over eight scenario categories.
//! - [`report`] — plain-text table rendering shared by the regenerators.
//! - [`cases`] — the three case studies (Figures 2, 8, 9).
//! - [`experiments`] — one runner per paper table/figure; each returns a
//!   typed result plus a rendered table.

pub mod cases;
pub mod experiments;
pub mod harness;
pub mod human;
pub mod judge;
pub mod report;
pub mod suite;

pub use harness::{
    evaluate_suite, paired_bootstrap, per_item_credits, BenchScore, PairedBootstrap,
};
pub use judge::{Judge, JudgeConfig, ResponseQuality};
pub use suite::{BenchItem, BenchSuite, EvalEnv, EvalEnvConfig};

//! The paper's three case studies (Figures 2, 8 and 9).
//!
//! Each case registers the paper's actual question, runs a mid-tier main
//! model with and without the supplied optimizer, and reports both
//! responses plus the judge's quality delta.

use std::sync::Arc;

use pas_core::PromptOptimizer;
use pas_llm::world::{Aspect, AspectSet, Category, PromptMeta, World};
use pas_llm::{ChatModel, SimLlm};
use pas_text::lang::Language;

use crate::judge::assess;

/// One executed case study.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Display title.
    pub title: String,
    /// The user prompt (from the paper).
    pub prompt: String,
    /// The complement the optimizer produced.
    pub complement: String,
    /// Response without augmentation.
    pub without: String,
    /// Response with augmentation.
    pub with: String,
    /// Judge quality without augmentation.
    pub quality_without: f32,
    /// Judge quality with augmentation.
    pub quality_with: f32,
}

impl CaseStudy {
    /// Whether augmentation improved the judged quality.
    pub fn improved(&self) -> bool {
        self.quality_with > self.quality_without
    }

    /// Renders the case in the paper's before/after format.
    pub fn render(&self) -> String {
        format!(
            "== {} ==\nUser: {}\nPAS complement: {}\n\n-- Response without PAS (quality {:.2}) --\n{}\n\n-- Response with PAS (quality {:.2}) --\n{}\n",
            self.title,
            self.prompt,
            self.complement,
            self.quality_without,
            self.without,
            self.quality_with,
            self.with
        )
    }
}

fn case_defs() -> Vec<(&'static str, &'static str, PromptMeta)> {
    vec![
        (
            "Case Study 1: logic trap (Figure 2)",
            "If there are 10 birds on a tree and one is shot dead, how many birds are on the ground?",
            PromptMeta {
                category: Category::Reasoning,
                required: [Aspect::TrapWarning, Aspect::StepByStep].into_iter().collect(),
                explicit: AspectSet::EMPTY,
                ambiguity: 0.3,
                trap: true,
                language: Language::English,
                topic: "birds tree ground".into(),
            },
        ),
        (
            "Case Study 2: boiling water quickly in ancient times (Figure 8)",
            "How to boil water quickly in ancient times?",
            PromptMeta {
                category: Category::Knowledge,
                required: [Aspect::Depth, Aspect::Completeness, Aspect::Context].into_iter().collect(),
                explicit: AspectSet::EMPTY,
                ambiguity: 0.6,
                trap: false,
                language: Language::English,
                topic: "boil water ancient".into(),
            },
        ),
        (
            "Case Study 3: blood pressure during blood loss (Figure 9)",
            "Does blood pressure increase or decrease when the body loses blood?",
            PromptMeta {
                category: Category::QuestionAnswering,
                required: [Aspect::Depth, Aspect::Context, Aspect::Completeness].into_iter().collect(),
                explicit: AspectSet::EMPTY,
                ambiguity: 0.5,
                trap: false,
                language: Language::English,
                topic: "blood pressure loss".into(),
            },
        ),
    ]
}

/// Number of surface variants each case is averaged over: one response is
/// a single stochastic draw, so the reported qualities are Monte-Carlo
/// means across re-phrasings that share the same latent rubric.
pub const CASE_VARIANTS: usize = 64;

/// Runs the three case studies with `optimizer` in front of `model_name`.
pub fn run_case_studies<O: PromptOptimizer>(optimizer: &O, model_name: &str) -> Vec<CaseStudy> {
    let defs = case_defs();
    let mut world = World::new();
    for (_, prompt, meta) in &defs {
        world.register(prompt, meta.clone());
        for k in 1..CASE_VARIANTS {
            world.register(&format!("{prompt} (reading {k})"), meta.clone());
        }
    }
    let model = SimLlm::named(model_name, Arc::new(world));

    defs.into_iter()
        .map(|(title, prompt, meta)| {
            // Shown transcript: the canonical phrasing.
            let augmented = optimizer.optimize(prompt);
            let complement =
                augmented.strip_prefix(prompt).unwrap_or(&augmented).trim().to_string();
            let without = model.chat(prompt);
            let with = model.chat(&augmented);

            // Reported qualities: mean over the variant set.
            let mut q_without = 0.0f32;
            let mut q_with = 0.0f32;
            for k in 0..CASE_VARIANTS {
                let variant =
                    if k == 0 { prompt.to_string() } else { format!("{prompt} (reading {k})") };
                q_without += assess(&meta, &model.chat(&variant)).score();
                q_with += assess(&meta, &model.chat(&optimizer.optimize(&variant))).score();
            }
            let quality_without = q_without / CASE_VARIANTS as f32;
            let quality_with = q_with / CASE_VARIANTS as f32;
            CaseStudy {
                title: title.to_string(),
                prompt: prompt.to_string(),
                complement,
                without,
                with,
                quality_without,
                quality_with,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_llm::teacher::realize_complement;

    /// A hand-built oracle optimizer that supplies exactly the deficient
    /// aspects — the upper bound a trained PAS approaches.
    struct Oracle;

    impl PromptOptimizer for Oracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn optimize(&self, prompt: &str) -> String {
            let aspects: AspectSet = if prompt.contains("birds") {
                [Aspect::TrapWarning, Aspect::StepByStep].into_iter().collect()
            } else {
                [Aspect::Depth, Aspect::Completeness, Aspect::Context].into_iter().collect()
            };
            let topic = pas_text::top_keywords(prompt, 3).join(" ");
            format!("{prompt} {}", realize_complement(&topic, aspects))
        }
        fn requires_human_labels(&self) -> bool {
            false
        }
        fn llm_agnostic(&self) -> bool {
            true
        }
        fn task_agnostic(&self) -> bool {
            true
        }
    }

    #[test]
    fn three_cases_run_end_to_end() {
        let cases = run_case_studies(&Oracle, "gpt-4-0613");
        assert_eq!(cases.len(), 3);
        for c in &cases {
            assert!(!c.without.is_empty() && !c.with.is_empty());
            assert!(!c.complement.is_empty());
            assert!(c.render().contains(&c.title));
        }
    }

    #[test]
    fn oracle_augmentation_improves_most_cases() {
        let cases = run_case_studies(&Oracle, "gpt-4-0613");
        let improved = cases.iter().filter(|c| c.improved()).count();
        assert!(improved >= 2, "only {improved}/3 improved");
    }

    #[test]
    fn case_studies_are_deterministic() {
        let a = run_case_studies(&Oracle, "gpt-4-0613");
        let b = run_case_studies(&Oracle, "gpt-4-0613");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.with, y.with);
            assert_eq!(x.without, y.without);
        }
    }
}

//! Plain-text table rendering shared by the experiment regenerators.

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; must match the header count.
    pub fn row<S: ToString>(&mut self, cells: &[S]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:<w$} | ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a win rate with two decimals, as in the paper's tables.
pub fn pct(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a delta with an explicit sign, as in the paper's tables.
pub fn delta(x: f64) -> String {
    format!("{}{:.2}", if x >= 0.0 { "+" } else { "" }, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Model", "Score"]);
        t.row(&["gpt-4", "76.60"]).row(&["short", "9"]);
        let s = t.render();
        assert!(s.starts_with("Demo\n"));
        assert!(s.contains("| Model | Score |"));
        assert!(s.contains("| gpt-4 | 76.60 |"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("x", &["a", "b"]).row(&["only one"]);
    }

    #[test]
    fn pct_and_delta_format() {
        assert_eq!(pct(76.6), "76.60");
        assert_eq!(delta(7.37), "+7.37");
        assert_eq!(delta(-3.8), "-3.80");
    }
}

//! End-to-end benchmark execution.
//!
//! One run answers: *with this optimizer in front of this main model, what
//! is the win rate against the suite's reference model?* Reference
//! responses always come from the raw prompt (the reference never gets the
//! APE). Items are judged independently, so the loop runs through the
//! shared deterministic `pas_par::par_map` — judging is a pure function of
//! the item, so credits come back bit-identical at any thread count.

use pas_core::PromptOptimizer;
use pas_llm::ChatModel;

use crate::judge::Judge;
use crate::suite::BenchSuite;

// Observability counters, recorded before the parallel judging region —
// the tallies are functions of the suite alone, never of scheduling.
static OBS_RUNS: pas_obs::Counter = pas_obs::Counter::new("eval.suite.runs");
static OBS_ITEMS: pas_obs::Counter = pas_obs::Counter::new("eval.suite.items");

/// A benchmark score: win rate in percent, as the paper reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchScore {
    /// Win rate against the reference, 0–100.
    pub win_rate: f64,
    /// Items evaluated.
    pub items: usize,
}

/// Runs `suite` for `model` with `optimizer` in front, judged by `judge`
/// against the suite's reference model. Generic over the [`ChatModel`]s so
/// fault-wrapped or degrading models (see `pas-core::serve`) drop in
/// without changing the harness.
pub fn evaluate_suite<M: ChatModel, R: ChatModel, O: PromptOptimizer>(
    model: &M,
    optimizer: &O,
    suite: &BenchSuite,
    reference: &R,
    judge: &Judge,
) -> BenchScore {
    let credits = per_item_credits(model, optimizer, suite, reference, judge);
    if credits.is_empty() {
        return BenchScore { win_rate: 0.0, items: 0 };
    }
    BenchScore {
        win_rate: 100.0 * credits.iter().sum::<f64>() / credits.len() as f64,
        items: credits.len(),
    }
}

/// Per-item win credits (1.0 / 0.5 / 0.0) in suite item order — the raw
/// material for bootstrap significance testing.
pub fn per_item_credits<M: ChatModel, R: ChatModel, O: PromptOptimizer>(
    model: &M,
    optimizer: &O,
    suite: &BenchSuite,
    reference: &R,
    judge: &Judge,
) -> Vec<f64> {
    if suite.is_empty() {
        return Vec::new();
    }
    OBS_RUNS.incr();
    OBS_ITEMS.add(suite.items.len() as u64);
    let lc = suite.length_controlled;
    pas_par::par_map(&suite.items, |_, item| {
        let candidate = model.chat(&optimizer.optimize(&item.prompt));
        let ref_response = reference.chat(&item.prompt);
        judge.pairwise(&item.meta, &candidate, &ref_response, lc).credit()
    })
}

/// Paired-bootstrap comparison of two optimizers on the same suite items.
#[derive(Debug, Clone, Copy)]
pub struct PairedBootstrap {
    /// Mean win-rate difference (A − B), in percentage points.
    pub mean_diff: f64,
    /// 2.5th percentile of the bootstrap distribution.
    pub ci_low: f64,
    /// 97.5th percentile.
    pub ci_high: f64,
    /// Fraction of bootstrap resamples where A ≤ B (a one-sided p-value
    /// against "A beats B").
    pub p_not_better: f64,
}

impl PairedBootstrap {
    /// True when the 95% interval excludes zero in A's favour.
    pub fn significant(&self) -> bool {
        self.ci_low > 0.0
    }
}

/// Runs a paired bootstrap over per-item credit vectors (same items, two
/// systems). `resamples` of `n` items drawn with replacement, seeded.
pub fn paired_bootstrap(
    credits_a: &[f64],
    credits_b: &[f64],
    resamples: usize,
    seed: u64,
) -> PairedBootstrap {
    assert_eq!(credits_a.len(), credits_b.len(), "paired vectors must align");
    assert!(!credits_a.is_empty(), "need at least one item");
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let n = credits_a.len();
    let diffs: Vec<f64> = credits_a.iter().zip(credits_b).map(|(a, b)| a - b).collect();
    let mean_diff = 100.0 * diffs.iter().sum::<f64>() / n as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..resamples.max(1))
        .map(|_| {
            let total: f64 = (0..n).map(|_| diffs[rng.random_range(0..n)]).sum();
            100.0 * total / n as f64
        })
        .collect();
    means.sort_by(f64::total_cmp);
    let pct = |q: f64| means[((means.len() - 1) as f64 * q).round() as usize];
    let p_not_better = means.iter().filter(|&&m| m <= 0.0).count() as f64 / means.len() as f64;
    PairedBootstrap { mean_diff, ci_low: pct(0.025), ci_high: pct(0.975), p_not_better }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{EvalEnv, EvalEnvConfig};
    use pas_core::NoOptimizer;
    use pas_llm::SimLlm;

    fn env() -> EvalEnv {
        EvalEnv::build(&EvalEnvConfig { arena_items: 60, alpaca_items: 60, seed: 3 })
    }

    #[test]
    fn stronger_model_scores_higher() {
        let env = env();
        let judge = Judge::default();
        let reference = SimLlm::named(&env.arena.reference_model, env.world.clone());
        let strong = SimLlm::named("gpt-4-turbo-2024-04-09", env.world.clone());
        let weak = SimLlm::named("gpt-3.5-turbo-1106", env.world.clone());
        let s = evaluate_suite(&strong, &NoOptimizer, &env.arena, &reference, &judge);
        let w = evaluate_suite(&weak, &NoOptimizer, &env.arena, &reference, &judge);
        assert!(s.win_rate > w.win_rate + 10.0, "strong {} vs weak {}", s.win_rate, w.win_rate);
        assert_eq!(s.items, 60);
    }

    #[test]
    fn scores_are_deterministic() {
        let env = env();
        let judge = Judge::default();
        let reference = SimLlm::named(&env.alpaca.reference_model, env.world.clone());
        let model = SimLlm::named("qwen2-72b-chat", env.world.clone());
        let a = evaluate_suite(&model, &NoOptimizer, &env.alpaca, &reference, &judge);
        let b = evaluate_suite(&model, &NoOptimizer, &env.alpaca, &reference, &judge);
        assert_eq!(a.win_rate, b.win_rate);
    }

    #[test]
    fn reference_against_itself_is_near_fifty() {
        let env = env();
        let judge = Judge::default();
        let reference = SimLlm::named(&env.alpaca.reference_model, env.world.clone());
        let score = evaluate_suite(&reference, &NoOptimizer, &env.alpaca, &reference, &judge);
        assert!((35.0..=65.0).contains(&score.win_rate), "self-play win rate {}", score.win_rate);
    }

    #[test]
    fn per_item_credits_align_with_aggregate() {
        let env = env();
        let judge = Judge::default();
        let reference = SimLlm::named(&env.arena.reference_model, env.world.clone());
        let model = SimLlm::named("gpt-4-0613", env.world.clone());
        let credits = per_item_credits(&model, &NoOptimizer, &env.arena, &reference, &judge);
        let score = evaluate_suite(&model, &NoOptimizer, &env.arena, &reference, &judge);
        assert_eq!(credits.len(), score.items);
        let mean = 100.0 * credits.iter().sum::<f64>() / credits.len() as f64;
        assert!((mean - score.win_rate).abs() < 1e-9);
        assert!(credits.iter().all(|&c| c == 0.0 || c == 0.5 || c == 1.0));
    }

    #[test]
    fn bootstrap_flags_a_clear_winner_and_not_a_tie() {
        // A wins 80% of 200 items vs B's 20%: decisively significant.
        let a: Vec<f64> = (0..200).map(|i| if i % 5 == 0 { 0.0 } else { 1.0 }).collect();
        let b: Vec<f64> = (0..200).map(|i| if i % 5 == 0 { 1.0 } else { 0.0 }).collect();
        let boot = paired_bootstrap(&a, &b, 500, 1);
        assert!(boot.significant(), "{boot:?}");
        assert!(boot.p_not_better < 0.01);
        assert!(boot.mean_diff > 50.0);
        // Identical systems: never significant.
        let tie = paired_bootstrap(&a, &a, 500, 2);
        assert!(!tie.significant());
        assert_eq!(tie.mean_diff, 0.0);
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let a = vec![1.0, 0.5, 0.0, 1.0, 1.0, 0.0, 0.5, 1.0];
        let b = vec![0.0, 0.5, 0.5, 1.0, 0.0, 0.0, 0.5, 0.5];
        let x = paired_bootstrap(&a, &b, 300, 9);
        let y = paired_bootstrap(&a, &b, 300, 9);
        assert_eq!(x.ci_low, y.ci_low);
        assert_eq!(x.ci_high, y.ci_high);
    }

    #[test]
    fn empty_suite_is_zero() {
        let env = env();
        let judge = Judge::default();
        let reference = SimLlm::named("reference-arena", env.world.clone());
        let model = SimLlm::named("gpt-4-0613", env.world.clone());
        let empty = BenchSuite { items: Vec::new(), ..env.arena.clone() };
        let score = evaluate_suite(&model, &NoOptimizer, &empty, &reference, &judge);
        assert_eq!(score.items, 0);
        assert_eq!(score.win_rate, 0.0);
    }
}

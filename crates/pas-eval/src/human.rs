//! The §4.5 human-evaluation panel.
//!
//! The paper grades responses with human evaluators over eight scenario
//! categories, reporting the full-mark proportion, average score (1–5),
//! availability proportion (Table 4) and per-category GSB (good/same/bad)
//! win bars (Figure 1b). The workspace panel is a set of seeded evaluator
//! personas: each maps measured response quality to a 1–5 grade through its
//! own strictness offset and per-response noise, so the panel disagrees
//! with itself about as much as human annotators do, while every number
//! stays reproducible.

use std::sync::Arc;

use pas_core::PromptOptimizer;
use pas_data::{Corpus, CorpusConfig};
use pas_llm::{Category, ChatModel, SimLlm, World};
use pas_text::hash::{fx_combine, fx_hash_str};

use crate::judge::assess;
use crate::suite::BenchItem;

/// The eight human-evaluation scenarios of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// "Analysis and Judgment".
    AnalysisJudgment,
    /// "Subjective Advice".
    SubjectiveAdvice,
    /// "Subjective Recommendation".
    SubjectiveRecommendation,
    /// "Common Sense".
    CommonSense,
    /// "Event Query".
    EventQuery,
    /// "Entity Query".
    EntityQuery,
    /// "Industry Knowledge".
    IndustryKnowledge,
    /// "Academic Knowledge".
    AcademicKnowledge,
}

impl Scenario {
    /// All scenarios, Table 4 row order.
    pub const ALL: [Scenario; 8] = [
        Scenario::AnalysisJudgment,
        Scenario::SubjectiveAdvice,
        Scenario::SubjectiveRecommendation,
        Scenario::CommonSense,
        Scenario::EventQuery,
        Scenario::EntityQuery,
        Scenario::IndustryKnowledge,
        Scenario::AcademicKnowledge,
    ];

    /// Display name, matching the paper's rows.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::AnalysisJudgment => "Analysis and Judgment",
            Scenario::SubjectiveAdvice => "Subjective Advice",
            Scenario::SubjectiveRecommendation => "Subjective Recommendation",
            Scenario::CommonSense => "Common Sense",
            Scenario::EventQuery => "Event Query",
            Scenario::EntityQuery => "Entity Query",
            Scenario::IndustryKnowledge => "Industry Knowledge",
            Scenario::AcademicKnowledge => "Academic Knowledge",
        }
    }

    /// The prompt category the scenario draws items from.
    pub fn category(self) -> Category {
        match self {
            Scenario::AnalysisJudgment => Category::Analysis,
            Scenario::SubjectiveAdvice => Category::Brainstorming,
            Scenario::SubjectiveRecommendation => Category::Recommendation,
            Scenario::CommonSense => Category::QuestionAnswering,
            Scenario::EventQuery => Category::Summarization,
            Scenario::EntityQuery => Category::QuestionAnswering,
            Scenario::IndustryKnowledge => Category::Analysis,
            Scenario::AcademicKnowledge => Category::Knowledge,
        }
    }

    fn seed_salt(self) -> u64 {
        self as u64 + 1
    }
}

/// One evaluator persona.
#[derive(Debug, Clone, Copy)]
pub struct Evaluator {
    /// Grade-point offset subtracted from everyone's work (a harsher
    /// grader has a higher strictness).
    pub strictness: f32,
    /// Persona seed for per-response noise.
    pub seed: u64,
}

impl Evaluator {
    /// Grades a response 1–5 against its rubric.
    pub fn grade(&self, item: &BenchItem, response: &str) -> u8 {
        let q = assess(&item.meta, response).score();
        // Persona noise: one deterministic uniform in [-0.35, 0.35] grades.
        let h = fx_combine(fx_hash_str(response), self.seed);
        let noise = ((h >> 11) as f32 / (1u64 << 53) as f32 - 0.5) * 1.2;
        let continuous = 0.2 + 5.2 * q.clamp(0.0, 1.0) - self.strictness + noise;
        (continuous.round().clamp(1.0, 5.0)) as u8
    }
}

/// The full panel.
#[derive(Debug, Clone)]
pub struct Panel {
    evaluators: Vec<Evaluator>,
}

impl Panel {
    /// A panel of `n` personas with spread strictness.
    pub fn new(n: usize, seed: u64) -> Panel {
        let evaluators = (0..n)
            .map(|i| Evaluator {
                strictness: -0.4 + 1.1 * (i as f32) / (n.max(2) - 1) as f32,
                seed: fx_combine(seed, i as u64 + 1),
            })
            .collect();
        Panel { evaluators }
    }

    /// The item's grade: median of the panel's votes.
    pub fn grade(&self, item: &BenchItem, response: &str) -> u8 {
        let mut votes: Vec<u8> = self.evaluators.iter().map(|e| e.grade(item, response)).collect();
        votes.sort_unstable();
        votes[votes.len() / 2]
    }
}

/// Table 4 metrics for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioMetrics {
    /// The scenario.
    pub scenario: Scenario,
    /// Fraction of items graded 5.
    pub full_mark: f64,
    /// Mean grade.
    pub average: f64,
    /// Fraction of items graded ≥ 3 ("available").
    pub availability: f64,
}

/// Figure 1b GSB result for one scenario.
#[derive(Debug, Clone)]
pub struct GsbResult {
    /// The scenario.
    pub scenario: Scenario,
    /// Fraction where PAS response out-graded the baseline.
    pub good: f64,
    /// Fraction of equal grades.
    pub same: f64,
    /// Fraction where the baseline won.
    pub bad: f64,
}

/// Human-evaluation configuration.
#[derive(Debug, Clone)]
pub struct HumanEvalConfig {
    /// Items per scenario.
    pub items_per_scenario: usize,
    /// Panel size.
    pub panel_size: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for HumanEvalConfig {
    fn default() -> Self {
        HumanEvalConfig { items_per_scenario: 60, panel_size: 5, seed: 0x40a4 }
    }
}

/// Complete human-evaluation outcome.
#[derive(Debug, Clone)]
pub struct HumanEvalOutcome {
    /// Per-scenario metrics without PAS.
    pub baseline: Vec<ScenarioMetrics>,
    /// Per-scenario metrics with PAS.
    pub with_pas: Vec<ScenarioMetrics>,
    /// Per-scenario GSB comparison.
    pub gsb: Vec<GsbResult>,
}

/// Builds the per-scenario item sets over one world.
pub fn scenario_items(config: &HumanEvalConfig) -> (Vec<(Scenario, Vec<BenchItem>)>, Arc<World>) {
    let mut world = World::new();
    let mut out = Vec::new();
    for scenario in Scenario::ALL {
        let category = scenario.category();
        let corpus = Corpus::generate(&CorpusConfig {
            size: config.items_per_scenario * 24,
            seed: config.seed ^ scenario.seed_salt().rotate_left(13),
            dup_rate: 0.0,
            junk_rate: 0.0,
            ..CorpusConfig::default()
        });
        let mut items = Vec::with_capacity(config.items_per_scenario);
        for rec in corpus.records {
            if items.len() >= config.items_per_scenario {
                break;
            }
            if rec.meta.category != category {
                continue;
            }
            world.register(&rec.text, rec.meta.clone());
            items.push(BenchItem { prompt: rec.text, meta: rec.meta });
        }
        out.push((scenario, items));
    }
    (out, Arc::new(world))
}

/// Runs the human evaluation of `optimizer` plugged into `model_name`.
pub fn run_human_eval<O: PromptOptimizer>(
    config: &HumanEvalConfig,
    optimizer: &O,
    model_name: &str,
) -> HumanEvalOutcome {
    let (scenarios, world) = scenario_items(config);
    let model = SimLlm::named(model_name, world);
    let panel = Panel::new(config.panel_size, config.seed);

    let mut baseline = Vec::new();
    let mut with_pas = Vec::new();
    let mut gsb = Vec::new();
    for (scenario, items) in &scenarios {
        let mut base_grades = Vec::with_capacity(items.len());
        let mut pas_grades = Vec::with_capacity(items.len());
        for item in items {
            let base_resp = model.chat(&item.prompt);
            let pas_resp = model.chat(&optimizer.optimize(&item.prompt));
            base_grades.push(panel.grade(item, &base_resp));
            pas_grades.push(panel.grade(item, &pas_resp));
        }
        baseline.push(metrics(*scenario, &base_grades));
        with_pas.push(metrics(*scenario, &pas_grades));
        gsb.push(gsb_of(*scenario, &pas_grades, &base_grades));
    }
    HumanEvalOutcome { baseline, with_pas, gsb }
}

fn metrics(scenario: Scenario, grades: &[u8]) -> ScenarioMetrics {
    let n = grades.len().max(1) as f64;
    ScenarioMetrics {
        scenario,
        full_mark: grades.iter().filter(|&&g| g == 5).count() as f64 / n,
        average: grades.iter().map(|&g| g as f64).sum::<f64>() / n,
        availability: grades.iter().filter(|&&g| g >= 3).count() as f64 / n,
    }
}

fn gsb_of(scenario: Scenario, pas: &[u8], base: &[u8]) -> GsbResult {
    let n = pas.len().max(1) as f64;
    let good = pas.iter().zip(base).filter(|(p, b)| p > b).count() as f64 / n;
    let bad = pas.iter().zip(base).filter(|(p, b)| p < b).count() as f64 / n;
    GsbResult { scenario, good, same: 1.0 - good - bad, bad }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_llm::world::{Aspect, AspectSet, PromptMeta};
    use pas_text::lang::Language;

    fn item() -> BenchItem {
        BenchItem {
            prompt: "Analyze remote work effects on productivity".into(),
            meta: PromptMeta {
                category: Category::Analysis,
                required: [Aspect::Depth, Aspect::Completeness].into_iter().collect(),
                explicit: AspectSet::EMPTY,
                ambiguity: 0.4,
                trap: false,
                language: Language::English,
                topic: "remote work productivity".into(),
            },
        }
    }

    #[test]
    fn grades_are_bounded_and_ordered_by_quality() {
        let panel = Panel::new(5, 1);
        let good = format!(
            "Regarding remote work productivity: here is a detailed analysis in depth. \
             we cover all cases and consider edge cases. In conclusion, {}.",
            pas_llm::simllm::CORRECT_MARKER
        );
        let bad = "no idea";
        let g = panel.grade(&item(), &good);
        let b = panel.grade(&item(), bad);
        assert!((1..=5).contains(&g) && (1..=5).contains(&b));
        assert!(g > b, "good {g} vs bad {b}");
    }

    #[test]
    fn stricter_evaluators_grade_lower_or_equal() {
        let lenient = Evaluator { strictness: -0.4, seed: 3 };
        let harsh = Evaluator { strictness: 0.6, seed: 3 };
        let resp = "Regarding remote work productivity: here is a detailed analysis in depth.";
        assert!(lenient.grade(&item(), resp) >= harsh.grade(&item(), resp));
    }

    #[test]
    fn scenario_items_respect_their_category() {
        let cfg = HumanEvalConfig { items_per_scenario: 10, ..HumanEvalConfig::default() };
        let (scenarios, world) = scenario_items(&cfg);
        assert_eq!(scenarios.len(), 8);
        for (scenario, items) in &scenarios {
            assert!(!items.is_empty(), "{scenario:?} has no items");
            for item in items {
                assert_eq!(item.meta.category, scenario.category());
                assert!(world.lookup(&item.prompt).is_some());
            }
        }
    }

    #[test]
    fn metrics_math_checks_out() {
        let m = metrics(Scenario::CommonSense, &[5, 5, 3, 2, 1]);
        assert!((m.full_mark - 0.4).abs() < 1e-9);
        assert!((m.availability - 0.6).abs() < 1e-9);
        assert!((m.average - 3.2).abs() < 1e-9);
    }

    #[test]
    fn gsb_fractions_sum_to_one() {
        let g = gsb_of(Scenario::EventQuery, &[5, 4, 3, 3], &[3, 4, 4, 3]);
        assert!((g.good + g.same + g.bad - 1.0).abs() < 1e-9);
        assert!((g.good - 0.25).abs() < 1e-9);
        assert!((g.bad - 0.25).abs() < 1e-9);
    }
}

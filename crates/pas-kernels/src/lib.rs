//! Deterministic SIMD-style compute kernels for the workspace hot paths.
//!
//! Every reduction kernel uses a **fixed 8-lane striped accumulator**:
//! element `i` always lands in lane `i % 8`, and the eight partial sums
//! collapse through one fixed pairwise tree ([`reduce8`]). The lane loop is
//! shaped so LLVM autovectorizes it (8 × f32 = one AVX register, two SSE
//! registers), but the *numeric* result is defined purely by IEEE-754
//! single-precision adds and muls in a fixed order — never by what the
//! hardware offers. Consequences:
//!
//! - the same input gives bit-identical output on every machine and at
//!   every thread count (Rust never auto-contracts `a*b + c` into an FMA),
//! - a straight-line scalar loop with the same striping ([`reference`])
//!   reproduces every kernel bit-for-bit, which is what the property tests
//!   pin,
//! - results are *different bits* from a naive sequential sum — callers that
//!   pin exact downstream numbers re-pin them when switching to the kernels.
//!
//! Element-wise kernels ([`axpy`], [`add`], [`scale`], [`mul`]) have no
//! reduction and therefore no ordering question; they are unrolled the same
//! way purely for speed.
//!
//! [`gemm`] is the blocked/packed matrix-multiply kernel. Its accumulation
//! order per output element is *strictly increasing `p`* (the shared
//! dimension), identical to the textbook i-k-j loop — blocking reorders the
//! memory traffic, not the per-element float additions.

/// Stripe width of every reduction kernel. Element `i` accumulates into
/// lane `i % LANES`.
pub const LANES: usize = 8;

/// Collapses the 8 lane partials in a fixed pairwise tree. The order is part
/// of the determinism contract — do not "simplify" to `iter().sum()`.
#[inline(always)]
fn reduce8(acc: [f32; LANES]) -> f32 {
    let s04 = acc[0] + acc[4];
    let s15 = acc[1] + acc[5];
    let s26 = acc[2] + acc[6];
    let s37 = acc[3] + acc[7];
    (s04 + s26) + (s15 + s37)
}

#[inline(always)]
fn assert_same_len(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
}

/// Dot product with 8-lane striped accumulation.
///
/// # Panics
/// Panics when the lengths differ — mixing dimensions is always a bug.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_same_len(a, b);
    let split = a.len() - a.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for (ca, cb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
        for j in 0..LANES {
            acc[j] += ca[j] * cb[j];
        }
    }
    for (j, (&x, &y)) in a[split..].iter().zip(&b[split..]).enumerate() {
        acc[j] += x * y;
    }
    reduce8(acc)
}

/// Sum of squares (`‖v‖²`) with 8-lane striped accumulation.
pub fn sum_sq(v: &[f32]) -> f32 {
    let split = v.len() - v.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for c in v[..split].chunks_exact(LANES) {
        for j in 0..LANES {
            acc[j] += c[j] * c[j];
        }
    }
    for (j, &x) in v[split..].iter().enumerate() {
        acc[j] += x * x;
    }
    reduce8(acc)
}

/// Squared Euclidean distance with 8-lane striped accumulation.
///
/// # Panics
/// Panics when the lengths differ.
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_same_len(a, b);
    let split = a.len() - a.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for (ca, cb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
        for j in 0..LANES {
            let d = ca[j] - cb[j];
            acc[j] += d * d;
        }
    }
    for (j, (&x, &y)) in a[split..].iter().zip(&b[split..]).enumerate() {
        let d = x - y;
        acc[j] += d * d;
    }
    reduce8(acc)
}

/// Fused single pass returning `(a·b, ‖a‖², ‖b‖²)` — one load of each
/// operand instead of three. This is the raw-cosine primitive: callers take
/// the square roots themselves (and the pre-normalized stores skip them
/// entirely).
///
/// # Panics
/// Panics when the lengths differ.
pub fn dot_norms(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
    assert_same_len(a, b);
    let split = a.len() - a.len() % LANES;
    let mut acc_d = [0.0f32; LANES];
    let mut acc_a = [0.0f32; LANES];
    let mut acc_b = [0.0f32; LANES];
    for (ca, cb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
        for j in 0..LANES {
            acc_d[j] += ca[j] * cb[j];
            acc_a[j] += ca[j] * ca[j];
            acc_b[j] += cb[j] * cb[j];
        }
    }
    for (j, (&x, &y)) in a[split..].iter().zip(&b[split..]).enumerate() {
        acc_d[j] += x * y;
        acc_a[j] += x * x;
        acc_b[j] += y * y;
    }
    (reduce8(acc_d), reduce8(acc_a), reduce8(acc_b))
}

/// Cosine similarity in `[-1, 1]`, built on [`dot_norms`]. Returns 0.0 when
/// either vector is zero — the workspace-wide convention (degenerate inputs
/// compare as "unrelated" rather than poisoning thresholds with NaN; the
/// matching *distance* convention is `1 − 0 = 1`).
///
/// This is the single implementation of cosine in the workspace:
/// `pas_embed::cosine` and `pas_ann`'s `CosineDistance` both delegate here.
pub fn cosine_sim(a: &[f32], b: &[f32]) -> f32 {
    let (d, na2, nb2) = dot_norms(a, b);
    if na2 == 0.0 || nb2 == 0.0 {
        return 0.0;
    }
    (d / (na2.sqrt() * nb2.sqrt())).clamp(-1.0, 1.0)
}

/// `y[i] += alpha * x[i]`. Element-wise — no reduction, so the unroll is
/// purely a speed concern and the result matches the naive loop bit-for-bit.
///
/// # Panics
/// Panics when the lengths differ.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_same_len(x, y);
    let split = x.len() - x.len() % LANES;
    for (cx, cy) in x[..split].chunks_exact(LANES).zip(y[..split].chunks_exact_mut(LANES)) {
        for j in 0..LANES {
            cy[j] += alpha * cx[j];
        }
    }
    for (xv, yv) in x[split..].iter().zip(&mut y[split..]) {
        *yv += alpha * xv;
    }
}

/// `y[i] += x[i]`.
///
/// # Panics
/// Panics when the lengths differ.
pub fn add(y: &mut [f32], x: &[f32]) {
    assert_same_len(x, y);
    let split = x.len() - x.len() % LANES;
    for (cx, cy) in x[..split].chunks_exact(LANES).zip(y[..split].chunks_exact_mut(LANES)) {
        for j in 0..LANES {
            cy[j] += cx[j];
        }
    }
    for (xv, yv) in x[split..].iter().zip(&mut y[split..]) {
        *yv += xv;
    }
}

/// `v[i] *= s`.
pub fn scale(v: &mut [f32], s: f32) {
    for x in v.iter_mut() {
        *x *= s;
    }
}

/// `y[i] *= x[i]` (Hadamard product in place).
///
/// # Panics
/// Panics when the lengths differ.
pub fn mul(y: &mut [f32], x: &[f32]) {
    assert_same_len(x, y);
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv *= xv;
    }
}

/// Rows of `A` handled together by the [`gemm`] microkernel (register
/// blocking: one pass over a B panel updates this many output rows).
pub const GEMM_MR: usize = 4;
/// k-extent of a packed B panel (tile height).
const GEMM_KC: usize = 128;
/// n-extent of a packed B panel (tile width).
const GEMM_NC: usize = 256;

/// Blocked matrix multiply: `out += A · B` with `A` m×k, `B` k×n, `out` m×n,
/// all row-major. `out` is typically zeroed by the caller.
///
/// Loop structure: n is tiled by `GEMM_NC`, k by `GEMM_KC`; each k×n tile of
/// `B` is packed into a contiguous panel (a no-op borrow when the tile spans
/// the full width — rows are already contiguous), and an `MR`-row microkernel
/// streams the panel once per `MR` output rows instead of once per row.
/// Per output element the float additions still happen in strictly
/// increasing `p` order — k-tiles are visited in order and every tile covers
/// a contiguous `p` range — so the result is **bit-identical to the naive
/// i-k-j loop** and machine-invariant.
///
/// # Panics
/// Panics when a buffer length does not match its shape.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm: A buffer does not match {m}x{k}");
    assert_eq!(b.len(), k * n, "gemm: B buffer does not match {k}x{n}");
    assert_eq!(out.len(), m * n, "gemm: out buffer does not match {m}x{n}");
    let mut packed = Vec::new();
    for jb in (0..n).step_by(GEMM_NC) {
        let nb = GEMM_NC.min(n - jb);
        for pb in (0..k).step_by(GEMM_KC) {
            let kb = GEMM_KC.min(k - pb);
            // Pack B[pb.., jb..] into a contiguous kb×nb panel; when the
            // tile spans the full row width the rows already are one.
            let panel: &[f32] = if nb == n {
                &b[pb * n..(pb + kb) * n]
            } else {
                packed.clear();
                packed.reserve(kb * nb);
                for p in 0..kb {
                    let row = (pb + p) * n + jb;
                    packed.extend_from_slice(&b[row..row + nb]);
                }
                &packed
            };
            let mut i = 0;
            while i + GEMM_MR <= m {
                gemm_micro4(i, k, n, pb, kb, jb, nb, a, panel, out);
                i += GEMM_MR;
            }
            for i in i..m {
                let arow = &a[i * k + pb..i * k + pb + kb];
                let orow = &mut out[i * n + jb..i * n + jb + nb];
                for (p, &av) in arow.iter().enumerate() {
                    axpy(av, &panel[p * nb..(p + 1) * nb], orow);
                }
            }
        }
    }
}

/// Four-row microkernel of [`gemm`]: `out[i..i+4][jb..jb+nb] += A-block ·
/// panel`. Each panel row is loaded once and fans out to four accumulating
/// output rows (4× less B traffic than row-at-a-time).
#[allow(clippy::too_many_arguments)]
#[inline]
fn gemm_micro4(
    i: usize,
    k: usize,
    n: usize,
    pb: usize,
    kb: usize,
    jb: usize,
    nb: usize,
    a: &[f32],
    panel: &[f32],
    out: &mut [f32],
) {
    let arow = |r: usize| &a[(i + r) * k + pb..(i + r) * k + pb + kb];
    let (a0, a1, a2, a3) = (arow(0), arow(1), arow(2), arow(3));
    let (r0, rest) = out[i * n..(i + GEMM_MR) * n].split_at_mut(n);
    let (r1, rest) = rest.split_at_mut(n);
    let (r2, r3) = rest.split_at_mut(n);
    let o0 = &mut r0[jb..jb + nb];
    let o1 = &mut r1[jb..jb + nb];
    let o2 = &mut r2[jb..jb + nb];
    let o3 = &mut r3[jb..jb + nb];
    for p in 0..kb {
        let brow = &panel[p * nb..(p + 1) * nb];
        let (x0, x1, x2, x3) = (a0[p], a1[p], a2[p], a3[p]);
        for (j, &bv) in brow.iter().enumerate() {
            o0[j] += x0 * bv;
            o1[j] += x1 * bv;
            o2[j] += x2 * bv;
            o3[j] += x3 * bv;
        }
    }
}

pub mod reference {
    //! Straight-line scalar references with the *same* summation order as
    //! the kernels: element `i` into lane `i % 8`, same pairwise reduction.
    //! The property tests pin each kernel bit-for-bit against these — any
    //! divergence means the kernel changed the math, not just the speed.

    use super::{reduce8, LANES};

    /// Scalar-indexed striped dot product.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len());
        let mut acc = [0.0f32; LANES];
        for i in 0..a.len() {
            acc[i % LANES] += a[i] * b[i];
        }
        reduce8(acc)
    }

    /// Scalar-indexed striped sum of squares.
    pub fn sum_sq(v: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        for (i, &x) in v.iter().enumerate() {
            acc[i % LANES] += x * x;
        }
        reduce8(acc)
    }

    /// Scalar-indexed striped squared L2 distance.
    pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len());
        let mut acc = [0.0f32; LANES];
        for i in 0..a.len() {
            let d = a[i] - b[i];
            acc[i % LANES] += d * d;
        }
        reduce8(acc)
    }

    /// Scalar-indexed striped fused `(a·b, ‖a‖², ‖b‖²)`.
    pub fn dot_norms(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        assert_eq!(a.len(), b.len());
        let mut acc_d = [0.0f32; LANES];
        let mut acc_a = [0.0f32; LANES];
        let mut acc_b = [0.0f32; LANES];
        for i in 0..a.len() {
            acc_d[i % LANES] += a[i] * b[i];
            acc_a[i % LANES] += a[i] * a[i];
            acc_b[i % LANES] += b[i] * b[i];
        }
        (reduce8(acc_d), reduce8(acc_a), reduce8(acc_b))
    }

    /// Naive `y += alpha * x`.
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), y.len());
        for i in 0..x.len() {
            y[i] += alpha * x[i];
        }
    }

    /// Naive i-k-j matrix multiply, `out += A · B` — the accumulation-order
    /// reference [`super::gemm`] must match bit-for-bit.
    pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(a.len(), m * k);
        assert_eq!(b.len(), k * n);
        assert_eq!(out.len(), m * n);
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    out[i * n + j] += av * b[p * n + j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic non-trivial fill (no RNG needed).
    fn wave(len: usize, phase: f32) -> Vec<f32> {
        (0..len).map(|i| (i as f32 * 0.37 + phase).sin() * 1.5).collect()
    }

    #[test]
    fn dot_known_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn sum_sq_and_l2_known_values() {
        assert_eq!(sum_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn dot_norms_matches_parts() {
        let a = wave(37, 0.1);
        let b = wave(37, 2.2);
        let (d, na2, nb2) = dot_norms(&a, &b);
        assert_eq!(d.to_bits(), dot(&a, &b).to_bits());
        assert_eq!(na2.to_bits(), sum_sq(&a).to_bits());
        assert_eq!(nb2.to_bits(), sum_sq(&b).to_bits());
    }

    #[test]
    fn cosine_sim_conventions() {
        assert!((cosine_sim(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_sim(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine_sim(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_sim(&[0.0; 4], &[0.0; 4]), 0.0);
    }

    #[test]
    fn axpy_add_scale_mul() {
        let x = wave(19, 0.4);
        let mut y = wave(19, 1.3);
        let mut y2 = y.clone();
        axpy(0.5, &x, &mut y);
        reference::axpy(0.5, &x, &mut y2);
        assert_eq!(y, y2);
        let mut z = vec![1.0, 2.0];
        add(&mut z, &[3.0, 4.0]);
        assert_eq!(z, vec![4.0, 6.0]);
        scale(&mut z, 0.5);
        assert_eq!(z, vec![2.0, 3.0]);
        mul(&mut z, &[2.0, -1.0]);
        assert_eq!(z, vec![4.0, -3.0]);
    }

    #[test]
    fn kernels_bit_match_reference_across_tail_lengths() {
        for len in 0..=(3 * LANES + 1) {
            let a = wave(len, 0.0);
            let b = wave(len, 1.0);
            assert_eq!(dot(&a, &b).to_bits(), reference::dot(&a, &b).to_bits(), "len {len}");
            assert_eq!(sum_sq(&a).to_bits(), reference::sum_sq(&a).to_bits(), "len {len}");
            assert_eq!(l2_sq(&a, &b).to_bits(), reference::l2_sq(&a, &b).to_bits(), "len {len}");
        }
    }

    #[test]
    fn gemm_matches_reference_all_small_shapes() {
        for &(m, k, n) in
            &[(1, 1, 1), (3, 5, 7), (4, 8, 4), (5, 9, 3), (8, 300, 5), (9, 130, 260), (2, 0, 3)]
        {
            let a = wave(m * k, 0.3);
            let b = wave(k * n, 0.7);
            let mut out = vec![0.0f32; m * n];
            let mut expect = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut out);
            reference::gemm(m, k, n, &a, &b, &mut expect);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out), bits(&expect), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_rejects_mismatched_dims() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}

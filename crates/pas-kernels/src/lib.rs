//! Deterministic SIMD compute kernels for the workspace hot paths.
//!
//! Every reduction kernel uses a **fixed 8-lane striped accumulator**:
//! element `i` always lands in lane `i % 8`, and the eight partial sums
//! collapse through one fixed pairwise tree ([`reduce8`]). The *numeric*
//! result is defined purely by IEEE-754 single-precision adds and muls in a
//! fixed order — never by what the hardware offers. Consequences:
//!
//! - the same input gives bit-identical output on every machine, at every
//!   thread count, and — new in this layer — on every *backend* (Rust never
//!   auto-contracts `a*b + c` into an FMA, and the hand-written SIMD paths
//!   use separate mul/add intrinsics for the same reason),
//! - a straight-line scalar loop with the same striping ([`reference`])
//!   reproduces every kernel bit-for-bit, which is what the property tests
//!   pin,
//! - results are *different bits* from a naive sequential sum — callers that
//!   pin exact downstream numbers re-pin them when switching to the kernels.
//!
//! # Backends
//!
//! The crate ships three implementations of the hot kernels and picks one at
//! runtime ([`backend`]):
//!
//! - [`Backend::Scalar`] — the striped scalar loops in [`striped`] (LLVM
//!   autovectorizes them; this is the reference the others must match).
//! - [`Backend::Sse2`] — two 128-bit accumulators covering lanes 0–3 / 4–7.
//!   SSE2 is baseline on `x86_64`, so this needs no CPU probe.
//! - [`Backend::Avx2`] — one 256-bit accumulator holding all 8 lanes, used
//!   when `is_x86_feature_detected!("avx2")` says so.
//!
//! A 256-bit lane `j` of the AVX accumulator performs exactly the additions
//! scalar lane `j` performs, in the same order, so the SIMD paths are
//! bit-identical to [`striped`] *by construction*, and the unit tests pin it.
//! The `PAS_KERNEL_BACKEND` environment variable (`scalar` | `simd` | `sse2`
//! | `avx2` | `auto`) overrides detection — CI runs the whole workspace under
//! `scalar` and `simd` and byte-compares every emitted snapshot.
//!
//! Element-wise kernels ([`axpy`], [`add`], [`scale`], [`mul`]) have no
//! reduction and therefore no ordering question; their SIMD forms are
//! trivially identical.
//!
//! [`gemm`] is the blocked/packed matrix-multiply kernel. Its accumulation
//! order per output element is *strictly increasing `p`* (the shared
//! dimension), identical to the textbook i-k-j loop — blocking and the AVX2
//! register-tiled microkernel reorder the memory traffic, not the
//! per-element float additions.
//!
//! [`dot_block`] is the probe primitive: one query against a packed panel of
//! rows. Each output is bit-identical to [`dot`] of that pair; the speed
//! comes from running four independent striped accumulator chains at once
//! (a single striped dot is add-latency-bound, so same-order SIMD cannot
//! beat it — inter-dot parallelism can). [`dot_i8`] / [`dot_i8_block`] are
//! the int8 quantized-probe primitives; integer addition is associative, so
//! those are exact on every backend by definition.

use std::sync::atomic::{AtomicU8, Ordering};

/// Stripe width of every reduction kernel. Element `i` accumulates into
/// lane `i % LANES`.
pub const LANES: usize = 8;

/// Which kernel implementation the crate dispatches to. See the crate docs
/// for the determinism contract: all backends are bit-identical, so this is
/// purely a speed (and CI cross-checking) knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Backend {
    /// Striped scalar loops (the autovectorized reference).
    Scalar = 0,
    /// Two 128-bit accumulators; baseline on `x86_64`.
    Sse2 = 1,
    /// One 256-bit accumulator; requires runtime AVX2 detection.
    Avx2 = 2,
}

impl Backend {
    /// Stable lowercase name (used in bench rows and the obs gauge docs).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    /// Numeric id for the `kernels.backend` gauge (0 scalar, 1 sse2, 2 avx2).
    pub fn index(self) -> u64 {
        self as u64
    }

    /// True for the hand-written `core::arch` paths.
    pub fn is_simd(self) -> bool {
        self != Backend::Scalar
    }
}

const BACKEND_UNSET: u8 = u8::MAX;
static BACKEND: AtomicU8 = AtomicU8::new(BACKEND_UNSET);

/// The widest backend this CPU supports.
fn best_available() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            Backend::Avx2
        } else {
            Backend::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Backend::Scalar
    }
}

fn resolve_backend() -> Backend {
    match std::env::var("PAS_KERNEL_BACKEND").ok().as_deref() {
        Some("scalar") => Backend::Scalar,
        // "simd" means "the best SIMD path this CPU has"; on a non-x86_64
        // host that is the scalar stripes — outputs are identical either
        // way, so a silent fallback is safe (and what the CI matrix wants).
        Some("simd") | Some("auto") | None | Some("") => best_available(),
        Some("sse2") => {
            if !cfg!(target_arch = "x86_64") {
                panic!("PAS_KERNEL_BACKEND=sse2 requires an x86_64 host");
            }
            Backend::Sse2
        }
        Some("avx2") => {
            assert!(
                best_available() == Backend::Avx2,
                "PAS_KERNEL_BACKEND=avx2 but the CPU does not report AVX2"
            );
            Backend::Avx2
        }
        Some(other) => {
            panic!("unknown PAS_KERNEL_BACKEND {other:?} (expected scalar|simd|sse2|avx2|auto)")
        }
    }
}

/// The backend every top-level kernel dispatches to. Resolved once from
/// `PAS_KERNEL_BACKEND` (falling back to CPU detection) on first use.
pub fn backend() -> Backend {
    match BACKEND.load(Ordering::Relaxed) {
        0 => Backend::Scalar,
        1 => Backend::Sse2,
        2 => Backend::Avx2,
        _ => {
            let resolved = resolve_backend();
            BACKEND.store(resolved as u8, Ordering::Relaxed);
            resolved
        }
    }
}

/// Forces a specific backend (benches and the cross-backend equality tests).
/// All backends produce bit-identical results, so flipping this mid-run can
/// change speed but never output.
///
/// # Panics
/// Panics when the requested backend is not supported by this CPU.
pub fn set_backend(b: Backend) {
    #[cfg(target_arch = "x86_64")]
    let supported = b != Backend::Avx2 || best_available() == Backend::Avx2;
    #[cfg(not(target_arch = "x86_64"))]
    let supported = b == Backend::Scalar;
    assert!(supported, "backend {} not supported on this CPU", b.name());
    BACKEND.store(b as u8, Ordering::Relaxed);
}

/// True when a hand-written SIMD path (SSE2 or AVX2) is available here.
pub fn simd_available() -> bool {
    best_available().is_simd()
}

/// The widest backend this CPU supports — what `PAS_KERNEL_BACKEND=simd`
/// resolves to ([`Backend::Scalar`] on non-x86_64 hosts).
pub fn best_supported() -> Backend {
    best_available()
}

/// Collapses the 8 lane partials in a fixed pairwise tree. The order is part
/// of the determinism contract — do not "simplify" to `iter().sum()`.
#[inline(always)]
fn reduce8(acc: [f32; LANES]) -> f32 {
    let s04 = acc[0] + acc[4];
    let s15 = acc[1] + acc[5];
    let s26 = acc[2] + acc[6];
    let s37 = acc[3] + acc[7];
    (s04 + s26) + (s15 + s37)
}

#[inline(always)]
fn assert_same_len(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
}

/// Dot product with 8-lane striped accumulation.
///
/// # Panics
/// Panics when the lengths differ — mixing dimensions is always a bug.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_same_len(a, b);
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::dot_avx2(a, b) },
        Backend::Sse2 => return unsafe { x86::dot_sse2(a, b) },
        Backend::Scalar => {}
    }
    striped::dot(a, b)
}

/// Sum of squares (`‖v‖²`) with 8-lane striped accumulation.
pub fn sum_sq(v: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::sum_sq_avx2(v) },
        Backend::Sse2 => return unsafe { x86::sum_sq_sse2(v) },
        Backend::Scalar => {}
    }
    striped::sum_sq(v)
}

/// Squared Euclidean distance with 8-lane striped accumulation.
///
/// # Panics
/// Panics when the lengths differ.
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_same_len(a, b);
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::l2_sq_avx2(a, b) },
        Backend::Sse2 => return unsafe { x86::l2_sq_sse2(a, b) },
        Backend::Scalar => {}
    }
    striped::l2_sq(a, b)
}

/// Fused single pass returning `(a·b, ‖a‖², ‖b‖²)` — one load of each
/// operand instead of three. This is the raw-cosine primitive: callers take
/// the square roots themselves (and the pre-normalized stores skip them
/// entirely).
///
/// # Panics
/// Panics when the lengths differ.
pub fn dot_norms(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
    assert_same_len(a, b);
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::dot_norms_avx2(a, b) },
        Backend::Sse2 => return unsafe { x86::dot_norms_sse2(a, b) },
        Backend::Scalar => {}
    }
    striped::dot_norms(a, b)
}

/// Cosine similarity in `[-1, 1]`, built on [`dot_norms`]. Returns 0.0 when
/// either vector is zero — the workspace-wide convention (degenerate inputs
/// compare as "unrelated" rather than poisoning thresholds with NaN; the
/// matching *distance* convention is `1 − 0 = 1`).
///
/// This is the single implementation of cosine in the workspace:
/// `pas_embed::cosine` and `pas_ann`'s `CosineDistance` both delegate here.
pub fn cosine_sim(a: &[f32], b: &[f32]) -> f32 {
    let (d, na2, nb2) = dot_norms(a, b);
    if na2 == 0.0 || nb2 == 0.0 {
        return 0.0;
    }
    (d / (na2.sqrt() * nb2.sqrt())).clamp(-1.0, 1.0)
}

/// Dots of one query against a packed panel of `out.len()` rows, each of
/// `query.len()` elements: `out[r] = dot(query, panel[r·d .. (r+1)·d])`.
///
/// Every output is **bit-identical to [`dot`]** of the same pair — the block
/// form exists because a single striped dot is add-latency-bound, while four
/// independent accumulator chains sharing one query load stream ~4× the
/// data per cycle. This is the ANN probe primitive: ExactIndex scans,
/// HNSW batched neighbor expansions, and `matmul_t` all reduce to it.
///
/// # Panics
/// Panics when `panel.len() != query.len() * out.len()`.
pub fn dot_block(query: &[f32], panel: &[f32], out: &mut [f32]) {
    assert_eq!(
        panel.len(),
        query.len() * out.len(),
        "dot_block: panel length {} does not match {} rows of {}",
        panel.len(),
        out.len(),
        query.len()
    );
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::dot_block_avx2(query, panel, out) },
        Backend::Sse2 => return unsafe { x86::dot_block_sse2(query, panel, out) },
        Backend::Scalar => {}
    }
    striped::dot_block(query, panel, out)
}

/// Integer dot product of two int8 code vectors, exact in `i32`. Integer
/// addition is associative, so every backend returns the same value by
/// definition — the quantized probe path is backend-invariant for free.
///
/// # Panics
/// Panics when the lengths differ.
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        return unsafe { x86::dot_i8_avx2(a, b) };
    }
    striped::dot_i8(a, b)
}

/// Block form of [`dot_i8`]: one int8 query against a packed panel of code
/// rows. Exact on every backend.
///
/// # Panics
/// Panics when `panel.len() != query.len() * out.len()`.
pub fn dot_i8_block(query: &[i8], panel: &[i8], out: &mut [i32]) {
    assert_eq!(
        panel.len(),
        query.len() * out.len(),
        "dot_i8_block: panel length {} does not match {} rows of {}",
        panel.len(),
        out.len(),
        query.len()
    );
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        return unsafe { x86::dot_i8_block_avx2(query, panel, out) };
    }
    striped::dot_i8_block(query, panel, out)
}

/// Row-indexed form of [`dot_i8_block`]: dots of one int8 query against the
/// rows `rows[j]` of a flat row-major code store, written straight to `out`
/// with no packed panel in between. Exact on every backend.
///
/// # Panics
/// Panics when `rows.len() != out.len()` or any row index is out of range
/// for `codes` (`query.len()` elements per row).
pub fn dot_i8_rows(query: &[i8], codes: &[i8], rows: &[usize], out: &mut [i32]) {
    let d = query.len();
    assert_eq!(rows.len(), out.len(), "dot_i8_rows: {} rows for {} outputs", rows.len(), out.len());
    for &r in rows {
        assert!((r + 1) * d <= codes.len(), "dot_i8_rows: row {r} out of range");
    }
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        return unsafe { x86::dot_i8_rows_avx2(query, codes, rows, out) };
    }
    striped::dot_i8_rows(query, codes, rows, out)
}

/// Sum of `lut[s·256 + codes[s]]` over subspaces `s` — the 8-bit ADC
/// (asymmetric distance computation) primitive for product-quantized
/// probes. Entries are fixed-point integers (the PQ table builder quantizes
/// each f32 sub-dot to 16-bit fixed point in a `u32` slot), so accumulation
/// is pure integer adds: associative, exact, and therefore bit-identical on
/// every backend and at every thread count by definition. The AVX2 path
/// turns the table walk into 8-wide `vpgatherdd` gathers (one gather per
/// eight subspaces); SSE2 has no gather, so it shares the scalar loop.
///
/// # Panics
/// Panics when `lut.len() != codes.len() * 256`.
pub fn lut_gather(lut: &[u32], codes: &[u8]) -> u32 {
    assert_eq!(
        lut.len(),
        codes.len() * 256,
        "lut_gather: lut length {} does not match {} subspaces of 256",
        lut.len(),
        codes.len()
    );
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        return unsafe { x86::lut_gather_avx2(lut, codes) };
    }
    striped::lut_gather(lut, codes)
}

/// Block form of [`lut_gather`]: one ADC table set against a packed
/// row-major panel of code rows (`panel[r·m..(r+1)·m]` is row `r`). Exact
/// on every backend.
///
/// # Panics
/// Panics when `lut.len()` is not a multiple of 256 or `panel.len()` does
/// not match `out.len()` rows of `lut.len() / 256` codes.
pub fn lut_gather_block(lut: &[u32], panel: &[u8], out: &mut [u32]) {
    assert_eq!(
        lut.len() % 256,
        0,
        "lut_gather_block: lut length {} is not a multiple of 256",
        lut.len()
    );
    let m = lut.len() / 256;
    assert_eq!(
        panel.len(),
        m * out.len(),
        "lut_gather_block: panel length {} does not match {} rows of {m}",
        panel.len(),
        out.len()
    );
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        return unsafe { x86::lut_gather_block_avx2(lut, panel, out) };
    }
    striped::lut_gather_block(lut, panel, out)
}

/// Row-indexed form of [`lut_gather_block`]: ADC sums for the code rows
/// `rows[j]` of a flat row-major store, with no packed panel in between.
/// Exact on every backend.
///
/// # Panics
/// Panics when `lut.len()` is not a multiple of 256, `rows.len() !=
/// out.len()`, or any row index is out of range for `codes`.
pub fn lut_gather_rows(lut: &[u32], codes: &[u8], rows: &[usize], out: &mut [u32]) {
    assert_eq!(
        lut.len() % 256,
        0,
        "lut_gather_rows: lut length {} not a multiple of 256",
        lut.len()
    );
    let m = lut.len() / 256;
    assert_eq!(
        rows.len(),
        out.len(),
        "lut_gather_rows: {} rows for {} outputs",
        rows.len(),
        out.len()
    );
    for &r in rows {
        assert!((r + 1) * m <= codes.len(), "lut_gather_rows: row {r} out of range");
    }
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        return unsafe { x86::lut_gather_rows_avx2(lut, codes, rows, out) };
    }
    striped::lut_gather_rows(lut, codes, rows, out)
}

/// 4-bit ADC single-row form: `codes[s]` holds one nibble value per byte
/// (high nibble bits are ignored) and `lut` holds `codes.len()` tables of
/// 16 `u8` entries. A single row has no lanes to amortize a shuffle over,
/// so every backend shares the scalar walk — the SIMD win lives in
/// [`lut_gather4_block`].
///
/// # Panics
/// Panics when `lut.len() != codes.len() * 16`.
pub fn lut_gather4(lut: &[u8], codes: &[u8]) -> u32 {
    assert_eq!(
        lut.len(),
        codes.len() * 16,
        "lut_gather4: lut length {} does not match {} subspaces of 16",
        lut.len(),
        codes.len()
    );
    striped::lut_gather4(lut, codes)
}

/// Block form of the 4-bit ADC over a **transposed** (subspace-major)
/// nibble panel: `codes_t[s·rows + r]` is row `r`'s code in subspace `s`,
/// one nibble value per byte (high bits ignored). The transposed layout is
/// what lets AVX2 run `pshufb`-style 16-way nibble gathers: each
/// subspace's 16-entry table broadcasts to both 128-bit lanes and one
/// shuffle looks up 32 rows' codes at once. Partial sums ride exact
/// `u16`/`u32` integer adds, so every backend agrees bit-for-bit (SSE2
/// lacks `pshufb`, so it shares the scalar loop).
///
/// # Panics
/// Panics when the buffer shapes disagree or there are more than 256
/// subspaces (the `u16` partials are exact only up to 256 entries of 255).
pub fn lut_gather4_block(lut: &[u8], codes_t: &[u8], out: &mut [u32]) {
    assert_eq!(
        lut.len() % 16,
        0,
        "lut_gather4_block: lut length {} is not a multiple of 16",
        lut.len()
    );
    let m = lut.len() / 16;
    assert!(m <= 256, "lut_gather4_block: {m} subspaces overflow the u16 partial sums");
    assert_eq!(
        codes_t.len(),
        m * out.len(),
        "lut_gather4_block: transposed panel length {} does not match {} rows of {m}",
        codes_t.len(),
        out.len()
    );
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        return unsafe { x86::lut_gather4_block_avx2(lut, codes_t, out) };
    }
    striped::lut_gather4_block(lut, codes_t, out)
}

/// `y[i] += alpha * x[i]`. Element-wise — no reduction, so vectorization is
/// purely a speed concern and the result matches the naive loop bit-for-bit.
///
/// # Panics
/// Panics when the lengths differ.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_same_len(x, y);
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::axpy_avx2(alpha, x, y) },
        Backend::Sse2 => return unsafe { x86::axpy_sse2(alpha, x, y) },
        Backend::Scalar => {}
    }
    striped::axpy(alpha, x, y)
}

/// `y[i] += x[i]`.
///
/// # Panics
/// Panics when the lengths differ.
pub fn add(y: &mut [f32], x: &[f32]) {
    assert_same_len(x, y);
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::add_avx2(y, x) },
        Backend::Sse2 => return unsafe { x86::add_sse2(y, x) },
        Backend::Scalar => {}
    }
    striped::add(y, x)
}

/// `v[i] *= s`.
pub fn scale(v: &mut [f32], s: f32) {
    for x in v.iter_mut() {
        *x *= s;
    }
}

/// `y[i] *= x[i]` (Hadamard product in place).
///
/// # Panics
/// Panics when the lengths differ.
pub fn mul(y: &mut [f32], x: &[f32]) {
    assert_same_len(x, y);
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv *= xv;
    }
}

/// Rows of `A` handled together by the [`gemm`] microkernel (register
/// blocking: one pass over a B panel updates this many output rows).
pub const GEMM_MR: usize = 4;
/// k-extent of a packed B panel (tile height).
const GEMM_KC: usize = 128;
/// n-extent of a packed B panel (tile width).
const GEMM_NC: usize = 256;

/// Blocked matrix multiply: `out += A · B` with `A` m×k, `B` k×n, `out` m×n,
/// all row-major. `out` is typically zeroed by the caller.
///
/// Loop structure: n is tiled by `GEMM_NC`, k by `GEMM_KC`; each k×n tile of
/// `B` is packed into a contiguous panel (a no-op borrow when the tile spans
/// the full width — rows are already contiguous), and an `MR`-row microkernel
/// streams the panel once per `MR` output rows instead of once per row. On
/// AVX2 the microkernel holds a 4×16 output tile in eight 256-bit registers
/// for a whole k-tile instead of accumulating through memory. Per output
/// element the float additions still happen in strictly increasing `p`
/// order — k-tiles are visited in order and every tile covers a contiguous
/// `p` range — so the result is **bit-identical to the naive i-k-j loop**
/// on every backend and machine.
///
/// # Panics
/// Panics when a buffer length does not match its shape.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm: A buffer does not match {m}x{k}");
    assert_eq!(b.len(), k * n, "gemm: B buffer does not match {k}x{n}");
    assert_eq!(out.len(), m * n, "gemm: out buffer does not match {m}x{n}");
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        // SSE2 gets no bespoke gemm: LLVM already vectorizes the striped
        // microkernel with 128-bit ops, and the win there is marginal.
        return unsafe { x86::gemm_avx2(m, k, n, a, b, out) };
    }
    striped::gemm(m, k, n, a, b, out)
}

pub mod striped {
    //! The striped **scalar** kernels — the reference implementation every
    //! SIMD backend must match bit-for-bit, and the dispatch target of
    //! [`Backend::Scalar`](super::Backend::Scalar). The lane loops are
    //! shaped so LLVM autovectorizes them (8 × f32 = one AVX register, two
    //! SSE registers); benches call these directly to report the
    //! autovectorized baseline next to the `core::arch` rows.

    use super::{assert_same_len, reduce8, GEMM_KC, GEMM_MR, GEMM_NC, LANES};

    /// Striped scalar dot product. See [`super::dot`].
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        assert_same_len(a, b);
        let split = a.len() - a.len() % LANES;
        let mut acc = [0.0f32; LANES];
        for (ca, cb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
            for j in 0..LANES {
                acc[j] += ca[j] * cb[j];
            }
        }
        for (j, (&x, &y)) in a[split..].iter().zip(&b[split..]).enumerate() {
            acc[j] += x * y;
        }
        reduce8(acc)
    }

    /// Striped scalar sum of squares. See [`super::sum_sq`].
    pub fn sum_sq(v: &[f32]) -> f32 {
        let split = v.len() - v.len() % LANES;
        let mut acc = [0.0f32; LANES];
        for c in v[..split].chunks_exact(LANES) {
            for j in 0..LANES {
                acc[j] += c[j] * c[j];
            }
        }
        for (j, &x) in v[split..].iter().enumerate() {
            acc[j] += x * x;
        }
        reduce8(acc)
    }

    /// Striped scalar squared L2 distance. See [`super::l2_sq`].
    pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        assert_same_len(a, b);
        let split = a.len() - a.len() % LANES;
        let mut acc = [0.0f32; LANES];
        for (ca, cb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
            for j in 0..LANES {
                let d = ca[j] - cb[j];
                acc[j] += d * d;
            }
        }
        for (j, (&x, &y)) in a[split..].iter().zip(&b[split..]).enumerate() {
            let d = x - y;
            acc[j] += d * d;
        }
        reduce8(acc)
    }

    /// Striped scalar fused `(a·b, ‖a‖², ‖b‖²)`. See [`super::dot_norms`].
    pub fn dot_norms(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        assert_same_len(a, b);
        let split = a.len() - a.len() % LANES;
        let mut acc_d = [0.0f32; LANES];
        let mut acc_a = [0.0f32; LANES];
        let mut acc_b = [0.0f32; LANES];
        for (ca, cb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
            for j in 0..LANES {
                acc_d[j] += ca[j] * cb[j];
                acc_a[j] += ca[j] * ca[j];
                acc_b[j] += cb[j] * cb[j];
            }
        }
        for (j, (&x, &y)) in a[split..].iter().zip(&b[split..]).enumerate() {
            acc_d[j] += x * y;
            acc_a[j] += x * x;
            acc_b[j] += y * y;
        }
        (reduce8(acc_d), reduce8(acc_a), reduce8(acc_b))
    }

    /// Striped scalar block dot: one [`dot`] per panel row. See
    /// [`super::dot_block`].
    pub fn dot_block(query: &[f32], panel: &[f32], out: &mut [f32]) {
        let d = query.len();
        assert_eq!(panel.len(), d * out.len(), "dot_block: panel/rows mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            *o = dot(query, &panel[r * d..(r + 1) * d]);
        }
    }

    /// Scalar int8 dot, exact in `i32`. See [`super::dot_i8`].
    pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
        let mut sum = 0i32;
        for (&x, &y) in a.iter().zip(b) {
            sum += x as i32 * y as i32;
        }
        sum
    }

    /// Scalar int8 block dot. See [`super::dot_i8_block`].
    pub fn dot_i8_block(query: &[i8], panel: &[i8], out: &mut [i32]) {
        let d = query.len();
        assert_eq!(panel.len(), d * out.len(), "dot_i8_block: panel/rows mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            *o = dot_i8(query, &panel[r * d..(r + 1) * d]);
        }
    }

    /// Scalar row-indexed int8 dots. See [`super::dot_i8_rows`].
    pub fn dot_i8_rows(query: &[i8], codes: &[i8], rows: &[usize], out: &mut [i32]) {
        let d = query.len();
        assert_eq!(rows.len(), out.len(), "dot_i8_rows: rows/outputs mismatch");
        for (&r, o) in rows.iter().zip(out) {
            *o = dot_i8(query, &codes[r * d..(r + 1) * d]);
        }
    }

    /// Scalar 8-bit ADC table walk, exact in `u32`. See
    /// [`super::lut_gather`].
    pub fn lut_gather(lut: &[u32], codes: &[u8]) -> u32 {
        assert_eq!(lut.len(), codes.len() * 256, "lut_gather: lut/codes mismatch");
        let mut sum = 0u32;
        for (s, &c) in codes.iter().enumerate() {
            sum = sum.wrapping_add(lut[s * 256 + c as usize]);
        }
        sum
    }

    /// Scalar 8-bit ADC block walk. See [`super::lut_gather_block`].
    pub fn lut_gather_block(lut: &[u32], panel: &[u8], out: &mut [u32]) {
        let m = lut.len() / 256;
        assert_eq!(panel.len(), m * out.len(), "lut_gather_block: panel/rows mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            *o = lut_gather(lut, &panel[r * m..(r + 1) * m]);
        }
    }

    /// Scalar row-indexed 8-bit ADC walk. See [`super::lut_gather_rows`].
    pub fn lut_gather_rows(lut: &[u32], codes: &[u8], rows: &[usize], out: &mut [u32]) {
        let m = lut.len() / 256;
        assert_eq!(rows.len(), out.len(), "lut_gather_rows: rows/outputs mismatch");
        for (&r, o) in rows.iter().zip(out) {
            *o = lut_gather(lut, &codes[r * m..(r + 1) * m]);
        }
    }

    /// Scalar 4-bit ADC table walk. See [`super::lut_gather4`].
    pub fn lut_gather4(lut: &[u8], codes: &[u8]) -> u32 {
        assert_eq!(lut.len(), codes.len() * 16, "lut_gather4: lut/codes mismatch");
        let mut sum = 0u32;
        for (s, &c) in codes.iter().enumerate() {
            sum += lut[s * 16 + (c & 15) as usize] as u32;
        }
        sum
    }

    /// Scalar 4-bit ADC block walk over a transposed panel. See
    /// [`super::lut_gather4_block`].
    pub fn lut_gather4_block(lut: &[u8], codes_t: &[u8], out: &mut [u32]) {
        let m = lut.len() / 16;
        let rows = out.len();
        assert_eq!(codes_t.len(), m * rows, "lut_gather4_block: panel/rows mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            let mut sum = 0u32;
            for s in 0..m {
                sum += lut[s * 16 + (codes_t[s * rows + r] & 15) as usize] as u32;
            }
            *o = sum;
        }
    }

    /// Striped scalar `y += alpha * x`. See [`super::axpy`].
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        assert_same_len(x, y);
        let split = x.len() - x.len() % LANES;
        for (cx, cy) in x[..split].chunks_exact(LANES).zip(y[..split].chunks_exact_mut(LANES)) {
            for j in 0..LANES {
                cy[j] += alpha * cx[j];
            }
        }
        for (xv, yv) in x[split..].iter().zip(&mut y[split..]) {
            *yv += alpha * xv;
        }
    }

    /// Striped scalar `y += x`. See [`super::add`].
    pub fn add(y: &mut [f32], x: &[f32]) {
        assert_same_len(x, y);
        let split = x.len() - x.len() % LANES;
        for (cx, cy) in x[..split].chunks_exact(LANES).zip(y[..split].chunks_exact_mut(LANES)) {
            for j in 0..LANES {
                cy[j] += cx[j];
            }
        }
        for (xv, yv) in x[split..].iter().zip(&mut y[split..]) {
            *yv += xv;
        }
    }

    /// Blocked/packed scalar gemm. See [`super::gemm`] for the contract.
    pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(a.len(), m * k, "gemm: A buffer does not match {m}x{k}");
        assert_eq!(b.len(), k * n, "gemm: B buffer does not match {k}x{n}");
        assert_eq!(out.len(), m * n, "gemm: out buffer does not match {m}x{n}");
        let mut packed = Vec::new();
        for jb in (0..n).step_by(GEMM_NC) {
            let nb = GEMM_NC.min(n - jb);
            for pb in (0..k).step_by(GEMM_KC) {
                let kb = GEMM_KC.min(k - pb);
                // Pack B[pb.., jb..] into a contiguous kb×nb panel; when the
                // tile spans the full row width the rows already are one.
                let panel: &[f32] = if nb == n {
                    &b[pb * n..(pb + kb) * n]
                } else {
                    packed.clear();
                    packed.reserve(kb * nb);
                    for p in 0..kb {
                        let row = (pb + p) * n + jb;
                        packed.extend_from_slice(&b[row..row + nb]);
                    }
                    &packed
                };
                let mut i = 0;
                while i + GEMM_MR <= m {
                    gemm_micro4(i, k, n, pb, kb, jb, nb, a, panel, out);
                    i += GEMM_MR;
                }
                for i in i..m {
                    let arow = &a[i * k + pb..i * k + pb + kb];
                    let orow = &mut out[i * n + jb..i * n + jb + nb];
                    for (p, &av) in arow.iter().enumerate() {
                        axpy(av, &panel[p * nb..(p + 1) * nb], orow);
                    }
                }
            }
        }
    }

    /// Four-row microkernel of [`gemm`]: `out[i..i+4][jb..jb+nb] += A-block ·
    /// panel`. Each panel row is loaded once and fans out to four
    /// accumulating output rows (4× less B traffic than row-at-a-time).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn gemm_micro4(
        i: usize,
        k: usize,
        n: usize,
        pb: usize,
        kb: usize,
        jb: usize,
        nb: usize,
        a: &[f32],
        panel: &[f32],
        out: &mut [f32],
    ) {
        let arow = |r: usize| &a[(i + r) * k + pb..(i + r) * k + pb + kb];
        let (a0, a1, a2, a3) = (arow(0), arow(1), arow(2), arow(3));
        let (r0, rest) = out[i * n..(i + GEMM_MR) * n].split_at_mut(n);
        let (r1, rest) = rest.split_at_mut(n);
        let (r2, r3) = rest.split_at_mut(n);
        let o0 = &mut r0[jb..jb + nb];
        let o1 = &mut r1[jb..jb + nb];
        let o2 = &mut r2[jb..jb + nb];
        let o3 = &mut r3[jb..jb + nb];
        for p in 0..kb {
            let brow = &panel[p * nb..(p + 1) * nb];
            let (x0, x1, x2, x3) = (a0[p], a1[p], a2[p], a3[p]);
            for (j, &bv) in brow.iter().enumerate() {
                o0[j] += x0 * bv;
                o1[j] += x1 * bv;
                o2[j] += x2 * bv;
                o3[j] += x3 * bv;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Hand-written `core::arch` paths. Lane `j` of each vector accumulator
    //! performs exactly the additions scalar lane `j` of [`striped`] performs,
    //! in the same order: the AVX2 kernels keep one 256-bit accumulator per
    //! stripe set, the SSE2 kernels keep two 128-bit halves (lanes 0–3 and
    //! 4–7), tails fall back to the same lane array, and every reduction
    //! goes through the shared [`reduce8`] tree. Multiplication and addition
    //! stay separate intrinsics — no FMA, ever, or the bits change.

    use core::arch::x86_64::*;

    use super::{reduce8, GEMM_KC, GEMM_MR, GEMM_NC, LANES};

    // ---- dot ------------------------------------------------------------

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let split = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < split {
            let va = _mm256_loadu_ps(pa.add(i));
            let vb = _mm256_loadu_ps(pb.add(i));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (j, i) in (split..n).enumerate() {
            lanes[j] += *pa.add(i) * *pb.add(i);
        }
        reduce8(lanes)
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn dot_sse2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let split = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut lo = _mm_setzero_ps();
        let mut hi = _mm_setzero_ps();
        let mut i = 0;
        while i < split {
            lo = _mm_add_ps(lo, _mm_mul_ps(_mm_loadu_ps(pa.add(i)), _mm_loadu_ps(pb.add(i))));
            hi = _mm_add_ps(
                hi,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i + 4)), _mm_loadu_ps(pb.add(i + 4))),
            );
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm_storeu_ps(lanes.as_mut_ptr(), lo);
        _mm_storeu_ps(lanes.as_mut_ptr().add(4), hi);
        for (j, i) in (split..n).enumerate() {
            lanes[j] += *pa.add(i) * *pb.add(i);
        }
        reduce8(lanes)
    }

    // ---- sum_sq ---------------------------------------------------------

    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_sq_avx2(v: &[f32]) -> f32 {
        let n = v.len();
        let split = n - n % LANES;
        let pv = v.as_ptr();
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < split {
            let x = _mm256_loadu_ps(pv.add(i));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(x, x));
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (j, i) in (split..n).enumerate() {
            let x = *pv.add(i);
            lanes[j] += x * x;
        }
        reduce8(lanes)
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn sum_sq_sse2(v: &[f32]) -> f32 {
        let n = v.len();
        let split = n - n % LANES;
        let pv = v.as_ptr();
        let mut lo = _mm_setzero_ps();
        let mut hi = _mm_setzero_ps();
        let mut i = 0;
        while i < split {
            let x0 = _mm_loadu_ps(pv.add(i));
            let x1 = _mm_loadu_ps(pv.add(i + 4));
            lo = _mm_add_ps(lo, _mm_mul_ps(x0, x0));
            hi = _mm_add_ps(hi, _mm_mul_ps(x1, x1));
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm_storeu_ps(lanes.as_mut_ptr(), lo);
        _mm_storeu_ps(lanes.as_mut_ptr().add(4), hi);
        for (j, i) in (split..n).enumerate() {
            let x = *pv.add(i);
            lanes[j] += x * x;
        }
        reduce8(lanes)
    }

    // ---- l2_sq ----------------------------------------------------------

    #[target_feature(enable = "avx2")]
    pub unsafe fn l2_sq_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let split = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < split {
            let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (j, i) in (split..n).enumerate() {
            let d = *pa.add(i) - *pb.add(i);
            lanes[j] += d * d;
        }
        reduce8(lanes)
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn l2_sq_sse2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let split = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut lo = _mm_setzero_ps();
        let mut hi = _mm_setzero_ps();
        let mut i = 0;
        while i < split {
            let d0 = _mm_sub_ps(_mm_loadu_ps(pa.add(i)), _mm_loadu_ps(pb.add(i)));
            let d1 = _mm_sub_ps(_mm_loadu_ps(pa.add(i + 4)), _mm_loadu_ps(pb.add(i + 4)));
            lo = _mm_add_ps(lo, _mm_mul_ps(d0, d0));
            hi = _mm_add_ps(hi, _mm_mul_ps(d1, d1));
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm_storeu_ps(lanes.as_mut_ptr(), lo);
        _mm_storeu_ps(lanes.as_mut_ptr().add(4), hi);
        for (j, i) in (split..n).enumerate() {
            let d = *pa.add(i) - *pb.add(i);
            lanes[j] += d * d;
        }
        reduce8(lanes)
    }

    // ---- dot_norms ------------------------------------------------------

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_norms_avx2(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        let n = a.len();
        let split = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc_d = _mm256_setzero_ps();
        let mut acc_a = _mm256_setzero_ps();
        let mut acc_b = _mm256_setzero_ps();
        let mut i = 0;
        while i < split {
            let va = _mm256_loadu_ps(pa.add(i));
            let vb = _mm256_loadu_ps(pb.add(i));
            acc_d = _mm256_add_ps(acc_d, _mm256_mul_ps(va, vb));
            acc_a = _mm256_add_ps(acc_a, _mm256_mul_ps(va, va));
            acc_b = _mm256_add_ps(acc_b, _mm256_mul_ps(vb, vb));
            i += LANES;
        }
        let mut ld = [0.0f32; LANES];
        let mut la = [0.0f32; LANES];
        let mut lb = [0.0f32; LANES];
        _mm256_storeu_ps(ld.as_mut_ptr(), acc_d);
        _mm256_storeu_ps(la.as_mut_ptr(), acc_a);
        _mm256_storeu_ps(lb.as_mut_ptr(), acc_b);
        for (j, i) in (split..n).enumerate() {
            let (x, y) = (*pa.add(i), *pb.add(i));
            ld[j] += x * y;
            la[j] += x * x;
            lb[j] += y * y;
        }
        (reduce8(ld), reduce8(la), reduce8(lb))
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn dot_norms_sse2(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        let n = a.len();
        let split = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut d_lo = _mm_setzero_ps();
        let mut d_hi = _mm_setzero_ps();
        let mut a_lo = _mm_setzero_ps();
        let mut a_hi = _mm_setzero_ps();
        let mut b_lo = _mm_setzero_ps();
        let mut b_hi = _mm_setzero_ps();
        let mut i = 0;
        while i < split {
            let va0 = _mm_loadu_ps(pa.add(i));
            let vb0 = _mm_loadu_ps(pb.add(i));
            let va1 = _mm_loadu_ps(pa.add(i + 4));
            let vb1 = _mm_loadu_ps(pb.add(i + 4));
            d_lo = _mm_add_ps(d_lo, _mm_mul_ps(va0, vb0));
            d_hi = _mm_add_ps(d_hi, _mm_mul_ps(va1, vb1));
            a_lo = _mm_add_ps(a_lo, _mm_mul_ps(va0, va0));
            a_hi = _mm_add_ps(a_hi, _mm_mul_ps(va1, va1));
            b_lo = _mm_add_ps(b_lo, _mm_mul_ps(vb0, vb0));
            b_hi = _mm_add_ps(b_hi, _mm_mul_ps(vb1, vb1));
            i += LANES;
        }
        let mut ld = [0.0f32; LANES];
        let mut la = [0.0f32; LANES];
        let mut lb = [0.0f32; LANES];
        _mm_storeu_ps(ld.as_mut_ptr(), d_lo);
        _mm_storeu_ps(ld.as_mut_ptr().add(4), d_hi);
        _mm_storeu_ps(la.as_mut_ptr(), a_lo);
        _mm_storeu_ps(la.as_mut_ptr().add(4), a_hi);
        _mm_storeu_ps(lb.as_mut_ptr(), b_lo);
        _mm_storeu_ps(lb.as_mut_ptr().add(4), b_hi);
        for (j, i) in (split..n).enumerate() {
            let (x, y) = (*pa.add(i), *pb.add(i));
            ld[j] += x * y;
            la[j] += x * x;
            lb[j] += y * y;
        }
        (reduce8(ld), reduce8(la), reduce8(lb))
    }

    // ---- dot_block ------------------------------------------------------

    /// Four independent striped-dot accumulator chains sharing each query
    /// load. Per row the accumulation is exactly [`dot_avx2`]; the speedup
    /// is inter-dot instruction-level parallelism, not a different order.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_block_avx2(query: &[f32], panel: &[f32], out: &mut [f32]) {
        let d = query.len();
        let rows = out.len();
        let split = d - d % LANES;
        let pq = query.as_ptr();
        let pp = panel.as_ptr();
        let mut r = 0;
        while r + 4 <= rows {
            let p0 = pp.add(r * d);
            let p1 = pp.add((r + 1) * d);
            let p2 = pp.add((r + 2) * d);
            let p3 = pp.add((r + 3) * d);
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            let mut i = 0;
            while i < split {
                let q = _mm256_loadu_ps(pq.add(i));
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(q, _mm256_loadu_ps(p0.add(i))));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(q, _mm256_loadu_ps(p1.add(i))));
                acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(q, _mm256_loadu_ps(p2.add(i))));
                acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(q, _mm256_loadu_ps(p3.add(i))));
                i += LANES;
            }
            let mut l0 = [0.0f32; LANES];
            let mut l1 = [0.0f32; LANES];
            let mut l2 = [0.0f32; LANES];
            let mut l3 = [0.0f32; LANES];
            _mm256_storeu_ps(l0.as_mut_ptr(), acc0);
            _mm256_storeu_ps(l1.as_mut_ptr(), acc1);
            _mm256_storeu_ps(l2.as_mut_ptr(), acc2);
            _mm256_storeu_ps(l3.as_mut_ptr(), acc3);
            for (j, i) in (split..d).enumerate() {
                let q = *pq.add(i);
                l0[j] += q * *p0.add(i);
                l1[j] += q * *p1.add(i);
                l2[j] += q * *p2.add(i);
                l3[j] += q * *p3.add(i);
            }
            out[r] = reduce8(l0);
            out[r + 1] = reduce8(l1);
            out[r + 2] = reduce8(l2);
            out[r + 3] = reduce8(l3);
            r += 4;
        }
        for r in r..rows {
            out[r] = dot_avx2(query, &panel[r * d..(r + 1) * d]);
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn dot_block_sse2(query: &[f32], panel: &[f32], out: &mut [f32]) {
        let d = query.len();
        let rows = out.len();
        let split = d - d % LANES;
        let pq = query.as_ptr();
        let pp = panel.as_ptr();
        let mut r = 0;
        while r + 2 <= rows {
            let p0 = pp.add(r * d);
            let p1 = pp.add((r + 1) * d);
            let mut a0_lo = _mm_setzero_ps();
            let mut a0_hi = _mm_setzero_ps();
            let mut a1_lo = _mm_setzero_ps();
            let mut a1_hi = _mm_setzero_ps();
            let mut i = 0;
            while i < split {
                let q_lo = _mm_loadu_ps(pq.add(i));
                let q_hi = _mm_loadu_ps(pq.add(i + 4));
                a0_lo = _mm_add_ps(a0_lo, _mm_mul_ps(q_lo, _mm_loadu_ps(p0.add(i))));
                a0_hi = _mm_add_ps(a0_hi, _mm_mul_ps(q_hi, _mm_loadu_ps(p0.add(i + 4))));
                a1_lo = _mm_add_ps(a1_lo, _mm_mul_ps(q_lo, _mm_loadu_ps(p1.add(i))));
                a1_hi = _mm_add_ps(a1_hi, _mm_mul_ps(q_hi, _mm_loadu_ps(p1.add(i + 4))));
                i += LANES;
            }
            let mut l0 = [0.0f32; LANES];
            let mut l1 = [0.0f32; LANES];
            _mm_storeu_ps(l0.as_mut_ptr(), a0_lo);
            _mm_storeu_ps(l0.as_mut_ptr().add(4), a0_hi);
            _mm_storeu_ps(l1.as_mut_ptr(), a1_lo);
            _mm_storeu_ps(l1.as_mut_ptr().add(4), a1_hi);
            for (j, i) in (split..d).enumerate() {
                let q = *pq.add(i);
                l0[j] += q * *p0.add(i);
                l1[j] += q * *p1.add(i);
            }
            out[r] = reduce8(l0);
            out[r + 1] = reduce8(l1);
            r += 2;
        }
        for r in r..rows {
            out[r] = dot_sse2(query, &panel[r * d..(r + 1) * d]);
        }
    }

    // ---- dot_i8 ---------------------------------------------------------

    /// int8 dot via sign-extension to i16 and `madd` (pairs of i16 products
    /// summed into i32 lanes). Integer adds are associative, so the lane
    /// layout is free to differ from scalar — the result is exact either way.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len();
        let split = n - n % 16;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i < split {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(pa.add(i) as *const __m128i));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(pb.add(i) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
            i += 16;
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let mut sum: i32 = lanes.iter().sum();
        for i in split..n {
            sum += *pa.add(i) as i32 * *pb.add(i) as i32;
        }
        sum
    }

    /// Four int8 dots sharing every 16-wide query conversion: one
    /// `cvtepi8_epi16` of the query chunk feeds four independent
    /// `madd`-accumulator chains (inter-dot ILP), and a 3-`hadd` transpose
    /// reduces all four accumulators at once instead of four lane spills.
    /// Integer adds are associative, so the result is exact either way.
    #[target_feature(enable = "avx2")]
    unsafe fn dot_i8_quad_avx2(
        query: &[i8],
        p0: *const i8,
        p1: *const i8,
        p2: *const i8,
        p3: *const i8,
    ) -> (i32, i32, i32, i32) {
        let n = query.len();
        let split = n - n % 16;
        let pq = query.as_ptr();
        let mut a0 = _mm256_setzero_si256();
        let mut a1 = _mm256_setzero_si256();
        let mut a2 = _mm256_setzero_si256();
        let mut a3 = _mm256_setzero_si256();
        let mut i = 0;
        while i < split {
            let vq = _mm256_cvtepi8_epi16(_mm_loadu_si128(pq.add(i) as *const __m128i));
            let r0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(p0.add(i) as *const __m128i));
            let r1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(p1.add(i) as *const __m128i));
            let r2 = _mm256_cvtepi8_epi16(_mm_loadu_si128(p2.add(i) as *const __m128i));
            let r3 = _mm256_cvtepi8_epi16(_mm_loadu_si128(p3.add(i) as *const __m128i));
            a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(vq, r0));
            a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(vq, r1));
            a2 = _mm256_add_epi32(a2, _mm256_madd_epi16(vq, r2));
            a3 = _mm256_add_epi32(a3, _mm256_madd_epi16(vq, r3));
            i += 16;
        }
        let (mut s0, mut s1, mut s2, mut s3) = reduce_quad_epi32(a0, a1, a2, a3);
        for i in split..n {
            let q = *pq.add(i) as i32;
            s0 += q * *p0.add(i) as i32;
            s1 += q * *p1.add(i) as i32;
            s2 += q * *p2.add(i) as i32;
            s3 += q * *p3.add(i) as i32;
        }
        (s0, s1, s2, s3)
    }

    /// Transposes four 8-lane i32 accumulators into their four total sums:
    /// `hadd(hadd(a0,a1), hadd(a2,a3))` leaves `[a0 a1 a2 a3]` partials in
    /// each 128-bit half, and one final add folds the halves.
    #[target_feature(enable = "avx2")]
    unsafe fn reduce_quad_epi32(
        a0: __m256i,
        a1: __m256i,
        a2: __m256i,
        a3: __m256i,
    ) -> (i32, i32, i32, i32) {
        let h01 = _mm256_hadd_epi32(a0, a1);
        let h23 = _mm256_hadd_epi32(a2, a3);
        let h = _mm256_hadd_epi32(h01, h23);
        let s = _mm_add_epi32(_mm256_castsi256_si128(h), _mm256_extracti128_si256::<1>(h));
        let mut lanes = [0i32; 4];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, s);
        (lanes[0], lanes[1], lanes[2], lanes[3])
    }

    /// Blocked int8 dots: quad rows share query conversions, the tail runs
    /// the single-row kernel. See [`super::dot_i8_block`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8_block_avx2(query: &[i8], panel: &[i8], out: &mut [i32]) {
        let d = query.len();
        let rows = out.len();
        let pp = panel.as_ptr();
        let mut r = 0;
        while r + 4 <= rows {
            let (s0, s1, s2, s3) = dot_i8_quad_avx2(
                query,
                pp.add(r * d),
                pp.add((r + 1) * d),
                pp.add((r + 2) * d),
                pp.add((r + 3) * d),
            );
            out[r] = s0;
            out[r + 1] = s1;
            out[r + 2] = s2;
            out[r + 3] = s3;
            r += 4;
        }
        for r in r..rows {
            out[r] = dot_i8_avx2(query, &panel[r * d..(r + 1) * d]);
        }
    }

    /// Row-indexed int8 dots straight off the flat code store. See
    /// [`super::dot_i8_rows`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8_rows_avx2(query: &[i8], codes: &[i8], rows: &[usize], out: &mut [i32]) {
        let d = query.len();
        let pc = codes.as_ptr();
        let mut r = 0;
        while r + 4 <= rows.len() {
            let (s0, s1, s2, s3) = dot_i8_quad_avx2(
                query,
                pc.add(rows[r] * d),
                pc.add(rows[r + 1] * d),
                pc.add(rows[r + 2] * d),
                pc.add(rows[r + 3] * d),
            );
            out[r] = s0;
            out[r + 1] = s1;
            out[r + 2] = s2;
            out[r + 3] = s3;
            r += 4;
        }
        for r in r..rows.len() {
            out[r] = dot_i8_avx2(query, &codes[rows[r] * d..(rows[r] + 1) * d]);
        }
    }

    // ---- lut_gather (product-quantization ADC) --------------------------

    /// 8-bit ADC via `vpgatherdd`: eight subspace codes zero-extend to i32
    /// table offsets and one gather pulls eight fixed-point entries at once.
    /// Integer adds are associative, so the lane layout is free to differ
    /// from scalar — the sum is exact either way.
    #[target_feature(enable = "avx2")]
    pub unsafe fn lut_gather_avx2(lut: &[u32], codes: &[u8]) -> u32 {
        let m = codes.len();
        let split = m - m % 8;
        let base = lut.as_ptr() as *const i32;
        let pc = codes.as_ptr();
        let mut offs = _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
        let step = _mm256_set1_epi32(8 * 256);
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i < split {
            let idx = _mm256_cvtepu8_epi32(_mm_loadl_epi64(pc.add(i) as *const __m128i));
            let vals = _mm256_i32gather_epi32::<4>(base, _mm256_add_epi32(offs, idx));
            acc = _mm256_add_epi32(acc, vals);
            offs = _mm256_add_epi32(offs, step);
            i += 8;
        }
        let mut lanes = [0u32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let mut sum = lanes.iter().fold(0u32, |a, &x| a.wrapping_add(x));
        for s in split..m {
            sum = sum.wrapping_add(lut[s * 256 + *pc.add(s) as usize]);
        }
        sum
    }

    /// Four ADC row sums at once: each 8-subspace chunk issues four
    /// `vpgatherdd`s sharing the same offset vector, and the quad `hadd`
    /// transpose replaces four per-row lane spills — the reduction is the
    /// dominant cost at the PQ code widths (m = 8 is a single chunk).
    /// Wrapping integer adds are associative, so the sums are exact.
    #[target_feature(enable = "avx2")]
    unsafe fn lut_gather_quad_avx2(
        lut: &[u32],
        c0: *const u8,
        c1: *const u8,
        c2: *const u8,
        c3: *const u8,
    ) -> (u32, u32, u32, u32) {
        let m = lut.len() / 256;
        let split = m - m % 8;
        let base = lut.as_ptr() as *const i32;
        let mut offs = _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
        let step = _mm256_set1_epi32(8 * 256);
        let mut a0 = _mm256_setzero_si256();
        let mut a1 = _mm256_setzero_si256();
        let mut a2 = _mm256_setzero_si256();
        let mut a3 = _mm256_setzero_si256();
        let mut i = 0;
        while i < split {
            let i0 = _mm256_cvtepu8_epi32(_mm_loadl_epi64(c0.add(i) as *const __m128i));
            let i1 = _mm256_cvtepu8_epi32(_mm_loadl_epi64(c1.add(i) as *const __m128i));
            let i2 = _mm256_cvtepu8_epi32(_mm_loadl_epi64(c2.add(i) as *const __m128i));
            let i3 = _mm256_cvtepu8_epi32(_mm_loadl_epi64(c3.add(i) as *const __m128i));
            a0 =
                _mm256_add_epi32(a0, _mm256_i32gather_epi32::<4>(base, _mm256_add_epi32(offs, i0)));
            a1 =
                _mm256_add_epi32(a1, _mm256_i32gather_epi32::<4>(base, _mm256_add_epi32(offs, i1)));
            a2 =
                _mm256_add_epi32(a2, _mm256_i32gather_epi32::<4>(base, _mm256_add_epi32(offs, i2)));
            a3 =
                _mm256_add_epi32(a3, _mm256_i32gather_epi32::<4>(base, _mm256_add_epi32(offs, i3)));
            offs = _mm256_add_epi32(offs, step);
            i += 8;
        }
        let (s0, s1, s2, s3) = reduce_quad_epi32(a0, a1, a2, a3);
        let (mut s0, mut s1, mut s2, mut s3) = (s0 as u32, s1 as u32, s2 as u32, s3 as u32);
        for s in split..m {
            s0 = s0.wrapping_add(lut[s * 256 + *c0.add(s) as usize]);
            s1 = s1.wrapping_add(lut[s * 256 + *c1.add(s) as usize]);
            s2 = s2.wrapping_add(lut[s * 256 + *c2.add(s) as usize]);
            s3 = s3.wrapping_add(lut[s * 256 + *c3.add(s) as usize]);
        }
        (s0, s1, s2, s3)
    }

    /// Blocked 8-bit ADC: quad rows share gather offsets, the tail runs the
    /// single-row kernel. See [`super::lut_gather_block`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn lut_gather_block_avx2(lut: &[u32], panel: &[u8], out: &mut [u32]) {
        let m = lut.len() / 256;
        let rows = out.len();
        let pp = panel.as_ptr();
        let mut r = 0;
        while r + 4 <= rows {
            let (s0, s1, s2, s3) = lut_gather_quad_avx2(
                lut,
                pp.add(r * m),
                pp.add((r + 1) * m),
                pp.add((r + 2) * m),
                pp.add((r + 3) * m),
            );
            out[r] = s0;
            out[r + 1] = s1;
            out[r + 2] = s2;
            out[r + 3] = s3;
            r += 4;
        }
        for r in r..rows {
            out[r] = lut_gather_avx2(lut, &panel[r * m..(r + 1) * m]);
        }
    }

    /// Row-indexed 8-bit ADC sums straight off the flat code store. See
    /// [`super::lut_gather_rows`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn lut_gather_rows_avx2(lut: &[u32], codes: &[u8], rows: &[usize], out: &mut [u32]) {
        let m = lut.len() / 256;
        let pc = codes.as_ptr();
        let mut r = 0;
        while r + 4 <= rows.len() {
            let (s0, s1, s2, s3) = lut_gather_quad_avx2(
                lut,
                pc.add(rows[r] * m),
                pc.add(rows[r + 1] * m),
                pc.add(rows[r + 2] * m),
                pc.add(rows[r + 3] * m),
            );
            out[r] = s0;
            out[r + 1] = s1;
            out[r + 2] = s2;
            out[r + 3] = s3;
            r += 4;
        }
        for r in r..rows.len() {
            out[r] = lut_gather_avx2(lut, &codes[rows[r] * m..(rows[r] + 1) * m]);
        }
    }

    /// 4-bit ADC fast scan: per subspace the 16-entry table broadcasts to
    /// both 128-bit lanes and one `pshufb` looks up 32 rows' nibbles at
    /// once; 32-row strips accumulate `u16` partials (exact for m ≤ 256)
    /// widened to `u32` at strip end.
    #[target_feature(enable = "avx2")]
    pub unsafe fn lut_gather4_block_avx2(lut: &[u8], codes_t: &[u8], out: &mut [u32]) {
        let m = lut.len() / 16;
        let rows = out.len();
        let split = rows - rows % 32;
        let mask = _mm256_set1_epi8(0x0f);
        let zero = _mm256_setzero_si256();
        let pl = lut.as_ptr();
        let pc = codes_t.as_ptr();
        let mut r = 0;
        while r < split {
            let mut acc_lo = _mm256_setzero_si256();
            let mut acc_hi = _mm256_setzero_si256();
            for s in 0..m {
                let table =
                    _mm256_broadcastsi128_si256(_mm_loadu_si128(pl.add(s * 16) as *const __m128i));
                let idx = _mm256_and_si256(
                    _mm256_loadu_si256(pc.add(s * rows + r) as *const __m256i),
                    mask,
                );
                let vals = _mm256_shuffle_epi8(table, idx);
                acc_lo = _mm256_add_epi16(acc_lo, _mm256_unpacklo_epi8(vals, zero));
                acc_hi = _mm256_add_epi16(acc_hi, _mm256_unpackhi_epi8(vals, zero));
            }
            // Undo the per-lane unpack interleave: within each 128-bit lane,
            // unpacklo carried bytes 0–7 and unpackhi bytes 8–15, so lane 0
            // covers rows r..r+16 and lane 1 rows r+16..r+32.
            let mut lo = [0u16; 16];
            let mut hi = [0u16; 16];
            _mm256_storeu_si256(lo.as_mut_ptr() as *mut __m256i, acc_lo);
            _mm256_storeu_si256(hi.as_mut_ptr() as *mut __m256i, acc_hi);
            for j in 0..8 {
                out[r + j] = lo[j] as u32;
                out[r + 8 + j] = hi[j] as u32;
                out[r + 16 + j] = lo[8 + j] as u32;
                out[r + 24 + j] = hi[8 + j] as u32;
            }
            r += 32;
        }
        while r < rows {
            let mut sum = 0u32;
            for s in 0..m {
                sum += *pl.add(s * 16 + (*pc.add(s * rows + r) & 15) as usize) as u32;
            }
            out[r] = sum;
            r += 1;
        }
    }

    // ---- element-wise ---------------------------------------------------

    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_avx2(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let split = n - n % LANES;
        let va = _mm256_set1_ps(alpha);
        let px = x.as_ptr();
        let py = y.as_mut_ptr();
        let mut i = 0;
        while i < split {
            let vy = _mm256_loadu_ps(py.add(i));
            let vx = _mm256_loadu_ps(px.add(i));
            _mm256_storeu_ps(py.add(i), _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
            i += LANES;
        }
        for i in split..n {
            *py.add(i) += alpha * *px.add(i);
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn axpy_sse2(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let split = n - n % 4;
        let va = _mm_set1_ps(alpha);
        let px = x.as_ptr();
        let py = y.as_mut_ptr();
        let mut i = 0;
        while i < split {
            let vy = _mm_loadu_ps(py.add(i));
            let vx = _mm_loadu_ps(px.add(i));
            _mm_storeu_ps(py.add(i), _mm_add_ps(vy, _mm_mul_ps(va, vx)));
            i += 4;
        }
        for i in split..n {
            *py.add(i) += alpha * *px.add(i);
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_avx2(y: &mut [f32], x: &[f32]) {
        let n = x.len();
        let split = n - n % LANES;
        let px = x.as_ptr();
        let py = y.as_mut_ptr();
        let mut i = 0;
        while i < split {
            let vy = _mm256_loadu_ps(py.add(i));
            let vx = _mm256_loadu_ps(px.add(i));
            _mm256_storeu_ps(py.add(i), _mm256_add_ps(vy, vx));
            i += LANES;
        }
        for i in split..n {
            *py.add(i) += *px.add(i);
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn add_sse2(y: &mut [f32], x: &[f32]) {
        let n = x.len();
        let split = n - n % 4;
        let px = x.as_ptr();
        let py = y.as_mut_ptr();
        let mut i = 0;
        while i < split {
            let vy = _mm_loadu_ps(py.add(i));
            let vx = _mm_loadu_ps(px.add(i));
            _mm_storeu_ps(py.add(i), _mm_add_ps(vy, vx));
            i += 4;
        }
        for i in split..n {
            *py.add(i) += *px.add(i);
        }
    }

    // ---- gemm -----------------------------------------------------------

    /// Same blocking/packing as [`striped::gemm`], with a register-tiled
    /// microkernel: a 4×16 output tile lives in eight ymm registers for a
    /// whole k-tile. Per output element the adds still run in strictly
    /// increasing `p` order, so the result is bit-identical to the scalar
    /// driver — the win is dropping the store-to-load forwarding chain the
    /// memory-accumulating microkernel pays on every `o[j] +=`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_avx2(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        let mut packed: Vec<f32> = Vec::new();
        for jb in (0..n).step_by(GEMM_NC) {
            let nb = GEMM_NC.min(n - jb);
            for pb in (0..k).step_by(GEMM_KC) {
                let kb = GEMM_KC.min(k - pb);
                let panel: &[f32] = if nb == n {
                    &b[pb * n..(pb + kb) * n]
                } else {
                    packed.clear();
                    packed.reserve(kb * nb);
                    for p in 0..kb {
                        let row = (pb + p) * n + jb;
                        packed.extend_from_slice(&b[row..row + nb]);
                    }
                    &packed
                };
                let mut i = 0;
                while i + GEMM_MR <= m {
                    gemm_micro4x16_avx2(i, k, n, pb, kb, jb, nb, a, panel, out);
                    i += GEMM_MR;
                }
                for i in i..m {
                    let arow = &a[i * k + pb..i * k + pb + kb];
                    let orow = &mut out[i * n + jb..i * n + jb + nb];
                    for (p, &av) in arow.iter().enumerate() {
                        axpy_avx2(av, &panel[p * nb..(p + 1) * nb], orow);
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn gemm_micro4x16_avx2(
        i: usize,
        k: usize,
        n: usize,
        pb: usize,
        kb: usize,
        jb: usize,
        nb: usize,
        a: &[f32],
        panel: &[f32],
        out: &mut [f32],
    ) {
        let ap = a.as_ptr();
        let a0 = ap.add(i * k + pb);
        let a1 = ap.add((i + 1) * k + pb);
        let a2 = ap.add((i + 2) * k + pb);
        let a3 = ap.add((i + 3) * k + pb);
        let op = out.as_mut_ptr();
        let o0 = op.add(i * n + jb);
        let o1 = op.add((i + 1) * n + jb);
        let o2 = op.add((i + 2) * n + jb);
        let o3 = op.add((i + 3) * n + jb);
        let pp = panel.as_ptr();
        let mut j = 0;
        // 4×16 register tile: 8 ymm accumulators, loaded and stored once
        // per k-tile instead of once per (p, j) step.
        while j + 16 <= nb {
            let mut c00 = _mm256_loadu_ps(o0.add(j));
            let mut c01 = _mm256_loadu_ps(o0.add(j + 8));
            let mut c10 = _mm256_loadu_ps(o1.add(j));
            let mut c11 = _mm256_loadu_ps(o1.add(j + 8));
            let mut c20 = _mm256_loadu_ps(o2.add(j));
            let mut c21 = _mm256_loadu_ps(o2.add(j + 8));
            let mut c30 = _mm256_loadu_ps(o3.add(j));
            let mut c31 = _mm256_loadu_ps(o3.add(j + 8));
            for p in 0..kb {
                let b0 = _mm256_loadu_ps(pp.add(p * nb + j));
                let b1 = _mm256_loadu_ps(pp.add(p * nb + j + 8));
                let x0 = _mm256_set1_ps(*a0.add(p));
                c00 = _mm256_add_ps(c00, _mm256_mul_ps(x0, b0));
                c01 = _mm256_add_ps(c01, _mm256_mul_ps(x0, b1));
                let x1 = _mm256_set1_ps(*a1.add(p));
                c10 = _mm256_add_ps(c10, _mm256_mul_ps(x1, b0));
                c11 = _mm256_add_ps(c11, _mm256_mul_ps(x1, b1));
                let x2 = _mm256_set1_ps(*a2.add(p));
                c20 = _mm256_add_ps(c20, _mm256_mul_ps(x2, b0));
                c21 = _mm256_add_ps(c21, _mm256_mul_ps(x2, b1));
                let x3 = _mm256_set1_ps(*a3.add(p));
                c30 = _mm256_add_ps(c30, _mm256_mul_ps(x3, b0));
                c31 = _mm256_add_ps(c31, _mm256_mul_ps(x3, b1));
            }
            _mm256_storeu_ps(o0.add(j), c00);
            _mm256_storeu_ps(o0.add(j + 8), c01);
            _mm256_storeu_ps(o1.add(j), c10);
            _mm256_storeu_ps(o1.add(j + 8), c11);
            _mm256_storeu_ps(o2.add(j), c20);
            _mm256_storeu_ps(o2.add(j + 8), c21);
            _mm256_storeu_ps(o3.add(j), c30);
            _mm256_storeu_ps(o3.add(j + 8), c31);
            j += 16;
        }
        // 4×8 tile for the next-size-down remainder.
        while j + 8 <= nb {
            let mut c0 = _mm256_loadu_ps(o0.add(j));
            let mut c1 = _mm256_loadu_ps(o1.add(j));
            let mut c2 = _mm256_loadu_ps(o2.add(j));
            let mut c3 = _mm256_loadu_ps(o3.add(j));
            for p in 0..kb {
                let bv = _mm256_loadu_ps(pp.add(p * nb + j));
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_set1_ps(*a0.add(p)), bv));
                c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_set1_ps(*a1.add(p)), bv));
                c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_set1_ps(*a2.add(p)), bv));
                c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_set1_ps(*a3.add(p)), bv));
            }
            _mm256_storeu_ps(o0.add(j), c0);
            _mm256_storeu_ps(o1.add(j), c1);
            _mm256_storeu_ps(o2.add(j), c2);
            _mm256_storeu_ps(o3.add(j), c3);
            j += 8;
        }
        // Scalar column tail, same p-outer order as the scalar microkernel.
        if j < nb {
            for p in 0..kb {
                let (x0, x1, x2, x3) = (*a0.add(p), *a1.add(p), *a2.add(p), *a3.add(p));
                for jj in j..nb {
                    let bv = *pp.add(p * nb + jj);
                    *o0.add(jj) += x0 * bv;
                    *o1.add(jj) += x1 * bv;
                    *o2.add(jj) += x2 * bv;
                    *o3.add(jj) += x3 * bv;
                }
            }
        }
    }
}

pub mod reference {
    //! Straight-line scalar references with the *same* summation order as
    //! the kernels: element `i` into lane `i % 8`, same pairwise reduction.
    //! The property tests pin each kernel bit-for-bit against these — any
    //! divergence means the kernel changed the math, not just the speed.

    use super::{reduce8, LANES};

    /// Scalar-indexed striped dot product.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len());
        let mut acc = [0.0f32; LANES];
        for i in 0..a.len() {
            acc[i % LANES] += a[i] * b[i];
        }
        reduce8(acc)
    }

    /// Scalar-indexed striped sum of squares.
    pub fn sum_sq(v: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        for (i, &x) in v.iter().enumerate() {
            acc[i % LANES] += x * x;
        }
        reduce8(acc)
    }

    /// Scalar-indexed striped squared L2 distance.
    pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len());
        let mut acc = [0.0f32; LANES];
        for i in 0..a.len() {
            let d = a[i] - b[i];
            acc[i % LANES] += d * d;
        }
        reduce8(acc)
    }

    /// Scalar-indexed striped fused `(a·b, ‖a‖², ‖b‖²)`.
    pub fn dot_norms(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        assert_eq!(a.len(), b.len());
        let mut acc_d = [0.0f32; LANES];
        let mut acc_a = [0.0f32; LANES];
        let mut acc_b = [0.0f32; LANES];
        for i in 0..a.len() {
            acc_d[i % LANES] += a[i] * b[i];
            acc_a[i % LANES] += a[i] * a[i];
            acc_b[i % LANES] += b[i] * b[i];
        }
        (reduce8(acc_d), reduce8(acc_a), reduce8(acc_b))
    }

    /// Naive `y += alpha * x`.
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), y.len());
        for i in 0..x.len() {
            y[i] += alpha * x[i];
        }
    }

    /// Widening int8 dot, exact in `i32`.
    pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        assert_eq!(a.len(), b.len());
        let mut sum = 0i32;
        for i in 0..a.len() {
            sum += a[i] as i32 * b[i] as i32;
        }
        sum
    }

    /// Naive i-k-j matrix multiply, `out += A · B` — the accumulation-order
    /// reference [`super::gemm`] must match bit-for-bit.
    pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(a.len(), m * k);
        assert_eq!(b.len(), k * n);
        assert_eq!(out.len(), m * n);
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    out[i * n + j] += av * b[p * n + j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic non-trivial fill (no RNG needed).
    fn wave(len: usize, phase: f32) -> Vec<f32> {
        (0..len).map(|i| (i as f32 * 0.37 + phase).sin() * 1.5).collect()
    }

    fn wave_i8(len: usize, phase: u32) -> Vec<i8> {
        (0..len)
            .map(|i| {
                (((i as u32).wrapping_mul(2654435761).wrapping_add(phase) >> 24) as i32 - 128) as i8
            })
            .collect()
    }

    #[test]
    fn dot_known_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn sum_sq_and_l2_known_values() {
        assert_eq!(sum_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn dot_norms_matches_parts() {
        let a = wave(37, 0.1);
        let b = wave(37, 2.2);
        let (d, na2, nb2) = dot_norms(&a, &b);
        assert_eq!(d.to_bits(), dot(&a, &b).to_bits());
        assert_eq!(na2.to_bits(), sum_sq(&a).to_bits());
        assert_eq!(nb2.to_bits(), sum_sq(&b).to_bits());
    }

    #[test]
    fn cosine_sim_conventions() {
        assert!((cosine_sim(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_sim(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine_sim(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_sim(&[0.0; 4], &[0.0; 4]), 0.0);
    }

    #[test]
    fn axpy_add_scale_mul() {
        let x = wave(19, 0.4);
        let mut y = wave(19, 1.3);
        let mut y2 = y.clone();
        axpy(0.5, &x, &mut y);
        reference::axpy(0.5, &x, &mut y2);
        assert_eq!(y, y2);
        let mut z = vec![1.0, 2.0];
        add(&mut z, &[3.0, 4.0]);
        assert_eq!(z, vec![4.0, 6.0]);
        scale(&mut z, 0.5);
        assert_eq!(z, vec![2.0, 3.0]);
        mul(&mut z, &[2.0, -1.0]);
        assert_eq!(z, vec![4.0, -3.0]);
    }

    #[test]
    fn kernels_bit_match_reference_across_tail_lengths() {
        for len in 0..=(3 * LANES + 1) {
            let a = wave(len, 0.0);
            let b = wave(len, 1.0);
            assert_eq!(dot(&a, &b).to_bits(), reference::dot(&a, &b).to_bits(), "len {len}");
            assert_eq!(sum_sq(&a).to_bits(), reference::sum_sq(&a).to_bits(), "len {len}");
            assert_eq!(l2_sq(&a, &b).to_bits(), reference::l2_sq(&a, &b).to_bits(), "len {len}");
        }
    }

    #[test]
    fn gemm_matches_reference_all_small_shapes() {
        for &(m, k, n) in
            &[(1, 1, 1), (3, 5, 7), (4, 8, 4), (5, 9, 3), (8, 300, 5), (9, 130, 260), (2, 0, 3)]
        {
            let a = wave(m * k, 0.3);
            let b = wave(k * n, 0.7);
            let mut out = vec![0.0f32; m * n];
            let mut expect = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut out);
            reference::gemm(m, k, n, &a, &b, &mut expect);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out), bits(&expect), "shape {m}x{k}x{n}");
        }
    }

    /// The backend contract, all in one test function: switching backends is
    /// globally visible, so the sweep runs under a single test to avoid
    /// racing itself (other tests are safe — every backend is bit-identical,
    /// which is exactly what this pins).
    #[test]
    fn every_backend_bit_matches_striped() {
        let backends: &[Backend] = if best_available() == Backend::Avx2 {
            &[Backend::Scalar, Backend::Sse2, Backend::Avx2]
        } else if cfg!(target_arch = "x86_64") {
            &[Backend::Scalar, Backend::Sse2]
        } else {
            &[Backend::Scalar]
        };
        let restore = backend();
        for &be in backends {
            set_backend(be);
            assert_eq!(backend(), be);
            for len in (0..=2 * LANES).chain([3 * LANES + 5, 64, 127, 128, 200]) {
                let a = wave(len, 0.2);
                let b = wave(len, 1.7);
                let name = be.name();
                assert_eq!(
                    dot(&a, &b).to_bits(),
                    striped::dot(&a, &b).to_bits(),
                    "dot {name} len {len}"
                );
                assert_eq!(
                    sum_sq(&a).to_bits(),
                    striped::sum_sq(&a).to_bits(),
                    "sum_sq {name} len {len}"
                );
                assert_eq!(
                    l2_sq(&a, &b).to_bits(),
                    striped::l2_sq(&a, &b).to_bits(),
                    "l2_sq {name} len {len}"
                );
                let fused = dot_norms(&a, &b);
                let want = striped::dot_norms(&a, &b);
                assert_eq!(
                    (fused.0.to_bits(), fused.1.to_bits(), fused.2.to_bits()),
                    (want.0.to_bits(), want.1.to_bits(), want.2.to_bits()),
                    "dot_norms {name} len {len}"
                );
                let mut y = wave(len, 0.9);
                let mut y2 = y.clone();
                axpy(0.37, &a, &mut y);
                striped::axpy(0.37, &a, &mut y2);
                assert_eq!(y, y2, "axpy {name} len {len}");
                let mut s = wave(len, 2.4);
                let mut s2 = s.clone();
                add(&mut s, &a);
                striped::add(&mut s2, &a);
                assert_eq!(s, s2, "add {name} len {len}");
                // Block dots across ragged row counts.
                for rows in [0, 1, 3, 4, 5, 9] {
                    let panel: Vec<f32> = (0..rows).flat_map(|r| wave(len, r as f32)).collect();
                    let mut got = vec![0.0f32; rows];
                    let mut want = vec![0.0f32; rows];
                    dot_block(&a, &panel, &mut got);
                    striped::dot_block(&a, &panel, &mut want);
                    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(&got), bits(&want), "dot_block {name} len {len} rows {rows}");
                }
                // int8: exact integers, every backend.
                let ia = wave_i8(len, 7);
                let ib = wave_i8(len, 99);
                assert_eq!(
                    dot_i8(&ia, &ib),
                    reference::dot_i8(&ia, &ib),
                    "dot_i8 {name} len {len}"
                );
                for rows in [0, 1, 3, 5] {
                    let panel: Vec<i8> =
                        (0..rows).flat_map(|r| wave_i8(len, r as u32 + 11)).collect();
                    let mut got = vec![0i32; rows];
                    let mut want = vec![0i32; rows];
                    dot_i8_block(&ia, &panel, &mut got);
                    striped::dot_i8_block(&ia, &panel, &mut want);
                    assert_eq!(got, want, "dot_i8_block {name} len {len} rows {rows}");
                }
                // Row-indexed int8 dots over a shuffled, repeating row set
                // (quad path + tail + repeated rows).
                let store: Vec<i8> = (0..7).flat_map(|r| wave_i8(len, r as u32 + 23)).collect();
                let rows_idx = [3usize, 0, 6, 6, 2, 5];
                let mut got = vec![0i32; rows_idx.len()];
                let mut want = vec![0i32; rows_idx.len()];
                dot_i8_rows(&ia, &store, &rows_idx, &mut got);
                striped::dot_i8_rows(&ia, &store, &rows_idx, &mut want);
                assert_eq!(got, want, "dot_i8_rows {name} len {len}");
            }
            // ADC lut gathers: fixed-point integers, exact on every backend.
            for m in [0usize, 1, 5, 8, 16, 19] {
                let name = be.name();
                let lut: Vec<u32> =
                    (0..m * 256).map(|i| (i as u32).wrapping_mul(2654435761) >> 16).collect();
                let codes: Vec<u8> = (0..m).map(|s| (s * 37 + 11) as u8).collect();
                assert_eq!(
                    lut_gather(&lut, &codes),
                    striped::lut_gather(&lut, &codes),
                    "lut_gather {name} m {m}"
                );
                for rows in [0usize, 1, 3, 9] {
                    let panel: Vec<u8> = (0..rows * m).map(|i| (i * 13 + 5) as u8).collect();
                    let mut got = vec![0u32; rows];
                    let mut want = vec![0u32; rows];
                    lut_gather_block(&lut, &panel, &mut got);
                    striped::lut_gather_block(&lut, &panel, &mut want);
                    assert_eq!(got, want, "lut_gather_block {name} m {m} rows {rows}");
                }
                // Row-indexed ADC sums over a shuffled, repeating row set.
                let store: Vec<u8> = (0..7 * m).map(|i| (i * 11 + 2) as u8).collect();
                let rows_idx = [4usize, 1, 1, 6, 0, 3];
                let mut got = vec![0u32; rows_idx.len()];
                let mut want = vec![0u32; rows_idx.len()];
                lut_gather_rows(&lut, &store, &rows_idx, &mut got);
                striped::lut_gather_rows(&lut, &store, &rows_idx, &mut want);
                assert_eq!(got, want, "lut_gather_rows {name} m {m}");
                let lut4: Vec<u8> = (0..m * 16).map(|i| (i * 29 + 3) as u8).collect();
                let codes4: Vec<u8> = (0..m).map(|s| (s % 16) as u8).collect();
                assert_eq!(
                    lut_gather4(&lut4, &codes4),
                    striped::lut_gather4(&lut4, &codes4),
                    "lut_gather4 {name} m {m}"
                );
                for rows in [0usize, 1, 31, 32, 33, 80] {
                    let codes_t: Vec<u8> = (0..m * rows).map(|i| (i % 16) as u8).collect();
                    let mut got = vec![0u32; rows];
                    let mut want = vec![0u32; rows];
                    lut_gather4_block(&lut4, &codes_t, &mut got);
                    striped::lut_gather4_block(&lut4, &codes_t, &mut want);
                    assert_eq!(got, want, "lut_gather4_block {name} m {m} rows {rows}");
                }
            }
            // gemm across shapes that exercise every tile edge: full 4×16
            // tiles, 8-wide remainders, scalar column tails, leftover rows,
            // multi-k-tile and multi-n-tile drivers.
            for &(m, k, n) in &[
                (1, 1, 1),
                (4, 16, 16),
                (5, 9, 3),
                (7, 31, 21),
                (8, 300, 5),
                (9, 130, 260),
                (12, 64, 272),
                (2, 0, 3),
            ] {
                let a = wave(m * k, 0.3);
                let b = wave(k * n, 0.7);
                let mut out = wave(m * n, 1.1); // nonzero: gemm accumulates
                let mut expect = out.clone();
                gemm(m, k, n, &a, &b, &mut out);
                striped::gemm(m, k, n, &a, &b, &mut expect);
                let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&out), bits(&expect), "gemm {} {m}x{k}x{n}", be.name());
            }
        }
        set_backend(restore);
    }

    #[test]
    fn backend_names_and_indices_are_stable() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Sse2.name(), "sse2");
        assert_eq!(Backend::Avx2.name(), "avx2");
        assert_eq!(Backend::Scalar.index(), 0);
        assert_eq!(Backend::Avx2.index(), 2);
        assert!(!Backend::Scalar.is_simd());
        assert!(Backend::Sse2.is_simd());
    }

    #[test]
    fn lut_gather_known_values() {
        let mut lut = vec![0u32; 2 * 256];
        lut[3] = 10;
        lut[256 + 200] = 5;
        assert_eq!(lut_gather(&lut, &[3, 200]), 15);
        assert_eq!(lut_gather(&[], &[]), 0);
        let lut4: Vec<u8> = (0..32).collect();
        assert_eq!(lut_gather4(&lut4, &[2, 3]), 2 + 16 + 3);
        // High nibble bits of a 4-bit code are ignored.
        assert_eq!(lut_gather4(&lut4, &[0xf2, 3]), 2 + 16 + 3);
        // Block forms agree with the single-row forms.
        let mut out = [0u32; 2];
        lut_gather_block(&lut, &[3, 200, 0, 0], &mut out);
        assert_eq!(out, [15, 0]);
        let codes_t = [2, 0, 3, 1]; // transposed: subspace 0 rows, subspace 1 rows
        lut_gather4_block(&lut4, &codes_t, &mut out);
        assert_eq!(out, [2 + 16 + 3, 16 + 1]);
    }

    #[test]
    #[should_panic(expected = "lut_gather: lut length")]
    fn lut_gather_rejects_mismatch() {
        lut_gather(&[0u32; 256], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_rejects_mismatched_dims() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "panel length")]
    fn dot_block_rejects_mismatched_panel() {
        let mut out = [0.0f32; 2];
        dot_block(&[1.0, 2.0], &[1.0, 2.0, 3.0], &mut out);
    }
}

//! Deterministic SIMD compute kernels for the workspace hot paths.
//!
//! Every reduction kernel uses a **fixed 8-lane striped accumulator**:
//! element `i` always lands in lane `i % 8`, and the eight partial sums
//! collapse through one fixed pairwise tree ([`reduce8`]). The *numeric*
//! result is defined purely by IEEE-754 single-precision adds and muls in a
//! fixed order — never by what the hardware offers. Consequences:
//!
//! - the same input gives bit-identical output on every machine, at every
//!   thread count, and — new in this layer — on every *backend* (Rust never
//!   auto-contracts `a*b + c` into an FMA, and the hand-written SIMD paths
//!   use separate mul/add intrinsics for the same reason),
//! - a straight-line scalar loop with the same striping ([`reference`])
//!   reproduces every kernel bit-for-bit, which is what the property tests
//!   pin,
//! - results are *different bits* from a naive sequential sum — callers that
//!   pin exact downstream numbers re-pin them when switching to the kernels.
//!
//! # Backends
//!
//! The crate ships three implementations of the hot kernels and picks one at
//! runtime ([`backend`]):
//!
//! - [`Backend::Scalar`] — the striped scalar loops in [`striped`] (LLVM
//!   autovectorizes them; this is the reference the others must match).
//! - [`Backend::Sse2`] — two 128-bit accumulators covering lanes 0–3 / 4–7.
//!   SSE2 is baseline on `x86_64`, so this needs no CPU probe.
//! - [`Backend::Avx2`] — one 256-bit accumulator holding all 8 lanes, used
//!   when `is_x86_feature_detected!("avx2")` says so.
//!
//! A 256-bit lane `j` of the AVX accumulator performs exactly the additions
//! scalar lane `j` performs, in the same order, so the SIMD paths are
//! bit-identical to [`striped`] *by construction*, and the unit tests pin it.
//! The `PAS_KERNEL_BACKEND` environment variable (`scalar` | `simd` | `sse2`
//! | `avx2` | `auto`) overrides detection — CI runs the whole workspace under
//! `scalar` and `simd` and byte-compares every emitted snapshot.
//!
//! Element-wise kernels ([`axpy`], [`add`], [`scale`], [`mul`]) have no
//! reduction and therefore no ordering question; their SIMD forms are
//! trivially identical.
//!
//! [`gemm`] is the blocked/packed matrix-multiply kernel. Its accumulation
//! order per output element is *strictly increasing `p`* (the shared
//! dimension), identical to the textbook i-k-j loop — blocking and the AVX2
//! register-tiled microkernel reorder the memory traffic, not the
//! per-element float additions.
//!
//! [`dot_block`] is the probe primitive: one query against a packed panel of
//! rows. Each output is bit-identical to [`dot`] of that pair; the speed
//! comes from running four independent striped accumulator chains at once
//! (a single striped dot is add-latency-bound, so same-order SIMD cannot
//! beat it — inter-dot parallelism can). [`dot_i8`] / [`dot_i8_block`] are
//! the int8 quantized-probe primitives; integer addition is associative, so
//! those are exact on every backend by definition.

use std::sync::atomic::{AtomicU8, Ordering};

/// Stripe width of every reduction kernel. Element `i` accumulates into
/// lane `i % LANES`.
pub const LANES: usize = 8;

/// Which kernel implementation the crate dispatches to. See the crate docs
/// for the determinism contract: all backends are bit-identical, so this is
/// purely a speed (and CI cross-checking) knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Backend {
    /// Striped scalar loops (the autovectorized reference).
    Scalar = 0,
    /// Two 128-bit accumulators; baseline on `x86_64`.
    Sse2 = 1,
    /// One 256-bit accumulator; requires runtime AVX2 detection.
    Avx2 = 2,
}

impl Backend {
    /// Stable lowercase name (used in bench rows and the obs gauge docs).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    /// Numeric id for the `kernels.backend` gauge (0 scalar, 1 sse2, 2 avx2).
    pub fn index(self) -> u64 {
        self as u64
    }

    /// True for the hand-written `core::arch` paths.
    pub fn is_simd(self) -> bool {
        self != Backend::Scalar
    }
}

const BACKEND_UNSET: u8 = u8::MAX;
static BACKEND: AtomicU8 = AtomicU8::new(BACKEND_UNSET);

/// The widest backend this CPU supports.
fn best_available() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            Backend::Avx2
        } else {
            Backend::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Backend::Scalar
    }
}

fn resolve_backend() -> Backend {
    match std::env::var("PAS_KERNEL_BACKEND").ok().as_deref() {
        Some("scalar") => Backend::Scalar,
        // "simd" means "the best SIMD path this CPU has"; on a non-x86_64
        // host that is the scalar stripes — outputs are identical either
        // way, so a silent fallback is safe (and what the CI matrix wants).
        Some("simd") | Some("auto") | None | Some("") => best_available(),
        Some("sse2") => {
            if !cfg!(target_arch = "x86_64") {
                panic!("PAS_KERNEL_BACKEND=sse2 requires an x86_64 host");
            }
            Backend::Sse2
        }
        Some("avx2") => {
            assert!(
                best_available() == Backend::Avx2,
                "PAS_KERNEL_BACKEND=avx2 but the CPU does not report AVX2"
            );
            Backend::Avx2
        }
        Some(other) => {
            panic!("unknown PAS_KERNEL_BACKEND {other:?} (expected scalar|simd|sse2|avx2|auto)")
        }
    }
}

/// The backend every top-level kernel dispatches to. Resolved once from
/// `PAS_KERNEL_BACKEND` (falling back to CPU detection) on first use.
pub fn backend() -> Backend {
    match BACKEND.load(Ordering::Relaxed) {
        0 => Backend::Scalar,
        1 => Backend::Sse2,
        2 => Backend::Avx2,
        _ => {
            let resolved = resolve_backend();
            BACKEND.store(resolved as u8, Ordering::Relaxed);
            resolved
        }
    }
}

/// Forces a specific backend (benches and the cross-backend equality tests).
/// All backends produce bit-identical results, so flipping this mid-run can
/// change speed but never output.
///
/// # Panics
/// Panics when the requested backend is not supported by this CPU.
pub fn set_backend(b: Backend) {
    #[cfg(target_arch = "x86_64")]
    let supported = b != Backend::Avx2 || best_available() == Backend::Avx2;
    #[cfg(not(target_arch = "x86_64"))]
    let supported = b == Backend::Scalar;
    assert!(supported, "backend {} not supported on this CPU", b.name());
    BACKEND.store(b as u8, Ordering::Relaxed);
}

/// True when a hand-written SIMD path (SSE2 or AVX2) is available here.
pub fn simd_available() -> bool {
    best_available().is_simd()
}

/// The widest backend this CPU supports — what `PAS_KERNEL_BACKEND=simd`
/// resolves to ([`Backend::Scalar`] on non-x86_64 hosts).
pub fn best_supported() -> Backend {
    best_available()
}

/// Collapses the 8 lane partials in a fixed pairwise tree. The order is part
/// of the determinism contract — do not "simplify" to `iter().sum()`.
#[inline(always)]
fn reduce8(acc: [f32; LANES]) -> f32 {
    let s04 = acc[0] + acc[4];
    let s15 = acc[1] + acc[5];
    let s26 = acc[2] + acc[6];
    let s37 = acc[3] + acc[7];
    (s04 + s26) + (s15 + s37)
}

#[inline(always)]
fn assert_same_len(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
}

/// Dot product with 8-lane striped accumulation.
///
/// # Panics
/// Panics when the lengths differ — mixing dimensions is always a bug.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_same_len(a, b);
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::dot_avx2(a, b) },
        Backend::Sse2 => return unsafe { x86::dot_sse2(a, b) },
        Backend::Scalar => {}
    }
    striped::dot(a, b)
}

/// Sum of squares (`‖v‖²`) with 8-lane striped accumulation.
pub fn sum_sq(v: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::sum_sq_avx2(v) },
        Backend::Sse2 => return unsafe { x86::sum_sq_sse2(v) },
        Backend::Scalar => {}
    }
    striped::sum_sq(v)
}

/// Squared Euclidean distance with 8-lane striped accumulation.
///
/// # Panics
/// Panics when the lengths differ.
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_same_len(a, b);
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::l2_sq_avx2(a, b) },
        Backend::Sse2 => return unsafe { x86::l2_sq_sse2(a, b) },
        Backend::Scalar => {}
    }
    striped::l2_sq(a, b)
}

/// Fused single pass returning `(a·b, ‖a‖², ‖b‖²)` — one load of each
/// operand instead of three. This is the raw-cosine primitive: callers take
/// the square roots themselves (and the pre-normalized stores skip them
/// entirely).
///
/// # Panics
/// Panics when the lengths differ.
pub fn dot_norms(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
    assert_same_len(a, b);
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::dot_norms_avx2(a, b) },
        Backend::Sse2 => return unsafe { x86::dot_norms_sse2(a, b) },
        Backend::Scalar => {}
    }
    striped::dot_norms(a, b)
}

/// Cosine similarity in `[-1, 1]`, built on [`dot_norms`]. Returns 0.0 when
/// either vector is zero — the workspace-wide convention (degenerate inputs
/// compare as "unrelated" rather than poisoning thresholds with NaN; the
/// matching *distance* convention is `1 − 0 = 1`).
///
/// This is the single implementation of cosine in the workspace:
/// `pas_embed::cosine` and `pas_ann`'s `CosineDistance` both delegate here.
pub fn cosine_sim(a: &[f32], b: &[f32]) -> f32 {
    let (d, na2, nb2) = dot_norms(a, b);
    if na2 == 0.0 || nb2 == 0.0 {
        return 0.0;
    }
    (d / (na2.sqrt() * nb2.sqrt())).clamp(-1.0, 1.0)
}

/// Dots of one query against a packed panel of `out.len()` rows, each of
/// `query.len()` elements: `out[r] = dot(query, panel[r·d .. (r+1)·d])`.
///
/// Every output is **bit-identical to [`dot`]** of the same pair — the block
/// form exists because a single striped dot is add-latency-bound, while four
/// independent accumulator chains sharing one query load stream ~4× the
/// data per cycle. This is the ANN probe primitive: ExactIndex scans,
/// HNSW batched neighbor expansions, and `matmul_t` all reduce to it.
///
/// # Panics
/// Panics when `panel.len() != query.len() * out.len()`.
pub fn dot_block(query: &[f32], panel: &[f32], out: &mut [f32]) {
    assert_eq!(
        panel.len(),
        query.len() * out.len(),
        "dot_block: panel length {} does not match {} rows of {}",
        panel.len(),
        out.len(),
        query.len()
    );
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::dot_block_avx2(query, panel, out) },
        Backend::Sse2 => return unsafe { x86::dot_block_sse2(query, panel, out) },
        Backend::Scalar => {}
    }
    striped::dot_block(query, panel, out)
}

/// Integer dot product of two int8 code vectors, exact in `i32`. Integer
/// addition is associative, so every backend returns the same value by
/// definition — the quantized probe path is backend-invariant for free.
///
/// # Panics
/// Panics when the lengths differ.
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        return unsafe { x86::dot_i8_avx2(a, b) };
    }
    striped::dot_i8(a, b)
}

/// Block form of [`dot_i8`]: one int8 query against a packed panel of code
/// rows. Exact on every backend.
///
/// # Panics
/// Panics when `panel.len() != query.len() * out.len()`.
pub fn dot_i8_block(query: &[i8], panel: &[i8], out: &mut [i32]) {
    assert_eq!(
        panel.len(),
        query.len() * out.len(),
        "dot_i8_block: panel length {} does not match {} rows of {}",
        panel.len(),
        out.len(),
        query.len()
    );
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        let d = query.len();
        for (r, o) in out.iter_mut().enumerate() {
            *o = unsafe { x86::dot_i8_avx2(query, &panel[r * d..(r + 1) * d]) };
        }
        return;
    }
    striped::dot_i8_block(query, panel, out)
}

/// `y[i] += alpha * x[i]`. Element-wise — no reduction, so vectorization is
/// purely a speed concern and the result matches the naive loop bit-for-bit.
///
/// # Panics
/// Panics when the lengths differ.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_same_len(x, y);
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::axpy_avx2(alpha, x, y) },
        Backend::Sse2 => return unsafe { x86::axpy_sse2(alpha, x, y) },
        Backend::Scalar => {}
    }
    striped::axpy(alpha, x, y)
}

/// `y[i] += x[i]`.
///
/// # Panics
/// Panics when the lengths differ.
pub fn add(y: &mut [f32], x: &[f32]) {
    assert_same_len(x, y);
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::add_avx2(y, x) },
        Backend::Sse2 => return unsafe { x86::add_sse2(y, x) },
        Backend::Scalar => {}
    }
    striped::add(y, x)
}

/// `v[i] *= s`.
pub fn scale(v: &mut [f32], s: f32) {
    for x in v.iter_mut() {
        *x *= s;
    }
}

/// `y[i] *= x[i]` (Hadamard product in place).
///
/// # Panics
/// Panics when the lengths differ.
pub fn mul(y: &mut [f32], x: &[f32]) {
    assert_same_len(x, y);
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv *= xv;
    }
}

/// Rows of `A` handled together by the [`gemm`] microkernel (register
/// blocking: one pass over a B panel updates this many output rows).
pub const GEMM_MR: usize = 4;
/// k-extent of a packed B panel (tile height).
const GEMM_KC: usize = 128;
/// n-extent of a packed B panel (tile width).
const GEMM_NC: usize = 256;

/// Blocked matrix multiply: `out += A · B` with `A` m×k, `B` k×n, `out` m×n,
/// all row-major. `out` is typically zeroed by the caller.
///
/// Loop structure: n is tiled by `GEMM_NC`, k by `GEMM_KC`; each k×n tile of
/// `B` is packed into a contiguous panel (a no-op borrow when the tile spans
/// the full width — rows are already contiguous), and an `MR`-row microkernel
/// streams the panel once per `MR` output rows instead of once per row. On
/// AVX2 the microkernel holds a 4×16 output tile in eight 256-bit registers
/// for a whole k-tile instead of accumulating through memory. Per output
/// element the float additions still happen in strictly increasing `p`
/// order — k-tiles are visited in order and every tile covers a contiguous
/// `p` range — so the result is **bit-identical to the naive i-k-j loop**
/// on every backend and machine.
///
/// # Panics
/// Panics when a buffer length does not match its shape.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm: A buffer does not match {m}x{k}");
    assert_eq!(b.len(), k * n, "gemm: B buffer does not match {k}x{n}");
    assert_eq!(out.len(), m * n, "gemm: out buffer does not match {m}x{n}");
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        // SSE2 gets no bespoke gemm: LLVM already vectorizes the striped
        // microkernel with 128-bit ops, and the win there is marginal.
        return unsafe { x86::gemm_avx2(m, k, n, a, b, out) };
    }
    striped::gemm(m, k, n, a, b, out)
}

pub mod striped {
    //! The striped **scalar** kernels — the reference implementation every
    //! SIMD backend must match bit-for-bit, and the dispatch target of
    //! [`Backend::Scalar`](super::Backend::Scalar). The lane loops are
    //! shaped so LLVM autovectorizes them (8 × f32 = one AVX register, two
    //! SSE registers); benches call these directly to report the
    //! autovectorized baseline next to the `core::arch` rows.

    use super::{assert_same_len, reduce8, GEMM_KC, GEMM_MR, GEMM_NC, LANES};

    /// Striped scalar dot product. See [`super::dot`].
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        assert_same_len(a, b);
        let split = a.len() - a.len() % LANES;
        let mut acc = [0.0f32; LANES];
        for (ca, cb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
            for j in 0..LANES {
                acc[j] += ca[j] * cb[j];
            }
        }
        for (j, (&x, &y)) in a[split..].iter().zip(&b[split..]).enumerate() {
            acc[j] += x * y;
        }
        reduce8(acc)
    }

    /// Striped scalar sum of squares. See [`super::sum_sq`].
    pub fn sum_sq(v: &[f32]) -> f32 {
        let split = v.len() - v.len() % LANES;
        let mut acc = [0.0f32; LANES];
        for c in v[..split].chunks_exact(LANES) {
            for j in 0..LANES {
                acc[j] += c[j] * c[j];
            }
        }
        for (j, &x) in v[split..].iter().enumerate() {
            acc[j] += x * x;
        }
        reduce8(acc)
    }

    /// Striped scalar squared L2 distance. See [`super::l2_sq`].
    pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        assert_same_len(a, b);
        let split = a.len() - a.len() % LANES;
        let mut acc = [0.0f32; LANES];
        for (ca, cb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
            for j in 0..LANES {
                let d = ca[j] - cb[j];
                acc[j] += d * d;
            }
        }
        for (j, (&x, &y)) in a[split..].iter().zip(&b[split..]).enumerate() {
            let d = x - y;
            acc[j] += d * d;
        }
        reduce8(acc)
    }

    /// Striped scalar fused `(a·b, ‖a‖², ‖b‖²)`. See [`super::dot_norms`].
    pub fn dot_norms(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        assert_same_len(a, b);
        let split = a.len() - a.len() % LANES;
        let mut acc_d = [0.0f32; LANES];
        let mut acc_a = [0.0f32; LANES];
        let mut acc_b = [0.0f32; LANES];
        for (ca, cb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
            for j in 0..LANES {
                acc_d[j] += ca[j] * cb[j];
                acc_a[j] += ca[j] * ca[j];
                acc_b[j] += cb[j] * cb[j];
            }
        }
        for (j, (&x, &y)) in a[split..].iter().zip(&b[split..]).enumerate() {
            acc_d[j] += x * y;
            acc_a[j] += x * x;
            acc_b[j] += y * y;
        }
        (reduce8(acc_d), reduce8(acc_a), reduce8(acc_b))
    }

    /// Striped scalar block dot: one [`dot`] per panel row. See
    /// [`super::dot_block`].
    pub fn dot_block(query: &[f32], panel: &[f32], out: &mut [f32]) {
        let d = query.len();
        assert_eq!(panel.len(), d * out.len(), "dot_block: panel/rows mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            *o = dot(query, &panel[r * d..(r + 1) * d]);
        }
    }

    /// Scalar int8 dot, exact in `i32`. See [`super::dot_i8`].
    pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
        let mut sum = 0i32;
        for (&x, &y) in a.iter().zip(b) {
            sum += x as i32 * y as i32;
        }
        sum
    }

    /// Scalar int8 block dot. See [`super::dot_i8_block`].
    pub fn dot_i8_block(query: &[i8], panel: &[i8], out: &mut [i32]) {
        let d = query.len();
        assert_eq!(panel.len(), d * out.len(), "dot_i8_block: panel/rows mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            *o = dot_i8(query, &panel[r * d..(r + 1) * d]);
        }
    }

    /// Striped scalar `y += alpha * x`. See [`super::axpy`].
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        assert_same_len(x, y);
        let split = x.len() - x.len() % LANES;
        for (cx, cy) in x[..split].chunks_exact(LANES).zip(y[..split].chunks_exact_mut(LANES)) {
            for j in 0..LANES {
                cy[j] += alpha * cx[j];
            }
        }
        for (xv, yv) in x[split..].iter().zip(&mut y[split..]) {
            *yv += alpha * xv;
        }
    }

    /// Striped scalar `y += x`. See [`super::add`].
    pub fn add(y: &mut [f32], x: &[f32]) {
        assert_same_len(x, y);
        let split = x.len() - x.len() % LANES;
        for (cx, cy) in x[..split].chunks_exact(LANES).zip(y[..split].chunks_exact_mut(LANES)) {
            for j in 0..LANES {
                cy[j] += cx[j];
            }
        }
        for (xv, yv) in x[split..].iter().zip(&mut y[split..]) {
            *yv += xv;
        }
    }

    /// Blocked/packed scalar gemm. See [`super::gemm`] for the contract.
    pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(a.len(), m * k, "gemm: A buffer does not match {m}x{k}");
        assert_eq!(b.len(), k * n, "gemm: B buffer does not match {k}x{n}");
        assert_eq!(out.len(), m * n, "gemm: out buffer does not match {m}x{n}");
        let mut packed = Vec::new();
        for jb in (0..n).step_by(GEMM_NC) {
            let nb = GEMM_NC.min(n - jb);
            for pb in (0..k).step_by(GEMM_KC) {
                let kb = GEMM_KC.min(k - pb);
                // Pack B[pb.., jb..] into a contiguous kb×nb panel; when the
                // tile spans the full row width the rows already are one.
                let panel: &[f32] = if nb == n {
                    &b[pb * n..(pb + kb) * n]
                } else {
                    packed.clear();
                    packed.reserve(kb * nb);
                    for p in 0..kb {
                        let row = (pb + p) * n + jb;
                        packed.extend_from_slice(&b[row..row + nb]);
                    }
                    &packed
                };
                let mut i = 0;
                while i + GEMM_MR <= m {
                    gemm_micro4(i, k, n, pb, kb, jb, nb, a, panel, out);
                    i += GEMM_MR;
                }
                for i in i..m {
                    let arow = &a[i * k + pb..i * k + pb + kb];
                    let orow = &mut out[i * n + jb..i * n + jb + nb];
                    for (p, &av) in arow.iter().enumerate() {
                        axpy(av, &panel[p * nb..(p + 1) * nb], orow);
                    }
                }
            }
        }
    }

    /// Four-row microkernel of [`gemm`]: `out[i..i+4][jb..jb+nb] += A-block ·
    /// panel`. Each panel row is loaded once and fans out to four
    /// accumulating output rows (4× less B traffic than row-at-a-time).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn gemm_micro4(
        i: usize,
        k: usize,
        n: usize,
        pb: usize,
        kb: usize,
        jb: usize,
        nb: usize,
        a: &[f32],
        panel: &[f32],
        out: &mut [f32],
    ) {
        let arow = |r: usize| &a[(i + r) * k + pb..(i + r) * k + pb + kb];
        let (a0, a1, a2, a3) = (arow(0), arow(1), arow(2), arow(3));
        let (r0, rest) = out[i * n..(i + GEMM_MR) * n].split_at_mut(n);
        let (r1, rest) = rest.split_at_mut(n);
        let (r2, r3) = rest.split_at_mut(n);
        let o0 = &mut r0[jb..jb + nb];
        let o1 = &mut r1[jb..jb + nb];
        let o2 = &mut r2[jb..jb + nb];
        let o3 = &mut r3[jb..jb + nb];
        for p in 0..kb {
            let brow = &panel[p * nb..(p + 1) * nb];
            let (x0, x1, x2, x3) = (a0[p], a1[p], a2[p], a3[p]);
            for (j, &bv) in brow.iter().enumerate() {
                o0[j] += x0 * bv;
                o1[j] += x1 * bv;
                o2[j] += x2 * bv;
                o3[j] += x3 * bv;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Hand-written `core::arch` paths. Lane `j` of each vector accumulator
    //! performs exactly the additions scalar lane `j` of [`striped`] performs,
    //! in the same order: the AVX2 kernels keep one 256-bit accumulator per
    //! stripe set, the SSE2 kernels keep two 128-bit halves (lanes 0–3 and
    //! 4–7), tails fall back to the same lane array, and every reduction
    //! goes through the shared [`reduce8`] tree. Multiplication and addition
    //! stay separate intrinsics — no FMA, ever, or the bits change.

    use core::arch::x86_64::*;

    use super::{reduce8, GEMM_KC, GEMM_MR, GEMM_NC, LANES};

    // ---- dot ------------------------------------------------------------

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let split = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < split {
            let va = _mm256_loadu_ps(pa.add(i));
            let vb = _mm256_loadu_ps(pb.add(i));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (j, i) in (split..n).enumerate() {
            lanes[j] += *pa.add(i) * *pb.add(i);
        }
        reduce8(lanes)
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn dot_sse2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let split = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut lo = _mm_setzero_ps();
        let mut hi = _mm_setzero_ps();
        let mut i = 0;
        while i < split {
            lo = _mm_add_ps(lo, _mm_mul_ps(_mm_loadu_ps(pa.add(i)), _mm_loadu_ps(pb.add(i))));
            hi = _mm_add_ps(
                hi,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i + 4)), _mm_loadu_ps(pb.add(i + 4))),
            );
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm_storeu_ps(lanes.as_mut_ptr(), lo);
        _mm_storeu_ps(lanes.as_mut_ptr().add(4), hi);
        for (j, i) in (split..n).enumerate() {
            lanes[j] += *pa.add(i) * *pb.add(i);
        }
        reduce8(lanes)
    }

    // ---- sum_sq ---------------------------------------------------------

    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_sq_avx2(v: &[f32]) -> f32 {
        let n = v.len();
        let split = n - n % LANES;
        let pv = v.as_ptr();
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < split {
            let x = _mm256_loadu_ps(pv.add(i));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(x, x));
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (j, i) in (split..n).enumerate() {
            let x = *pv.add(i);
            lanes[j] += x * x;
        }
        reduce8(lanes)
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn sum_sq_sse2(v: &[f32]) -> f32 {
        let n = v.len();
        let split = n - n % LANES;
        let pv = v.as_ptr();
        let mut lo = _mm_setzero_ps();
        let mut hi = _mm_setzero_ps();
        let mut i = 0;
        while i < split {
            let x0 = _mm_loadu_ps(pv.add(i));
            let x1 = _mm_loadu_ps(pv.add(i + 4));
            lo = _mm_add_ps(lo, _mm_mul_ps(x0, x0));
            hi = _mm_add_ps(hi, _mm_mul_ps(x1, x1));
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm_storeu_ps(lanes.as_mut_ptr(), lo);
        _mm_storeu_ps(lanes.as_mut_ptr().add(4), hi);
        for (j, i) in (split..n).enumerate() {
            let x = *pv.add(i);
            lanes[j] += x * x;
        }
        reduce8(lanes)
    }

    // ---- l2_sq ----------------------------------------------------------

    #[target_feature(enable = "avx2")]
    pub unsafe fn l2_sq_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let split = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < split {
            let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for (j, i) in (split..n).enumerate() {
            let d = *pa.add(i) - *pb.add(i);
            lanes[j] += d * d;
        }
        reduce8(lanes)
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn l2_sq_sse2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let split = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut lo = _mm_setzero_ps();
        let mut hi = _mm_setzero_ps();
        let mut i = 0;
        while i < split {
            let d0 = _mm_sub_ps(_mm_loadu_ps(pa.add(i)), _mm_loadu_ps(pb.add(i)));
            let d1 = _mm_sub_ps(_mm_loadu_ps(pa.add(i + 4)), _mm_loadu_ps(pb.add(i + 4)));
            lo = _mm_add_ps(lo, _mm_mul_ps(d0, d0));
            hi = _mm_add_ps(hi, _mm_mul_ps(d1, d1));
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm_storeu_ps(lanes.as_mut_ptr(), lo);
        _mm_storeu_ps(lanes.as_mut_ptr().add(4), hi);
        for (j, i) in (split..n).enumerate() {
            let d = *pa.add(i) - *pb.add(i);
            lanes[j] += d * d;
        }
        reduce8(lanes)
    }

    // ---- dot_norms ------------------------------------------------------

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_norms_avx2(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        let n = a.len();
        let split = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc_d = _mm256_setzero_ps();
        let mut acc_a = _mm256_setzero_ps();
        let mut acc_b = _mm256_setzero_ps();
        let mut i = 0;
        while i < split {
            let va = _mm256_loadu_ps(pa.add(i));
            let vb = _mm256_loadu_ps(pb.add(i));
            acc_d = _mm256_add_ps(acc_d, _mm256_mul_ps(va, vb));
            acc_a = _mm256_add_ps(acc_a, _mm256_mul_ps(va, va));
            acc_b = _mm256_add_ps(acc_b, _mm256_mul_ps(vb, vb));
            i += LANES;
        }
        let mut ld = [0.0f32; LANES];
        let mut la = [0.0f32; LANES];
        let mut lb = [0.0f32; LANES];
        _mm256_storeu_ps(ld.as_mut_ptr(), acc_d);
        _mm256_storeu_ps(la.as_mut_ptr(), acc_a);
        _mm256_storeu_ps(lb.as_mut_ptr(), acc_b);
        for (j, i) in (split..n).enumerate() {
            let (x, y) = (*pa.add(i), *pb.add(i));
            ld[j] += x * y;
            la[j] += x * x;
            lb[j] += y * y;
        }
        (reduce8(ld), reduce8(la), reduce8(lb))
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn dot_norms_sse2(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        let n = a.len();
        let split = n - n % LANES;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut d_lo = _mm_setzero_ps();
        let mut d_hi = _mm_setzero_ps();
        let mut a_lo = _mm_setzero_ps();
        let mut a_hi = _mm_setzero_ps();
        let mut b_lo = _mm_setzero_ps();
        let mut b_hi = _mm_setzero_ps();
        let mut i = 0;
        while i < split {
            let va0 = _mm_loadu_ps(pa.add(i));
            let vb0 = _mm_loadu_ps(pb.add(i));
            let va1 = _mm_loadu_ps(pa.add(i + 4));
            let vb1 = _mm_loadu_ps(pb.add(i + 4));
            d_lo = _mm_add_ps(d_lo, _mm_mul_ps(va0, vb0));
            d_hi = _mm_add_ps(d_hi, _mm_mul_ps(va1, vb1));
            a_lo = _mm_add_ps(a_lo, _mm_mul_ps(va0, va0));
            a_hi = _mm_add_ps(a_hi, _mm_mul_ps(va1, va1));
            b_lo = _mm_add_ps(b_lo, _mm_mul_ps(vb0, vb0));
            b_hi = _mm_add_ps(b_hi, _mm_mul_ps(vb1, vb1));
            i += LANES;
        }
        let mut ld = [0.0f32; LANES];
        let mut la = [0.0f32; LANES];
        let mut lb = [0.0f32; LANES];
        _mm_storeu_ps(ld.as_mut_ptr(), d_lo);
        _mm_storeu_ps(ld.as_mut_ptr().add(4), d_hi);
        _mm_storeu_ps(la.as_mut_ptr(), a_lo);
        _mm_storeu_ps(la.as_mut_ptr().add(4), a_hi);
        _mm_storeu_ps(lb.as_mut_ptr(), b_lo);
        _mm_storeu_ps(lb.as_mut_ptr().add(4), b_hi);
        for (j, i) in (split..n).enumerate() {
            let (x, y) = (*pa.add(i), *pb.add(i));
            ld[j] += x * y;
            la[j] += x * x;
            lb[j] += y * y;
        }
        (reduce8(ld), reduce8(la), reduce8(lb))
    }

    // ---- dot_block ------------------------------------------------------

    /// Four independent striped-dot accumulator chains sharing each query
    /// load. Per row the accumulation is exactly [`dot_avx2`]; the speedup
    /// is inter-dot instruction-level parallelism, not a different order.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_block_avx2(query: &[f32], panel: &[f32], out: &mut [f32]) {
        let d = query.len();
        let rows = out.len();
        let split = d - d % LANES;
        let pq = query.as_ptr();
        let pp = panel.as_ptr();
        let mut r = 0;
        while r + 4 <= rows {
            let p0 = pp.add(r * d);
            let p1 = pp.add((r + 1) * d);
            let p2 = pp.add((r + 2) * d);
            let p3 = pp.add((r + 3) * d);
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            let mut i = 0;
            while i < split {
                let q = _mm256_loadu_ps(pq.add(i));
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(q, _mm256_loadu_ps(p0.add(i))));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(q, _mm256_loadu_ps(p1.add(i))));
                acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(q, _mm256_loadu_ps(p2.add(i))));
                acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(q, _mm256_loadu_ps(p3.add(i))));
                i += LANES;
            }
            let mut l0 = [0.0f32; LANES];
            let mut l1 = [0.0f32; LANES];
            let mut l2 = [0.0f32; LANES];
            let mut l3 = [0.0f32; LANES];
            _mm256_storeu_ps(l0.as_mut_ptr(), acc0);
            _mm256_storeu_ps(l1.as_mut_ptr(), acc1);
            _mm256_storeu_ps(l2.as_mut_ptr(), acc2);
            _mm256_storeu_ps(l3.as_mut_ptr(), acc3);
            for (j, i) in (split..d).enumerate() {
                let q = *pq.add(i);
                l0[j] += q * *p0.add(i);
                l1[j] += q * *p1.add(i);
                l2[j] += q * *p2.add(i);
                l3[j] += q * *p3.add(i);
            }
            out[r] = reduce8(l0);
            out[r + 1] = reduce8(l1);
            out[r + 2] = reduce8(l2);
            out[r + 3] = reduce8(l3);
            r += 4;
        }
        for r in r..rows {
            out[r] = dot_avx2(query, &panel[r * d..(r + 1) * d]);
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn dot_block_sse2(query: &[f32], panel: &[f32], out: &mut [f32]) {
        let d = query.len();
        let rows = out.len();
        let split = d - d % LANES;
        let pq = query.as_ptr();
        let pp = panel.as_ptr();
        let mut r = 0;
        while r + 2 <= rows {
            let p0 = pp.add(r * d);
            let p1 = pp.add((r + 1) * d);
            let mut a0_lo = _mm_setzero_ps();
            let mut a0_hi = _mm_setzero_ps();
            let mut a1_lo = _mm_setzero_ps();
            let mut a1_hi = _mm_setzero_ps();
            let mut i = 0;
            while i < split {
                let q_lo = _mm_loadu_ps(pq.add(i));
                let q_hi = _mm_loadu_ps(pq.add(i + 4));
                a0_lo = _mm_add_ps(a0_lo, _mm_mul_ps(q_lo, _mm_loadu_ps(p0.add(i))));
                a0_hi = _mm_add_ps(a0_hi, _mm_mul_ps(q_hi, _mm_loadu_ps(p0.add(i + 4))));
                a1_lo = _mm_add_ps(a1_lo, _mm_mul_ps(q_lo, _mm_loadu_ps(p1.add(i))));
                a1_hi = _mm_add_ps(a1_hi, _mm_mul_ps(q_hi, _mm_loadu_ps(p1.add(i + 4))));
                i += LANES;
            }
            let mut l0 = [0.0f32; LANES];
            let mut l1 = [0.0f32; LANES];
            _mm_storeu_ps(l0.as_mut_ptr(), a0_lo);
            _mm_storeu_ps(l0.as_mut_ptr().add(4), a0_hi);
            _mm_storeu_ps(l1.as_mut_ptr(), a1_lo);
            _mm_storeu_ps(l1.as_mut_ptr().add(4), a1_hi);
            for (j, i) in (split..d).enumerate() {
                let q = *pq.add(i);
                l0[j] += q * *p0.add(i);
                l1[j] += q * *p1.add(i);
            }
            out[r] = reduce8(l0);
            out[r + 1] = reduce8(l1);
            r += 2;
        }
        for r in r..rows {
            out[r] = dot_sse2(query, &panel[r * d..(r + 1) * d]);
        }
    }

    // ---- dot_i8 ---------------------------------------------------------

    /// int8 dot via sign-extension to i16 and `madd` (pairs of i16 products
    /// summed into i32 lanes). Integer adds are associative, so the lane
    /// layout is free to differ from scalar — the result is exact either way.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len();
        let split = n - n % 16;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i < split {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(pa.add(i) as *const __m128i));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(pb.add(i) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
            i += 16;
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let mut sum: i32 = lanes.iter().sum();
        for i in split..n {
            sum += *pa.add(i) as i32 * *pb.add(i) as i32;
        }
        sum
    }

    // ---- element-wise ---------------------------------------------------

    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_avx2(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let split = n - n % LANES;
        let va = _mm256_set1_ps(alpha);
        let px = x.as_ptr();
        let py = y.as_mut_ptr();
        let mut i = 0;
        while i < split {
            let vy = _mm256_loadu_ps(py.add(i));
            let vx = _mm256_loadu_ps(px.add(i));
            _mm256_storeu_ps(py.add(i), _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
            i += LANES;
        }
        for i in split..n {
            *py.add(i) += alpha * *px.add(i);
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn axpy_sse2(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let split = n - n % 4;
        let va = _mm_set1_ps(alpha);
        let px = x.as_ptr();
        let py = y.as_mut_ptr();
        let mut i = 0;
        while i < split {
            let vy = _mm_loadu_ps(py.add(i));
            let vx = _mm_loadu_ps(px.add(i));
            _mm_storeu_ps(py.add(i), _mm_add_ps(vy, _mm_mul_ps(va, vx)));
            i += 4;
        }
        for i in split..n {
            *py.add(i) += alpha * *px.add(i);
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add_avx2(y: &mut [f32], x: &[f32]) {
        let n = x.len();
        let split = n - n % LANES;
        let px = x.as_ptr();
        let py = y.as_mut_ptr();
        let mut i = 0;
        while i < split {
            let vy = _mm256_loadu_ps(py.add(i));
            let vx = _mm256_loadu_ps(px.add(i));
            _mm256_storeu_ps(py.add(i), _mm256_add_ps(vy, vx));
            i += LANES;
        }
        for i in split..n {
            *py.add(i) += *px.add(i);
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn add_sse2(y: &mut [f32], x: &[f32]) {
        let n = x.len();
        let split = n - n % 4;
        let px = x.as_ptr();
        let py = y.as_mut_ptr();
        let mut i = 0;
        while i < split {
            let vy = _mm_loadu_ps(py.add(i));
            let vx = _mm_loadu_ps(px.add(i));
            _mm_storeu_ps(py.add(i), _mm_add_ps(vy, vx));
            i += 4;
        }
        for i in split..n {
            *py.add(i) += *px.add(i);
        }
    }

    // ---- gemm -----------------------------------------------------------

    /// Same blocking/packing as [`striped::gemm`], with a register-tiled
    /// microkernel: a 4×16 output tile lives in eight ymm registers for a
    /// whole k-tile. Per output element the adds still run in strictly
    /// increasing `p` order, so the result is bit-identical to the scalar
    /// driver — the win is dropping the store-to-load forwarding chain the
    /// memory-accumulating microkernel pays on every `o[j] +=`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_avx2(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        let mut packed: Vec<f32> = Vec::new();
        for jb in (0..n).step_by(GEMM_NC) {
            let nb = GEMM_NC.min(n - jb);
            for pb in (0..k).step_by(GEMM_KC) {
                let kb = GEMM_KC.min(k - pb);
                let panel: &[f32] = if nb == n {
                    &b[pb * n..(pb + kb) * n]
                } else {
                    packed.clear();
                    packed.reserve(kb * nb);
                    for p in 0..kb {
                        let row = (pb + p) * n + jb;
                        packed.extend_from_slice(&b[row..row + nb]);
                    }
                    &packed
                };
                let mut i = 0;
                while i + GEMM_MR <= m {
                    gemm_micro4x16_avx2(i, k, n, pb, kb, jb, nb, a, panel, out);
                    i += GEMM_MR;
                }
                for i in i..m {
                    let arow = &a[i * k + pb..i * k + pb + kb];
                    let orow = &mut out[i * n + jb..i * n + jb + nb];
                    for (p, &av) in arow.iter().enumerate() {
                        axpy_avx2(av, &panel[p * nb..(p + 1) * nb], orow);
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn gemm_micro4x16_avx2(
        i: usize,
        k: usize,
        n: usize,
        pb: usize,
        kb: usize,
        jb: usize,
        nb: usize,
        a: &[f32],
        panel: &[f32],
        out: &mut [f32],
    ) {
        let ap = a.as_ptr();
        let a0 = ap.add(i * k + pb);
        let a1 = ap.add((i + 1) * k + pb);
        let a2 = ap.add((i + 2) * k + pb);
        let a3 = ap.add((i + 3) * k + pb);
        let op = out.as_mut_ptr();
        let o0 = op.add(i * n + jb);
        let o1 = op.add((i + 1) * n + jb);
        let o2 = op.add((i + 2) * n + jb);
        let o3 = op.add((i + 3) * n + jb);
        let pp = panel.as_ptr();
        let mut j = 0;
        // 4×16 register tile: 8 ymm accumulators, loaded and stored once
        // per k-tile instead of once per (p, j) step.
        while j + 16 <= nb {
            let mut c00 = _mm256_loadu_ps(o0.add(j));
            let mut c01 = _mm256_loadu_ps(o0.add(j + 8));
            let mut c10 = _mm256_loadu_ps(o1.add(j));
            let mut c11 = _mm256_loadu_ps(o1.add(j + 8));
            let mut c20 = _mm256_loadu_ps(o2.add(j));
            let mut c21 = _mm256_loadu_ps(o2.add(j + 8));
            let mut c30 = _mm256_loadu_ps(o3.add(j));
            let mut c31 = _mm256_loadu_ps(o3.add(j + 8));
            for p in 0..kb {
                let b0 = _mm256_loadu_ps(pp.add(p * nb + j));
                let b1 = _mm256_loadu_ps(pp.add(p * nb + j + 8));
                let x0 = _mm256_set1_ps(*a0.add(p));
                c00 = _mm256_add_ps(c00, _mm256_mul_ps(x0, b0));
                c01 = _mm256_add_ps(c01, _mm256_mul_ps(x0, b1));
                let x1 = _mm256_set1_ps(*a1.add(p));
                c10 = _mm256_add_ps(c10, _mm256_mul_ps(x1, b0));
                c11 = _mm256_add_ps(c11, _mm256_mul_ps(x1, b1));
                let x2 = _mm256_set1_ps(*a2.add(p));
                c20 = _mm256_add_ps(c20, _mm256_mul_ps(x2, b0));
                c21 = _mm256_add_ps(c21, _mm256_mul_ps(x2, b1));
                let x3 = _mm256_set1_ps(*a3.add(p));
                c30 = _mm256_add_ps(c30, _mm256_mul_ps(x3, b0));
                c31 = _mm256_add_ps(c31, _mm256_mul_ps(x3, b1));
            }
            _mm256_storeu_ps(o0.add(j), c00);
            _mm256_storeu_ps(o0.add(j + 8), c01);
            _mm256_storeu_ps(o1.add(j), c10);
            _mm256_storeu_ps(o1.add(j + 8), c11);
            _mm256_storeu_ps(o2.add(j), c20);
            _mm256_storeu_ps(o2.add(j + 8), c21);
            _mm256_storeu_ps(o3.add(j), c30);
            _mm256_storeu_ps(o3.add(j + 8), c31);
            j += 16;
        }
        // 4×8 tile for the next-size-down remainder.
        while j + 8 <= nb {
            let mut c0 = _mm256_loadu_ps(o0.add(j));
            let mut c1 = _mm256_loadu_ps(o1.add(j));
            let mut c2 = _mm256_loadu_ps(o2.add(j));
            let mut c3 = _mm256_loadu_ps(o3.add(j));
            for p in 0..kb {
                let bv = _mm256_loadu_ps(pp.add(p * nb + j));
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_set1_ps(*a0.add(p)), bv));
                c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_set1_ps(*a1.add(p)), bv));
                c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_set1_ps(*a2.add(p)), bv));
                c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_set1_ps(*a3.add(p)), bv));
            }
            _mm256_storeu_ps(o0.add(j), c0);
            _mm256_storeu_ps(o1.add(j), c1);
            _mm256_storeu_ps(o2.add(j), c2);
            _mm256_storeu_ps(o3.add(j), c3);
            j += 8;
        }
        // Scalar column tail, same p-outer order as the scalar microkernel.
        if j < nb {
            for p in 0..kb {
                let (x0, x1, x2, x3) = (*a0.add(p), *a1.add(p), *a2.add(p), *a3.add(p));
                for jj in j..nb {
                    let bv = *pp.add(p * nb + jj);
                    *o0.add(jj) += x0 * bv;
                    *o1.add(jj) += x1 * bv;
                    *o2.add(jj) += x2 * bv;
                    *o3.add(jj) += x3 * bv;
                }
            }
        }
    }
}

pub mod reference {
    //! Straight-line scalar references with the *same* summation order as
    //! the kernels: element `i` into lane `i % 8`, same pairwise reduction.
    //! The property tests pin each kernel bit-for-bit against these — any
    //! divergence means the kernel changed the math, not just the speed.

    use super::{reduce8, LANES};

    /// Scalar-indexed striped dot product.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len());
        let mut acc = [0.0f32; LANES];
        for i in 0..a.len() {
            acc[i % LANES] += a[i] * b[i];
        }
        reduce8(acc)
    }

    /// Scalar-indexed striped sum of squares.
    pub fn sum_sq(v: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        for (i, &x) in v.iter().enumerate() {
            acc[i % LANES] += x * x;
        }
        reduce8(acc)
    }

    /// Scalar-indexed striped squared L2 distance.
    pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len());
        let mut acc = [0.0f32; LANES];
        for i in 0..a.len() {
            let d = a[i] - b[i];
            acc[i % LANES] += d * d;
        }
        reduce8(acc)
    }

    /// Scalar-indexed striped fused `(a·b, ‖a‖², ‖b‖²)`.
    pub fn dot_norms(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
        assert_eq!(a.len(), b.len());
        let mut acc_d = [0.0f32; LANES];
        let mut acc_a = [0.0f32; LANES];
        let mut acc_b = [0.0f32; LANES];
        for i in 0..a.len() {
            acc_d[i % LANES] += a[i] * b[i];
            acc_a[i % LANES] += a[i] * a[i];
            acc_b[i % LANES] += b[i] * b[i];
        }
        (reduce8(acc_d), reduce8(acc_a), reduce8(acc_b))
    }

    /// Naive `y += alpha * x`.
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), y.len());
        for i in 0..x.len() {
            y[i] += alpha * x[i];
        }
    }

    /// Widening int8 dot, exact in `i32`.
    pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        assert_eq!(a.len(), b.len());
        let mut sum = 0i32;
        for i in 0..a.len() {
            sum += a[i] as i32 * b[i] as i32;
        }
        sum
    }

    /// Naive i-k-j matrix multiply, `out += A · B` — the accumulation-order
    /// reference [`super::gemm`] must match bit-for-bit.
    pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(a.len(), m * k);
        assert_eq!(b.len(), k * n);
        assert_eq!(out.len(), m * n);
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    out[i * n + j] += av * b[p * n + j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic non-trivial fill (no RNG needed).
    fn wave(len: usize, phase: f32) -> Vec<f32> {
        (0..len).map(|i| (i as f32 * 0.37 + phase).sin() * 1.5).collect()
    }

    fn wave_i8(len: usize, phase: u32) -> Vec<i8> {
        (0..len)
            .map(|i| {
                (((i as u32).wrapping_mul(2654435761).wrapping_add(phase) >> 24) as i32 - 128) as i8
            })
            .collect()
    }

    #[test]
    fn dot_known_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn sum_sq_and_l2_known_values() {
        assert_eq!(sum_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn dot_norms_matches_parts() {
        let a = wave(37, 0.1);
        let b = wave(37, 2.2);
        let (d, na2, nb2) = dot_norms(&a, &b);
        assert_eq!(d.to_bits(), dot(&a, &b).to_bits());
        assert_eq!(na2.to_bits(), sum_sq(&a).to_bits());
        assert_eq!(nb2.to_bits(), sum_sq(&b).to_bits());
    }

    #[test]
    fn cosine_sim_conventions() {
        assert!((cosine_sim(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_sim(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine_sim(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_sim(&[0.0; 4], &[0.0; 4]), 0.0);
    }

    #[test]
    fn axpy_add_scale_mul() {
        let x = wave(19, 0.4);
        let mut y = wave(19, 1.3);
        let mut y2 = y.clone();
        axpy(0.5, &x, &mut y);
        reference::axpy(0.5, &x, &mut y2);
        assert_eq!(y, y2);
        let mut z = vec![1.0, 2.0];
        add(&mut z, &[3.0, 4.0]);
        assert_eq!(z, vec![4.0, 6.0]);
        scale(&mut z, 0.5);
        assert_eq!(z, vec![2.0, 3.0]);
        mul(&mut z, &[2.0, -1.0]);
        assert_eq!(z, vec![4.0, -3.0]);
    }

    #[test]
    fn kernels_bit_match_reference_across_tail_lengths() {
        for len in 0..=(3 * LANES + 1) {
            let a = wave(len, 0.0);
            let b = wave(len, 1.0);
            assert_eq!(dot(&a, &b).to_bits(), reference::dot(&a, &b).to_bits(), "len {len}");
            assert_eq!(sum_sq(&a).to_bits(), reference::sum_sq(&a).to_bits(), "len {len}");
            assert_eq!(l2_sq(&a, &b).to_bits(), reference::l2_sq(&a, &b).to_bits(), "len {len}");
        }
    }

    #[test]
    fn gemm_matches_reference_all_small_shapes() {
        for &(m, k, n) in
            &[(1, 1, 1), (3, 5, 7), (4, 8, 4), (5, 9, 3), (8, 300, 5), (9, 130, 260), (2, 0, 3)]
        {
            let a = wave(m * k, 0.3);
            let b = wave(k * n, 0.7);
            let mut out = vec![0.0f32; m * n];
            let mut expect = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut out);
            reference::gemm(m, k, n, &a, &b, &mut expect);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out), bits(&expect), "shape {m}x{k}x{n}");
        }
    }

    /// The backend contract, all in one test function: switching backends is
    /// globally visible, so the sweep runs under a single test to avoid
    /// racing itself (other tests are safe — every backend is bit-identical,
    /// which is exactly what this pins).
    #[test]
    fn every_backend_bit_matches_striped() {
        let backends: &[Backend] = if best_available() == Backend::Avx2 {
            &[Backend::Scalar, Backend::Sse2, Backend::Avx2]
        } else if cfg!(target_arch = "x86_64") {
            &[Backend::Scalar, Backend::Sse2]
        } else {
            &[Backend::Scalar]
        };
        let restore = backend();
        for &be in backends {
            set_backend(be);
            assert_eq!(backend(), be);
            for len in (0..=2 * LANES).chain([3 * LANES + 5, 64, 127, 128, 200]) {
                let a = wave(len, 0.2);
                let b = wave(len, 1.7);
                let name = be.name();
                assert_eq!(
                    dot(&a, &b).to_bits(),
                    striped::dot(&a, &b).to_bits(),
                    "dot {name} len {len}"
                );
                assert_eq!(
                    sum_sq(&a).to_bits(),
                    striped::sum_sq(&a).to_bits(),
                    "sum_sq {name} len {len}"
                );
                assert_eq!(
                    l2_sq(&a, &b).to_bits(),
                    striped::l2_sq(&a, &b).to_bits(),
                    "l2_sq {name} len {len}"
                );
                let fused = dot_norms(&a, &b);
                let want = striped::dot_norms(&a, &b);
                assert_eq!(
                    (fused.0.to_bits(), fused.1.to_bits(), fused.2.to_bits()),
                    (want.0.to_bits(), want.1.to_bits(), want.2.to_bits()),
                    "dot_norms {name} len {len}"
                );
                let mut y = wave(len, 0.9);
                let mut y2 = y.clone();
                axpy(0.37, &a, &mut y);
                striped::axpy(0.37, &a, &mut y2);
                assert_eq!(y, y2, "axpy {name} len {len}");
                let mut s = wave(len, 2.4);
                let mut s2 = s.clone();
                add(&mut s, &a);
                striped::add(&mut s2, &a);
                assert_eq!(s, s2, "add {name} len {len}");
                // Block dots across ragged row counts.
                for rows in [0, 1, 3, 4, 5, 9] {
                    let panel: Vec<f32> = (0..rows).flat_map(|r| wave(len, r as f32)).collect();
                    let mut got = vec![0.0f32; rows];
                    let mut want = vec![0.0f32; rows];
                    dot_block(&a, &panel, &mut got);
                    striped::dot_block(&a, &panel, &mut want);
                    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(&got), bits(&want), "dot_block {name} len {len} rows {rows}");
                }
                // int8: exact integers, every backend.
                let ia = wave_i8(len, 7);
                let ib = wave_i8(len, 99);
                assert_eq!(
                    dot_i8(&ia, &ib),
                    reference::dot_i8(&ia, &ib),
                    "dot_i8 {name} len {len}"
                );
                for rows in [0, 1, 3, 5] {
                    let panel: Vec<i8> =
                        (0..rows).flat_map(|r| wave_i8(len, r as u32 + 11)).collect();
                    let mut got = vec![0i32; rows];
                    let mut want = vec![0i32; rows];
                    dot_i8_block(&ia, &panel, &mut got);
                    striped::dot_i8_block(&ia, &panel, &mut want);
                    assert_eq!(got, want, "dot_i8_block {name} len {len} rows {rows}");
                }
            }
            // gemm across shapes that exercise every tile edge: full 4×16
            // tiles, 8-wide remainders, scalar column tails, leftover rows,
            // multi-k-tile and multi-n-tile drivers.
            for &(m, k, n) in &[
                (1, 1, 1),
                (4, 16, 16),
                (5, 9, 3),
                (7, 31, 21),
                (8, 300, 5),
                (9, 130, 260),
                (12, 64, 272),
                (2, 0, 3),
            ] {
                let a = wave(m * k, 0.3);
                let b = wave(k * n, 0.7);
                let mut out = wave(m * n, 1.1); // nonzero: gemm accumulates
                let mut expect = out.clone();
                gemm(m, k, n, &a, &b, &mut out);
                striped::gemm(m, k, n, &a, &b, &mut expect);
                let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&out), bits(&expect), "gemm {} {m}x{k}x{n}", be.name());
            }
        }
        set_backend(restore);
    }

    #[test]
    fn backend_names_and_indices_are_stable() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Sse2.name(), "sse2");
        assert_eq!(Backend::Avx2.name(), "avx2");
        assert_eq!(Backend::Scalar.index(), 0);
        assert_eq!(Backend::Avx2.index(), 2);
        assert!(!Backend::Scalar.is_simd());
        assert!(Backend::Sse2.is_simd());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_rejects_mismatched_dims() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "panel length")]
    fn dot_block_rejects_mismatched_panel() {
        let mut out = [0.0f32; 2];
        dot_block(&[1.0, 2.0], &[1.0, 2.0, 3.0], &mut out);
    }
}

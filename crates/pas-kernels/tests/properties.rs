//! Property tests pinning every kernel bit-for-bit against the straight-line
//! scalar reference with the same 8-lane summation order — over lengths
//! 0..=257, i.e. every `% 8` tail class plus the empty vector.

use pas_kernels as k;
use proptest::prelude::*;

/// Splits one generated buffer into two equal-length operands; buffer sizes
/// 0..=514 give operand lengths 0..=257, covering all non-multiple-of-8
/// tails the striping has to handle.
fn operands(buf: &[f32]) -> (&[f32], &[f32]) {
    let n = buf.len() / 2;
    (&buf[..n], &buf[n..2 * n])
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn reductions_bit_match_reference(buf in prop::collection::vec(-8.0f32..8.0, 0..515)) {
        let (a, b) = operands(&buf);
        prop_assert_eq!(k::dot(a, b).to_bits(), k::reference::dot(a, b).to_bits());
        prop_assert_eq!(k::sum_sq(a).to_bits(), k::reference::sum_sq(a).to_bits());
        prop_assert_eq!(k::l2_sq(a, b).to_bits(), k::reference::l2_sq(a, b).to_bits());
        let fused = k::dot_norms(a, b);
        let reference = k::reference::dot_norms(a, b);
        prop_assert_eq!(fused.0.to_bits(), reference.0.to_bits());
        prop_assert_eq!(fused.1.to_bits(), reference.1.to_bits());
        prop_assert_eq!(fused.2.to_bits(), reference.2.to_bits());
    }

    #[test]
    fn axpy_bit_matches_reference(
        buf in prop::collection::vec(-8.0f32..8.0, 0..515),
        alpha in -4.0f32..4.0,
    ) {
        let (x, y0) = operands(&buf);
        let mut fast = y0.to_vec();
        let mut slow = y0.to_vec();
        k::axpy(alpha, x, &mut fast);
        k::reference::axpy(alpha, x, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    #[test]
    fn cosine_sim_is_symmetric_and_bounded(buf in prop::collection::vec(-8.0f32..8.0, 0..515)) {
        let (a, b) = operands(&buf);
        let s = k::cosine_sim(a, b);
        prop_assert!((-1.0..=1.0).contains(&s), "cosine out of range: {}", s);
        prop_assert_eq!(s.to_bits(), k::cosine_sim(b, a).to_bits());
    }

    #[test]
    fn gemm_bit_matches_naive_ikj(
        m in 1usize..10,
        k_dim in 0usize..300,
        n in 1usize..280,
        seed in 0u32..1000,
    ) {
        // Deterministic fill from the drawn seed keeps the case cheap while
        // still varying the data with every (shape, seed) draw.
        let fill = |len: usize, phase: f32| -> Vec<f32> {
            (0..len).map(|i| ((i as f32 + seed as f32) * 0.61 + phase).sin()).collect()
        };
        let a = fill(m * k_dim, 0.2);
        let b = fill(k_dim * n, 1.9);
        let mut fast = vec![0.0f32; m * n];
        let mut slow = vec![0.0f32; m * n];
        k::gemm(m, k_dim, n, &a, &b, &mut fast);
        k::reference::gemm(m, k_dim, n, &a, &b, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }
}

/// Exhaustive sweep of every length 0..=257: the striping has exactly eight
/// tail classes, and this leaves none of them to chance.
#[test]
fn every_length_0_to_257_bit_matches_reference() {
    for len in 0..=257usize {
        let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.31).sin() * 2.0).collect();
        let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.17).cos() * 2.0).collect();
        assert_eq!(k::dot(&a, &b).to_bits(), k::reference::dot(&a, &b).to_bits(), "dot len {len}");
        assert_eq!(k::sum_sq(&a).to_bits(), k::reference::sum_sq(&a).to_bits(), "sum_sq len {len}");
        assert_eq!(
            k::l2_sq(&a, &b).to_bits(),
            k::reference::l2_sq(&a, &b).to_bits(),
            "l2_sq len {len}"
        );
        let fused = k::dot_norms(&a, &b);
        let reference = k::reference::dot_norms(&a, &b);
        assert_eq!(
            (fused.0.to_bits(), fused.1.to_bits(), fused.2.to_bits()),
            (reference.0.to_bits(), reference.1.to_bits(), reference.2.to_bits()),
            "dot_norms len {len}"
        );
        let mut fast = b.clone();
        let mut slow = b.clone();
        k::axpy(0.7, &a, &mut fast);
        k::reference::axpy(0.7, &a, &mut slow);
        assert_eq!(bits(&fast), bits(&slow), "axpy len {len}");
    }
}

//! A tiny deterministic template language for text realization.
//!
//! The synthetic corpus generator and the simulated LLMs realize text from
//! templates of the form:
//!
//! ```text
//! "Explain {topic} to {audience}, focusing on {aspect|detail|depth}."
//! ```
//!
//! `{name}` substitutes a bound slot value; `{a|b|c}` picks one alternative
//! with a caller-supplied chooser (typically a seeded RNG), which keeps every
//! realization reproducible.

use std::collections::BTreeMap;
use std::fmt;

/// Error raised while parsing or rendering a [`Template`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// A `{` without a matching `}`.
    UnclosedBrace { position: usize },
    /// A `{}` with no content.
    EmptySlot { position: usize },
    /// Rendering referenced a slot with no bound value.
    MissingSlot { name: String },
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::UnclosedBrace { position } => {
                write!(f, "unclosed '{{' at byte {position}")
            }
            TemplateError::EmptySlot { position } => write!(f, "empty slot at byte {position}"),
            TemplateError::MissingSlot { name } => write!(f, "no value bound for slot '{name}'"),
        }
    }
}

impl std::error::Error for TemplateError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Literal(String),
    Slot(String),
    Choice(Vec<String>),
}

/// A parsed template. Parse once with [`Template::parse`], render many times.
///
/// ```
/// use pas_text::template::{slots, Template};
///
/// let t = Template::parse("Explain {topic} {simply|in depth}.").unwrap();
/// let out = t.render(&slots([("topic", "HNSW")])).unwrap();
/// assert_eq!(out, "Explain HNSW simply.");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    segments: Vec<Segment>,
}

impl Template {
    /// Parses template `source`. Escape a literal brace by doubling it
    /// (`{{` → `{`, `}}` → `}`).
    pub fn parse(source: &str) -> Result<Self, TemplateError> {
        let bytes = source.as_bytes();
        let mut segments = Vec::new();
        let mut literal = String::new();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'{' if bytes.get(i + 1) == Some(&b'{') => {
                    literal.push('{');
                    i += 2;
                }
                b'}' if bytes.get(i + 1) == Some(&b'}') => {
                    literal.push('}');
                    i += 2;
                }
                b'{' => {
                    let close = source[i + 1..]
                        .find('}')
                        .map(|o| i + 1 + o)
                        .ok_or(TemplateError::UnclosedBrace { position: i })?;
                    let inner = &source[i + 1..close];
                    if inner.is_empty() {
                        return Err(TemplateError::EmptySlot { position: i });
                    }
                    if !literal.is_empty() {
                        segments.push(Segment::Literal(std::mem::take(&mut literal)));
                    }
                    if inner.contains('|') {
                        let opts = inner.split('|').map(str::to_string).collect();
                        segments.push(Segment::Choice(opts));
                    } else {
                        segments.push(Segment::Slot(inner.to_string()));
                    }
                    i = close + 1;
                }
                _ => {
                    // Advance one UTF-8 char.
                    let ch_len = source[i..].chars().next().map_or(1, char::len_utf8);
                    literal.push_str(&source[i..i + ch_len]);
                    i += ch_len;
                }
            }
        }
        if !literal.is_empty() {
            segments.push(Segment::Literal(literal));
        }
        Ok(Template { segments })
    }

    /// Names of all `{slot}` references, in first-appearance order without
    /// duplicates.
    pub fn slot_names(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for seg in &self.segments {
            if let Segment::Slot(name) = seg {
                if !seen.contains(&name.as_str()) {
                    seen.push(name.as_str());
                }
            }
        }
        seen
    }

    /// Renders with `slots` bound and `choose(n)` selecting the index (must
    /// return a value `< n`) for each `{a|b|c}` alternative encountered, in
    /// order.
    pub fn render_with<F>(
        &self,
        slots: &BTreeMap<String, String>,
        mut choose: F,
    ) -> Result<String, TemplateError>
    where
        F: FnMut(usize) -> usize,
    {
        let mut out = String::new();
        for seg in &self.segments {
            match seg {
                Segment::Literal(s) => out.push_str(s),
                Segment::Slot(name) => {
                    let v = slots
                        .get(name)
                        .ok_or_else(|| TemplateError::MissingSlot { name: name.clone() })?;
                    out.push_str(v);
                }
                Segment::Choice(opts) => {
                    let idx = choose(opts.len()).min(opts.len() - 1);
                    out.push_str(&opts[idx]);
                }
            }
        }
        Ok(out)
    }

    /// Renders taking the first alternative of every choice. Convenient for
    /// tests and for canonical ("greedy") realizations.
    pub fn render(&self, slots: &BTreeMap<String, String>) -> Result<String, TemplateError> {
        self.render_with(slots, |_| 0)
    }
}

/// Builds a slot map from `(name, value)` pairs.
pub fn slots<const N: usize>(pairs: [(&str, &str); N]) -> BTreeMap<String, String> {
    pairs.into_iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_slots() {
        let t = Template::parse("Explain {topic} to {aud}.").unwrap();
        let out = t.render(&slots([("topic", "HNSW"), ("aud", "beginners")])).unwrap();
        assert_eq!(out, "Explain HNSW to beginners.");
    }

    #[test]
    fn renders_choices_with_chooser() {
        let t = Template::parse("a {x|y|z} b").unwrap();
        assert_eq!(t.render_with(&BTreeMap::new(), |_| 2).unwrap(), "a z b");
        assert_eq!(t.render(&BTreeMap::new()).unwrap(), "a x b");
    }

    #[test]
    fn chooser_index_is_clamped() {
        let t = Template::parse("{p|q}").unwrap();
        assert_eq!(t.render_with(&BTreeMap::new(), |_| 99).unwrap(), "q");
    }

    #[test]
    fn escaped_braces() {
        let t = Template::parse("json: {{\"k\": {v}}}").unwrap();
        assert_eq!(t.render(&slots([("v", "1")])).unwrap(), "json: {\"k\": 1}");
    }

    #[test]
    fn missing_slot_is_error() {
        let t = Template::parse("{name}").unwrap();
        assert_eq!(
            t.render(&BTreeMap::new()),
            Err(TemplateError::MissingSlot { name: "name".into() })
        );
    }

    #[test]
    fn unclosed_and_empty_are_errors() {
        assert!(matches!(Template::parse("oops {slot"), Err(TemplateError::UnclosedBrace { .. })));
        assert!(matches!(Template::parse("bad {}"), Err(TemplateError::EmptySlot { .. })));
    }

    #[test]
    fn slot_names_dedup_in_order() {
        let t = Template::parse("{b} {a} {b}").unwrap();
        assert_eq!(t.slot_names(), vec!["b", "a"]);
    }

    #[test]
    fn unicode_literals_survive() {
        let t = Template::parse("中文 {x} 文本").unwrap();
        assert_eq!(t.render(&slots([("x", "测试")])).unwrap(), "中文 测试 文本");
    }
}

//! N-gram extraction over characters and words.
//!
//! Character n-grams feed the hashing embedder in `pas-embed`; word shingles
//! feed near-duplicate detection. Both operate on the canonical word stream
//! from [`crate::words`] so the representations line up across crates.

use crate::hash::{fx_combine, fx_hash_str};
use crate::words;

/// Returns the character `n`-grams of `text` (over the raw char stream,
/// including spaces). Returns the whole text as a single gram when it is
/// shorter than `n`.
pub fn char_ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram size must be positive");
    let chars: Vec<char> = text.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= n {
        return vec![chars.iter().collect()];
    }
    (0..=chars.len() - n).map(|i| chars[i..i + n].iter().collect()).collect()
}

/// Returns the word `n`-grams of `text`, joined with single spaces.
pub fn word_ngrams(text: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram size must be positive");
    let ws = words(text);
    if ws.is_empty() {
        return Vec::new();
    }
    if ws.len() <= n {
        return vec![ws.join(" ")];
    }
    (0..=ws.len() - n).map(|i| ws[i..i + n].join(" ")).collect()
}

/// Hashes each word `n`-gram (shingle) of `text` to a 64-bit value.
///
/// Shingle hash sets support MinHash-style and Jaccard near-duplicate checks
/// without keeping the gram strings alive.
pub fn word_shingle_hashes(text: &str, n: usize) -> Vec<u64> {
    assert!(n > 0, "shingle size must be positive");
    let ws = words(text);
    if ws.is_empty() {
        return Vec::new();
    }
    let hashes: Vec<u64> = ws.iter().map(|w| fx_hash_str(w)).collect();
    if hashes.len() <= n {
        return vec![hashes.iter().fold(0u64, |acc, &h| fx_combine(acc, h))];
    }
    (0..=hashes.len() - n)
        .map(|i| hashes[i..i + n].iter().fold(0u64, |acc, &h| fx_combine(acc, h)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_ngrams_basic() {
        assert_eq!(char_ngrams("abcd", 2), vec!["ab", "bc", "cd"]);
    }

    #[test]
    fn char_ngrams_short_input_returns_whole() {
        assert_eq!(char_ngrams("ab", 3), vec!["ab"]);
        assert!(char_ngrams("", 3).is_empty());
    }

    #[test]
    fn word_ngrams_basic() {
        assert_eq!(
            word_ngrams("the quick brown fox", 2),
            vec!["the quick", "quick brown", "brown fox"]
        );
    }

    #[test]
    fn word_ngrams_normalizes_case_and_punct() {
        assert_eq!(word_ngrams("The, QUICK fox", 2), vec!["the quick", "quick fox"]);
    }

    #[test]
    fn shingle_hashes_match_for_equal_texts() {
        assert_eq!(word_shingle_hashes("a b c d", 3), word_shingle_hashes("A b. C d", 3));
    }

    #[test]
    fn shingle_hashes_are_order_sensitive() {
        assert_ne!(word_shingle_hashes("a b c", 3), word_shingle_hashes("c b a", 3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_n_panics() {
        char_ngrams("abc", 0);
    }

    #[test]
    fn counts_line_up() {
        let text = "one two three four five";
        assert_eq!(word_ngrams(text, 2).len(), 4);
        assert_eq!(word_shingle_hashes(text, 2).len(), 4);
    }
}

//! A fast, deterministic, non-cryptographic 64-bit hash.
//!
//! PAS hashes short strings (words, n-grams) extremely frequently for feature
//! extraction, so the default SipHash is a poor fit. This is the FxHash
//! algorithm used by rustc (word-at-a-time multiply-rotate), implemented here
//! so the workspace stays within its sanctioned dependency set. The hash is
//! stable across runs and platforms with the same endianness assumptions
//! (we read little-endian explicitly, so it is fully portable).

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Streaming FxHash hasher. Use [`FxHashMap`]/[`FxHashSet`] aliases for
/// hash-heavy collections keyed by small values.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the remainder length so "a" and "a\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rem.len() as u64));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Multiply-based mixing leaves the low bits weak (the low byte of a
        // product depends only on the operands' low bytes), so run the
        // MurmurHash3 fmix64 avalanche before handing the value to hash
        // tables that index with low bits. Still only a handful of cycles.
        let mut h = self.state;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        h
    }
}

/// `HashMap` keyed with FxHash; drop-in replacement for `std::collections::HashMap`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with FxHash; drop-in replacement for `std::collections::HashSet`.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hashes a byte slice to a stable 64-bit value.
#[inline]
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Hashes a string to a stable 64-bit value.
#[inline]
pub fn fx_hash_str(s: &str) -> u64 {
    fx_hash_bytes(s.as_bytes())
}

/// Combines two hashes into one (order-sensitive). Used for hierarchical
/// feature hashing, e.g. `(feature-namespace, token)`.
#[inline]
pub fn fx_combine(a: u64, b: u64) -> u64 {
    (a.rotate_left(ROTATE) ^ b).wrapping_mul(SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(fx_hash_str("hello"), fx_hash_str("hello"));
    }

    #[test]
    fn hash_differs_for_different_inputs() {
        assert_ne!(fx_hash_str("hello"), fx_hash_str("hellp"));
        assert_ne!(fx_hash_str("a"), fx_hash_str("b"));
    }

    #[test]
    fn trailing_zero_bytes_change_hash() {
        assert_ne!(fx_hash_bytes(b"a"), fx_hash_bytes(b"a\0"));
        assert_ne!(fx_hash_bytes(b""), fx_hash_bytes(b"\0"));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let (a, b) = (fx_hash_str("x"), fx_hash_str("y"));
        assert_ne!(fx_combine(a, b), fx_combine(b, a));
    }

    #[test]
    fn map_alias_works() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("k".into(), 1);
        assert_eq!(m.get("k"), Some(&1));
    }

    #[test]
    fn distribution_spreads_low_bits() {
        // Low bits must vary across sequential keys or open-addressing tables
        // degrade. A perfect random hash throwing 256 balls into 256 bins
        // yields ~162 distinct values in expectation; require at least 120.
        let mut seen = std::collections::HashSet::new();
        for i in 0..256u32 {
            seen.insert((fx_hash_str(&format!("key-{i}")) & 0xff) as u8);
        }
        assert!(seen.len() > 120, "only {} distinct low bytes", seen.len());
    }
}

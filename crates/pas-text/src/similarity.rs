//! Lexical similarity measures.
//!
//! Near-duplicate detection in the data-selection pipeline (§3.1) uses
//! Jaccard over word sets as a cheap pre-filter before embedding-space
//! comparison, and Levenshtein for the final exact-ish confirmation on short
//! texts.

use std::collections::HashSet;

use crate::words;

/// Jaccard similarity of the word sets of two texts, in `[0, 1]`.
/// Two empty texts are identical (1.0); one empty text is disjoint (0.0).
pub fn jaccard_words(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = words(a).into_iter().collect();
    let sb: HashSet<String> = words(b).into_iter().collect();
    match (sa.is_empty(), sb.is_empty()) {
        (true, true) => 1.0,
        (true, false) | (false, true) => 0.0,
        _ => {
            let inter = sa.intersection(&sb).count();
            let union = sa.len() + sb.len() - inter;
            inter as f64 / union as f64
        }
    }
}

/// Sørensen–Dice coefficient of the word sets of two texts, in `[0, 1]`.
pub fn dice_coefficient(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = words(a).into_iter().collect();
    let sb: HashSet<String> = words(b).into_iter().collect();
    match (sa.is_empty(), sb.is_empty()) {
        (true, true) => 1.0,
        (true, false) | (false, true) => 0.0,
        _ => {
            let inter = sa.intersection(&sb).count();
            2.0 * inter as f64 / (sa.len() + sb.len()) as f64
        }
    }
}

/// Levenshtein edit distance between two strings, over chars.
///
/// Uses the classic two-row dynamic program: O(|a|·|b|) time, O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the shorter string in the inner dimension to minimize the rows.
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Levenshtein distance normalized to `[0, 1]` similarity
/// (1.0 = identical, 0.0 = completely different).
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_identical() {
        assert_eq!(jaccard_words("a b c", "c b a"), 1.0);
    }

    #[test]
    fn jaccard_disjoint_and_empty() {
        assert_eq!(jaccard_words("a b", "c d"), 0.0);
        assert_eq!(jaccard_words("", ""), 1.0);
        assert_eq!(jaccard_words("a", ""), 0.0);
    }

    #[test]
    fn jaccard_partial() {
        assert!((jaccard_words("a b c", "b c d") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dice_exceeds_jaccard_on_partial_overlap() {
        let j = jaccard_words("a b c", "b c d");
        let d = dice_coefficient("a b c", "b c d");
        assert!(d > j);
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        assert_eq!(levenshtein("abcde", "xbcdz"), levenshtein("xbcdz", "abcde"));
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let v = normalized_levenshtein("abcd", "abce");
        assert!(v > 0.7 && v < 1.0);
    }
}

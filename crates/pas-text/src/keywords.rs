//! Keyword extraction and overlap metrics.
//!
//! The judge models in `pas-eval` check whether a response *covers* the
//! content of a prompt, and the critic model in `pas-llm` checks whether a
//! complementary prompt is on-topic. Both reduce to keyword overlap between
//! two texts after stopword removal.

use crate::hash::FxHashMap;
use crate::words;

/// English stopwords used across the workspace. Kept small on purpose: the
/// synthetic corpus is template-generated, so a compact list suffices and
/// stays auditable.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "the", "and", "or", "but", "if", "then", "else", "for", "of", "to", "in", "on",
    "at", "by", "with", "about", "as", "is", "are", "was", "were", "be", "been", "being", "do",
    "does", "did", "have", "has", "had", "i", "you", "he", "she", "it", "we", "they", "me", "him",
    "her", "us", "them", "my", "your", "its", "our", "their", "this", "that", "these", "those",
    "what", "which", "who", "whom", "how", "when", "where", "why", "can", "could", "should",
    "would", "will", "shall", "may", "might", "must", "not", "no", "so", "than", "too", "very",
    "just", "please", "also", "there", "here", "from", "into", "out", "up", "down", "over",
    "under", "again", "more", "most", "some", "any", "each", "own", "same", "s", "t", "don", "now",
    "am",
];

fn is_stopword(word: &str) -> bool {
    STOPWORDS.contains(&word)
}

/// Returns the non-stopword tokens of `text`, lowercased, in order, with
/// duplicates preserved.
pub fn content_words(text: &str) -> Vec<String> {
    words(text).into_iter().filter(|w| !is_stopword(w)).collect()
}

/// Returns the `k` most frequent content words of `text`, most frequent
/// first; ties broken alphabetically for determinism.
pub fn top_keywords(text: &str, k: usize) -> Vec<String> {
    let mut counts: FxHashMap<String, u32> = FxHashMap::default();
    for w in content_words(text) {
        *counts.entry(w).or_insert(0) += 1;
    }
    let mut items: Vec<(String, u32)> = counts.into_iter().collect();
    items.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    items.into_iter().take(k).map(|(w, _)| w).collect()
}

/// Fraction of the content words of `reference` that also appear in
/// `candidate` (recall-oriented overlap in `[0, 1]`). Returns 1.0 when the
/// reference has no content words — an empty requirement is trivially covered.
pub fn keyword_overlap(reference: &str, candidate: &str) -> f64 {
    let ref_words: Vec<String> = {
        let mut v = content_words(reference);
        v.sort_unstable();
        v.dedup();
        v
    };
    if ref_words.is_empty() {
        return 1.0;
    }
    let cand: std::collections::HashSet<String> = content_words(candidate).into_iter().collect();
    let hit = ref_words.iter().filter(|w| cand.contains(*w)).count();
    hit as f64 / ref_words.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_words_drops_stopwords() {
        assert_eq!(
            content_words("How do I sort the list of numbers"),
            vec!["sort", "list", "numbers"]
        );
    }

    #[test]
    fn top_keywords_by_frequency_then_alpha() {
        let kws = top_keywords("rust rust python python java", 2);
        // rust and python tie at 2; alphabetical tie-break puts python first.
        assert_eq!(kws, vec!["python", "rust"]);
    }

    #[test]
    fn top_keywords_k_larger_than_vocab() {
        assert_eq!(top_keywords("alpha beta", 10).len(), 2);
    }

    #[test]
    fn overlap_bounds() {
        assert_eq!(keyword_overlap("sort numbers", "please sort these numbers"), 1.0);
        assert_eq!(keyword_overlap("sort numbers", "boil water"), 0.0);
        assert_eq!(keyword_overlap("", "anything"), 1.0);
    }

    #[test]
    fn overlap_is_recall_not_precision() {
        // Candidate may say much more; only reference coverage matters.
        let r = keyword_overlap("merge lists", "merge the two sorted lists carefully using a heap");
        assert_eq!(r, 1.0);
    }

    #[test]
    fn overlap_partial() {
        let r = keyword_overlap("merge sorted lists", "merge lists");
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
    }
}

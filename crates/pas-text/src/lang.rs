//! Coarse language identification.
//!
//! The critic prompt in the paper (Fig. 5) requires the complementary prompt
//! to be in the same language as the user prompt; the critic model in
//! `pas-llm` enforces that with this detector. We only need to distinguish
//! the scripts that the synthetic corpus generates.

use serde::{Deserialize, Serialize};

/// Detected language of a text, by dominant script.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Language {
    /// Latin-script text (treated as English in the synthetic corpus).
    English,
    /// CJK-script text (treated as Chinese in the synthetic corpus).
    Chinese,
    /// No script-bearing characters at all.
    Unknown,
}

impl std::fmt::Display for Language {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Language::English => write!(f, "en"),
            Language::Chinese => write!(f, "zh"),
            Language::Unknown => write!(f, "und"),
        }
    }
}

fn is_cjk(ch: char) -> bool {
    matches!(ch as u32,
        0x4E00..=0x9FFF      // CJK Unified Ideographs
        | 0x3400..=0x4DBF    // Extension A
        | 0x3040..=0x30FF    // Hiragana + Katakana
        | 0xF900..=0xFAFF    // Compatibility Ideographs
    )
}

/// Detects the dominant script of `text`.
///
/// A text counts as [`Language::Chinese`] when CJK characters outnumber
/// ASCII letters; mixed text with more Latin letters stays
/// [`Language::English`].
pub fn detect_language(text: &str) -> Language {
    let mut latin = 0usize;
    let mut cjk = 0usize;
    for ch in text.chars() {
        if is_cjk(ch) {
            cjk += 1;
        } else if ch.is_ascii_alphabetic() {
            latin += 1;
        }
    }
    match (latin, cjk) {
        (0, 0) => Language::Unknown,
        (l, c) if c > l => Language::Chinese,
        _ => Language::English,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_english() {
        assert_eq!(detect_language("How do I boil water quickly?"), Language::English);
    }

    #[test]
    fn detects_chinese() {
        assert_eq!(detect_language("如何快速烧开水"), Language::Chinese);
    }

    #[test]
    fn mixed_majority_wins() {
        assert_eq!(detect_language("please translate 你好"), Language::English);
        assert_eq!(detect_language("请翻译这句话 ok"), Language::Chinese);
    }

    #[test]
    fn digits_only_is_unknown() {
        assert_eq!(detect_language("12345 !!"), Language::Unknown);
        assert_eq!(detect_language(""), Language::Unknown);
    }

    #[test]
    fn display_codes() {
        assert_eq!(Language::English.to_string(), "en");
        assert_eq!(Language::Chinese.to_string(), "zh");
        assert_eq!(Language::Unknown.to_string(), "und");
    }
}

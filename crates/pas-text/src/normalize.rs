//! Canonicalization of raw prompt text.
//!
//! The deduplication stage of the PAS data pipeline (§3.1 of the paper)
//! compares *meaning*, not bytes; these helpers strip the variation that the
//! embedding model should not have to absorb: casing, punctuation, and
//! whitespace runs.

/// Collapses runs of whitespace to single spaces and trims the ends.
pub fn collapse_whitespace(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_ws = true; // leading whitespace is dropped
    for ch in text.chars() {
        if ch.is_whitespace() {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(ch);
            in_ws = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Removes punctuation characters, replacing them with spaces so word
/// boundaries survive (`"don't"` → `"don t"`, `"a,b"` → `"a b"`).
pub fn strip_punctuation(text: &str) -> String {
    text.chars().map(|c| if c.is_alphanumeric() || c.is_whitespace() { c } else { ' ' }).collect()
}

/// Full canonical form used as the dedup key: lowercase, punctuation-free,
/// whitespace-collapsed.
pub fn normalize_for_dedup(text: &str) -> String {
    collapse_whitespace(&strip_punctuation(&text.to_lowercase()))
}

/// Truncates a string to at most `max_chars` characters on a char boundary,
/// appending an ellipsis when truncation happened. Used by report renderers.
pub fn truncate_chars(text: &str, max_chars: usize) -> String {
    if text.chars().count() <= max_chars {
        return text.to_string();
    }
    let mut out: String = text.chars().take(max_chars.saturating_sub(1)).collect();
    out.push('…');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapse_handles_tabs_and_newlines() {
        assert_eq!(collapse_whitespace("  a\t\tb\n\nc  "), "a b c");
    }

    #[test]
    fn collapse_empty_and_all_space() {
        assert_eq!(collapse_whitespace(""), "");
        assert_eq!(collapse_whitespace(" \n\t "), "");
    }

    #[test]
    fn strip_punctuation_preserves_boundaries() {
        assert_eq!(collapse_whitespace(&strip_punctuation("a,b.c")), "a b c");
    }

    #[test]
    fn normalize_is_idempotent() {
        let n1 = normalize_for_dedup("  How DO I   sort, a Vec?? ");
        let n2 = normalize_for_dedup(&n1);
        assert_eq!(n1, n2);
        assert_eq!(n1, "how do i sort a vec");
    }

    #[test]
    fn normalize_equates_surface_variants() {
        assert_eq!(
            normalize_for_dedup("How do I sort a Vec?"),
            normalize_for_dedup("how do i sort a vec!!")
        );
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        assert_eq!(truncate_chars("héllo wörld", 6), "héllo…");
        assert_eq!(truncate_chars("short", 10), "short");
    }
}

//! Text utilities shared by every PAS crate.
//!
//! This crate deliberately has no heavyweight dependencies: it provides the
//! deterministic, allocation-conscious primitives the rest of the workspace
//! builds on — normalization, n-gram extraction, keyword scoring, string
//! similarity, a seedable template realizer, and a fast non-cryptographic
//! hash used for feature hashing throughout the system.

pub mod hash;
pub mod keywords;
pub mod lang;
pub mod ngram;
pub mod normalize;
pub mod similarity;
pub mod template;

pub use hash::{fx_hash_bytes, fx_hash_str, FxHasher};
pub use keywords::{content_words, keyword_overlap, top_keywords};
pub use lang::{detect_language, Language};
pub use ngram::{char_ngrams, word_ngrams, word_shingle_hashes};
pub use normalize::{collapse_whitespace, normalize_for_dedup, strip_punctuation};
pub use similarity::{dice_coefficient, jaccard_words, levenshtein, normalized_levenshtein};
pub use template::{Template, TemplateError};

/// Splits text into lowercase word tokens (alphanumeric runs).
///
/// This is the single tokenization used by the lexical components so that
/// keyword extraction, similarity and feature hashing all agree on word
/// boundaries.
pub fn words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_splits_on_non_alphanumeric() {
        assert_eq!(words("Hello, world!"), vec!["hello", "world"]);
    }

    #[test]
    fn words_keeps_digits() {
        assert_eq!(words("top-10 results"), vec!["top", "10", "results"]);
    }

    #[test]
    fn words_empty_input() {
        assert!(words("").is_empty());
        assert!(words("  ,.! ").is_empty());
    }

    #[test]
    fn words_handles_unicode() {
        assert_eq!(words("Grüße an alle"), vec!["grüße", "an", "alle"]);
    }
}

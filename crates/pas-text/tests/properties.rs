//! Property-based tests for the text primitives.

use proptest::prelude::*;

use pas_text::normalize::normalize_for_dedup;
use pas_text::{
    collapse_whitespace, dice_coefficient, fx_hash_str, jaccard_words, levenshtein,
    normalized_levenshtein, words,
};

proptest! {
    #[test]
    fn normalize_is_idempotent(s in ".{0,200}") {
        let once = normalize_for_dedup(&s);
        prop_assert_eq!(normalize_for_dedup(&once), once);
    }

    #[test]
    fn collapse_never_has_double_spaces(s in ".{0,200}") {
        let c = collapse_whitespace(&s);
        prop_assert!(!c.contains("  "));
        prop_assert!(!c.starts_with(' '));
        prop_assert!(!c.ends_with(' '));
    }

    #[test]
    fn words_are_lowercase_alphanumeric(s in ".{0,200}") {
        for w in words(&s) {
            prop_assert!(!w.is_empty());
            prop_assert!(w.chars().all(|c| c.is_alphanumeric()));
            // Case-folded: lowercasing again is a no-op. (Some uppercase
            // codepoints, e.g. 𝐀, have no lowercase mapping and survive.)
            prop_assert_eq!(w.to_lowercase(), w);
        }
    }

    #[test]
    fn hash_is_stable(s in ".{0,100}") {
        prop_assert_eq!(fx_hash_str(&s), fx_hash_str(&s));
    }

    #[test]
    fn jaccard_is_symmetric_and_bounded(a in "[a-z ]{0,80}", b in "[a-z ]{0,80}") {
        let ab = jaccard_words(&a, &b);
        let ba = jaccard_words(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!(dice_coefficient(&a, &b) + 1e-12 >= ab, "dice >= jaccard");
    }

    #[test]
    fn jaccard_self_is_one(a in "[a-z]{1,10}( [a-z]{1,10}){0,8}") {
        prop_assert!((jaccard_words(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn levenshtein_triangle_inequality(
        a in "[a-c]{0,12}", b in "[a-c]{0,12}", c in "[a-c]{0,12}"
    ) {
        let ab = levenshtein(&a, &b);
        let bc = levenshtein(&b, &c);
        let ac = levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc, "d(a,c)={ac} > d(a,b)+d(b,c)={}", ab + bc);
    }

    #[test]
    fn levenshtein_identity_and_symmetry(a in ".{0,30}", b in ".{0,30}") {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn normalized_levenshtein_bounds(a in ".{0,40}", b in ".{0,40}") {
        let v = normalized_levenshtein(&a, &b);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn template_literal_without_braces_renders_verbatim(s in "[a-zA-Z0-9 .,!?]{0,100}") {
        use pas_text::Template;
        let t = Template::parse(&s).unwrap();
        let out = t.render(&std::collections::BTreeMap::new()).unwrap();
        prop_assert_eq!(out, s);
    }
}

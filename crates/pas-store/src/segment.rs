//! The append-only segment log.
//!
//! A store directory holds one *generation* of segment files named
//! `seg-{generation:06}-{seq:06}.log`. Each file starts with a CRC'd
//! header (magic, config fingerprint, generation, seq, and the index of
//! the first record it holds) followed by framed records
//! ([`Record::encode`]). Appends flush per record; when the current file
//! exceeds [`StoreConfig::segment_max_bytes`] the log rolls to the next
//! seq.
//!
//! **Compaction** rewrites the live records as generation `g+1`: one new
//! segment is built in a temp file and atomically renamed in, then the old
//! generation's files are deleted. Every step is restartable — on open the
//! highest *complete* generation wins, stray temp files and lower
//! generations are swept, so a crash at any compaction boundary converges
//! to either the old or the new generation, never a mix.
//!
//! **Recovery rules** (mirroring `pas_fault::Journal`): a fingerprint
//! mismatch is a hard error (the log belongs to a different config); a
//! torn record or torn header is tolerated only at the *tail of the last
//! segment* — it is truncated away and counted in `store.torn_tails` —
//! while corruption anywhere else is a hard error. Replay therefore
//! recovers exactly the durable record prefix of the current generation.
//!
//! Every durability boundary consults an optional
//! [`pas_fault::DiskFaults`] schedule first, so chaos tests can kill the
//! log at any append/roll/compact step; a fired fault poisons the handle
//! (all further operations error) exactly like a dead process.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use pas_fault::{DiskFault, DiskFaultKind, DiskFaults};

use crate::crc::crc32;
use crate::record::Record;
use crate::wire::{self, Reader};
use crate::{OBS_BYTES, OBS_COMPACTIONS, OBS_RECOVERED, OBS_SEGMENTS, OBS_TORN_TAILS};

/// Magic prefix of every segment file.
const SEG_MAGIC: &[u8] = b"PASSEG01";

/// Header: magic(8) + fingerprint(8) + generation(8) + seq(8) +
/// first_op(8) + crc(4).
const HEADER_LEN: usize = 44;

/// Segment-log tuning knobs. All triggers are functions of byte and record
/// counts only, so log layout is deterministic for a given op sequence.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Configuration fingerprint stamped into every header; opening a
    /// directory written under a different fingerprint is a hard error.
    pub fingerprint: u64,
    /// Roll to a new segment file once the current one exceeds this.
    pub segment_max_bytes: u64,
    /// Compaction trigger: at least this many tombstones…
    pub compact_min_dead: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { fingerprint: 0, segment_max_bytes: 4 << 20, compact_min_dead: 64 }
    }
}

/// The path of segment `(generation, seq)` under `dir`.
fn segment_path(dir: &Path, generation: u64, seq: u64) -> PathBuf {
    dir.join(format!("seg-{generation:06}-{seq:06}.log"))
}

/// Parses a segment filename back into `(generation, seq)`.
fn parse_segment_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    let (g, s) = rest.split_once('-')?;
    Some((g.parse().ok()?, s.parse().ok()?))
}

fn encode_header(fingerprint: u64, generation: u64, seq: u64, first_op: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(SEG_MAGIC);
    wire::put_u64(&mut out, fingerprint);
    wire::put_u64(&mut out, generation);
    wire::put_u64(&mut out, seq);
    wire::put_u64(&mut out, first_op);
    let crc = crc32(&out);
    wire::put_u32(&mut out, crc);
    out
}

/// Outcome of decoding one record frame.
enum Frame {
    Rec(Record, usize),
    Incomplete,
    Corrupt,
}

/// A decoded, CRC-valid segment header.
struct Header {
    fingerprint: u64,
    generation: u64,
    seq: u64,
    first_op: u64,
}

fn decode_header(bytes: &[u8]) -> Option<Header> {
    if bytes.len() < HEADER_LEN || &bytes[..8] != SEG_MAGIC {
        return None;
    }
    let mut r = Reader::new(&bytes[8..HEADER_LEN]);
    let fingerprint = r.u64().ok()?;
    let generation = r.u64().ok()?;
    let seq = r.u64().ok()?;
    let first_op = r.u64().ok()?;
    let crc = r.u32().ok()?;
    if crc != crc32(&bytes[..HEADER_LEN - 4]) {
        return None;
    }
    Some(Header { fingerprint, generation, seq, first_op })
}

/// The append-only, CRC'd, generation-compacted segment log.
#[derive(Debug)]
pub struct SegmentLog {
    dir: PathBuf,
    config: StoreConfig,
    faults: Option<DiskFaults>,
    generation: u64,
    /// Seq the *next* segment file will get.
    next_seq: u64,
    /// Records in the current generation (replayed + appended).
    op_count: u64,
    /// Tombstones among them (compaction-pressure estimate: each one kills
    /// roughly a meta+vector pair besides itself).
    tombstones: u64,
    current: Option<File>,
    current_bytes: u64,
    /// Bytes across all current-generation files (headers included).
    total_bytes: u64,
    poisoned: bool,
}

impl SegmentLog {
    /// Opens (or creates) the log in `dir` and replays the durable record
    /// prefix of the newest complete generation. Leftovers of interrupted
    /// compactions — temp files, superseded generations — are swept here,
    /// which is what makes every compaction crash point recoverable.
    pub fn open(
        dir: &Path,
        config: StoreConfig,
        faults: Option<DiskFaults>,
    ) -> io::Result<(SegmentLog, Vec<Record>)> {
        fs::create_dir_all(dir)?;
        let mut segments: Vec<(u64, u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.ends_with(".tmp") {
                fs::remove_file(&path)?;
            } else if let Some((g, s)) = parse_segment_name(name) {
                segments.push((g, s, path));
            }
        }
        let generation = segments.iter().map(|&(g, _, _)| g).max().unwrap_or(0);
        // Sweep superseded generations (a compaction renamed its segment in
        // but died before the cleanup step).
        segments.retain(|&(g, _, ref path)| {
            if g < generation {
                let _ = fs::remove_file(path);
                false
            } else {
                true
            }
        });
        segments.sort_by_key(|&(_, s, _)| s);

        let mut log = SegmentLog {
            dir: dir.to_path_buf(),
            config,
            faults,
            generation,
            next_seq: 0,
            op_count: 0,
            tombstones: 0,
            current: None,
            current_bytes: 0,
            total_bytes: 0,
            poisoned: false,
        };
        let mut records = Vec::new();
        let last = segments.len().saturating_sub(1);
        for (i, (_, seq, path)) in segments.iter().enumerate() {
            let keep = log.replay_segment(path, *seq, i == last, &mut records)?;
            if keep {
                log.next_seq = seq + 1;
            }
        }
        OBS_RECOVERED.add(records.len() as u64);
        OBS_BYTES.set(log.total_bytes);
        Ok((log, records))
    }

    /// Reads one segment file into `records`. Returns false when the file
    /// was dropped entirely (torn header on the last segment).
    fn replay_segment(
        &mut self,
        path: &Path,
        seq: u64,
        is_last: bool,
        records: &mut Vec<Record>,
    ) -> io::Result<bool> {
        // Read-path crash legs: a process can die mid-replay too. Nothing
        // is written on a read, so every kind degenerates to "crash before
        // the step" — reopen simply starts replay over from the top.
        if let Some(f) = &self.faults {
            f.check("replay.segment").map_err(|fault| fault.to_io())?;
        }
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let header = match decode_header(&bytes) {
            Some(h) => h,
            None if is_last => {
                // Torn while creating the file: nothing durable in it.
                OBS_TORN_TAILS.incr();
                fs::remove_file(path)?;
                return Ok(false);
            }
            None => return Err(wire::corrupt("segment header")),
        };
        if header.fingerprint != self.config.fingerprint {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "pas-store: fingerprint mismatch in {} (found {:#x}, expected {:#x})",
                    path.display(),
                    header.fingerprint,
                    self.config.fingerprint
                ),
            ));
        }
        if header.generation != self.generation
            || header.seq != seq
            || header.first_op != self.op_count
        {
            return Err(wire::corrupt("segment sequence"));
        }
        let mut pos = HEADER_LEN;
        loop {
            if pos == bytes.len() {
                break;
            }
            if let Some(f) = &self.faults {
                f.check("replay.record").map_err(|fault| fault.to_io())?;
            }
            match Self::read_frame(&bytes[pos..]) {
                Frame::Rec(rec, used) => {
                    if matches!(rec, Record::Tombstone { .. }) {
                        self.tombstones += 1;
                    }
                    records.push(rec);
                    self.op_count += 1;
                    pos += used;
                }
                // An incomplete frame at the end of the last segment is a
                // torn append: truncate it away. A *complete* frame that
                // fails its CRC is in-place corruption — hard error, even
                // at the tail.
                Frame::Incomplete if is_last => {
                    OBS_TORN_TAILS.incr();
                    let file = OpenOptions::new().write(true).open(path)?;
                    file.set_len(pos as u64)?;
                    bytes.truncate(pos);
                    break;
                }
                Frame::Incomplete | Frame::Corrupt => return Err(wire::corrupt("segment record")),
            }
        }
        self.total_bytes += bytes.len() as u64;
        if is_last {
            self.current = Some(OpenOptions::new().append(true).open(path)?);
            self.current_bytes = bytes.len() as u64;
        }
        OBS_SEGMENTS.incr();
        Ok(true)
    }

    /// Decodes one record frame from the front of `buf`. `Incomplete`
    /// means the frame runs past the end of the buffer (the shape every
    /// torn append has — a short write lands a prefix of the true frame);
    /// `Corrupt` means a complete frame failed its CRC or decode.
    fn read_frame(buf: &[u8]) -> Frame {
        if buf.len() < 4 {
            return Frame::Incomplete;
        }
        let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
        if len == 0 {
            return Frame::Corrupt;
        }
        if buf.len() < 4 + len + 4 {
            return Frame::Incomplete;
        }
        let body = &buf[4..4 + len];
        let crc = u32::from_le_bytes(buf[4 + len..4 + len + 4].try_into().expect("4 bytes"));
        if crc != crc32(body) {
            return Frame::Corrupt;
        }
        match Record::decode(body) {
            Ok(rec) => Frame::Rec(rec, 4 + len + 4),
            Err(_) => Frame::Corrupt,
        }
    }

    /// Records appended to (or replayed from) the current generation.
    pub fn op_count(&self) -> u64 {
        self.op_count
    }

    /// The current compaction generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Bytes across the current generation's segment files.
    pub fn bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fault schedule, for sibling writers (the snapshot file).
    pub fn faults(&self) -> Option<&DiskFaults> {
        self.faults.as_ref()
    }

    /// True once a fired fault has poisoned this handle.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    fn check_poison(&self) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other("pas-store: log poisoned by injected fault"));
        }
        Ok(())
    }

    /// True when enough tombstones accumulated that roughly half the
    /// records are dead weight (each tombstone kills ~2 earlier records
    /// plus itself).
    pub fn wants_compaction(&self) -> bool {
        self.tombstones >= self.config.compact_min_dead && 6 * self.tombstones >= self.op_count
    }

    /// Writes `bytes` to `file` under fault control: a fired fault may
    /// land nothing, a seeded prefix, or everything-but-report-failure,
    /// and poisons the handle.
    fn faulted_write(
        &mut self,
        file: &mut File,
        bytes: &[u8],
        label: &'static str,
    ) -> io::Result<()> {
        if let Some(f) = &self.faults {
            if let Err(fault) = f.check(label) {
                self.poisoned = true;
                apply_fault(&fault, self.faults.as_ref().expect("faults"), file, bytes)?;
                return Err(fault.to_io());
            }
        }
        file.write_all(bytes)?;
        file.flush()?;
        Ok(())
    }

    /// Opens the next segment file and writes its header.
    fn roll(&mut self) -> io::Result<()> {
        let seq = self.next_seq;
        let path = segment_path(&self.dir, self.generation, seq);
        let header = encode_header(self.config.fingerprint, self.generation, seq, self.op_count);
        let mut file = File::create(&path)?;
        self.faulted_write(&mut file, &header, "segment.roll")?;
        self.next_seq = seq + 1;
        self.current = Some(file);
        self.current_bytes = header.len() as u64;
        self.total_bytes += header.len() as u64;
        OBS_SEGMENTS.incr();
        Ok(())
    }

    /// Appends one record (flushed before return) and returns its op index
    /// within the current generation.
    pub fn append(&mut self, record: &Record) -> io::Result<u64> {
        self.check_poison()?;
        let frame = record.encode();
        if self.current.is_none()
            || self.current_bytes + frame.len() as u64 > self.config.segment_max_bytes
        {
            self.roll()?;
        }
        let mut file = self.current.take().expect("rolled above");
        let res = self.faulted_write(&mut file, &frame, "append");
        self.current = Some(file);
        res?;
        let op = self.op_count;
        self.op_count += 1;
        self.current_bytes += frame.len() as u64;
        self.total_bytes += frame.len() as u64;
        if matches!(record, Record::Tombstone { .. }) {
            self.tombstones += 1;
        }
        OBS_BYTES.set(self.total_bytes);
        Ok(op)
    }

    /// Rewrites the log as generation `g+1` containing exactly `live`, in
    /// order. On success the old generation's files are gone and
    /// [`SegmentLog::op_count`] restarts at `live.len()`.
    ///
    /// Crash-safe at every boundary: the new segment is staged in a temp
    /// file and renamed in atomically, and [`SegmentLog::open`] sweeps
    /// whichever half-state a crash leaves behind (temp file → old
    /// generation wins; renamed but uncleaned → new generation wins and
    /// the leftovers are deleted).
    pub fn compact(&mut self, live: &[Record]) -> io::Result<()> {
        self.check_poison()?;
        if let Some(f) = &self.faults {
            if let Err(fault) = f.check("compact.begin") {
                self.poisoned = true;
                return Err(fault.to_io());
            }
        }
        let generation = self.generation + 1;
        let mut bytes = encode_header(self.config.fingerprint, generation, 0, 0);
        for rec in live {
            bytes.extend_from_slice(&rec.encode());
        }
        let tmp = self.dir.join("compact.tmp");
        {
            let mut file = File::create(&tmp)?;
            self.faulted_write(&mut file, &bytes, "compact.write")?;
        }
        let path = segment_path(&self.dir, generation, 0);
        if let Some(f) = &self.faults {
            if let Err(fault) = f.check("compact.rename") {
                self.poisoned = true;
                // FlushFail models "renamed, then the ack was lost".
                if fault.kind == DiskFaultKind::FlushFail {
                    fs::rename(&tmp, &path)?;
                }
                return Err(fault.to_io());
            }
        }
        fs::rename(&tmp, &path)?;
        let cleanup_fault = self.faults.as_ref().and_then(|f| f.check("compact.cleanup").err());
        if let Some(fault) = &cleanup_fault {
            self.poisoned = true;
            if fault.kind != DiskFaultKind::FlushFail {
                return Err(fault.to_io());
            }
        }
        for entry in fs::read_dir(&self.dir)? {
            let p = entry?.path();
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if let Some((g, _)) = parse_segment_name(name) {
                if g < generation {
                    fs::remove_file(&p)?;
                }
            }
        }
        if let Some(fault) = cleanup_fault {
            return Err(fault.to_io());
        }
        self.generation = generation;
        self.next_seq = 1;
        self.op_count = live.len() as u64;
        self.tombstones = 0;
        self.current = Some(OpenOptions::new().append(true).open(&path)?);
        self.current_bytes = bytes.len() as u64;
        self.total_bytes = bytes.len() as u64;
        OBS_COMPACTIONS.incr();
        OBS_SEGMENTS.incr();
        OBS_BYTES.set(self.total_bytes);
        Ok(())
    }
}

/// Applies a fired fault's partial effect to `file`.
fn apply_fault(
    fault: &DiskFault,
    faults: &DiskFaults,
    file: &mut File,
    bytes: &[u8],
) -> io::Result<()> {
    match fault.kind {
        DiskFaultKind::CleanCrash => Ok(()),
        DiskFaultKind::ShortWrite => {
            let n = faults.short_len_at(fault.op, bytes.len());
            file.write_all(&bytes[..n])?;
            file.flush()
        }
        DiskFaultKind::FlushFail => {
            file.write_all(bytes)?;
            file.flush()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordMeta;
    use std::env::temp_dir;

    fn tmp(name: &str) -> PathBuf {
        let dir = temp_dir().join(format!("pas-store-seg-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn vec_rec(id: u64) -> Record {
        Record::Vector { id, vector: vec![id as f32, -1.0] }
    }

    fn meta_rec(id: u64) -> Record {
        Record::Meta {
            id,
            meta: RecordMeta { category: format!("c{}", id % 3), stamp: id, ..Default::default() },
        }
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = tmp("replay");
        let cfg = StoreConfig { fingerprint: 0xabc, ..Default::default() };
        let mut want = Vec::new();
        {
            let (mut log, records) = SegmentLog::open(&dir, cfg.clone(), None).unwrap();
            assert!(records.is_empty());
            for id in 0..20 {
                for rec in [meta_rec(id), vec_rec(id)] {
                    log.append(&rec).unwrap();
                    want.push(rec);
                }
            }
            log.append(&Record::Tombstone { id: 3 }).unwrap();
            want.push(Record::Tombstone { id: 3 });
        }
        let (log, records) = SegmentLog::open(&dir, cfg, None).unwrap();
        assert_eq!(records, want);
        assert_eq!(log.op_count(), 41);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_fingerprint_is_a_hard_error() {
        let dir = tmp("fingerprint");
        let cfg = StoreConfig { fingerprint: 1, ..Default::default() };
        {
            let (mut log, _) = SegmentLog::open(&dir, cfg, None).unwrap();
            log.append(&vec_rec(0)).unwrap();
        }
        let err =
            SegmentLog::open(&dir, StoreConfig { fingerprint: 2, ..Default::default() }, None)
                .unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn small_segments_roll_and_replay_across_files() {
        let dir = tmp("roll");
        let cfg = StoreConfig { segment_max_bytes: 128, ..Default::default() };
        {
            let (mut log, _) = SegmentLog::open(&dir, cfg.clone(), None).unwrap();
            for id in 0..30 {
                log.append(&vec_rec(id)).unwrap();
            }
        }
        let files = fs::read_dir(&dir).unwrap().count();
        assert!(files > 1, "expected multiple segment files, got {files}");
        let (_, records) = SegmentLog::open(&dir, cfg, None).unwrap();
        assert_eq!(records.len(), 30);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = tmp("torn");
        let cfg = StoreConfig::default();
        {
            let (mut log, _) = SegmentLog::open(&dir, cfg.clone(), None).unwrap();
            for id in 0..5 {
                log.append(&vec_rec(id)).unwrap();
            }
        }
        // Tear the tail: append half a frame to the only segment.
        let path = segment_path(&dir, 0, 0);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        let frame = vec_rec(99).encode();
        file.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(file);
        let (mut log, records) = SegmentLog::open(&dir, cfg.clone(), None).unwrap();
        assert_eq!(records.len(), 5, "torn record dropped");
        log.append(&vec_rec(5)).unwrap();
        drop(log);
        let (_, records) = SegmentLog::open(&dir, cfg, None).unwrap();
        assert_eq!(records.len(), 6);
        assert_eq!(records[5], vec_rec(5));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let dir = tmp("midfile");
        let cfg = StoreConfig::default();
        {
            let (mut log, _) = SegmentLog::open(&dir, cfg.clone(), None).unwrap();
            for id in 0..10 {
                log.append(&vec_rec(id)).unwrap();
            }
        }
        let path = segment_path(&dir, 0, 0);
        let mut bytes = fs::read(&path).unwrap();
        let mid = HEADER_LEN + 10; // inside the first record's payload
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(SegmentLog::open(&dir, cfg, None).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_keeps_live_records_and_sweeps_old_generation() {
        let dir = tmp("compact");
        let cfg = StoreConfig { compact_min_dead: 4, ..Default::default() };
        let live: Vec<Record> = (10..14).map(vec_rec).collect();
        {
            let (mut log, _) = SegmentLog::open(&dir, cfg.clone(), None).unwrap();
            for id in 0..8 {
                log.append(&vec_rec(id)).unwrap();
            }
            for id in 0..6 {
                log.append(&Record::Tombstone { id }).unwrap();
            }
            assert!(log.wants_compaction());
            log.compact(&live).unwrap();
            assert_eq!(log.generation(), 1);
            assert_eq!(log.op_count(), 4);
            assert!(!log.wants_compaction());
            // Appends continue in the new generation.
            log.append(&vec_rec(14)).unwrap();
        }
        let (log, records) = SegmentLog::open(&dir, cfg, None).unwrap();
        assert_eq!(log.generation(), 1);
        assert_eq!(records.len(), 5);
        assert_eq!(&records[..4], &live[..]);
        assert_eq!(records[4], vec_rec(14));
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! The materialized store: an HNSW index over the log's live records,
//! with stable external ids and metadata-filtered search.
//!
//! [`VectorStore`] is write-ahead: every mutation appends its records
//! (meta before vector — the vector record is the commit point; a
//! tombstone is one record) and flushes before the in-memory state
//! changes, so the log is never behind what a caller has seen
//! acknowledged. External ids are monotonically assigned `u64`s and
//! survive compaction; internally the HNSW index uses positional ids, and
//! the store keeps the two aligned.
//!
//! **Replay semantics** (what recovery, cold opens, and compaction all
//! share): records apply in log order; the first vector record for an id
//! wins; a tombstone kills its id permanently — later records for that id
//! are ignored, so a crashed compaction can never resurrect a ghost. A
//! meta record parks in a pending map until its vector record commits the
//! id, which makes the meta+vector pair atomic under crashes: tearing
//! between the two leaves an invisible orphan, not a half-entry.
//!
//! **Compaction** rewrites live entries (in internal order — insertion
//! order, which replay preserves) into a fresh generation *and* rebuilds
//! the in-memory index the same way, so the invariant "live state ==
//! replay of the log" survives. Raw (unprepared) vectors are what the log
//! stores and the store retains: re-preparing a prepared vector is not
//! bit-stable, raw round trips are.

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;

use pas_ann::{CosineDistance, Hnsw, HnswConfig};
use pas_fault::DiskFaults;

use crate::record::{Record, RecordMeta};
use crate::segment::{SegmentLog, StoreConfig};
use crate::snapshot::{read_snapshot, write_snapshot, SnapshotData};
use crate::wire::{self, Reader};

/// Store configuration: log tuning plus the index parameters. The
/// effective on-disk fingerprint mixes [`StoreConfig::fingerprint`] with
/// the HNSW parameters, so reopening under a different index geometry
/// fails loudly instead of replaying into a different graph.
#[derive(Debug, Clone, Default)]
pub struct VectorStoreConfig {
    /// Segment-log knobs (fingerprint, roll size, compaction trigger).
    pub store: StoreConfig,
    /// Index geometry for the materialized HNSW graph.
    pub hnsw: HnswConfig,
}

impl VectorStoreConfig {
    /// The fingerprint actually stamped on disk.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(32);
        wire::put_u64(&mut bytes, self.store.fingerprint);
        wire::put_u64(&mut bytes, self.hnsw.m as u64);
        wire::put_u64(&mut bytes, self.hnsw.ef_construction as u64);
        wire::put_u64(&mut bytes, self.hnsw.seed);
        fnv64(&bytes)
    }
}

/// FNV-1a, for folding config fields into a 64-bit fingerprint.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One search result: external id and distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Stable external id.
    pub id: u64,
    /// Metric distance to the query.
    pub distance: f32,
}

/// How many candidates a filtered search over-fetches before applying the
/// metadata predicate. Matches the spirit of the quantized re-rank
/// margins: generous enough that moderately selective filters still fill
/// `k`.
fn filter_overfetch(k: usize) -> usize {
    k * 4 + 16
}

/// The persistent vector store. See the module docs for the replay and
/// compaction invariants.
pub struct VectorStore {
    config: VectorStoreConfig,
    fingerprint: u64,
    log: SegmentLog,
    index: Hnsw<CosineDistance>,
    /// Internal (positional) id → external id.
    ids: Vec<u64>,
    /// Internal id → raw vector as logged (empty once removed).
    raw: Vec<Vec<f32>>,
    /// Internal id → metadata (stale once removed, never read).
    metas: Vec<RecordMeta>,
    /// Live external id → internal id.
    by_ext: HashMap<u64, usize>,
    /// Tombstoned external ids (ghost prevention until compaction).
    dead_ext: HashSet<u64>,
    next_ext: u64,
}

impl VectorStore {
    /// Opens (or creates) the store in `dir`, warm when a usable
    /// checkpoint exists.
    pub fn open(dir: &Path, config: VectorStoreConfig) -> io::Result<VectorStore> {
        VectorStore::open_with(dir, config, None, true)
    }

    /// Opens ignoring any checkpoint — a full cold replay of the log.
    pub fn open_cold(dir: &Path, config: VectorStoreConfig) -> io::Result<VectorStore> {
        VectorStore::open_with(dir, config, None, false)
    }

    /// Full-control open: optional fault schedule, warm/cold selection.
    pub fn open_with(
        dir: &Path,
        config: VectorStoreConfig,
        faults: Option<DiskFaults>,
        warm: bool,
    ) -> io::Result<VectorStore> {
        let fingerprint = config.fingerprint();
        let log_config = StoreConfig { fingerprint, ..config.store.clone() };
        let (log, records) = SegmentLog::open(dir, log_config, faults)?;
        let snapshot = if warm { read_snapshot(dir, fingerprint)? } else { None };
        let mut store = VectorStore {
            index: Hnsw::new(config.hnsw.clone(), CosineDistance),
            config,
            fingerprint,
            log,
            ids: Vec::new(),
            raw: Vec::new(),
            metas: Vec::new(),
            by_ext: HashMap::new(),
            dead_ext: HashSet::new(),
            next_ext: 0,
        };
        let mut replay_from = 0usize;
        if let Some(snap) = snapshot {
            // A snapshot from another generation or ahead of the log (its
            // records were lost to a crash) is stale: ignore it and
            // replay everything — the log alone is the source of truth.
            if snap.generation == store.log.generation()
                && snap.op_count <= store.log.op_count()
                && store.restore_snapshot(&snap.payload).is_ok()
            {
                replay_from = snap.op_count as usize;
            }
        }
        let mut pending: HashMap<u64, RecordMeta> = HashMap::new();
        for rec in &records[replay_from.min(records.len())..] {
            store.apply(rec, &mut pending);
        }
        Ok(store)
    }

    /// Applies one log record to the in-memory state (the shared replay
    /// state machine).
    fn apply(&mut self, rec: &Record, pending: &mut HashMap<u64, RecordMeta>) {
        match rec {
            Record::Meta { id, meta } => {
                if !self.dead_ext.contains(id) && !self.by_ext.contains_key(id) {
                    pending.insert(*id, meta.clone());
                }
            }
            Record::Vector { id, vector } => {
                if self.dead_ext.contains(id) || self.by_ext.contains_key(id) {
                    return;
                }
                let meta = pending.remove(id).unwrap_or_default();
                self.commit(*id, vector.clone(), meta);
            }
            Record::Tombstone { id } => {
                pending.remove(id);
                if let Some(int) = self.by_ext.remove(id) {
                    self.index.remove(int);
                    self.raw[int] = Vec::new();
                }
                self.dead_ext.insert(*id);
            }
        }
    }

    /// Registers a committed entry in the index and sidecar tables.
    fn commit(&mut self, ext: u64, vector: Vec<f32>, meta: RecordMeta) {
        let int = self.index.insert(vector.clone());
        debug_assert_eq!(int, self.ids.len());
        self.ids.push(ext);
        self.raw.push(vector);
        self.metas.push(meta);
        self.by_ext.insert(ext, int);
        self.next_ext = self.next_ext.max(ext + 1);
    }

    /// Inserts a vector with its metadata; returns the external id. The
    /// records are durable before the index sees the entry.
    pub fn insert(&mut self, vector: Vec<f32>, meta: RecordMeta) -> io::Result<u64> {
        let ext = self.next_ext;
        self.log.append(&Record::Meta { id: ext, meta: meta.clone() })?;
        self.log.append(&Record::Vector { id: ext, vector: vector.clone() })?;
        self.commit(ext, vector, meta);
        self.maybe_compact()?;
        Ok(ext)
    }

    /// Removes an entry; false when the id is unknown or already dead.
    pub fn remove(&mut self, ext: u64) -> io::Result<bool> {
        if !self.by_ext.contains_key(&ext) {
            return Ok(false);
        }
        self.log.append(&Record::Tombstone { id: ext })?;
        let int = self.by_ext.remove(&ext).expect("checked above");
        self.index.remove(int);
        self.raw[int] = Vec::new();
        self.dead_ext.insert(ext);
        self.maybe_compact()?;
        Ok(true)
    }

    /// Compacts when the log's tombstone pressure asks for it.
    fn maybe_compact(&mut self) -> io::Result<()> {
        if self.log.wants_compaction() {
            self.compact()?;
        }
        Ok(())
    }

    /// Rewrites the log to the live entries and rebuilds the index the
    /// same way, preserving the "state == replay of log" invariant.
    pub fn compact(&mut self) -> io::Result<()> {
        let mut live = Vec::new();
        let mut keep: Vec<usize> = Vec::new();
        for int in 0..self.ids.len() {
            if self.index.is_removed(int) {
                continue;
            }
            let ext = self.ids[int];
            live.push(Record::Meta { id: ext, meta: self.metas[int].clone() });
            live.push(Record::Vector { id: ext, vector: self.raw[int].clone() });
            keep.push(int);
        }
        self.log.compact(&live)?;
        // Rebuild the in-memory view exactly as a replay of the compacted
        // log would: live entries re-inserted in order into a fresh index.
        let mut index = Hnsw::new(self.config.hnsw.clone(), CosineDistance);
        let mut ids = Vec::with_capacity(keep.len());
        let mut raw = Vec::with_capacity(keep.len());
        let mut metas = Vec::with_capacity(keep.len());
        let mut by_ext = HashMap::with_capacity(keep.len());
        for &int in &keep {
            let new_int = index.insert(self.raw[int].clone());
            by_ext.insert(self.ids[int], new_int);
            ids.push(self.ids[int]);
            raw.push(std::mem::take(&mut self.raw[int]));
            metas.push(std::mem::take(&mut self.metas[int]));
        }
        self.index = index;
        self.ids = ids;
        self.raw = raw;
        self.metas = metas;
        self.by_ext = by_ext;
        self.dead_ext.clear();
        Ok(())
    }

    /// Writes a checkpoint of the current state pinned to the current log
    /// position, so the next open is warm.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        let data = SnapshotData {
            generation: self.log.generation(),
            op_count: self.log.op_count(),
            payload: self.snapshot_payload(),
        };
        write_snapshot(self.log.dir(), self.fingerprint, &data, self.log.faults())
    }

    fn snapshot_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_u64(&mut out, self.next_ext);
        wire::put_u64(&mut out, self.ids.len() as u64);
        for int in 0..self.ids.len() {
            wire::put_u64(&mut out, self.ids[int]);
            wire::put_u32(&mut out, self.raw[int].len() as u32);
            for &x in &self.raw[int] {
                wire::put_f32(&mut out, x);
            }
            let m = &self.metas[int];
            wire::put_str(&mut out, &m.category);
            out.push(m.degraded as u8);
            wire::put_u64(&mut out, m.stamp);
            wire::put_u32(&mut out, m.fields.len() as u32);
            for (k, v) in &m.fields {
                wire::put_str(&mut out, k);
                wire::put_str(&mut out, v);
            }
        }
        let mut dead: Vec<u64> = self.dead_ext.iter().copied().collect();
        dead.sort_unstable();
        wire::put_u64(&mut out, dead.len() as u64);
        for d in dead {
            wire::put_u64(&mut out, d);
        }
        let graph = self.index.dump();
        wire::put_u64(&mut out, graph.len() as u64);
        out.extend_from_slice(&graph);
        out
    }

    fn restore_snapshot(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut r = Reader::new(payload);
        let next_ext = r.u64()?;
        let n = r.u64()? as usize;
        if n > payload.len() {
            return Err(wire::corrupt("snapshot: slot count"));
        }
        let mut ids = Vec::with_capacity(n);
        let mut raw = Vec::with_capacity(n);
        let mut metas = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(r.u64()?);
            let len = r.u32()? as usize;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(r.f32()?);
            }
            raw.push(v);
            let category = r.str()?;
            let degraded = r.u8()? != 0;
            let stamp = r.u64()?;
            let nf = r.u32()? as usize;
            let mut fields = Vec::with_capacity(nf);
            for _ in 0..nf {
                let k = r.str()?;
                let v = r.str()?;
                fields.push((k, v));
            }
            metas.push(RecordMeta { category, degraded, stamp, fields });
        }
        let nd = r.u64()? as usize;
        let mut dead_ext = HashSet::with_capacity(nd);
        for _ in 0..nd {
            dead_ext.insert(r.u64()?);
        }
        let glen = r.u64()? as usize;
        let graph = r.take(glen)?;
        if !r.is_empty() {
            return Err(wire::corrupt("snapshot: trailing bytes"));
        }
        let index = Hnsw::load(graph, CosineDistance)
            .map_err(|e| wire::corrupt(&format!("snapshot graph: {e}")))?;
        if index.len() != n {
            return Err(wire::corrupt("snapshot: graph/sidecar mismatch"));
        }
        let mut by_ext = HashMap::new();
        for (int, &ext) in ids.iter().enumerate() {
            if !index.is_removed(int) {
                by_ext.insert(ext, int);
            }
        }
        self.index = index;
        self.ids = ids;
        self.raw = raw;
        self.metas = metas;
        self.by_ext = by_ext;
        self.dead_ext = dead_ext;
        self.next_ext = next_ext;
        Ok(())
    }

    /// Nearest neighbours by external id.
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Hit> {
        self.index
            .search(query, k, ef)
            .into_iter()
            .map(|n| Hit { id: self.ids[n.id], distance: n.distance })
            .collect()
    }

    /// Nearest neighbours whose metadata satisfies `pred`. Over-fetches
    /// [`filter_overfetch`]`(k)` candidates before filtering, so highly
    /// selective predicates may return fewer than `k` even when matches
    /// exist further out.
    pub fn search_filtered(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        pred: impl Fn(&RecordMeta) -> bool,
    ) -> Vec<Hit> {
        let fetch = filter_overfetch(k);
        self.index
            .search(query, fetch, ef.max(fetch))
            .into_iter()
            .filter(|n| pred(&self.metas[n.id]))
            .take(k)
            .map(|n| Hit { id: self.ids[n.id], distance: n.distance })
            .collect()
    }

    /// Nearest neighbours in `category`, excluding degraded entries.
    pub fn search_category(&self, query: &[f32], k: usize, ef: usize, category: &str) -> Vec<Hit> {
        self.search_filtered(query, k, ef, |m| !m.degraded && m.category == category)
    }

    /// Metadata for a live external id.
    pub fn meta(&self, ext: u64) -> Option<&RecordMeta> {
        self.by_ext.get(&ext).map(|&int| &self.metas[int])
    }

    /// Raw vector for a live external id.
    pub fn vector(&self, ext: u64) -> Option<&[f32]> {
        self.by_ext.get(&ext).map(|&int| self.raw[int].as_slice())
    }

    /// True when `ext` is live.
    pub fn contains(&self, ext: u64) -> bool {
        self.by_ext.contains_key(&ext)
    }

    /// Live entry count.
    pub fn live_len(&self) -> usize {
        self.by_ext.len()
    }

    /// True when no live entries exist.
    pub fn is_empty(&self) -> bool {
        self.by_ext.is_empty()
    }

    /// Live external ids, ascending.
    pub fn live_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.by_ext.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Current log generation.
    pub fn generation(&self) -> u64 {
        self.log.generation()
    }

    /// Records in the current log generation.
    pub fn op_count(&self) -> u64 {
        self.log.op_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::env::temp_dir;
    use std::fs;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = temp_dir().join(format!("pas-store-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn vector(seed: u64, dim: usize) -> Vec<f32> {
        (0..dim).map(|i| ((seed * 31 + i as u64 * 7) as f32 * 0.13).sin()).collect()
    }

    fn meta(seed: u64) -> RecordMeta {
        RecordMeta {
            category: format!("cat{}", seed % 3),
            degraded: seed.is_multiple_of(5),
            stamp: seed,
            fields: vec![("k".into(), format!("v{seed}"))],
        }
    }

    fn config() -> VectorStoreConfig {
        VectorStoreConfig {
            store: StoreConfig { compact_min_dead: 8, ..Default::default() },
            hnsw: HnswConfig { m: 8, ef_construction: 32, seed: 0x5707e },
        }
    }

    fn fill(store: &mut VectorStore, n: u64) -> Vec<u64> {
        (0..n).map(|s| store.insert(vector(s, 12), meta(s)).unwrap()).collect()
    }

    #[test]
    fn insert_search_remove_round_trip() {
        let dir = tmp("basic");
        let mut store = VectorStore::open(&dir, config()).unwrap();
        let ids = fill(&mut store, 40);
        assert_eq!(store.live_len(), 40);
        let hits = store.search(&vector(7, 12), 3, 32);
        assert_eq!(hits[0].id, ids[7]);
        assert!(store.remove(ids[7]).unwrap());
        assert!(!store.remove(ids[7]).unwrap());
        assert_ne!(store.search(&vector(7, 12), 3, 32)[0].id, ids[7]);
        assert_eq!(store.meta(ids[8]).unwrap().stamp, 8);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_cold_matches_live_state_bit_exactly() {
        let dir = tmp("reopen");
        let (live_hits, live_ids) = {
            let mut store = VectorStore::open(&dir, config()).unwrap();
            let ids = fill(&mut store, 60);
            for &id in ids.iter().step_by(4) {
                store.remove(id).unwrap();
            }
            (store.search(&vector(3, 12), 5, 48), store.live_ids())
        };
        let reopened = VectorStore::open_cold(&dir, config()).unwrap();
        assert_eq!(reopened.live_ids(), live_ids);
        let hits = reopened.search(&vector(3, 12), 5, 48);
        assert_eq!(hits.len(), live_hits.len());
        for (a, b) in live_hits.iter().zip(&hits) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_open_equals_cold_open() {
        let dir = tmp("warm");
        {
            let mut store = VectorStore::open(&dir, config()).unwrap();
            fill(&mut store, 50);
            store.checkpoint().unwrap();
            // More ops after the checkpoint: the warm path must replay them.
            store.insert(vector(100, 12), meta(100)).unwrap();
            store.remove(3).unwrap();
        }
        let warm = VectorStore::open(&dir, config()).unwrap();
        let cold = VectorStore::open_cold(&dir, config()).unwrap();
        assert_eq!(warm.live_ids(), cold.live_ids());
        for q in [1u64, 9, 33] {
            let a = warm.search(&vector(q, 12), 5, 48);
            let b = cold.search(&vector(q, 12), 5, 48);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_external_ids_and_blocks_ghosts() {
        let dir = tmp("compactids");
        let mut store = VectorStore::open(&dir, config()).unwrap();
        let ids = fill(&mut store, 30);
        let before_gen = store.generation();
        for &id in &ids[..20] {
            store.remove(id).unwrap();
        }
        assert!(store.generation() > before_gen, "tombstone pressure should compact");
        // Survivors keep their ids and vectors.
        for &id in &ids[20..] {
            assert!(store.contains(id));
        }
        for &id in &ids[..20] {
            assert!(!store.contains(id));
        }
        // New inserts continue above every id ever assigned.
        let fresh = store.insert(vector(999, 12), meta(999)).unwrap();
        assert!(fresh >= 30);
        drop(store);
        let reopened = VectorStore::open_cold(&dir, config()).unwrap();
        assert_eq!(reopened.live_ids().len(), 11);
        assert!(!reopened.contains(ids[0]), "ghost id resurrected");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn filtered_search_honors_metadata() {
        let dir = tmp("filter");
        let mut store = VectorStore::open(&dir, config()).unwrap();
        fill(&mut store, 45);
        let hits = store.search_category(&vector(6, 12), 4, 48, "cat0");
        assert!(!hits.is_empty());
        for h in &hits {
            let m = store.meta(h.id).unwrap();
            assert_eq!(m.category, "cat0");
            assert!(!m.degraded);
        }
        let none = store.search_filtered(&vector(6, 12), 4, 48, |_| false);
        assert!(none.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn different_hnsw_geometry_refuses_to_open() {
        let dir = tmp("geometry");
        {
            let mut store = VectorStore::open(&dir, config()).unwrap();
            fill(&mut store, 5);
        }
        let mut other = config();
        other.hnsw.m = 16;
        assert!(VectorStore::open(&dir, other).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}

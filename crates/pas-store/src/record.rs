//! The three record kinds of the segment log and their framing.
//!
//! On disk every record is `[len: u32][kind: u8][payload][crc: u32]` where
//! `len` covers kind + payload and the CRC covers the same bytes. The CRC
//! sits *after* the payload so a torn append (crash mid-write) is detected
//! by either a short frame or a CRC mismatch — recovery truncates at the
//! record start (see [`crate::segment`]).
//!
//! Semantics are defined by replay order:
//!
//! - `vec:{id}` carries the vector and *commits* id — an id exists once
//!   its vector record is durable.
//! - `meta:{id}` carries the sidecar metadata and is written *before* the
//!   vector record, so a crash between the two leaves an invisible orphan
//!   rather than a half-materialized entry.
//! - A tombstone kills id permanently: replay ignores any later records
//!   for it (no ghost resurrection, no id reuse).

use crate::wire::{self, Reader};
use std::io;

/// Sidecar metadata stored alongside a vector. `category` and `degraded`
/// are first-class so filtered search ([`crate::VectorStore::search_filtered`])
/// needs no field scan; everything else rides in `fields` key-value pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordMeta {
    /// Free-form category label (e.g. a route or tenant).
    pub category: String,
    /// True when the entry was produced on a degraded path.
    pub degraded: bool,
    /// Recency/priority stamp — the semantic cache stores its LRU clock
    /// here so replay restores eviction order.
    pub stamp: u64,
    /// Open key-value sidecar (e.g. prompt/response text).
    pub fields: Vec<(String, String)>,
}

impl RecordMeta {
    /// First value stored under `key`, if any.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// One logical log record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Commits `id` with its vector (raw f32 bits; may be empty when the
    /// producer indexes nothing, e.g. a cache running with `tau == 0`).
    Vector { id: u64, vector: Vec<f32> },
    /// Sidecar metadata for `id`; written before the vector record.
    Meta { id: u64, meta: RecordMeta },
    /// Permanently kills `id`.
    Tombstone { id: u64 },
}

const KIND_VECTOR: u8 = 1;
const KIND_META: u8 = 2;
const KIND_TOMBSTONE: u8 = 3;

impl Record {
    /// The id this record is about.
    pub fn id(&self) -> u64 {
        match self {
            Record::Vector { id, .. } | Record::Meta { id, .. } | Record::Tombstone { id } => *id,
        }
    }

    fn kind(&self) -> u8 {
        match self {
            Record::Vector { .. } => KIND_VECTOR,
            Record::Meta { .. } => KIND_META,
            Record::Tombstone { .. } => KIND_TOMBSTONE,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Record::Vector { id, vector } => {
                wire::put_u64(&mut out, *id);
                wire::put_u32(&mut out, vector.len() as u32);
                for &x in vector {
                    wire::put_f32(&mut out, x);
                }
            }
            Record::Meta { id, meta } => {
                wire::put_u64(&mut out, *id);
                wire::put_str(&mut out, &meta.category);
                out.push(meta.degraded as u8);
                wire::put_u64(&mut out, meta.stamp);
                wire::put_u32(&mut out, meta.fields.len() as u32);
                for (k, v) in &meta.fields {
                    wire::put_str(&mut out, k);
                    wire::put_str(&mut out, v);
                }
            }
            Record::Tombstone { id } => wire::put_u64(&mut out, *id),
        }
        out
    }

    /// Encodes the full frame: `[len][kind][payload][crc]`.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        let mut out = Vec::with_capacity(payload.len() + 9);
        wire::put_u32(&mut out, (payload.len() + 1) as u32);
        out.push(self.kind());
        out.extend_from_slice(&payload);
        let crc = crate::crc::crc32(&out[4..]);
        wire::put_u32(&mut out, crc);
        out
    }

    /// Decodes the body of a frame (`kind` byte + payload, CRC already
    /// verified by the segment reader).
    pub fn decode(body: &[u8]) -> io::Result<Record> {
        let mut r = Reader::new(body);
        let kind = r.u8()?;
        let rec = match kind {
            KIND_VECTOR => {
                let id = r.u64()?;
                let len = r.u32()? as usize;
                if len > body.len() {
                    return Err(wire::corrupt("vector record: length exceeds frame"));
                }
                let mut vector = Vec::with_capacity(len);
                for _ in 0..len {
                    vector.push(r.f32()?);
                }
                Record::Vector { id, vector }
            }
            KIND_META => {
                let id = r.u64()?;
                let category = r.str()?;
                let degraded = r.u8()? != 0;
                let stamp = r.u64()?;
                let n = r.u32()? as usize;
                if n > body.len() {
                    return Err(wire::corrupt("meta record: field count exceeds frame"));
                }
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = r.str()?;
                    let v = r.str()?;
                    fields.push((k, v));
                }
                Record::Meta { id, meta: RecordMeta { category, degraded, stamp, fields } }
            }
            KIND_TOMBSTONE => Record::Tombstone { id: r.u64()? },
            _ => return Err(wire::corrupt("record: unknown kind")),
        };
        if !r.is_empty() {
            return Err(wire::corrupt("record: trailing bytes"));
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(rec: Record) {
        let frame = rec.encode();
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(frame.len(), 4 + len + 4);
        let body = &frame[4..4 + len];
        assert_eq!(
            crate::crc::crc32(body),
            u32::from_le_bytes(frame[4 + len..].try_into().unwrap())
        );
        assert_eq!(Record::decode(body).unwrap(), rec);
    }

    #[test]
    fn all_kinds_round_trip() {
        round_trip(Record::Vector { id: 7, vector: vec![1.5, -0.25, f32::MIN_POSITIVE] });
        round_trip(Record::Vector { id: 0, vector: Vec::new() });
        round_trip(Record::Meta {
            id: 9,
            meta: RecordMeta {
                category: "route-a".into(),
                degraded: true,
                stamp: 41,
                fields: vec![("p".into(), "prompt text".into()), ("r".into(), "resp".into())],
            },
        });
        round_trip(Record::Tombstone { id: u64::MAX });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Record::decode(&[]).is_err());
        assert!(Record::decode(&[99, 0, 0]).is_err());
        let mut frame = Record::Tombstone { id: 3 }.encode();
        let len = frame.len();
        frame.truncate(len - 5); // chop into the payload
        assert!(Record::decode(&frame[4..]).is_err());
    }
}

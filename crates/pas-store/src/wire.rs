//! Little-endian scalar codec shared by the record, segment, and snapshot
//! formats. `f32`s travel as raw bits, so every round trip is bit-exact.

use std::io;

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}

/// Length-prefixed UTF-8.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("pas-store: corrupt {what}"))
}

/// Bounds-checked cursor over an encoded buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(corrupt("buffer: truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| corrupt("string: not UTF-8"))
    }

    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

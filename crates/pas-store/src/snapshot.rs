//! The checkpoint snapshot file.
//!
//! A snapshot pins an opaque payload (the store's materialized state —
//! typically an HNSW graph dump plus sidecar tables) to a log position
//! `(generation, op_count)`. On a warm open the payload restores the
//! state directly and only the log records *after* `op_count` replay.
//!
//! Format: magic + fingerprint + generation + op_count + payload length +
//! payload + CRC-32 over everything before the CRC. The file is staged in
//! a temp file and atomically renamed in, so there is always at most one
//! complete snapshot; a torn or stale one is simply ignored (the log
//! alone fully determines the state — a snapshot is an accelerator, never
//! a source of truth). Only a fingerprint mismatch on an otherwise-valid
//! snapshot is a hard error, matching the segment-header rule.

use std::fs::{self, File};
use std::io::{self, Read};
use std::path::Path;

use pas_fault::{DiskFaultKind, DiskFaults};

use crate::crc::crc32;
use crate::wire::{self, Reader};

const SNAP_MAGIC: &[u8] = b"PASSNAP1";
const SNAP_FILE: &str = "checkpoint.snap";
const SNAP_TMP: &str = "checkpoint.tmp";

/// A decoded snapshot: the log position it captures and the opaque
/// payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotData {
    /// Log generation the snapshot was taken in.
    pub generation: u64,
    /// Records of that generation already folded into the payload.
    pub op_count: u64,
    /// Caller-defined state blob.
    pub payload: Vec<u8>,
}

/// Atomically replaces the snapshot in `dir`. Consults `faults` at the
/// write and rename boundaries, so crash sweeps cover half-written and
/// unrenamed checkpoints.
pub fn write_snapshot(
    dir: &Path,
    fingerprint: u64,
    data: &SnapshotData,
    faults: Option<&DiskFaults>,
) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(data.payload.len() + 40);
    bytes.extend_from_slice(SNAP_MAGIC);
    wire::put_u64(&mut bytes, fingerprint);
    wire::put_u64(&mut bytes, data.generation);
    wire::put_u64(&mut bytes, data.op_count);
    wire::put_u64(&mut bytes, data.payload.len() as u64);
    bytes.extend_from_slice(&data.payload);
    let crc = crc32(&bytes);
    wire::put_u32(&mut bytes, crc);

    let tmp = dir.join(SNAP_TMP);
    if let Some(f) = faults {
        if let Err(fault) = f.check("snapshot.write") {
            if fault.kind == DiskFaultKind::ShortWrite {
                let n = f.short_len_at(fault.op, bytes.len());
                fs::write(&tmp, &bytes[..n])?;
            } else if fault.kind == DiskFaultKind::FlushFail {
                fs::write(&tmp, &bytes)?;
            }
            return Err(fault.to_io());
        }
    }
    fs::write(&tmp, &bytes)?;
    let path = dir.join(SNAP_FILE);
    if let Some(f) = faults {
        if let Err(fault) = f.check("snapshot.rename") {
            if fault.kind == DiskFaultKind::FlushFail {
                fs::rename(&tmp, &path)?;
            }
            return Err(fault.to_io());
        }
    }
    fs::rename(&tmp, &path)?;
    Ok(())
}

/// Reads the snapshot in `dir`, if one exists and is intact. A missing,
/// torn, or CRC-failing snapshot returns `Ok(None)` — the caller falls
/// back to a full log replay. A fingerprint mismatch on an intact
/// snapshot is a hard error.
pub fn read_snapshot(dir: &Path, fingerprint: u64) -> io::Result<Option<SnapshotData>> {
    let path = dir.join(SNAP_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => f.read_to_end(&mut bytes)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() < SNAP_MAGIC.len() + 28 + 4 || !bytes.starts_with(SNAP_MAGIC) {
        return Ok(None);
    }
    let body = &bytes[..bytes.len() - 4];
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc != crc32(body) {
        return Ok(None);
    }
    let mut r = Reader::new(&body[SNAP_MAGIC.len()..]);
    let found = r.u64()?;
    if found != fingerprint {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "pas-store: snapshot fingerprint mismatch (found {found:#x}, expected {fingerprint:#x})"
            ),
        ));
    }
    let generation = r.u64()?;
    let op_count = r.u64()?;
    let len = r.u64()? as usize;
    let payload = r.take(len)?.to_vec();
    if !r.is_empty() {
        return Ok(None);
    }
    Ok(Some(SnapshotData { generation, op_count, payload }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::env::temp_dir;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = temp_dir().join(format!("pas-store-snap-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_and_replace() {
        let dir = tmp("roundtrip");
        assert_eq!(read_snapshot(&dir, 7).unwrap(), None);
        let a = SnapshotData { generation: 1, op_count: 10, payload: vec![1, 2, 3] };
        write_snapshot(&dir, 7, &a, None).unwrap();
        assert_eq!(read_snapshot(&dir, 7).unwrap(), Some(a));
        let b = SnapshotData { generation: 2, op_count: 0, payload: vec![9; 100] };
        write_snapshot(&dir, 7, &b, None).unwrap();
        assert_eq!(read_snapshot(&dir, 7).unwrap(), Some(b));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_snapshot_is_ignored() {
        let dir = tmp("torn");
        let a = SnapshotData { generation: 0, op_count: 5, payload: vec![4; 64] };
        write_snapshot(&dir, 7, &a, None).unwrap();
        let path = dir.join(SNAP_FILE);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(read_snapshot(&dir, 7).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_a_hard_error() {
        let dir = tmp("fp");
        let a = SnapshotData { generation: 0, op_count: 0, payload: Vec::new() };
        write_snapshot(&dir, 7, &a, None).unwrap();
        assert!(read_snapshot(&dir, 8).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}

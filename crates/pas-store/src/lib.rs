//! Crash-safe persistent vector store.
//!
//! PAS's serving stack derives expensive state from cheap inputs —
//! embeddings, an HNSW graph, int8/PQ code stores, semantic-cache entries
//! — and before this crate it all died with the process. `pas-store`
//! persists it behind one deterministic, crash-safe abstraction:
//!
//! - [`segment`] — [`SegmentLog`]: an append-only log of `vec:{id}` /
//!   `meta:{id}` / tombstone records ([`Record`]), per-record CRC-32,
//!   config-fingerprinted headers, torn-tail recovery, and atomic
//!   generation-based compaction. The design generalizes
//!   `pas_fault::Journal` from JSONL lines to binary frames.
//! - [`snapshot`] — an atomically-replaced checkpoint file holding an
//!   opaque payload (e.g. an [`pas_ann::Hnsw`] `dump()`) pinned to a log
//!   position, so a warm open restores the graph and replays only the log
//!   suffix.
//! - [`store`] — [`VectorStore`]: the materialized view — an HNSW index
//!   plus metadata ([`RecordMeta`]) with stable external ids, write-ahead
//!   logging, checkpointing, and metadata-filtered search.
//!
//! **Determinism contract:** replaying a log's records into a fresh index
//! reproduces the live index bit-exactly (the graph dump preserves RNG
//! continuity — see [`pas_ann::Hnsw::load`]), so a warm open, a cold
//! rebuild, and a never-closed store all probe identically. Crash safety
//! is proven by sweep: `pas_fault::DiskFaults` can kill the store at
//! every durability boundary, and `tests/chaos.rs` reopens after each and
//! checks the recovered state is a prefix of the attempted ops — no
//! duplicates, no ghosts, no torn frames surviving.

pub mod crc;
pub mod record;
pub mod segment;
pub mod snapshot;
pub mod store;
pub mod wire;

pub use record::{Record, RecordMeta};
pub use segment::{SegmentLog, StoreConfig};
pub use snapshot::{read_snapshot, write_snapshot, SnapshotData};
pub use store::{Hit, VectorStore, VectorStoreConfig};

// Observability: segment files opened/created, compactions run, records
// replayed at open, torn tails truncated at open, and bytes across the
// current generation's files. Recovery counters depend on where a run was
// killed, so they are bench/CLI-recorded only — keep them out of golden
// fixtures.
pub(crate) static OBS_SEGMENTS: pas_obs::Counter = pas_obs::Counter::new("store.segments");
pub(crate) static OBS_COMPACTIONS: pas_obs::Counter = pas_obs::Counter::new("store.compactions");
pub(crate) static OBS_RECOVERED: pas_obs::Counter =
    pas_obs::Counter::new("store.recovered_records");
pub(crate) static OBS_TORN_TAILS: pas_obs::Counter = pas_obs::Counter::new("store.torn_tails");
pub(crate) static OBS_BYTES: pas_obs::Gauge = pas_obs::Gauge::new("store.bytes");

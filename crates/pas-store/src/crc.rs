//! CRC-32 (IEEE 802.3 polynomial, reflected) — the per-record and
//! per-header integrity check of the segment format.
//!
//! Implemented in-crate (table-driven, one 256-entry table built at compile
//! time) so the store has no external dependency; speed is irrelevant next
//! to the I/O it guards.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (standard init/final XOR with `0xffff_ffff`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    crc ^ 0xffff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"pas-store segment record");
        let mut flipped = b"pas-store segment record".to_vec();
        flipped[7] ^= 0x01;
        assert_ne!(base, crc32(&flipped));
    }
}

//! Property-based tests for the simulation substrate: aspect detection,
//! world lookup, Algorithm 1 loop invariants.

use std::sync::Arc;

use proptest::prelude::*;

use pas_llm::world::{detect_aspects, Aspect, AspectSet, Category, PromptMeta, World};
use pas_llm::{ChatModel, Critic, SimLlm, Teacher, TeacherConfig};
use pas_text::lang::Language;

fn arbitrary_aspect_set() -> impl Strategy<Value = AspectSet> {
    prop::collection::vec(0usize..Aspect::ALL.len(), 0..4)
        .prop_map(|idxs| idxs.into_iter().filter_map(Aspect::from_index).collect::<AspectSet>())
}

fn meta(required: AspectSet, topic: &str) -> PromptMeta {
    PromptMeta {
        category: Category::Knowledge,
        required,
        explicit: AspectSet::EMPTY,
        ambiguity: 0.4,
        trap: false,
        language: Language::English,
        topic: topic.to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn request_phrases_round_trip_through_detection(set in arbitrary_aspect_set()) {
        // A complement requesting exactly `set` is detected as ⊇ `set`.
        let text = pas_llm::teacher::realize_complement("some topic", set);
        let detected = detect_aspects(&text);
        for a in set.iter() {
            prop_assert!(detected.contains(a), "{a} lost in {text:?}");
        }
    }

    #[test]
    fn detection_is_monotone_under_concatenation(
        a in "[a-z ]{0,60}", set in arbitrary_aspect_set()
    ) {
        let extra = pas_llm::teacher::realize_complement("thing", set);
        let combined = format!("{a} {extra}");
        let base = detect_aspects(&a);
        let all = detect_aspects(&combined);
        for asp in base.iter() {
            prop_assert!(all.contains(asp), "concatenation lost {asp}");
        }
        for asp in set.iter() {
            prop_assert!(all.contains(asp));
        }
    }

    #[test]
    fn world_lookup_is_prefix_stable(words in prop::collection::vec("[a-z]{2,9}", 4..14),
                                     suffix in "[a-z ]{0,40}") {
        let prompt = words.join(" ");
        let mut world = World::new();
        world.register(&prompt, meta(AspectSet::EMPTY, "topic"));
        let augmented = format!("{prompt} {suffix}");
        prop_assert!(world.lookup(&augmented).is_some(), "lost: {augmented:?}");
    }

    #[test]
    fn sim_llm_is_a_pure_function_of_input(seedish in "[a-z]{3,10}") {
        let prompt = format!("Tell me about {seedish} in detail");
        let mut world = World::new();
        world.register(&prompt, meta(AspectSet::EMPTY, &seedish));
        let m = SimLlm::named("gpt-4-0613", Arc::new(world));
        prop_assert_eq!(m.chat(&prompt), m.chat(&prompt));
    }

    #[test]
    fn regeneration_loop_always_terminates_with_a_valid_pair(
        topic in "[a-z]{4,10}", attempt_base in 0u64..50
    ) {
        // Even a very sloppy teacher converges under regeneration because
        // attempts are independent draws.
        let prompt = format!("Explain the mechanism of {topic} in modern systems");
        let teacher = Teacher::new(
            TeacherConfig { flaw_rate: 0.6, ..TeacherConfig::default() },
            Arc::new(World::new()),
        );
        let critic = Critic::default();
        let mut attempt = attempt_base;
        let mut tries = 0;
        loop {
            let g = teacher.generate(&prompt, &[], attempt);
            tries += 1;
            if critic.is_correct_pair(&prompt, &g.text) {
                break;
            }
            attempt += 1;
            prop_assert!(tries < 200, "no valid pair after 200 draws");
        }
    }

    #[test]
    fn critic_never_rejects_clean_aspect_requests(
        set in arbitrary_aspect_set(),
        topic_words in prop::collection::vec("[a-z]{3,9}", 2..5),
    ) {
        // Clean complement: on-topic, bounded, non-contradictory.
        let mut set = set;
        set.remove(Aspect::Conciseness); // avoid the depth/brevity conflict rule
        if set.is_empty() {
            set.insert(Aspect::Context);
        }
        let topic = topic_words.join(" ");
        let prompt = format!("Please explain {topic} for me");
        let ape = pas_llm::teacher::realize_complement(&topic, set);
        let critic = Critic::default();
        let verdict = critic.judge(&prompt, &ape);
        prop_assert!(verdict.accepted(), "rejected clean APE: {}", verdict.reason);
    }
}

//! The few-shot complement *teacher* of Algorithm 1.
//!
//! In the paper a strong LLM receives Figure 4's instruction ("you are a
//! master of complementary prompts… supplement, do not answer… within 30
//! words") plus 4–5 golden examples for the category, and produces a
//! complementary prompt. The simulation mirrors both the competence and the
//! failure modes the paper's critic prompt (Figure 5) enumerates: the
//! teacher usually infers the prompt's latent deficiencies, but with a
//! calibrated probability emits a flawed complement — answering directly,
//! over-extending, contradicting the prompt, switching language, or drifting
//! off topic.
//!
//! Regeneration draws a fresh seed per attempt, so Algorithm 1's
//! regenerate-until-correct loop terminates with probability 1.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pas_text::hash::{fx_combine, fx_hash_str};
use pas_text::top_keywords;

use crate::world::{Aspect, AspectSet, World};

/// The flaw classes of Figure 5's "criteria for incorrect APE".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlawKind {
    /// The complement answers the prompt instead of supplementing it (criterion 3).
    DirectAnswer,
    /// Superfluous additions to an already complex prompt (criterion 2).
    OverExtension,
    /// Conflicts with the prompt's own constraints (criterion 1).
    Contradiction,
    /// Language differs from the prompt's (criterion 5).
    WrongLanguage,
    /// Deviates from the prompt's true intention (criterion 1/4).
    OffTopic,
}

impl FlawKind {
    /// All flaw kinds, used for seeded uniform draws.
    pub const ALL: [FlawKind; 5] = [
        FlawKind::DirectAnswer,
        FlawKind::OverExtension,
        FlawKind::Contradiction,
        FlawKind::WrongLanguage,
        FlawKind::OffTopic,
    ];
}

/// Teacher behaviour parameters.
#[derive(Debug, Clone)]
pub struct TeacherConfig {
    /// Probability that a generation is flawed (before golden-example help).
    pub flaw_rate: f32,
    /// Probability of correctly inferring each latent deficiency.
    pub infer_accuracy: f32,
    /// Probability of tacking on one unneeded extra aspect (benign noise).
    pub extra_aspect_rate: f32,
    /// Base seed.
    pub seed: u64,
}

impl Default for TeacherConfig {
    fn default() -> Self {
        TeacherConfig {
            flaw_rate: 0.38,
            infer_accuracy: 0.92,
            extra_aspect_rate: 0.12,
            seed: 0x7ea,
        }
    }
}

/// One teacher output. `injected_flaw` is ground truth for tests and
/// metrics only — the production pipeline must judge the *text* via the
/// critic, never this field.
#[derive(Debug, Clone)]
pub struct GeneratedComplement {
    /// The complementary-prompt text.
    pub text: String,
    /// Aspects the teacher intended to request.
    pub intended: AspectSet,
    /// The flaw injected into this generation, if any.
    pub injected_flaw: Option<FlawKind>,
}

/// The simulated few-shot teacher.
pub struct Teacher {
    config: TeacherConfig,
    world: Arc<World>,
}

impl Teacher {
    /// Creates a teacher over the given world.
    pub fn new(config: TeacherConfig, world: Arc<World>) -> Self {
        Teacher { config, world }
    }

    /// The teacher's configuration.
    pub fn config(&self) -> &TeacherConfig {
        &self.config
    }

    /// Generates a complementary prompt for `prompt`, conditioned on
    /// `golden` few-shot examples. `attempt` must increase on regeneration
    /// so each retry is an independent draw.
    pub fn generate(
        &self,
        prompt: &str,
        golden: &[(String, String)],
        attempt: u64,
    ) -> GeneratedComplement {
        let seed = fx_combine(fx_hash_str(prompt), self.config.seed ^ attempt.wrapping_mul(0x9e37));
        let mut rng = StdRng::seed_from_u64(seed);

        // Few-shot conditioning: each golden example modestly reduces the
        // flaw probability, saturating around the paper's 4–5 examples.
        let help = 0.85f32.powi(golden.len().min(5) as i32);
        let flawed = rng.random::<f32>() < self.config.flaw_rate * help.max(0.4);

        // Infer the latent deficiencies (the teacher is strong: it reads the
        // prompt like the world does, with per-aspect slip probability).
        let deficiencies =
            self.world.lookup(prompt).map(|m| m.deficiencies()).unwrap_or(AspectSet::EMPTY);
        let mut intended = AspectSet::EMPTY;
        for a in deficiencies.iter() {
            if rng.random::<f32>() < self.config.infer_accuracy {
                intended.insert(a);
            }
        }
        let prompt_aspects = crate::world::detect_aspects(prompt);
        if intended.is_empty() {
            // Always request *something* useful. Depth is the default the
            // golden examples model — unless the prompt demands brevity, in
            // which case background context is the safe supplement.
            if prompt_aspects.contains(Aspect::Conciseness) {
                intended.insert(Aspect::Context);
            } else {
                intended.insert(Aspect::Depth);
            }
        }
        // A competent teacher never contradicts the prompt's own constraint.
        if prompt_aspects.contains(Aspect::Conciseness) {
            intended.remove(Aspect::Depth);
        }
        if prompt_aspects.contains(Aspect::Depth) {
            intended.remove(Aspect::Conciseness);
        }
        if intended.is_empty() {
            intended.insert(Aspect::Context);
        }
        if rng.random::<f32>() < self.config.extra_aspect_rate {
            let extra = Aspect::ALL[rng.random_range(0..Aspect::ALL.len())];
            intended.insert(extra);
        }

        let topic = top_keywords(prompt, 3).join(" ");
        let language = pas_text::lang::detect_language(prompt);
        if !flawed {
            return GeneratedComplement {
                text: realize_complement_in(language, &topic, intended),
                intended,
                injected_flaw: None,
            };
        }

        let flaw = FlawKind::ALL[rng.random_range(0..FlawKind::ALL.len())];
        let text = match flaw {
            FlawKind::DirectAnswer => format!(
                "The answer is that {topic} resolves exactly as asked; no further analysis is needed."
            ),
            FlawKind::OverExtension => {
                let mut all = intended;
                for a in [
                    Aspect::FormatSpec,
                    Aspect::Audience,
                    Aspect::StyleConstraint,
                    Aspect::Examples,
                    Aspect::Context,
                    Aspect::Completeness,
                ] {
                    all.insert(a);
                }
                format!(
                    "{} Additionally compare seventeen unrelated frameworks, survey the full \
                     historical literature, and reproduce every benchmark before responding.",
                    realize_complement(&topic, all)
                )
            }
            FlawKind::Contradiction => format!(
                "Considering {topic}, {} and at the same time {}.",
                Aspect::Conciseness.request_phrase(),
                Aspect::Depth.request_phrase()
            ),
            FlawKind::WrongLanguage => match language {
                pas_text::lang::Language::Chinese => {
                    "Please supplement the question with a deeper methodological analysis."
                        .to_string()
                }
                _ => "请从方法论角度补充该问题的深入分析与相关背景。".to_string(),
            },
            FlawKind::OffTopic => {
                "Considering quarterly maritime insurance actuarial tables, \
                 supplement premium amortization schedules accordingly."
                    .to_string()
            }
        };
        GeneratedComplement { text, intended, injected_flaw: Some(flaw) }
    }
}

/// Renders an aspect-request complement in the Figure 4 style: supplement
/// only, methodology-focused, ≤ 30 words. English surface form.
pub fn realize_complement(topic: &str, aspects: AspectSet) -> String {
    realize_complement_in(pas_text::lang::Language::English, topic, aspects)
}

/// Renders an aspect-request complement in the given language, so the
/// critic's language-consistency rule (Figure 5, criterion 5) is satisfied
/// for bilingual corpora.
pub fn realize_complement_in(
    language: pas_text::lang::Language,
    topic: &str,
    aspects: AspectSet,
) -> String {
    use pas_text::lang::Language;
    match language {
        Language::Chinese => {
            let mut parts: Vec<&str> = aspects.iter().map(Aspect::request_phrase_zh).collect();
            if parts.is_empty() {
                parts.push(Aspect::Depth.request_phrase_zh());
            }
            let subject = if topic.is_empty() { "该问题" } else { topic };
            format!("关于{subject}，{}。", parts.join("，"))
        }
        _ => {
            let mut parts: Vec<&str> = aspects.iter().map(Aspect::request_phrase).collect();
            if parts.is_empty() {
                parts.push(Aspect::Depth.request_phrase());
            }
            let subject = if topic.is_empty() { "the question" } else { topic };
            format!("Considering {subject}, {}.", parts.join(", and "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{detect_aspects, Category, PromptMeta};
    use pas_text::lang::Language;

    fn world() -> Arc<World> {
        let mut w = World::new();
        w.register(
            "How should I design a cache eviction policy for a database buffer pool",
            PromptMeta {
                category: Category::Coding,
                required: [Aspect::Depth, Aspect::Examples, Aspect::Completeness]
                    .into_iter()
                    .collect(),
                explicit: AspectSet::EMPTY,
                ambiguity: 0.4,
                trap: false,
                language: Language::English,
                topic: "cache eviction".into(),
            },
        );
        Arc::new(w)
    }

    const PROMPT: &str = "How should I design a cache eviction policy for a database buffer pool";

    fn golden() -> Vec<(String, String)> {
        (0..4).map(|i| (format!("golden prompt {i}"), format!("golden complement {i}"))).collect()
    }

    #[test]
    fn generation_is_deterministic_per_attempt() {
        let t = Teacher::new(TeacherConfig::default(), world());
        let a = t.generate(PROMPT, &golden(), 0);
        let b = t.generate(PROMPT, &golden(), 0);
        assert_eq!(a.text, b.text);
        assert_eq!(a.injected_flaw, b.injected_flaw);
    }

    #[test]
    fn attempts_vary_the_draw() {
        let t = Teacher::new(TeacherConfig { flaw_rate: 0.5, ..TeacherConfig::default() }, world());
        let texts: std::collections::HashSet<String> =
            (0..10).map(|i| t.generate(PROMPT, &golden(), i).text).collect();
        assert!(texts.len() > 1, "attempts must be independent draws");
    }

    #[test]
    fn clean_generation_requests_deficient_aspects() {
        let t = Teacher::new(
            TeacherConfig {
                flaw_rate: 0.0,
                extra_aspect_rate: 0.0,
                infer_accuracy: 1.0,
                ..TeacherConfig::default()
            },
            world(),
        );
        let g = t.generate(PROMPT, &golden(), 0);
        assert!(g.injected_flaw.is_none());
        let detected = detect_aspects(&g.text);
        assert!(detected.contains(Aspect::Depth));
        assert!(detected.contains(Aspect::Examples));
        assert!(detected.contains(Aspect::Completeness));
        assert!(g.text.contains("cache") || g.text.contains("eviction"));
    }

    #[test]
    fn flaw_rate_one_always_injects() {
        let t =
            Teacher::new(TeacherConfig { flaw_rate: 10.0, ..TeacherConfig::default() }, world());
        for i in 0..10 {
            assert!(t.generate(PROMPT, &golden(), i).injected_flaw.is_some());
        }
    }

    #[test]
    fn flaw_rate_observed_near_configured() {
        let t = Teacher::new(TeacherConfig { flaw_rate: 0.3, ..TeacherConfig::default() }, world());
        let mut flawed = 0;
        let n = 400;
        for i in 0..n {
            let prompt = format!("{PROMPT} variant {i}");
            if t.generate(&prompt, &golden(), 0).injected_flaw.is_some() {
                flawed += 1;
            }
        }
        // golden() has 4 examples → effective rate ≈ 0.3 · 0.85⁴ ≈ 0.157.
        let rate = flawed as f64 / n as f64;
        assert!((0.08..=0.25).contains(&rate), "rate {rate}");
    }

    #[test]
    fn golden_examples_reduce_flaws() {
        let t = Teacher::new(TeacherConfig { flaw_rate: 0.4, ..TeacherConfig::default() }, world());
        let count = |g: &[(String, String)]| {
            (0..300)
                .filter(|&i| {
                    let prompt = format!("{PROMPT} case {i}");
                    t.generate(&prompt, g, 0).injected_flaw.is_some()
                })
                .count()
        };
        let with = count(&golden());
        let without = count(&[]);
        assert!(with < without, "few-shot must help: {with} vs {without}");
    }

    #[test]
    fn unknown_prompt_still_produces_complement() {
        let t = Teacher::new(
            TeacherConfig { flaw_rate: 0.0, ..TeacherConfig::default() },
            Arc::new(World::new()),
        );
        let g = t.generate("completely novel prompt about gardening techniques", &golden(), 0);
        assert!(!g.text.is_empty());
        assert!(!detect_aspects(&g.text).is_empty());
    }

    #[test]
    fn realize_complement_stays_short() {
        let all: AspectSet = [Aspect::Depth, Aspect::Examples].into_iter().collect();
        let text = realize_complement("topic words here", all);
        assert!(text.split_whitespace().count() <= 30, "Figure 4 asks ≤30 words: {text}");
    }
}

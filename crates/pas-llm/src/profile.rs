//! Capability profiles for the simulated models.
//!
//! A profile is the substitute for a real model checkpoint: a handful of
//! behavioural parameters calibrated so that the *baseline* (no-APE) win
//! rates of the six paper main models land near Table 1's first block. The
//! paper's deltas — how much PAS or BPO helps each model — are **not**
//! encoded here; they emerge from how much latent deficiency the augmented
//! input text covers (see `SimLlm`).

use serde::{Deserialize, Serialize};

/// Behavioural parameters of one simulated model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Stable identifier, matching the paper's model names where relevant.
    pub name: String,
    /// Overall answer quality in `[0, 1]`: correctness, coherence, knowledge.
    pub capability: f32,
    /// Probability of honouring an aspect that the input text explicitly
    /// mentions.
    pub instruction_following: f32,
    /// Probability of spontaneously covering a *needed but unstated* aspect.
    /// This is the headroom PAS exploits: the gap between required and
    /// spontaneous coverage.
    pub spontaneous_coverage: f32,
    /// Probability of avoiding a logic trap with no warning in the input.
    pub trap_resistance: f32,
    /// Verbosity multiplier on response length (1.0 = nominal).
    pub verbosity: f32,
    /// Standard deviation of per-response quality jitter.
    pub noise: f32,
    /// Per-model salt folded into response seeds.
    pub seed_salt: u64,
}

impl ModelProfile {
    /// The six "main models" of the paper's evaluation plus the two PAS base
    /// models and the judge references, by canonical name. Returns `None`
    /// for unknown names.
    pub fn named(name: &str) -> Option<ModelProfile> {
        let p = |name: &str,
                 capability,
                 instruction_following,
                 spontaneous_coverage,
                 trap_resistance,
                 verbosity,
                 noise,
                 seed_salt| ModelProfile {
            name: name.to_string(),
            capability,
            instruction_following,
            spontaneous_coverage,
            trap_resistance,
            verbosity,
            noise,
            seed_salt,
        };
        Some(match name {
            "gpt-4-turbo-2024-04-09" => p(name, 0.90, 0.93, 0.42, 0.78, 1.00, 0.10, 11),
            "gpt-4-1106-preview" => p(name, 0.88, 0.92, 0.40, 0.75, 1.15, 0.10, 12),
            "gpt-4-0613" => p(name, 0.70, 0.82, 0.20, 0.50, 0.85, 0.11, 13),
            "gpt-3.5-turbo-1106" => p(name, 0.58, 0.72, 0.10, 0.34, 0.75, 0.12, 14),
            "qwen2-72b-chat" => p(name, 0.77, 0.86, 0.25, 0.58, 1.00, 0.11, 15),
            "llama-3-70b-instruct" => p(name, 0.73, 0.84, 0.22, 0.55, 1.05, 0.11, 16),
            // Judge references: Arena-Hard compares against GPT-4-0314-class
            // output; AlpacaEval 2.0 compares against GPT-4-turbo-class.
            "reference-arena" => p(name, 0.80, 0.88, 0.33, 0.66, 1.00, 0.10, 21),
            "reference-alpaca" => p(name, 0.86, 0.91, 0.38, 0.73, 1.00, 0.10, 22),
            // Small base models (what PAS / BPO are fine-tuned from).
            "qwen2-7b-chat" => p(name, 0.55, 0.70, 0.10, 0.32, 0.90, 0.13, 31),
            "llama-2-7b-instruct" => p(name, 0.40, 0.58, 0.06, 0.22, 0.95, 0.14, 32),
            _ => return None,
        })
    }

    /// The six main-model names in Table 1 row order.
    pub fn main_model_names() -> [&'static str; 6] {
        [
            "gpt-4-turbo-2024-04-09",
            "gpt-4-1106-preview",
            "gpt-4-0613",
            "gpt-3.5-turbo-1106",
            "qwen2-72b-chat",
            "llama-3-70b-instruct",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_main_models_have_profiles() {
        for name in ModelProfile::main_model_names() {
            let p = ModelProfile::named(name).expect("profile exists");
            assert_eq!(p.name, name);
        }
    }

    #[test]
    fn unknown_model_is_none() {
        assert!(ModelProfile::named("gpt-17").is_none());
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        for name in ModelProfile::main_model_names().into_iter().chain([
            "reference-arena",
            "reference-alpaca",
            "qwen2-7b-chat",
            "llama-2-7b-instruct",
        ]) {
            let p = ModelProfile::named(name).unwrap();
            for v in
                [p.capability, p.instruction_following, p.spontaneous_coverage, p.trap_resistance]
            {
                assert!((0.0..=1.0).contains(&v), "{name}: {v}");
            }
            assert!(p.noise >= 0.0 && p.verbosity > 0.0);
        }
    }

    #[test]
    fn capability_ordering_matches_paper_baselines() {
        let cap = |n| ModelProfile::named(n).unwrap().capability;
        assert!(cap("gpt-4-turbo-2024-04-09") > cap("gpt-4-0613"));
        assert!(cap("gpt-4-0613") > cap("gpt-3.5-turbo-1106"));
        assert!(cap("qwen2-72b-chat") > cap("llama-3-70b-instruct"));
        assert!(cap("qwen2-7b-chat") > cap("llama-2-7b-instruct"));
    }

    #[test]
    fn spontaneous_coverage_below_instruction_following() {
        // The PAS headroom: stated aspects are honoured far more often than
        // unstated ones, for every model.
        for name in ModelProfile::main_model_names() {
            let p = ModelProfile::named(name).unwrap();
            assert!(p.spontaneous_coverage < p.instruction_following - 0.2, "{name}");
        }
    }
}

//! Name → model construction for the experiment harnesses.

use std::sync::Arc;

use crate::chat::ChatModel;
use crate::profile::ModelProfile;
use crate::simllm::SimLlm;
use crate::world::World;

/// Builds [`SimLlm`] instances bound to one shared [`World`].
#[derive(Clone)]
pub struct ModelRegistry {
    world: Arc<World>,
}

impl ModelRegistry {
    /// Creates a registry over `world`.
    pub fn new(world: Arc<World>) -> Self {
        ModelRegistry { world }
    }

    /// The shared world.
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// Instantiates the model with the given canonical name, or `None` when
    /// no profile exists.
    pub fn get(&self, name: &str) -> Option<SimLlm> {
        ModelProfile::named(name).map(|p| SimLlm::new(p, Arc::clone(&self.world)))
    }

    /// Instantiates a boxed trait object, for heterogeneous collections.
    pub fn get_boxed(&self, name: &str) -> Option<Box<dyn ChatModel>> {
        self.get(name).map(|m| Box::new(m) as Box<dyn ChatModel>)
    }

    /// The six main models of the paper's Table 1, in row order.
    pub fn main_models(&self) -> Vec<SimLlm> {
        ModelProfile::main_model_names()
            .into_iter()
            .map(|n| self.get(n).expect("main profiles exist"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_all_main_models() {
        let reg = ModelRegistry::new(Arc::new(World::new()));
        let models = reg.main_models();
        assert_eq!(models.len(), 6);
        assert_eq!(models[0].name(), "gpt-4-turbo-2024-04-09");
    }

    #[test]
    fn unknown_name_is_none() {
        let reg = ModelRegistry::new(Arc::new(World::new()));
        assert!(reg.get("made-up-model").is_none());
        assert!(reg.get_boxed("made-up-model").is_none());
    }

    #[test]
    fn boxed_models_chat() {
        let reg = ModelRegistry::new(Arc::new(World::new()));
        let m = reg.get_boxed("gpt-4-0613").unwrap();
        assert!(!m.chat("say something about databases").is_empty());
    }
}

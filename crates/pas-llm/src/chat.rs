//! The plug-and-play model boundary.
//!
//! Everything downstream of PAS — the main models it augments, the teacher,
//! the judge targets — is reached through [`ChatModel`]: text in, text out.
//! This is the property that makes PAS LLM-agnostic (Table 3): the
//! augmentation layer composes with any implementation of this trait.

/// Token accounting for a chat call, used by the data-efficiency experiment
/// (Figure 7) to report consumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TokenUsage {
    /// Whitespace-token count of the input.
    pub prompt_tokens: usize,
    /// Whitespace-token count of the output.
    pub completion_tokens: usize,
}

impl TokenUsage {
    /// Total tokens moved.
    pub fn total(&self) -> usize {
        self.prompt_tokens + self.completion_tokens
    }
}

/// A chat-completion model: the plug-and-play boundary of the whole system.
pub trait ChatModel: Send + Sync {
    /// Stable model identifier (e.g. `"gpt-4-0613"`).
    fn name(&self) -> &str;

    /// Produces a response to `input`.
    fn chat(&self, input: &str) -> String;

    /// Produces a response plus token accounting. Default wraps
    /// [`Self::chat`] with whitespace token counts.
    fn chat_with_usage(&self, input: &str) -> (String, TokenUsage) {
        let out = self.chat(input);
        let usage = TokenUsage {
            prompt_tokens: input.split_whitespace().count(),
            completion_tokens: out.split_whitespace().count(),
        };
        (out, usage)
    }
}

/// Blanket implementation so `Box<dyn ChatModel>` and `&T` compose.
impl<T: ChatModel + ?Sized> ChatModel for &T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn chat(&self, input: &str) -> String {
        (**self).chat(input)
    }
}

impl ChatModel for Box<dyn ChatModel> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn chat(&self, input: &str) -> String {
        (**self).chat(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl ChatModel for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn chat(&self, input: &str) -> String {
            format!("you said: {input}")
        }
    }

    #[test]
    fn default_usage_counts_whitespace_tokens() {
        let (out, usage) = Echo.chat_with_usage("two words");
        assert_eq!(out, "you said: two words");
        assert_eq!(usage.prompt_tokens, 2);
        assert_eq!(usage.completion_tokens, 4);
        assert_eq!(usage.total(), 6);
    }

    #[test]
    fn trait_objects_compose() {
        let boxed: Box<dyn ChatModel> = Box::new(Echo);
        assert_eq!(boxed.name(), "echo");
        let by_ref: &dyn ChatModel = &Echo;
        assert!(by_ref.chat("x").contains('x'));
    }
}

//! The plug-and-play model boundary.
//!
//! Everything downstream of PAS — the main models it augments, the teacher,
//! the judge targets — is reached through [`ChatModel`]: text in, text out.
//! This is the property that makes PAS LLM-agnostic (Table 3): the
//! augmentation layer composes with any implementation of this trait.

/// Token accounting for a chat call, used by the data-efficiency experiment
/// (Figure 7) to report consumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TokenUsage {
    /// Whitespace-token count of the input.
    pub prompt_tokens: usize,
    /// Whitespace-token count of the output.
    pub completion_tokens: usize,
}

impl TokenUsage {
    /// Total tokens moved.
    pub fn total(&self) -> usize {
        self.prompt_tokens + self.completion_tokens
    }
}

/// A chat-completion model: the plug-and-play boundary of the whole system.
pub trait ChatModel: Send + Sync {
    /// Stable model identifier (e.g. `"gpt-4-0613"`).
    fn name(&self) -> &str;

    /// Produces a response to `input`.
    fn chat(&self, input: &str) -> String;

    /// Produces a response plus token accounting. Default wraps
    /// [`Self::chat`] with whitespace token counts.
    fn chat_with_usage(&self, input: &str) -> (String, TokenUsage) {
        let out = self.chat(input);
        let usage = TokenUsage {
            prompt_tokens: input.split_whitespace().count(),
            completion_tokens: out.split_whitespace().count(),
        };
        (out, usage)
    }
}

/// Why a chat call failed at the model boundary. Real backends surface
/// exactly these classes (connection resets, deadline overruns, 429 bursts,
/// truncated streams); the simulated fault injector in `pas-fault` produces
/// them deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChatError {
    /// Transient transport failure (connection reset, 5xx); retryable.
    Transient,
    /// The call exceeded its deadline after `elapsed_ms`.
    Timeout {
        /// Milliseconds spent before the deadline fired.
        elapsed_ms: u64,
    },
    /// The backend asked us to back off for `retry_after_ms`.
    RateLimited {
        /// Backend-suggested wait before retrying.
        retry_after_ms: u64,
    },
    /// A response arrived but was truncated or garbled; retryable.
    Garbled,
    /// The backend is down and retrying is pointless (circuit open,
    /// permanent outage). Callers must degrade, not retry.
    Unavailable,
}

impl std::fmt::Display for ChatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChatError::Transient => write!(f, "transient backend error"),
            ChatError::Timeout { elapsed_ms } => write!(f, "call timed out after {elapsed_ms}ms"),
            ChatError::RateLimited { retry_after_ms } => {
                write!(f, "rate limited (retry after {retry_after_ms}ms)")
            }
            ChatError::Garbled => write!(f, "truncated or garbled completion"),
            ChatError::Unavailable => write!(f, "backend unavailable"),
        }
    }
}

impl std::error::Error for ChatError {}

/// The *fallible* chat boundary: what a production client actually sees.
///
/// [`ChatModel`] keeps the paper's idealized text-in/text-out contract;
/// `TryChatModel` is the same boundary with failure made explicit. Every
/// infallible model is trivially a `TryChatModel` (blanket impl below), and
/// the fault-tolerance layer (`pas-fault`) both produces implementations
/// that fail (the injector) and consumes them (retry/backoff wrappers).
pub trait TryChatModel: Send + Sync {
    /// Stable model identifier.
    fn name(&self) -> &str;

    /// Produces a response to `input`, or a [`ChatError`].
    fn try_chat(&self, input: &str) -> Result<String, ChatError>;
}

/// Every infallible [`ChatModel`] is a [`TryChatModel`] that never fails.
impl<T: ChatModel> TryChatModel for T {
    fn name(&self) -> &str {
        ChatModel::name(self)
    }

    fn try_chat(&self, input: &str) -> Result<String, ChatError> {
        Ok(self.chat(input))
    }
}

/// Blanket implementation so `Box<dyn ChatModel>` and `&T` compose.
impl<T: ChatModel + ?Sized> ChatModel for &T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn chat(&self, input: &str) -> String {
        (**self).chat(input)
    }
}

impl ChatModel for Box<dyn ChatModel> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn chat(&self, input: &str) -> String {
        (**self).chat(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl ChatModel for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn chat(&self, input: &str) -> String {
            format!("you said: {input}")
        }
    }

    #[test]
    fn default_usage_counts_whitespace_tokens() {
        let (out, usage) = Echo.chat_with_usage("two words");
        assert_eq!(out, "you said: two words");
        assert_eq!(usage.prompt_tokens, 2);
        assert_eq!(usage.completion_tokens, 4);
        assert_eq!(usage.total(), 6);
    }

    #[test]
    fn trait_objects_compose() {
        let boxed: Box<dyn ChatModel> = Box::new(Echo);
        assert_eq!(ChatModel::name(&boxed), "echo");
        let by_ref: &dyn ChatModel = &Echo;
        assert!(by_ref.chat("x").contains('x'));
    }

    #[test]
    fn infallible_models_are_trivially_fallible() {
        assert_eq!(Echo.try_chat("hi").as_deref(), Ok("you said: hi"));
        assert_eq!(TryChatModel::name(&Echo), "echo");
    }

    #[test]
    fn chat_errors_render() {
        assert!(ChatError::Timeout { elapsed_ms: 40 }.to_string().contains("40ms"));
        assert!(ChatError::RateLimited { retry_after_ms: 9 }.to_string().contains("9ms"));
        assert!(!ChatError::Unavailable.to_string().is_empty());
    }
}

//! The simulated-LLM substrate.
//!
//! The paper plugs PAS into six proprietary/large chat models and uses GPT-4
//! both as the few-shot complement *teacher* and as the pair *critic*
//! (Figures 4 and 5). None of those can run inside this workspace, so this
//! crate provides the closest synthetic equivalent that exercises the same
//! code paths (see DESIGN.md §2):
//!
//! - [`world`] — the latent semantic model: 14 prompt [`Category`]s, the
//!   [`Aspect`]s a good answer must cover, a textual lexicon that lets every
//!   component communicate *through text only*, and the [`World`] registry
//!   that lets simulated models "understand" registered prompts.
//! - [`profile`] — calibrated capability profiles for the paper's main
//!   models (GPT-4-turbo … LLaMA-3-70b) plus the small PAS base models.
//! - [`chat`] — the [`ChatModel`] trait: the plug-and-play boundary.
//! - [`simllm`] — [`SimLlm`], a deterministic simulated chat model whose
//!   response quality depends on its profile and on how much of the prompt's
//!   latent deficiency the (augmented) input text covers.
//! - [`teacher`] — the few-shot complement generator of Algorithm 1, with a
//!   calibrated flaw rate (Figure 4's prompt).
//! - [`critic`] — the `IsCorrectPair` checker of Algorithm 1 (Figure 5's
//!   prompt), a rule-based detector with imperfect recall.
//! - [`registry`] — name → model construction for the experiment harnesses.

pub mod chat;
pub mod critic;
pub mod profile;
pub mod registry;
pub mod simllm;
pub mod teacher;
pub mod world;

pub use chat::{ChatError, ChatModel, TokenUsage, TryChatModel};
pub use critic::{Critic, CriticConfig, CriticVerdict};
pub use profile::ModelProfile;
pub use registry::ModelRegistry;
pub use simllm::SimLlm;
pub use teacher::{FlawKind, GeneratedComplement, Teacher, TeacherConfig};
pub use world::{Aspect, AspectSet, Category, PromptMeta, World};

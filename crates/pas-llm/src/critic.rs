//! The `IsCorrectPair` critic of Algorithm 1 (Figure 5's prompt).
//!
//! The paper asks GPT to diagnose whether a generated APE is a valid
//! supplement to the user prompt, against five criteria, and to output
//! `{ "Reason": …, "Is_correct": "Yes"/"No", "FinalAPE": … }`. The
//! simulation is a rule-based diagnostician over the pair's *text* (it never
//! reads the teacher's hidden flaw tag), applying the same five criteria:
//!
//! 1. deviates from / conflicts with the prompt's intention,
//! 2. superfluous additions,
//! 3. answers instead of supplementing,
//! 4. excessive demands,
//! 5. language mismatch.

use serde::{Deserialize, Serialize};

use pas_text::keywords::content_words;
use pas_text::lang::detect_language;

use crate::simllm::{CORRECT_MARKER, INCORRECT_MARKER};
use crate::world::{detect_aspects, Aspect};

/// Critic thresholds.
#[derive(Debug, Clone)]
pub struct CriticConfig {
    /// Maximum words before a complement counts as over-extended
    /// (Figure 4 instructs ≤ 30 words; we allow headroom).
    pub max_words: usize,
    /// Maximum distinct aspect requests before the complement counts as
    /// making excessive demands.
    pub max_aspects: usize,
    /// Minimum shared content words with the prompt for a long complement
    /// to count as on-topic.
    pub min_topic_overlap: usize,
}

impl Default for CriticConfig {
    fn default() -> Self {
        CriticConfig { max_words: 45, max_aspects: 5, min_topic_overlap: 1 }
    }
}

/// The critic's structured verdict, mirroring Figure 5's output format.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CriticVerdict {
    /// Why the verdict was reached.
    #[serde(rename = "Reason")]
    pub reason: String,
    /// `"Yes"` or `"No"` — kept as the paper's string form for fidelity.
    #[serde(rename = "Is_correct")]
    pub is_correct: String,
    /// The APE to use: the original when correct, a best-effort repair
    /// otherwise (Algorithm 1 regenerates instead of using the repair).
    #[serde(rename = "FinalAPE")]
    pub final_ape: String,
}

impl CriticVerdict {
    /// Boolean view of `is_correct`.
    pub fn accepted(&self) -> bool {
        self.is_correct == "Yes"
    }
}

/// The rule-based pair critic.
#[derive(Debug, Clone, Default)]
pub struct Critic {
    config: CriticConfig,
}

impl Critic {
    /// Creates a critic with the given thresholds.
    pub fn new(config: CriticConfig) -> Self {
        Critic { config }
    }

    /// Diagnoses `(prompt, ape)` against the five Figure 5 criteria.
    pub fn judge(&self, prompt: &str, ape: &str) -> CriticVerdict {
        if let Some(reason) = self.find_defect(prompt, ape) {
            let repaired = self.repair(prompt, ape);
            return CriticVerdict { reason, is_correct: "No".into(), final_ape: repaired };
        }
        CriticVerdict {
            reason: "APE supplements the prompt without answering, extending, or conflicting."
                .into(),
            is_correct: "Yes".into(),
            final_ape: ape.to_string(),
        }
    }

    /// Convenience boolean form (the `IsCorrectPair` of Algorithm 1).
    pub fn is_correct_pair(&self, prompt: &str, ape: &str) -> bool {
        self.judge(prompt, ape).accepted()
    }

    fn find_defect(&self, prompt: &str, ape: &str) -> Option<String> {
        // Criterion 5: language consistency.
        let pl = detect_language(prompt);
        let al = detect_language(ape);
        if pl != al {
            return Some(format!("Language mismatch: prompt is {pl}, APE is {al}."));
        }

        // Criterion 3: the APE must not answer the prompt.
        let canon = pas_text::normalize_for_dedup(ape);
        if canon.contains("the answer is")
            || canon.contains(CORRECT_MARKER)
            || canon.contains(INCORRECT_MARKER)
            || canon.contains("no further analysis is needed")
        {
            return Some("APE answers the prompt directly instead of supplementing it.".into());
        }

        // Figure 4 demands methodology-focused supplements: an APE that
        // requests no recognizable answer aspect supplements nothing.
        let words = ape.split_whitespace().count();
        let aspects = detect_aspects(ape);
        if aspects.is_empty() {
            return Some("APE offers no methodological guidance.".into());
        }

        // Criteria 2/4: superfluous additions / excessive demands.
        if words > self.config.max_words || aspects.len() > self.config.max_aspects {
            return Some(format!(
                "APE over-extends: {words} words requesting {} aspects.",
                aspects.len()
            ));
        }

        // Criterion 1: internal or prompt-facing contradiction.
        if aspects.contains(Aspect::Conciseness) && aspects.contains(Aspect::Depth) {
            return Some("APE demands brevity and in-depth treatment simultaneously.".into());
        }
        let prompt_aspects = detect_aspects(prompt);
        if prompt_aspects.contains(Aspect::Conciseness) && aspects.contains(Aspect::Depth) {
            return Some("APE demands depth although the prompt asks for brevity.".into());
        }
        if prompt_aspects.contains(Aspect::Depth) && aspects.contains(Aspect::Conciseness) {
            return Some("APE demands brevity although the prompt asks for depth.".into());
        }

        // Criterion 1/4: topical drift. A complement with several content
        // words sharing none with the prompt deviates from its intention.
        let prompt_words: std::collections::HashSet<String> =
            content_words(prompt).into_iter().collect();
        let ape_content = content_words(ape);
        let generic: std::collections::HashSet<&str> =
            GENERIC_COMPLEMENT_WORDS.iter().copied().collect();
        let topical: Vec<&String> =
            ape_content.iter().filter(|w| !generic.contains(w.as_str())).collect();
        if topical.len() >= 3 {
            let overlap = topical.iter().filter(|w| prompt_words.contains(**w)).count();
            if overlap < self.config.min_topic_overlap {
                return Some("APE drifts away from the prompt's topic.".into());
            }
        }
        None
    }

    /// Best-effort repair: a minimal on-topic background-context request in
    /// the prompt's language, which conflicts with no prompt constraint.
    fn repair(&self, prompt: &str, _ape: &str) -> String {
        let topic = pas_text::top_keywords(prompt, 3).join(" ");
        crate::teacher::realize_complement_in(
            detect_language(prompt),
            &topic,
            [Aspect::Context].into_iter().collect(),
        )
    }
}

/// Function words that appear in every aspect-request complement and carry
/// no topical information; excluded from the drift check.
const GENERIC_COMPLEMENT_WORDS: &[&str] = &[
    "considering",
    "provide",
    "include",
    "present",
    "answer",
    "question",
    "supplement",
    "respect",
    "keep",
    "cover",
    "watch",
    "supply",
    "reason",
    "mind",
    "first",
    "brief",
    "detailed",
    "analysis",
    "depth",
    "structured",
    "format",
    "concrete",
    "examples",
    "step",
    "cases",
    "edge",
    "including",
    "relevant",
    "background",
    "intended",
    "audience",
    "stylistic",
    "constraints",
    "context",
    "logic",
    "trap",
    "hidden",
    "assumptions",
    "methodology",
    "focus",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::teacher::realize_complement;
    use crate::world::AspectSet;

    const PROMPT: &str = "How do I design a cache eviction policy for a database buffer pool?";

    fn good_ape() -> String {
        realize_complement(
            "cache eviction policy",
            [Aspect::Depth, Aspect::Examples].into_iter().collect::<AspectSet>(),
        )
    }

    #[test]
    fn accepts_a_clean_complement() {
        let v = Critic::default().judge(PROMPT, &good_ape());
        assert!(v.accepted(), "reason: {}", v.reason);
        assert_eq!(v.final_ape, good_ape());
    }

    #[test]
    fn rejects_direct_answers() {
        let v = Critic::default().judge(PROMPT, "The answer is to use LRU eviction.");
        assert!(!v.accepted());
        assert!(v.reason.contains("directly"));
    }

    #[test]
    fn rejects_language_mismatch() {
        let v = Critic::default().judge(PROMPT, "请补充该问题的深入分析。");
        assert!(!v.accepted());
        assert!(v.reason.contains("Language"));
    }

    #[test]
    fn rejects_over_extension() {
        let long = format!("{} {}", good_ape(), "and furthermore ".repeat(30));
        let v = Critic::default().judge(PROMPT, &long);
        assert!(!v.accepted());
        assert!(v.reason.contains("over-extends"));
    }

    #[test]
    fn rejects_internal_contradiction() {
        let ape = format!(
            "Considering cache eviction, {} and {}.",
            Aspect::Conciseness.request_phrase(),
            Aspect::Depth.request_phrase()
        );
        assert!(!Critic::default().is_correct_pair(PROMPT, &ape));
    }

    #[test]
    fn rejects_conflict_with_prompt_constraint() {
        let brief_prompt = format!("{PROMPT} Please keep it brief.");
        let deep_ape = realize_complement(
            "cache eviction policy",
            [Aspect::Depth].into_iter().collect::<AspectSet>(),
        );
        assert!(!Critic::default().is_correct_pair(&brief_prompt, &deep_ape));
        // The same APE is fine when the prompt has no brevity constraint.
        assert!(Critic::default().is_correct_pair(PROMPT, &deep_ape));
    }

    #[test]
    fn rejects_topical_drift() {
        // An off-topic complement that *does* name an aspect, so only the
        // drift rule can catch it.
        let ape = format!(
            "Considering quarterly maritime insurance actuarial tables, {}.",
            Aspect::Examples.request_phrase()
        );
        let v = Critic::default().judge(PROMPT, &ape);
        assert!(!v.accepted());
        assert!(v.reason.contains("topic"), "reason: {}", v.reason);
    }

    #[test]
    fn rejects_contentless_supplements() {
        let v = Critic::default().judge(PROMPT, "Some vague words that ask for nothing.");
        assert!(!v.accepted());
        assert!(v.reason.contains("methodological"), "reason: {}", v.reason);
    }

    #[test]
    fn repair_is_itself_acceptable() {
        let critic = Critic::default();
        let v = critic.judge(PROMPT, "The answer is forty-two.");
        assert!(!v.accepted());
        assert!(critic.is_correct_pair(PROMPT, &v.final_ape), "repair: {}", v.final_ape);
    }

    #[test]
    fn verdict_serializes_in_paper_format() {
        let v = Critic::default().judge(PROMPT, &good_ape());
        let json = serde_json::to_string(&v).unwrap();
        assert!(json.contains("\"Reason\""));
        assert!(json.contains("\"Is_correct\":\"Yes\""));
        assert!(json.contains("\"FinalAPE\""));
    }

    #[test]
    fn catches_every_teacher_flaw_kind() {
        use crate::teacher::{Teacher, TeacherConfig};
        use crate::world::World;
        use std::sync::Arc;
        // Force flaws and verify the critic rejects each injected kind.
        let teacher = Teacher::new(
            TeacherConfig { flaw_rate: 10.0, ..TeacherConfig::default() },
            Arc::new(World::new()),
        );
        let critic = Critic::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..200u64 {
            let prompt = format!("Explain the merge strategy for log structured trees case {i}");
            let g = teacher.generate(&prompt, &[], i);
            let flaw = g.injected_flaw.expect("flaw forced");
            seen.insert(flaw);
            assert!(
                !critic.is_correct_pair(&prompt, &g.text),
                "critic missed {flaw:?}: {}",
                g.text
            );
        }
        assert_eq!(seen.len(), crate::teacher::FlawKind::ALL.len(), "all kinds exercised");
    }
}

//! The latent semantic world behind the simulation.
//!
//! Every synthetic prompt has a hidden [`PromptMeta`]: its category, the
//! [`Aspect`]s an ideal answer must cover, which of those the prompt already
//! states explicitly, its ambiguity, and whether it hides a logic trap (the
//! paper's Case Study 1). Components communicate **through text**: each
//! aspect owns trigger phrases, and [`detect_aspects`] recovers aspect
//! mentions from any text — prompts, complements, and responses alike. The
//! judge therefore scores only what a response actually says, and a
//! complement helps only if its text names the right aspects.
//!
//! [`World`] is the registry that lets a [`crate::SimLlm`] "understand" a
//! registered prompt: given a (possibly augmented) input, it recovers the
//! original prompt's metadata by normalized-prefix lookup — the analogue of
//! a real LLM's comprehension of the user request.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pas_text::hash::fx_hash_str;
use pas_text::lang::Language;
use pas_text::normalize::normalize_for_dedup;

/// The 14 prompt categories of the paper's complement dataset (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Factual question answering.
    QuestionAnswering,
    /// Programming and code review.
    Coding,
    /// Long-form writing assistance.
    Writing,
    /// Mathematical problem solving.
    Math,
    /// Logical reasoning puzzles.
    Reasoning,
    /// Translation between languages.
    Translation,
    /// Summarizing provided text.
    Summarization,
    /// Persona-driven role play.
    Roleplay,
    /// Product/media recommendations.
    Recommendation,
    /// Encyclopedic knowledge lookups.
    Knowledge,
    /// Analysis and judgment of situations.
    Analysis,
    /// Creative generation (poems, stories).
    Creative,
    /// Open-ended idea generation.
    Brainstorming,
    /// Casual conversation.
    Chitchat,
}

impl Category {
    /// All categories, index order.
    pub const ALL: [Category; 14] = [
        Category::QuestionAnswering,
        Category::Coding,
        Category::Writing,
        Category::Math,
        Category::Reasoning,
        Category::Translation,
        Category::Summarization,
        Category::Roleplay,
        Category::Recommendation,
        Category::Knowledge,
        Category::Analysis,
        Category::Creative,
        Category::Brainstorming,
        Category::Chitchat,
    ];

    /// Dense index of this category.
    pub fn index(self) -> usize {
        Category::ALL.iter().position(|&c| c == self).expect("category in ALL")
    }

    /// Category for a dense index.
    pub fn from_index(i: usize) -> Option<Category> {
        Category::ALL.get(i).copied()
    }

    /// Human-readable label (matches the dataset-distribution figure).
    pub fn name(self) -> &'static str {
        match self {
            Category::QuestionAnswering => "Q&A",
            Category::Coding => "Coding",
            Category::Writing => "Writing",
            Category::Math => "Math",
            Category::Reasoning => "Reasoning",
            Category::Translation => "Translation",
            Category::Summarization => "Summarization",
            Category::Roleplay => "Roleplay",
            Category::Recommendation => "Recommendation",
            Category::Knowledge => "Knowledge",
            Category::Analysis => "Analysis",
            Category::Creative => "Creative",
            Category::Brainstorming => "Brainstorming",
            Category::Chitchat => "Chitchat",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The answer-quality aspects an ideal response may need to cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Aspect {
    /// Step-by-step reasoning.
    StepByStep,
    /// Stylistic constraints of the writing context.
    StyleConstraint,
    /// Output format requirements.
    FormatSpec,
    /// Depth / detailed analysis.
    Depth,
    /// Warning about a hidden logic trap.
    TrapWarning,
    /// Cover all cases / completeness.
    Completeness,
    /// Target-audience adaptation.
    Audience,
    /// Concrete examples.
    Examples,
    /// Necessary background context.
    Context,
    /// Brevity constraint.
    Conciseness,
}

impl Aspect {
    /// All aspects, index order.
    pub const ALL: [Aspect; 10] = [
        Aspect::StepByStep,
        Aspect::StyleConstraint,
        Aspect::FormatSpec,
        Aspect::Depth,
        Aspect::TrapWarning,
        Aspect::Completeness,
        Aspect::Audience,
        Aspect::Examples,
        Aspect::Context,
        Aspect::Conciseness,
    ];

    /// Dense index.
    pub fn index(self) -> usize {
        Aspect::ALL.iter().position(|&a| a == self).expect("aspect in ALL")
    }

    /// Aspect for a dense index.
    pub fn from_index(i: usize) -> Option<Aspect> {
        Aspect::ALL.get(i).copied()
    }

    /// Phrases whose presence in a text signals that the text *mentions or
    /// requests* this aspect. Detection is substring search over the
    /// punctuation-normalized lowercase text, so phrases must stay
    /// punctuation-free and mutually non-overlapping across aspects.
    pub fn trigger_phrases(self) -> &'static [&'static str] {
        match self {
            Aspect::StepByStep => {
                &["step by step", "show your reasoning", "walk through the logic"]
            }
            Aspect::StyleConstraint => &[
                "formal tone",
                "stylistic constraints",
                "consistent style",
                "matching the register",
            ],
            Aspect::FormatSpec => {
                &["structured format", "as a bulleted list", "in json format", "format the output"]
            }
            Aspect::Depth => &[
                "in depth",
                "detailed analysis",
                "comprehensive explanation",
                "thorough treatment",
            ],
            Aspect::TrapWarning => {
                &["hidden assumptions", "logic trap", "common pitfall", "trick in the question"]
            }
            Aspect::Completeness => &[
                "cover all cases",
                "address every part",
                "consider edge cases",
                "complete coverage",
            ],
            Aspect::Audience => &[
                "for a beginner",
                "intended audience",
                "suitable for newcomers",
                "reader background",
            ],
            Aspect::Examples => &["concrete examples", "worked example", "include examples"],
            Aspect::Context => {
                &["relevant background", "necessary context", "surrounding circumstances"]
            }
            Aspect::Conciseness => &["keep it brief", "concise answer", "within a few sentences"],
        }
    }

    /// Chinese trigger phrases, same contract as
    /// [`Self::trigger_phrases`]. The paper's system is bilingual and its
    /// critic (Figure 5) demands language consistency, so the lexicon
    /// carries both languages.
    pub fn trigger_phrases_zh(self) -> &'static [&'static str] {
        match self {
            Aspect::StepByStep => &["一步一步", "逐步推理"],
            Aspect::StyleConstraint => &["文体要求", "保持风格一致"],
            Aspect::FormatSpec => &["结构化格式", "以列表形式"],
            Aspect::Depth => &["深入分析", "详尽论述"],
            Aspect::TrapWarning => &["逻辑陷阱", "隐含假设"],
            Aspect::Completeness => &["涵盖所有情况", "考虑边界情况"],
            Aspect::Audience => &["目标读者", "面向初学者"],
            Aspect::Examples => &["具体例子", "举例说明"],
            Aspect::Context => &["相关背景", "先交代背景"],
            Aspect::Conciseness => &["简明扼要", "保持简短"],
        }
    }

    /// Chinese request phrase, the analogue of [`Self::request_phrase`].
    pub fn request_phrase_zh(self) -> &'static str {
        match self {
            Aspect::StepByStep => "请逐步推理",
            Aspect::StyleConstraint => "请遵守语境的文体要求",
            Aspect::FormatSpec => "请以结构化格式呈现",
            Aspect::Depth => "请提供深入分析",
            Aspect::TrapWarning => "请注意逻辑陷阱和隐含假设",
            Aspect::Completeness => "请涵盖所有情况并考虑边界情况",
            Aspect::Audience => "请照顾目标读者",
            Aspect::Examples => "请举出具体例子",
            Aspect::Context => "请先交代相关背景",
            Aspect::Conciseness => "请保持简短",
        }
    }

    /// Chinese coverage phrase, the analogue of [`Self::coverage_phrase`].
    pub fn coverage_phrase_zh(self) -> &'static str {
        match self {
            Aspect::StepByStep => "我们一步一步来",
            Aspect::StyleConstraint => "按照文体要求保持风格一致",
            Aspect::FormatSpec => "以结构化格式呈现",
            Aspect::Depth => "下面给出深入分析",
            Aspect::TrapWarning => "首先指出逻辑陷阱和隐含假设",
            Aspect::Completeness => "涵盖所有情况并考虑边界情况",
            Aspect::Audience => "面向初学者照顾目标读者",
            Aspect::Examples => "并举出具体例子",
            Aspect::Context => "从相关背景说起",
            Aspect::Conciseness => "保持简短",
        }
    }

    /// Canonical phrase used when a complement *requests* this aspect.
    pub fn request_phrase(self) -> &'static str {
        match self {
            Aspect::StepByStep => "please reason step by step",
            Aspect::StyleConstraint => "respect the stylistic constraints of the context",
            Aspect::FormatSpec => "present the answer in a structured format",
            Aspect::Depth => "provide a detailed analysis in depth",
            Aspect::TrapWarning => "watch for the logic trap and hidden assumptions",
            Aspect::Completeness => "cover all cases including edge cases",
            Aspect::Audience => "keep the intended audience in mind",
            Aspect::Examples => "include concrete examples",
            Aspect::Context => "supply the relevant background first",
            Aspect::Conciseness => "keep it brief",
        }
    }

    /// Canonical phrase a response uses when it *covers* this aspect.
    pub fn coverage_phrase(self) -> &'static str {
        match self {
            Aspect::StepByStep => "Let us work step by step",
            Aspect::StyleConstraint => "keeping a consistent style and formal tone",
            Aspect::FormatSpec => "presented in a structured format",
            Aspect::Depth => "here is a detailed analysis in depth",
            Aspect::TrapWarning => "note the logic trap and hidden assumptions first",
            Aspect::Completeness => "we cover all cases and consider edge cases",
            Aspect::Audience => "explained for a beginner with the intended audience in mind",
            Aspect::Examples => "with concrete examples",
            Aspect::Context => "starting from the relevant background",
            Aspect::Conciseness => "keep it brief",
        }
    }
}

impl std::fmt::Display for Aspect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A small set of aspects, stored as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AspectSet(u16);

impl AspectSet {
    /// The empty set.
    pub const EMPTY: AspectSet = AspectSet(0);

    /// Set containing every aspect.
    pub fn all() -> AspectSet {
        AspectSet((1u16 << Aspect::ALL.len()) - 1)
    }

    /// Inserts an aspect.
    pub fn insert(&mut self, a: Aspect) {
        self.0 |= 1 << a.index();
    }

    /// Removes an aspect.
    pub fn remove(&mut self, a: Aspect) {
        self.0 &= !(1 << a.index());
    }

    /// Membership test.
    pub fn contains(self, a: Aspect) -> bool {
        self.0 & (1 << a.index()) != 0
    }

    /// Set union.
    pub fn union(self, other: AspectSet) -> AspectSet {
        AspectSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: AspectSet) -> AspectSet {
        AspectSet(self.0 & other.0)
    }

    /// Set difference `self − other`.
    pub fn minus(self, other: AspectSet) -> AspectSet {
        AspectSet(self.0 & !other.0)
    }

    /// Number of aspects in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the members in index order.
    pub fn iter(self) -> impl Iterator<Item = Aspect> {
        Aspect::ALL.into_iter().filter(move |a| self.contains(*a))
    }
}

impl FromIterator<Aspect> for AspectSet {
    fn from_iter<T: IntoIterator<Item = Aspect>>(iter: T) -> Self {
        let mut s = AspectSet::EMPTY;
        for a in iter {
            s.insert(a);
        }
        s
    }
}

/// Detects which aspects `text` mentions, by trigger-phrase search over the
/// punctuation-normalized lowercase text. Both the English and the Chinese
/// lexicons are scanned, so detection is language-agnostic.
pub fn detect_aspects(text: &str) -> AspectSet {
    let canon = normalize_for_dedup(text);
    let mut out = AspectSet::EMPTY;
    for a in Aspect::ALL {
        if a.trigger_phrases().iter().any(|p| canon.contains(p))
            || a.trigger_phrases_zh().iter().any(|p| canon.contains(p))
        {
            out.insert(a);
        }
    }
    out
}

/// The latent ground truth behind one prompt.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PromptMeta {
    /// Task category.
    pub category: Category,
    /// Aspects an ideal answer must cover.
    pub required: AspectSet,
    /// Aspects the prompt text already states.
    pub explicit: AspectSet,
    /// How underspecified the prompt is, in `[0, 1]`.
    pub ambiguity: f32,
    /// Whether the question hides a logic trap (Case Study 1).
    pub trap: bool,
    /// Language of the prompt.
    pub language: Language,
    /// Topic key used for relevance checks (a few content words).
    pub topic: String,
}

impl PromptMeta {
    /// Aspects an ideal answer needs but the prompt does not state — exactly
    /// what a good complementary prompt should supply.
    pub fn deficiencies(&self) -> AspectSet {
        self.required.minus(self.explicit)
    }
}

/// Longest word prefix used as the lookup key.
const KEY_WORDS: usize = 12;

fn prefix_key(words: &[&str], k: usize) -> u64 {
    fx_hash_str(&words[..k.min(words.len())].join(" "))
}

/// Registry mapping prompt text (by normalized word prefix) to its latent
/// metadata. Simulated models consult the world to "understand" an input
/// even after a complement has been appended to it.
#[derive(Debug, Default, Clone)]
pub struct World {
    entries: HashMap<u64, PromptMeta>,
}

impl World {
    /// Creates an empty world.
    pub fn new() -> Self {
        World::default()
    }

    /// Number of registered prompts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registers a prompt's metadata. Re-registering the same prefix
    /// overwrites (synthetic prompts are unique by construction).
    pub fn register(&mut self, text: &str, meta: PromptMeta) {
        let canon = normalize_for_dedup(text);
        let words: Vec<&str> = canon.split(' ').filter(|w| !w.is_empty()).collect();
        if words.is_empty() {
            return;
        }
        let k = words.len().min(KEY_WORDS);
        self.entries.insert(prefix_key(&words, k), meta);
    }

    /// Looks up the metadata of the prompt at the *start* of `text` (which
    /// may have a complement appended). Tries the longest prefix first.
    pub fn lookup(&self, text: &str) -> Option<&PromptMeta> {
        let canon = normalize_for_dedup(text);
        let words: Vec<&str> = canon.split(' ').filter(|w| !w.is_empty()).collect();
        if words.is_empty() {
            return None;
        }
        let max_k = words.len().min(KEY_WORDS);
        for k in (1..=max_k).rev() {
            if let Some(meta) = self.entries.get(&prefix_key(&words, k)) {
                return Some(meta);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(cat: Category) -> PromptMeta {
        PromptMeta {
            category: cat,
            required: [Aspect::Depth, Aspect::Examples].into_iter().collect(),
            explicit: [Aspect::Examples].into_iter().collect(),
            ambiguity: 0.4,
            trap: false,
            language: Language::English,
            topic: "sorting algorithms".into(),
        }
    }

    #[test]
    fn category_indexing_round_trips() {
        for (i, c) in Category::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(Category::from_index(i), Some(c));
        }
        assert_eq!(Category::ALL.len(), 14);
        assert!(Category::from_index(99).is_none());
    }

    #[test]
    fn aspect_indexing_round_trips() {
        for (i, a) in Aspect::ALL.into_iter().enumerate() {
            assert_eq!(a.index(), i);
            assert_eq!(Aspect::from_index(i), Some(a));
        }
    }

    #[test]
    fn aspect_set_operations() {
        let mut s = AspectSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Aspect::Depth);
        s.insert(Aspect::Examples);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Aspect::Depth));
        s.remove(Aspect::Depth);
        assert!(!s.contains(Aspect::Depth));
        let t: AspectSet = [Aspect::Examples, Aspect::Context].into_iter().collect();
        assert_eq!(s.union(t).len(), 2);
        assert_eq!(s.intersection(t).len(), 1);
        assert_eq!(t.minus(s).iter().next(), Some(Aspect::Context));
        assert_eq!(AspectSet::all().len(), Aspect::ALL.len());
    }

    #[test]
    fn trigger_phrases_do_not_collide_across_aspects() {
        for a in Aspect::ALL {
            for phrase in a.trigger_phrases().iter().chain(a.trigger_phrases_zh()) {
                let detected = detect_aspects(phrase);
                assert!(detected.contains(a), "{phrase:?} must trigger {a}");
                assert_eq!(detected.len(), 1, "{phrase:?} triggers {detected:?}");
            }
        }
    }

    #[test]
    fn request_and_coverage_phrases_trigger_their_aspect() {
        for a in Aspect::ALL {
            assert!(detect_aspects(a.request_phrase()).contains(a), "request of {a}");
            assert!(detect_aspects(a.coverage_phrase()).contains(a), "coverage of {a}");
            assert!(detect_aspects(a.request_phrase_zh()).contains(a), "zh request of {a}");
            assert!(detect_aspects(a.coverage_phrase_zh()).contains(a), "zh coverage of {a}");
        }
    }

    #[test]
    fn detect_aspects_in_sentence() {
        let s = "Explain merge sort; please reason step by step and include concrete examples.";
        let d = detect_aspects(s);
        assert!(d.contains(Aspect::StepByStep));
        assert!(d.contains(Aspect::Examples));
        assert!(!d.contains(Aspect::TrapWarning));
    }

    #[test]
    fn deficiencies_are_required_minus_explicit() {
        let m = meta(Category::Coding);
        let d = m.deficiencies();
        assert!(d.contains(Aspect::Depth));
        assert!(!d.contains(Aspect::Examples));
    }

    #[test]
    fn world_lookup_survives_appended_complement() {
        let mut w = World::new();
        let prompt = "How do I sort a list of a million integers efficiently?";
        w.register(prompt, meta(Category::Coding));
        let augmented = format!("{prompt} Please reason step by step and cover all cases.");
        let found = w.lookup(&augmented).expect("lookup must succeed");
        assert_eq!(found.category, Category::Coding);
    }

    #[test]
    fn world_lookup_short_prompt() {
        let mut w = World::new();
        w.register("hello there", meta(Category::Chitchat));
        assert!(w.lookup("hello there, please keep it brief").is_some());
        assert!(w.lookup("completely different text").is_none());
    }

    #[test]
    fn world_empty_text() {
        let mut w = World::new();
        w.register("", meta(Category::Chitchat));
        assert!(w.is_empty());
        assert!(w.lookup("").is_none());
    }
}
